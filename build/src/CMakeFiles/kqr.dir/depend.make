# Empty dependencies file for kqr.
# This may be replaced when dependencies are built.
