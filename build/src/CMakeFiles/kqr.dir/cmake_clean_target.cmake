file(REMOVE_RECURSE
  "libkqr.a"
)
