
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/closeness/closeness.cc" "src/CMakeFiles/kqr.dir/closeness/closeness.cc.o" "gcc" "src/CMakeFiles/kqr.dir/closeness/closeness.cc.o.d"
  "/root/repo/src/closeness/closeness_index.cc" "src/CMakeFiles/kqr.dir/closeness/closeness_index.cc.o" "gcc" "src/CMakeFiles/kqr.dir/closeness/closeness_index.cc.o.d"
  "/root/repo/src/closeness/path_search.cc" "src/CMakeFiles/kqr.dir/closeness/path_search.cc.o" "gcc" "src/CMakeFiles/kqr.dir/closeness/path_search.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/kqr.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/kqr.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/kqr.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/kqr.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/kqr.dir/common/status.cc.o" "gcc" "src/CMakeFiles/kqr.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/kqr.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/kqr.dir/common/string_util.cc.o.d"
  "/root/repo/src/core/astar_topk.cc" "src/CMakeFiles/kqr.dir/core/astar_topk.cc.o" "gcc" "src/CMakeFiles/kqr.dir/core/astar_topk.cc.o.d"
  "/root/repo/src/core/candidates.cc" "src/CMakeFiles/kqr.dir/core/candidates.cc.o" "gcc" "src/CMakeFiles/kqr.dir/core/candidates.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/kqr.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/kqr.dir/core/engine.cc.o.d"
  "/root/repo/src/core/facets.cc" "src/CMakeFiles/kqr.dir/core/facets.cc.o" "gcc" "src/CMakeFiles/kqr.dir/core/facets.cc.o.d"
  "/root/repo/src/core/hmm.cc" "src/CMakeFiles/kqr.dir/core/hmm.cc.o" "gcc" "src/CMakeFiles/kqr.dir/core/hmm.cc.o.d"
  "/root/repo/src/core/rank_baseline.cc" "src/CMakeFiles/kqr.dir/core/rank_baseline.cc.o" "gcc" "src/CMakeFiles/kqr.dir/core/rank_baseline.cc.o.d"
  "/root/repo/src/core/reformulator.cc" "src/CMakeFiles/kqr.dir/core/reformulator.cc.o" "gcc" "src/CMakeFiles/kqr.dir/core/reformulator.cc.o.d"
  "/root/repo/src/core/smoothing.cc" "src/CMakeFiles/kqr.dir/core/smoothing.cc.o" "gcc" "src/CMakeFiles/kqr.dir/core/smoothing.cc.o.d"
  "/root/repo/src/core/snapshot.cc" "src/CMakeFiles/kqr.dir/core/snapshot.cc.o" "gcc" "src/CMakeFiles/kqr.dir/core/snapshot.cc.o.d"
  "/root/repo/src/core/viterbi_topk.cc" "src/CMakeFiles/kqr.dir/core/viterbi_topk.cc.o" "gcc" "src/CMakeFiles/kqr.dir/core/viterbi_topk.cc.o.d"
  "/root/repo/src/datagen/dblp_gen.cc" "src/CMakeFiles/kqr.dir/datagen/dblp_gen.cc.o" "gcc" "src/CMakeFiles/kqr.dir/datagen/dblp_gen.cc.o.d"
  "/root/repo/src/datagen/ecommerce_gen.cc" "src/CMakeFiles/kqr.dir/datagen/ecommerce_gen.cc.o" "gcc" "src/CMakeFiles/kqr.dir/datagen/ecommerce_gen.cc.o.d"
  "/root/repo/src/datagen/name_pool.cc" "src/CMakeFiles/kqr.dir/datagen/name_pool.cc.o" "gcc" "src/CMakeFiles/kqr.dir/datagen/name_pool.cc.o.d"
  "/root/repo/src/datagen/topic_model.cc" "src/CMakeFiles/kqr.dir/datagen/topic_model.cc.o" "gcc" "src/CMakeFiles/kqr.dir/datagen/topic_model.cc.o.d"
  "/root/repo/src/eval/experiment.cc" "src/CMakeFiles/kqr.dir/eval/experiment.cc.o" "gcc" "src/CMakeFiles/kqr.dir/eval/experiment.cc.o.d"
  "/root/repo/src/eval/judge.cc" "src/CMakeFiles/kqr.dir/eval/judge.cc.o" "gcc" "src/CMakeFiles/kqr.dir/eval/judge.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/kqr.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/kqr.dir/eval/metrics.cc.o.d"
  "/root/repo/src/eval/table_printer.cc" "src/CMakeFiles/kqr.dir/eval/table_printer.cc.o" "gcc" "src/CMakeFiles/kqr.dir/eval/table_printer.cc.o.d"
  "/root/repo/src/graph/csr.cc" "src/CMakeFiles/kqr.dir/graph/csr.cc.o" "gcc" "src/CMakeFiles/kqr.dir/graph/csr.cc.o.d"
  "/root/repo/src/graph/graph_stats.cc" "src/CMakeFiles/kqr.dir/graph/graph_stats.cc.o" "gcc" "src/CMakeFiles/kqr.dir/graph/graph_stats.cc.o.d"
  "/root/repo/src/graph/node.cc" "src/CMakeFiles/kqr.dir/graph/node.cc.o" "gcc" "src/CMakeFiles/kqr.dir/graph/node.cc.o.d"
  "/root/repo/src/graph/tat_builder.cc" "src/CMakeFiles/kqr.dir/graph/tat_builder.cc.o" "gcc" "src/CMakeFiles/kqr.dir/graph/tat_builder.cc.o.d"
  "/root/repo/src/graph/tat_graph.cc" "src/CMakeFiles/kqr.dir/graph/tat_graph.cc.o" "gcc" "src/CMakeFiles/kqr.dir/graph/tat_graph.cc.o.d"
  "/root/repo/src/search/keyword_search.cc" "src/CMakeFiles/kqr.dir/search/keyword_search.cc.o" "gcc" "src/CMakeFiles/kqr.dir/search/keyword_search.cc.o.d"
  "/root/repo/src/search/query.cc" "src/CMakeFiles/kqr.dir/search/query.cc.o" "gcc" "src/CMakeFiles/kqr.dir/search/query.cc.o.d"
  "/root/repo/src/search/result_tree.cc" "src/CMakeFiles/kqr.dir/search/result_tree.cc.o" "gcc" "src/CMakeFiles/kqr.dir/search/result_tree.cc.o.d"
  "/root/repo/src/storage/catalog.cc" "src/CMakeFiles/kqr.dir/storage/catalog.cc.o" "gcc" "src/CMakeFiles/kqr.dir/storage/catalog.cc.o.d"
  "/root/repo/src/storage/csv.cc" "src/CMakeFiles/kqr.dir/storage/csv.cc.o" "gcc" "src/CMakeFiles/kqr.dir/storage/csv.cc.o.d"
  "/root/repo/src/storage/database.cc" "src/CMakeFiles/kqr.dir/storage/database.cc.o" "gcc" "src/CMakeFiles/kqr.dir/storage/database.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/CMakeFiles/kqr.dir/storage/schema.cc.o" "gcc" "src/CMakeFiles/kqr.dir/storage/schema.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/kqr.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/kqr.dir/storage/table.cc.o.d"
  "/root/repo/src/storage/tuple.cc" "src/CMakeFiles/kqr.dir/storage/tuple.cc.o" "gcc" "src/CMakeFiles/kqr.dir/storage/tuple.cc.o.d"
  "/root/repo/src/storage/value.cc" "src/CMakeFiles/kqr.dir/storage/value.cc.o" "gcc" "src/CMakeFiles/kqr.dir/storage/value.cc.o.d"
  "/root/repo/src/text/analyzer.cc" "src/CMakeFiles/kqr.dir/text/analyzer.cc.o" "gcc" "src/CMakeFiles/kqr.dir/text/analyzer.cc.o.d"
  "/root/repo/src/text/inverted_index.cc" "src/CMakeFiles/kqr.dir/text/inverted_index.cc.o" "gcc" "src/CMakeFiles/kqr.dir/text/inverted_index.cc.o.d"
  "/root/repo/src/text/porter_stemmer.cc" "src/CMakeFiles/kqr.dir/text/porter_stemmer.cc.o" "gcc" "src/CMakeFiles/kqr.dir/text/porter_stemmer.cc.o.d"
  "/root/repo/src/text/stopwords.cc" "src/CMakeFiles/kqr.dir/text/stopwords.cc.o" "gcc" "src/CMakeFiles/kqr.dir/text/stopwords.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/CMakeFiles/kqr.dir/text/tokenizer.cc.o" "gcc" "src/CMakeFiles/kqr.dir/text/tokenizer.cc.o.d"
  "/root/repo/src/text/vocabulary.cc" "src/CMakeFiles/kqr.dir/text/vocabulary.cc.o" "gcc" "src/CMakeFiles/kqr.dir/text/vocabulary.cc.o.d"
  "/root/repo/src/walk/cooccurrence.cc" "src/CMakeFiles/kqr.dir/walk/cooccurrence.cc.o" "gcc" "src/CMakeFiles/kqr.dir/walk/cooccurrence.cc.o.d"
  "/root/repo/src/walk/preference.cc" "src/CMakeFiles/kqr.dir/walk/preference.cc.o" "gcc" "src/CMakeFiles/kqr.dir/walk/preference.cc.o.d"
  "/root/repo/src/walk/random_walk.cc" "src/CMakeFiles/kqr.dir/walk/random_walk.cc.o" "gcc" "src/CMakeFiles/kqr.dir/walk/random_walk.cc.o.d"
  "/root/repo/src/walk/similarity.cc" "src/CMakeFiles/kqr.dir/walk/similarity.cc.o" "gcc" "src/CMakeFiles/kqr.dir/walk/similarity.cc.o.d"
  "/root/repo/src/walk/similarity_index.cc" "src/CMakeFiles/kqr.dir/walk/similarity_index.cc.o" "gcc" "src/CMakeFiles/kqr.dir/walk/similarity_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
