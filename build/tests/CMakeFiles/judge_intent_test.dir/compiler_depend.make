# Empty compiler generated dependencies file for judge_intent_test.
# This may be replaced when dependencies are built.
