file(REMOVE_RECURSE
  "CMakeFiles/judge_intent_test.dir/judge_intent_test.cc.o"
  "CMakeFiles/judge_intent_test.dir/judge_intent_test.cc.o.d"
  "judge_intent_test"
  "judge_intent_test.pdb"
  "judge_intent_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/judge_intent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
