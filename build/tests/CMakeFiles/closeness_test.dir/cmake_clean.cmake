file(REMOVE_RECURSE
  "CMakeFiles/closeness_test.dir/closeness_test.cc.o"
  "CMakeFiles/closeness_test.dir/closeness_test.cc.o.d"
  "closeness_test"
  "closeness_test.pdb"
  "closeness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/closeness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
