file(REMOVE_RECURSE
  "CMakeFiles/closeness_ranking_test.dir/closeness_ranking_test.cc.o"
  "CMakeFiles/closeness_ranking_test.dir/closeness_ranking_test.cc.o.d"
  "closeness_ranking_test"
  "closeness_ranking_test.pdb"
  "closeness_ranking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/closeness_ranking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
