# Empty dependencies file for closeness_ranking_test.
# This may be replaced when dependencies are built.
