file(REMOVE_RECURSE
  "CMakeFiles/facets_test.dir/facets_test.cc.o"
  "CMakeFiles/facets_test.dir/facets_test.cc.o.d"
  "facets_test"
  "facets_test.pdb"
  "facets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/facets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
