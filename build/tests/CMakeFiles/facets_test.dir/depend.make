# Empty dependencies file for facets_test.
# This may be replaced when dependencies are built.
