# Empty compiler generated dependencies file for dblp_gen_test.
# This may be replaced when dependencies are built.
