file(REMOVE_RECURSE
  "CMakeFiles/dblp_gen_test.dir/dblp_gen_test.cc.o"
  "CMakeFiles/dblp_gen_test.dir/dblp_gen_test.cc.o.d"
  "dblp_gen_test"
  "dblp_gen_test.pdb"
  "dblp_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dblp_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
