file(REMOVE_RECURSE
  "CMakeFiles/hmm_options_test.dir/hmm_options_test.cc.o"
  "CMakeFiles/hmm_options_test.dir/hmm_options_test.cc.o.d"
  "hmm_options_test"
  "hmm_options_test.pdb"
  "hmm_options_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmm_options_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
