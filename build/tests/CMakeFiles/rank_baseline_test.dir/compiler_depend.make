# Empty compiler generated dependencies file for rank_baseline_test.
# This may be replaced when dependencies are built.
