file(REMOVE_RECURSE
  "CMakeFiles/rank_baseline_test.dir/rank_baseline_test.cc.o"
  "CMakeFiles/rank_baseline_test.dir/rank_baseline_test.cc.o.d"
  "rank_baseline_test"
  "rank_baseline_test.pdb"
  "rank_baseline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rank_baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
