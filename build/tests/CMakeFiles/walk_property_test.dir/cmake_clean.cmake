file(REMOVE_RECURSE
  "CMakeFiles/walk_property_test.dir/walk_property_test.cc.o"
  "CMakeFiles/walk_property_test.dir/walk_property_test.cc.o.d"
  "walk_property_test"
  "walk_property_test.pdb"
  "walk_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walk_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
