# Empty dependencies file for walk_property_test.
# This may be replaced when dependencies are built.
