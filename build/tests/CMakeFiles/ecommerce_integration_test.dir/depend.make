# Empty dependencies file for ecommerce_integration_test.
# This may be replaced when dependencies are built.
