file(REMOVE_RECURSE
  "CMakeFiles/ecommerce_integration_test.dir/ecommerce_integration_test.cc.o"
  "CMakeFiles/ecommerce_integration_test.dir/ecommerce_integration_test.cc.o.d"
  "ecommerce_integration_test"
  "ecommerce_integration_test.pdb"
  "ecommerce_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecommerce_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
