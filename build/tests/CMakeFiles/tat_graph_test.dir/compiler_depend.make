# Empty compiler generated dependencies file for tat_graph_test.
# This may be replaced when dependencies are built.
