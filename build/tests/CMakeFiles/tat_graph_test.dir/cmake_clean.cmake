file(REMOVE_RECURSE
  "CMakeFiles/tat_graph_test.dir/tat_graph_test.cc.o"
  "CMakeFiles/tat_graph_test.dir/tat_graph_test.cc.o.d"
  "tat_graph_test"
  "tat_graph_test.pdb"
  "tat_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tat_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
