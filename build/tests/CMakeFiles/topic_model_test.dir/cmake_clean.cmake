file(REMOVE_RECURSE
  "CMakeFiles/topic_model_test.dir/topic_model_test.cc.o"
  "CMakeFiles/topic_model_test.dir/topic_model_test.cc.o.d"
  "topic_model_test"
  "topic_model_test.pdb"
  "topic_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topic_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
