# Empty compiler generated dependencies file for generic_terms_test.
# This may be replaced when dependencies are built.
