file(REMOVE_RECURSE
  "CMakeFiles/generic_terms_test.dir/generic_terms_test.cc.o"
  "CMakeFiles/generic_terms_test.dir/generic_terms_test.cc.o.d"
  "generic_terms_test"
  "generic_terms_test.pdb"
  "generic_terms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generic_terms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
