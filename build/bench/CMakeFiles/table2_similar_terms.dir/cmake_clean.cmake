file(REMOVE_RECURSE
  "CMakeFiles/table2_similar_terms.dir/table2_similar_terms.cc.o"
  "CMakeFiles/table2_similar_terms.dir/table2_similar_terms.cc.o.d"
  "table2_similar_terms"
  "table2_similar_terms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_similar_terms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
