# Empty compiler generated dependencies file for table2_similar_terms.
# This may be replaced when dependencies are built.
