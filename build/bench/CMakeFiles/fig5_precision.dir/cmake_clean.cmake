file(REMOVE_RECURSE
  "CMakeFiles/fig5_precision.dir/fig5_precision.cc.o"
  "CMakeFiles/fig5_precision.dir/fig5_precision.cc.o.d"
  "fig5_precision"
  "fig5_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
