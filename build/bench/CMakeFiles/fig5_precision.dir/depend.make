# Empty dependencies file for fig5_precision.
# This may be replaced when dependencies are built.
