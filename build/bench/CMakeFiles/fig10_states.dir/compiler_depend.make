# Empty compiler generated dependencies file for fig10_states.
# This may be replaced when dependencies are built.
