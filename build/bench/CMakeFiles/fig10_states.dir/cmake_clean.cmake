file(REMOVE_RECURSE
  "CMakeFiles/fig10_states.dir/fig10_states.cc.o"
  "CMakeFiles/fig10_states.dir/fig10_states.cc.o.d"
  "fig10_states"
  "fig10_states.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_states.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
