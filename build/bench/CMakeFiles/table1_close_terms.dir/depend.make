# Empty dependencies file for table1_close_terms.
# This may be replaced when dependencies are built.
