file(REMOVE_RECURSE
  "CMakeFiles/table1_close_terms.dir/table1_close_terms.cc.o"
  "CMakeFiles/table1_close_terms.dir/table1_close_terms.cc.o.d"
  "table1_close_terms"
  "table1_close_terms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_close_terms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
