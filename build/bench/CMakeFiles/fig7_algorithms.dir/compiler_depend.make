# Empty compiler generated dependencies file for fig7_algorithms.
# This may be replaced when dependencies are built.
