file(REMOVE_RECURSE
  "CMakeFiles/fig7_algorithms.dir/fig7_algorithms.cc.o"
  "CMakeFiles/fig7_algorithms.dir/fig7_algorithms.cc.o.d"
  "fig7_algorithms"
  "fig7_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
