file(REMOVE_RECURSE
  "CMakeFiles/table3_results.dir/table3_results.cc.o"
  "CMakeFiles/table3_results.dir/table3_results.cc.o.d"
  "table3_results"
  "table3_results.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_results.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
