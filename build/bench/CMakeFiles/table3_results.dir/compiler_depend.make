# Empty compiler generated dependencies file for table3_results.
# This may be replaced when dependencies are built.
