file(REMOVE_RECURSE
  "CMakeFiles/fig9_topk.dir/fig9_topk.cc.o"
  "CMakeFiles/fig9_topk.dir/fig9_topk.cc.o.d"
  "fig9_topk"
  "fig9_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
