# Empty compiler generated dependencies file for fig9_topk.
# This may be replaced when dependencies are built.
