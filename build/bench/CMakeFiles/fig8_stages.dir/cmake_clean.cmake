file(REMOVE_RECURSE
  "CMakeFiles/fig8_stages.dir/fig8_stages.cc.o"
  "CMakeFiles/fig8_stages.dir/fig8_stages.cc.o.d"
  "fig8_stages"
  "fig8_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
