# Empty dependencies file for fig8_stages.
# This may be replaced when dependencies are built.
