# Empty dependencies file for scaling_offline.
# This may be replaced when dependencies are built.
