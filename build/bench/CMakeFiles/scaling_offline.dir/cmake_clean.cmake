file(REMOVE_RECURSE
  "CMakeFiles/scaling_offline.dir/scaling_offline.cc.o"
  "CMakeFiles/scaling_offline.dir/scaling_offline.cc.o.d"
  "scaling_offline"
  "scaling_offline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
