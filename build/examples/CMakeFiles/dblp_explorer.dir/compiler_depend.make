# Empty compiler generated dependencies file for dblp_explorer.
# This may be replaced when dependencies are built.
