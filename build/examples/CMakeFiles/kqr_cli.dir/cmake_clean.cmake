file(REMOVE_RECURSE
  "CMakeFiles/kqr_cli.dir/kqr_cli.cpp.o"
  "CMakeFiles/kqr_cli.dir/kqr_cli.cpp.o.d"
  "kqr_cli"
  "kqr_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kqr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
