# Empty compiler generated dependencies file for kqr_cli.
# This may be replaced when dependencies are built.
