# Empty dependencies file for ecommerce_search.
# This may be replaced when dependencies are built.
