file(REMOVE_RECURSE
  "CMakeFiles/ecommerce_search.dir/ecommerce_search.cpp.o"
  "CMakeFiles/ecommerce_search.dir/ecommerce_search.cpp.o.d"
  "ecommerce_search"
  "ecommerce_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecommerce_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
