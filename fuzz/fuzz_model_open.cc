// Fuzz surface: ServingModel::OpenMapped end-to-end — the full v3 model
// open path (map/read, container validation, per-block decompression,
// vocabulary/graph/index reconstruction, fingerprint and config-hash
// checks) against an untrusted file. The corpus seeds are real .kqrm
// files saved from the MicroDblp fixture, so coverage reaches deep into
// the section decoders rather than dying at the magic check.
//
// The database the model is opened against is rebuilt once per process
// from the deterministic fixture (the same corpus the seed models were
// built from, so fingerprint checks can pass on valid inputs).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>

#include <unistd.h>

#include "common/io/io.h"
#include "core/serving_model.h"
#include "test_fixtures.h"

namespace {

std::string TempPath() {
  const char* dir = std::getenv("TMPDIR");
  std::string path = dir != nullptr ? dir : "/tmp";
  path += "/kqr_fuzz_model_" + std::to_string(::getpid()) + ".kqrm";
  return path;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  static const std::string path = TempPath();
  const kqr::Status written = kqr::WriteFileBytes(
      path,
      std::span<const std::byte>(reinterpret_cast<const std::byte*>(data),
                                 size));
  if (!written.ok()) return 0;

  // Both open modes: heap read and mmap share validation but differ in
  // ownership and page-touch patterns.
  for (const bool prefer_mmap : {false, true}) {
    kqr::ModelOpenOptions open;
    open.prefer_mmap = prefer_mmap;
    open.verify_checksums = prefer_mmap;  // one eager pass, one lazy
    auto model = kqr::ServingModel::OpenMapped(
        kqr::testing_fixtures::MakeMicroDblp(), path, kqr::EngineOptions{},
        open);
    if (!model.ok()) continue;
    // A file that validates end-to-end must also actually serve: run one
    // reformulation so mutated-but-valid models exercise the decoded
    // structures, not just the open path.
    (void)(*model)->Reformulate("uncertain query", 3);
  }
  std::remove(path.c_str());
  return 0;
}
