// Driver for non-libFuzzer builds: runs each file argument through
// LLVMFuzzerTestOneInput once and exits. This keeps the checked-in
// corpus runnable as a plain ctest regression (including under ASan/UBSan
// in the sanitize CI job) with compilers that lack -fsanitize=fuzzer. A
// libFuzzer-linked binary treats file arguments the same way, so the
// ctest command line is identical in both build modes.

#include <cstdint>
#include <cstdio>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s corpus-file...\n", argv[0]);
    return 2;
  }
  for (int i = 1; i < argc; ++i) {
    std::FILE* f = std::fopen(argv[i], "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open corpus file %s\n", argv[i]);
      return 2;
    }
    std::fseek(f, 0, SEEK_END);
    const long end = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<uint8_t> bytes(end > 0 ? static_cast<size_t>(end) : 0);
    if (!bytes.empty() &&
        std::fread(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
      std::fprintf(stderr, "short read on %s\n", argv[i]);
      std::fclose(f);
      return 2;
    }
    std::fclose(f);
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  }
  std::printf("ran %d input(s)\n", argc - 1);
  return 0;
}
