// Deterministic generator for the checked-in fuzz seed corpus
// (fuzz/corpus/). Run from the repo root after a build:
//
//   ./build/fuzz/make_corpus fuzz/corpus
//
// Everything written is a pure function of the MicroDblp fixture and the
// fixed recipes below, so regenerating produces the same corpus the repo
// already contains (modulo format-version bumps, which are exactly when
// regeneration is warranted). Seeds are small on purpose: libFuzzer
// mutates fastest from minimal inputs, and the corpus is also replayed
// as a plain ctest regression on every build.

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include <sys/stat.h>

#include "common/io/codec.h"
#include "common/io/container.h"
#include "common/io/io.h"
#include "core/engine_builder.h"
#include "core/model_file.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "test_fixtures.h"

namespace {

int g_written = 0;

void WriteSeed(const std::string& dir, const std::string& name,
               const std::string& bytes) {
  const std::string path = dir + "/" + name;
  const kqr::Status status = kqr::WriteFileBytes(
      path, std::span<const std::byte>(
                reinterpret_cast<const std::byte*>(bytes.data()),
                bytes.size()));
  KQR_CHECK(status.ok()) << "writing " << path << ": " << status.ToString();
  std::printf("  %s (%zu bytes)\n", path.c_str(), bytes.size());
  ++g_written;
}

/// 3-byte fuzz_codec header (mode, count lo, count hi) + payload.
std::string CodecInput(uint8_t mode, uint16_t count,
                       const std::string& payload) {
  std::string input;
  input.push_back(static_cast<char>(mode));
  input.push_back(static_cast<char>(count & 0xff));
  input.push_back(static_cast<char>(count >> 8));
  input += payload;
  return input;
}

void MakeCodecSeeds(const std::string& dir) {
  // Valid streams of each codec, sized to exercise multi-byte varints,
  // the delta accumulator, and both full and partial bit-pack blocks.
  std::vector<uint64_t> plain;
  for (uint64_t i = 0; i < 200; ++i) plain.push_back(i * i * 977 + (i << 40 % 61));
  std::string encoded;
  kqr::EncodeVarints(plain, &encoded);
  WriteSeed(dir, "varint_valid", CodecInput(0, 200, encoded));
  WriteSeed(dir, "varint_wrong_count", CodecInput(0, 199, encoded));
  WriteSeed(dir, "varint_truncated",
            CodecInput(0, 200, encoded.substr(0, encoded.size() / 2)));

  std::vector<uint64_t> sorted;
  uint64_t acc = 0;
  for (uint64_t i = 0; i < 150; ++i) {
    acc += (i * 37) % 101;
    sorted.push_back(acc);
  }
  encoded.clear();
  kqr::EncodeDeltaVarints(sorted, &encoded);
  WriteSeed(dir, "delta_valid", CodecInput(1, 150, encoded));
  WriteSeed(dir, "delta_truncated",
            CodecInput(1, 150, encoded.substr(0, 5)));
  // All-max deltas: drives the prefix-sum accumulator toward overflow.
  std::string overflow;
  for (int i = 0; i < 4; ++i) {
    for (int b = 0; b < 9; ++b) overflow.push_back(static_cast<char>(0xff));
    overflow.push_back(0x01);
  }
  WriteSeed(dir, "delta_overflow", CodecInput(1, 4, overflow));

  std::vector<uint32_t> packed;
  for (uint32_t i = 0; i < 300; ++i) packed.push_back((i * 2654435761u) >> 17);
  encoded.clear();
  kqr::EncodeBitPacked(packed, &encoded);
  WriteSeed(dir, "bitpack_valid", CodecInput(2, 300, encoded));
  WriteSeed(dir, "bitpack_zero_width", CodecInput(2, 128, std::string(1, 0)));
  std::string wide(1, 33);  // width byte > 32 must be rejected
  WriteSeed(dir, "bitpack_bad_width", CodecInput(2, 128, wide + "xxxx"));

  // Non-canonical varint spelling of 1 (overlong): decoders may accept
  // or reject it, but the round-trip invariant must hold either way.
  std::string overlong;
  overlong.push_back(static_cast<char>(0x81));
  overlong.push_back(0x00);
  WriteSeed(dir, "varint_overlong", CodecInput(0, 1, overlong));
  WriteSeed(dir, "empty_payload", CodecInput(0, 0, ""));
}

void MakeContainerSeeds(const std::string& dir, const std::string& model) {
  // A real model file is the richest container seed there is.
  WriteSeed(dir, "model.kqrm", model);
  WriteSeed(dir, "model_truncated_header", model.substr(0, 64));
  WriteSeed(dir, "model_truncated_half", model.substr(0, model.size() / 2));

  std::string flipped = model;
  flipped[flipped.size() / 2] = static_cast<char>(
      static_cast<uint8_t>(flipped[flipped.size() / 2]) ^ 0x40);
  WriteSeed(dir, "model_bitflip_mid", flipped);

  std::string bad_magic = model;
  bad_magic[0] = 'X';
  WriteSeed(dir, "model_bad_magic", bad_magic);

  // Hand-built minimal container with one section per codec — small
  // enough for mutation to reach every table field quickly.
  kqr::ContainerWriter writer;
  std::string varints;
  kqr::EncodeVarints(std::vector<uint64_t>{1, 2, 3, 500, 70000}, &varints);
  writer.AddSection("u64s", kqr::SectionCodec::kVarint, 5, varints);
  std::string deltas;
  kqr::EncodeDeltaVarints(std::vector<uint64_t>{0, 10, 10, 400}, &deltas);
  writer.AddSection("offsets", kqr::SectionCodec::kVarintDelta, 4, deltas);
  std::string bits;
  kqr::EncodeBitPacked(std::vector<uint32_t>{7, 0, 1023, 42}, &bits);
  writer.AddSection("ids", kqr::SectionCodec::kBitPacked, 4, bits);
  writer.AddSection("text", kqr::SectionCodec::kRaw, 5, "hello");
  const std::string tiny = writer.Finish();
  WriteSeed(dir, "tiny_container", tiny);

  std::string tiny_truncated_table = tiny.substr(0, tiny.size() - 9);
  WriteSeed(dir, "tiny_truncated_table", tiny_truncated_table);

  WriteSeed(dir, "empty", "");
  WriteSeed(dir, "magic_only", std::string(kqr::kContainerMagic, 8));
}

void MakeModelOpenSeeds(const std::string& dir, const std::string& model) {
  WriteSeed(dir, "model.kqrm", model);
  WriteSeed(dir, "model_truncated", model.substr(0, model.size() * 3 / 4));

  // Flip one byte inside some section payload: checksum verification and
  // structural validation split on inputs like this (one open mode in
  // the harness verifies checksums, the other does not).
  std::string payload_flip = model;
  payload_flip[model.size() / 3] = static_cast<char>(
      static_cast<uint8_t>(payload_flip[model.size() / 3]) ^ 0x01);
  WriteSeed(dir, "model_payload_bitflip", payload_flip);

  std::string version_bump = model;
  // Magic is 8 bytes; the version field follows it (little-endian u32).
  version_bump[8] = static_cast<char>(0x7f);
  WriteSeed(dir, "model_bad_version", version_bump);

  WriteSeed(dir, "garbage", std::string(256, '\x5a'));
}

/// fuzz_frame input shape: byte 0 selects a protocol decoder for the
/// bare-payload pass; the whole input is also streamed as frames.
std::string FrameInput(uint8_t selector, const std::string& rest) {
  std::string input;
  input.push_back(static_cast<char>(selector));
  input += rest;
  return input;
}

void MakeFrameSeeds(const std::string& dir) {
  using kqr::FrameType;

  // One well-formed frame of every message type, preceded by the
  // selector that routes the payload to the matching bare decoder.
  kqr::ReformulateRequest request;
  request.request_id = 7;
  request.k = 5;
  request.deadline_micros = 250000;
  request.queries = {{1, 2, 3}, {42}};
  const std::string request_payload = kqr::EncodeReformulateRequest(request);
  WriteSeed(dir, "reformulate_request",
            FrameInput(0, kqr::EncodeFrameString(FrameType::kReformulateRequest,
                                                 request_payload)));

  kqr::ReformulateResponse response;
  response.request_id = 7;
  kqr::ReformulatedQuery ranked;
  ranked.terms = {2, 9};
  ranked.score = 0.0625;
  ranked.is_identity = false;
  response.results.emplace_back(
      std::vector<kqr::ReformulatedQuery>{ranked});
  response.results.emplace_back(kqr::Status::Unavailable("shard down"));
  const std::string response_payload =
      kqr::EncodeReformulateResponse(response);
  WriteSeed(dir, "reformulate_response",
            FrameInput(1, kqr::EncodeFrameString(
                              FrameType::kReformulateResponse,
                              response_payload)));

  kqr::HealthResponse health;
  health.request_id = 3;
  health.model_generation = 2;
  health.vocab_terms = 1533;
  health.prepared_terms = 12;
  WriteSeed(dir, "health_response",
            FrameInput(2, kqr::EncodeFrameString(
                              FrameType::kHealthResponse,
                              kqr::EncodeHealthResponse(health))));

  kqr::StatsResponse stats;
  stats.request_id = 4;
  stats.json = R"({"shard":{"counters":{"kqr_shard_requests_total":9}}})";
  WriteSeed(dir, "stats_response",
            FrameInput(3, kqr::EncodeFrameString(
                              FrameType::kStatsResponse,
                              kqr::EncodeStatsResponse(stats))));

  kqr::SwapRequest swap;
  swap.request_id = 5;
  swap.model_path = "/models/current.kqr3";
  WriteSeed(dir, "swap_request",
            FrameInput(4, kqr::EncodeFrameString(
                              FrameType::kSwapRequest,
                              kqr::EncodeSwapRequest(swap))));

  kqr::SwapResponse swapped;
  swapped.request_id = 5;
  swapped.status = kqr::Status::IOError("no such model");
  swapped.model_generation = 1;
  WriteSeed(dir, "swap_response",
            FrameInput(5, kqr::EncodeFrameString(
                              FrameType::kSwapResponse,
                              kqr::EncodeSwapResponse(swapped))));

  // Two frames back to back: chunked reassembly across a boundary.
  std::string two = kqr::EncodeFrameString(
      FrameType::kHealthRequest, kqr::EncodeRequestIdPayload(11));
  kqr::EncodeFrame(FrameType::kStatsRequest,
                   kqr::EncodeRequestIdPayload(12), &two);
  WriteSeed(dir, "two_frames", FrameInput(6, two));

  // Faults the decoders must catch: bad magic, payload bit flip
  // (checksum), truncated mid-payload, oversize length field.
  std::string bad_magic = kqr::EncodeFrameString(
      FrameType::kHealthRequest, kqr::EncodeRequestIdPayload(1));
  bad_magic[0] = 'X';
  WriteSeed(dir, "bad_magic", FrameInput(0, bad_magic));

  std::string flipped = kqr::EncodeFrameString(
      FrameType::kReformulateRequest, request_payload);
  flipped[flipped.size() - 1] = static_cast<char>(
      static_cast<uint8_t>(flipped[flipped.size() - 1]) ^ 0x10);
  WriteSeed(dir, "payload_bitflip", FrameInput(0, flipped));

  const std::string whole = kqr::EncodeFrameString(
      FrameType::kReformulateRequest, request_payload);
  WriteSeed(dir, "truncated_frame",
            FrameInput(0, whole.substr(0, whole.size() - 3)));

  std::string oversize = whole;
  oversize[11] = static_cast<char>(0x7f);  // length field top byte: 2GB
  WriteSeed(dir, "oversize_length", FrameInput(0, oversize));

  WriteSeed(dir, "empty", FrameInput(0, ""));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-dir>\n", argv[0]);
    return 2;
  }
  const std::string root = argv[1];
  for (const char* sub : {"", "/fuzz_container", "/fuzz_codec",
                          "/fuzz_model_open", "/fuzz_frame"}) {
    ::mkdir((root + sub).c_str(), 0755);
  }

  // One eager MicroDblp model: every structure present, all lists
  // prepared, still only a few KB.
  kqr::EngineOptions options;
  options.precompute_offline = true;
  auto model =
      kqr::EngineBuilder(options).Build(kqr::testing_fixtures::MakeMicroDblp());
  KQR_CHECK(model.ok()) << model.status().ToString();
  auto serialized = kqr::SerializeModel(**model);
  KQR_CHECK(serialized.ok()) << serialized.status().ToString();

  MakeContainerSeeds(root + "/fuzz_container", *serialized);
  MakeCodecSeeds(root + "/fuzz_codec");
  MakeModelOpenSeeds(root + "/fuzz_model_open", *serialized);
  MakeFrameSeeds(root + "/fuzz_frame");

  std::printf("wrote %d seed(s) under %s\n", g_written, root.c_str());
  return 0;
}
