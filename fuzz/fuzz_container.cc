// Fuzz surface: kqr::ContainerReader over untrusted bytes — the v3 model
// container's magic/version/header-checksum/section-table validation and
// every typed decode helper. The reader must reject arbitrary garbage
// with a typed Status, never crash, read out of bounds, or hand out a
// span that escapes the input buffer.

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/io/container.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::span<const std::byte> bytes(
      reinterpret_cast<const std::byte*>(data), size);
  // Both open modes: structural validation only, and the eager
  // full-payload checksum pass (different traversal of the same bytes).
  for (const bool verify : {false, true}) {
    auto reader = kqr::ContainerReader::Open(bytes, verify);
    if (!reader.ok()) continue;
    for (const kqr::SectionInfo& section : reader->sections()) {
      // Every decode helper on every section, whatever its declared
      // codec: mismatched codec/length/alignment must fail typed, and
      // payload decoding must respect the section's item count.
      (void)reader->Payload(section.name);
      (void)reader->ReadU64s(section.name);
      (void)reader->ReadU32s(section.name);
      (void)reader->RawF32(section.name);
      (void)reader->RawF64(section.name);
      (void)reader->RawText(section.name);
    }
    (void)reader->Has("missing-section");
    (void)reader->Find("missing-section");
  }
  return 0;
}
