// Fuzz surface: the three sequence codecs (varint, delta-varint,
// bit-packed) that decode section payloads from untrusted model files,
// plus the FNV hashes the checksums use. The input's first three bytes
// pick the codec and the expected element count (the container's section
// table supplies the count in production, so it is attacker-influenced
// too); the rest is the payload.
//
// Beyond not-crashing, decoders are held to a round-trip invariant:
// whatever a decoder accepts, re-encoding and re-decoding must reproduce
// the same values (byte-identical re-encoding is NOT required — decoders
// may accept non-canonical varint spellings).

#include <cstdint>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "common/io/codec.h"

namespace {

template <typename T>
void CheckRoundTrip(const std::vector<T>& decoded,
                    void (*encode)(std::span<const T>, std::string*),
                    kqr::Status (*decode)(std::span<const std::byte>, size_t,
                                          std::vector<T>*)) {
  std::string encoded;
  encode(std::span<const T>(decoded), &encoded);
  std::vector<T> redecoded;
  const kqr::Status status = decode(
      std::span<const std::byte>(
          reinterpret_cast<const std::byte*>(encoded.data()), encoded.size()),
      decoded.size(), &redecoded);
  if (!status.ok() || redecoded != decoded) {
    std::abort();  // the codec lost data it had itself accepted
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size < 3) return 0;
  const uint8_t mode = data[0] % 3;
  // Count decoupled from the payload (and deliberately often wrong for
  // it): trailing bytes, truncated streams, and absurd counts must all
  // fail typed without overallocating.
  const size_t count =
      (static_cast<size_t>(data[1]) | (static_cast<size_t>(data[2]) << 8)) %
      4096;
  const std::span<const std::byte> payload(
      reinterpret_cast<const std::byte*>(data + 3), size - 3);

  switch (mode) {
    case 0: {
      std::vector<uint64_t> values;
      if (kqr::DecodeVarints(payload, count, &values).ok()) {
        CheckRoundTrip(values, kqr::EncodeVarints, kqr::DecodeVarints);
      }
      break;
    }
    case 1: {
      std::vector<uint64_t> values;
      if (kqr::DecodeDeltaVarints(payload, count, &values).ok()) {
        // Accepted delta streams are non-decreasing by construction, so
        // re-encoding is legal.
        CheckRoundTrip(values, kqr::EncodeDeltaVarints,
                       kqr::DecodeDeltaVarints);
      }
      break;
    }
    default: {
      std::vector<uint32_t> values;
      if (kqr::DecodeBitPacked(payload, count, &values).ok()) {
        CheckRoundTrip(values, kqr::EncodeBitPacked, kqr::DecodeBitPacked);
      }
      break;
    }
  }

  // The two FNV flavors walk the payload with different strides; the
  // word-at-a-time one has a scalar tail worth exercising at every
  // length mod 8.
  (void)kqr::Fnv1a64(payload);
  (void)kqr::Fnv1aWords(payload);
  return 0;
}
