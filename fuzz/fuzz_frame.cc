// Fuzz surface: the network wire decoders — the frame stream decoder
// (net/frame.h) and every message decoder layered on it
// (net/protocol.h). These are the bytes a hostile peer controls, so the
// bar is the same as the model-file surfaces: typed failure, never a
// crash, an overallocation, or a mis-framed stream.
//
// The input's first byte selects a protocol decoder that is fed the rest
// of the input as a bare payload (bypassing the frame checksum, which
// mutation alone would rarely satisfy). Accepted messages are held to a
// canonical-encoding invariant: re-encoding a decoded message and
// decoding it again must reach a fixed point (encode ∘ decode is
// idempotent on accepted inputs). The whole input is then also streamed
// through a FrameBuffer in fuzz-chosen chunk sizes, and every payload is
// wrapped in a well-formed frame that must round-trip exactly.

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "net/frame.h"
#include "net/protocol.h"

namespace {

std::span<const std::byte> AsBytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

/// Decode → encode → decode → encode: both encodings must match, or a
/// decoder is accepting bytes its encoder cannot reproduce.
template <typename Message, typename Decode, typename Encode>
void CheckFixedPoint(std::span<const std::byte> payload, Decode decode,
                     Encode encode) {
  auto first = decode(payload);
  if (!first.ok()) return;
  const std::string e1 = encode(*first);
  auto second = decode(AsBytes(e1));
  if (!second.ok()) std::abort();  // canonical encoding failed to decode
  if (encode(*second) != e1) std::abort();  // not a fixed point
}

void FuzzProtocolDecoders(uint8_t selector,
                          std::span<const std::byte> payload) {
  switch (selector % 7) {
    case 0:
      CheckFixedPoint<kqr::ReformulateRequest>(
          payload, kqr::DecodeReformulateRequest,
          kqr::EncodeReformulateRequest);
      break;
    case 1:
      CheckFixedPoint<kqr::ReformulateResponse>(
          payload, kqr::DecodeReformulateResponse,
          kqr::EncodeReformulateResponse);
      break;
    case 2:
      CheckFixedPoint<kqr::HealthResponse>(payload, kqr::DecodeHealthResponse,
                                           kqr::EncodeHealthResponse);
      break;
    case 3:
      CheckFixedPoint<kqr::StatsResponse>(payload, kqr::DecodeStatsResponse,
                                          kqr::EncodeStatsResponse);
      break;
    case 4:
      CheckFixedPoint<kqr::SwapRequest>(payload, kqr::DecodeSwapRequest,
                                        kqr::EncodeSwapRequest);
      break;
    case 5:
      CheckFixedPoint<kqr::SwapResponse>(payload, kqr::DecodeSwapResponse,
                                         kqr::EncodeSwapResponse);
      break;
    default:
      if (auto id = kqr::DecodeRequestIdPayload(payload); id.ok()) {
        if (kqr::EncodeRequestIdPayload(*id).size() > 10) std::abort();
      }
      break;
  }
}

void FuzzFrameStream(const uint8_t* data, size_t size) {
  // Chunk sizes come from the input itself, so mutation explores chunk
  // boundaries landing inside headers, payloads, and checksums.
  kqr::FrameBuffer buffer;
  size_t pos = 0;
  size_t salt = 0x9e3779b97f4a7c15ULL;
  bool corrupt = false;
  while (pos < size) {
    const size_t want = 1 + ((data[pos] ^ (salt & 0xff)) % 64);
    const size_t chunk = std::min(want, size - pos);
    salt = salt * 6364136223846793005ULL + 1442695040888963407ULL;
    buffer.Append(std::string_view(reinterpret_cast<const char*>(data + pos),
                                   chunk));
    pos += chunk;
    for (;;) {
      auto next = buffer.Next();
      if (!next.ok()) {
        corrupt = true;
        break;
      }
      if (!next->has_value()) break;
      // A frame that passed its checksum carries arbitrary payload; the
      // matching decoder must fail typed, never crash.
      FuzzProtocolDecoders(static_cast<uint8_t>((*next)->type),
                           AsBytes((*next)->payload));
    }
    if (corrupt) {
      // Sticky: every further Next must keep failing.
      if (buffer.Next().ok()) std::abort();
      break;
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size < 1) return 0;
  const uint8_t selector = data[0];
  const std::span<const std::byte> payload(
      reinterpret_cast<const std::byte*>(data + 1), size - 1);

  FuzzProtocolDecoders(selector, payload);
  FuzzFrameStream(data, size);

  // Any bytes wrapped in a well-formed frame must round-trip exactly.
  const auto type = static_cast<kqr::FrameType>(1 + selector % 8);
  const std::string_view body(reinterpret_cast<const char*>(data + 1),
                              size - 1);
  kqr::FrameBuffer wrapped;
  wrapped.Append(kqr::EncodeFrameString(type, body));
  auto frame = wrapped.Next();
  if (!frame.ok() || !frame->has_value() || (*frame)->type != type ||
      (*frame)->payload != body || wrapped.buffered() != 0) {
    std::abort();
  }
  return 0;
}
