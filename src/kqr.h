// kqr.h — the supported public surface of the library, in one include.
//
// Downstream code (examples, benches, external users) includes this
// facade instead of reaching into per-module headers; tools/lint.py
// enforces it for examples/ and bench/ (rule `facade-include`, with an
// allowlist for benches that deliberately exercise internals). What the
// facade exports is the API we keep stable across PRs:
//
//   Status / Result<T>       error signalling (common/status.h, result.h)
//   Deadline                 one value type for call budgets
//                            (Default / After(seconds) / At(time_point))
//   EngineBuilder            offline stage: Database -> ServingModel
//   EngineOptions            every knob, with Validate()
//   ServingModel             immutable, thread-safe serving artifact
//   Reformulator             the online pipeline (advanced direct use)
//   RequestContext           per-thread scratch + deadline carrier
//   Server / ServerOptions   batched async serving front-end
//   FleetTopology            the shape of a serving fleet: N shard
//                            groups x R replicas, with Validate()
//   ShardServer / ShardRouter  networked term-sharded serving with
//                            replica failover and multiplexed
//                            connections (net/frame.h wire protocol
//                            underneath)
//   Snapshot save/load       persisted offline products (v2 text)
//   Model file save/open     v3 mmap-able model container
//                            (SaveModelFile / ServingModel::OpenMapped)
//   Facets / explanations    suggestion grouping for presentation
//
// Everything else under src/ (walk engines, graph internals, storage,
// text analysis) is implementation: stable enough to test against, not
// part of the supported surface.

#pragma once

#include "common/deadline.h"
#include "common/result.h"
#include "common/status.h"
#include "core/engine_builder.h"
#include "core/facets.h"
#include "core/model_file.h"
#include "core/reformulator.h"
#include "core/request_context.h"
#include "core/serving_model.h"
#include "core/snapshot.h"
#include "server/server.h"
#include "shard/partition.h"
#include "shard/router.h"
#include "shard/shard_server.h"
