// Co-occurrence similarity baseline ([15] in the paper): two terms are
// similar in proportion to how often they appear in the same *virtual
// document* — the joined neighborhood of a tuple. On a normalized schema
// (junction tables like `writes`), same-tuple co-occurrence alone sees
// almost nothing, so the baseline expands each seed tuple over foreign-key
// edges up to a small radius with geometric decay; radius 0 restricts to
// strict same-tuple counts.
//
// The paper uses this both as the standalone case-study comparison
// (Table II — "can only find the collaborators") and as the similarity
// source of the "Co-occurrence reformulation" arm (Sec. VI-B).

#pragma once

#include <vector>

#include "graph/tat_graph.h"
#include "walk/similarity_index.h"

namespace kqr {

struct CooccurrenceOptions {
  /// Similar terms kept per term.
  size_t list_size = 20;
  /// Text-bearing FK hops a virtual document spans from a seed tuple.
  /// Junction tuples (no term labels, e.g. `writes`) are free hops —
  /// they are join plumbing, not document content — so radius 2 covers
  /// one join-tree: a paper with its authors and venue, or an author
  /// with their papers and co-authors.
  size_t tuple_radius = 2;
  /// Per-hop weight decay: a term found at text-hop distance d from the
  /// seed tuple counts decay^d.
  double decay = 0.3;
  /// Do not expand *through* tuples with more than this many neighbors
  /// (hubs like venues make everything co-occur with everything; their own
  /// term labels are still counted when reached). 0 disables the cut.
  size_t max_expand_degree = 64;
};

/// \brief Counts same-class co-occurrence inside FK-bounded virtual
/// documents of the TAT graph.
class CooccurrenceSimilarity {
 public:
  explicit CooccurrenceSimilarity(const TatGraph& graph,
                                  CooccurrenceOptions options = {})
      : graph_(graph), options_(options) {}

  /// \brief Top co-occurring terms of the same class (field) as `term`,
  /// scored by normalized decayed co-occurrence count.
  std::vector<SimilarTerm> TopSimilar(TermId term) const;

  /// \brief Full SimilarityIndex over `terms` using co-occurrence scores —
  /// drop-in replacement for the random-walk index in the reformulation
  /// pipeline.
  SimilarityIndex BuildIndex(const std::vector<TermId>& terms) const;

 private:
  const TatGraph& graph_;
  CooccurrenceOptions options_;
};

}  // namespace kqr

