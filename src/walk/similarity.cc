#include "walk/similarity.h"

#include <cmath>

#include "common/top_k.h"

namespace kqr {

RandomWalkResult SimilarityExtractor::Walk(NodeId start) {
  PreferenceVector r =
      options_.mode == PreferenceMode::kBasic
          ? MakeBasicPreference(start)
          : MakeContextualPreference(graph_, stats_, start,
                                     options_.context);
  r.Normalize();
  RandomWalkResult result = engine_.Run(r);
  ++walks_run_;
  walk_iterations_ += result.iterations;
  return result;
}

std::vector<ScoredNode> SimilarityExtractor::TopSimilar(NodeId start,
                                                        size_t k) {
  RandomWalkResult walk = Walk(start);
  const NodeClass target_class = stats_.ClassOf(start);
  const double alpha = options_.popularity_discount;
  TopK<NodeId> top(k);
  for (NodeId v = 0; v < walk.scores.size(); ++v) {
    if (v == start || walk.scores[v] <= 0.0) continue;
    if (stats_.ClassOf(v) != target_class) continue;
    double score = walk.scores[v];
    if (alpha > 0.0) {
      double freq = stats_.Freq(v);
      if (freq > 0.0) score /= std::pow(freq, alpha);
    }
    top.Add(score, v);
  }
  std::vector<ScoredNode> out;
  out.reserve(k);
  for (auto& [node, score] : top.TakeSorted()) {
    out.push_back(ScoredNode{node, score});
  }
  return out;
}

}  // namespace kqr
