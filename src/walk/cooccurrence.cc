#include "walk/cooccurrence.h"

#include <deque>
#include <unordered_set>
#include <unordered_map>

#include "common/top_k.h"

namespace kqr {

std::vector<SimilarTerm> CooccurrenceSimilarity::TopSimilar(
    TermId term) const {
  NodeId start = graph_.NodeOfTerm(term);
  const NodeClass target_class = graph_.ClassOf(start);

  std::unordered_map<NodeId, double> counts;

  // Does this tuple carry any term labels? Junction tuples (pure FK
  // plumbing like `writes`) do not, and traversing them is free.
  auto is_junction = [&](NodeId tuple) {
    for (const Arc& arc : graph_.Neighbors(tuple)) {
      if (graph_.KindOf(arc.target) == NodeKind::kTerm) return false;
    }
    return true;
  };

  // Each tuple containing the term seeds a virtual document: a bounded
  // BFS over FK edges whose terms co-occur with the seed term at decayed
  // weight. Distance counts text-bearing tuples only.
  for (const Arc& to_tuple : graph_.Neighbors(start)) {
    if (graph_.KindOf(to_tuple.target) != NodeKind::kTuple) continue;
    const double seed_weight = static_cast<double>(to_tuple.weight);

    std::unordered_map<NodeId, uint32_t> dist;
    std::unordered_set<NodeId> processed;
    std::deque<NodeId> queue;
    dist.emplace(to_tuple.target, 0);
    queue.push_back(to_tuple.target);
    while (!queue.empty()) {
      NodeId u = queue.front();
      queue.pop_front();
      if (!processed.insert(u).second) continue;  // settled earlier
      uint32_t d = dist[u];
      double hop_weight = seed_weight;
      for (uint32_t i = 0; i < d; ++i) hop_weight *= options_.decay;

      for (const Arc& arc : graph_.Neighbors(u)) {
        NodeId v = arc.target;
        if (graph_.KindOf(v) == NodeKind::kTerm) {
          if (v == start) continue;
          if (graph_.ClassOf(v) != target_class) continue;
          counts[v] += hop_weight * static_cast<double>(arc.weight);
        } else {
          // 0–1 BFS: junction hops are free, so relax and process them
          // from the front to keep distances minimal.
          uint32_t next_d = is_junction(v) ? d : d + 1;
          if (next_d > options_.tuple_radius) continue;
          if (options_.max_expand_degree != 0 &&
              graph_.Degree(v) > options_.max_expand_degree) {
            continue;
          }
          auto it = dist.find(v);
          if (it == dist.end() || next_d < it->second) {
            dist[v] = next_d;
            if (next_d == d) {
              queue.push_front(v);
            } else {
              queue.push_back(v);
            }
          }
        }
      }
    }
  }

  double total = 0;
  for (const auto& [node, c] : counts) total += c;

  TopK<NodeId> top(options_.list_size);
  for (const auto& [node, c] : counts) top.Add(c, node);

  std::vector<SimilarTerm> out;
  out.reserve(options_.list_size);
  for (auto& [node, score] : top.TakeSorted()) {
    out.push_back(SimilarTerm{graph_.TermOfNode(node),
                              total > 0 ? score / total : 0.0});
  }
  return out;
}

SimilarityIndex CooccurrenceSimilarity::BuildIndex(
    const std::vector<TermId>& terms) const {
  SimilarityIndex index;
  for (TermId t : terms) {
    index.Insert(t, TopSimilar(t));
  }
  return index;
}

}  // namespace kqr
