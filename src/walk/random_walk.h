// RandomWalkEngine: personalized random walk with restart over the TAT
// graph — Eq. 1 of the paper, p = λ·A·p + (1−λ)·r, iterated to convergence.

#pragma once

#include <utility>
#include <vector>

#include "graph/tat_graph.h"
#include "walk/preference.h"

namespace kqr {

struct RandomWalkOptions {
  /// Damping λ: probability of following an edge vs. restarting.
  double damping = 0.85;
  /// L1 convergence threshold ε (Algorithm 1 line 9). With damping λ the
  /// residual decays like λ^t, so 1e-6 is reached within ~90 iterations at
  /// the default λ = 0.85 — tight enough that top-k rankings are stable.
  double epsilon = 1e-6;
  /// Hard cap on iterations ("or predefined iteration times").
  size_t max_iterations = 100;
};

/// \brief Outcome of one walk.
struct RandomWalkResult {
  std::vector<double> scores;  // stationary vector p, indexed by NodeId
  size_t iterations = 0;
  bool converged = false;
};

/// \brief Sparse power iteration. Transition follows out-going edges
/// proportionally to edge weight; mass at dangling nodes restarts.
class RandomWalkEngine {
 public:
  explicit RandomWalkEngine(const TatGraph& graph,
                            RandomWalkOptions options = {})
      : graph_(graph), options_(options) {}

  /// \brief Runs the walk with restart distribution `preference`.
  ///
  /// The preference is validated and defensively normalized: entries whose
  /// node lies outside the graph or whose weight is non-positive or
  /// non-finite are dropped, and the remaining weights are rescaled to sum
  /// to 1, so the iteration conserves probability mass even on
  /// unnormalized input. When no valid entry remains the result is the
  /// all-zero vector (converged, zero iterations).
  ///
  /// Non-const: the engine reuses internal scratch buffers across calls so
  /// batch walks don't reallocate per term. One engine must therefore not
  /// be shared across threads — give each worker its own.
  RandomWalkResult Run(const PreferenceVector& preference);

  const RandomWalkOptions& options() const { return options_; }

 private:
  const TatGraph& graph_;
  RandomWalkOptions options_;
  // Scratch reused across Run calls: validated restart entries plus the
  // two dense iteration vectors.
  std::vector<std::pair<NodeId, double>> restart_;
  std::vector<double> p_;
  std::vector<double> next_;
};

}  // namespace kqr

