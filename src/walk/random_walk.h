// RandomWalkEngine: personalized random walk with restart over the TAT
// graph — Eq. 1 of the paper, p = λ·A·p + (1−λ)·r, iterated to convergence.

#ifndef KQR_WALK_RANDOM_WALK_H_
#define KQR_WALK_RANDOM_WALK_H_

#include <vector>

#include "graph/tat_graph.h"
#include "walk/preference.h"

namespace kqr {

struct RandomWalkOptions {
  /// Damping λ: probability of following an edge vs. restarting.
  double damping = 0.85;
  /// L1 convergence threshold ε (Algorithm 1 line 9). With damping λ the
  /// residual decays like λ^t, so 1e-6 is reached within ~90 iterations at
  /// the default λ = 0.85 — tight enough that top-k rankings are stable.
  double epsilon = 1e-6;
  /// Hard cap on iterations ("or predefined iteration times").
  size_t max_iterations = 100;
};

/// \brief Outcome of one walk.
struct RandomWalkResult {
  std::vector<double> scores;  // stationary vector p, indexed by NodeId
  size_t iterations = 0;
  bool converged = false;
};

/// \brief Sparse power iteration. Transition follows out-going edges
/// proportionally to edge weight; mass at dangling nodes restarts.
class RandomWalkEngine {
 public:
  explicit RandomWalkEngine(const TatGraph& graph,
                            RandomWalkOptions options = {})
      : graph_(graph), options_(options) {}

  /// \brief Runs the walk with restart distribution `preference` (must be
  /// normalized; see PreferenceVector::Normalize).
  RandomWalkResult Run(const PreferenceVector& preference) const;

  const RandomWalkOptions& options() const { return options_; }

 private:
  const TatGraph& graph_;
  RandomWalkOptions options_;
};

}  // namespace kqr

#endif  // KQR_WALK_RANDOM_WALK_H_
