// Preference (restart) vectors for the personalized random walk.
//
// Two constructions from the paper:
//  - Basic (Sec. IV-B.1): one-hot on the starting node — the "individual
//    random walk" that the paper shows is locally sensitive.
//  - Contextual (Sec. IV-B.2, Algorithm 1): mass spread over the starting
//    node's context nodes, weighted by 1/|F_i| * freq(v_c, t0) * idf(v_c),
//    where F_i groups the context nodes by field (node class).

#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph_stats.h"
#include "graph/tat_graph.h"

namespace kqr {

/// \brief Sparse preference vector: (node, weight) entries summing to 1.
struct PreferenceVector {
  std::vector<std::pair<NodeId, double>> entries;

  /// Scales weights to sum to 1. No-op on an all-zero vector.
  void Normalize();
};

/// \brief One-hot preference on `start`.
PreferenceVector MakeBasicPreference(NodeId start);

struct ContextualPreferenceOptions {
  /// Keep at most this many context nodes per field (top by weight);
  /// 0 keeps all.
  size_t max_nodes_per_field = 0;
  /// Mass reserved for the starting node itself, so the walk stays
  /// anchored; the remaining mass goes to context nodes.
  double self_weight = 0.2;
};

/// \brief Contextual biased preference of Algorithm 1 (lines 1–6): the
/// context nodes are `start`'s direct neighbors (Def. 6); each context node
/// c in field F_i gets weight 1/|F_i| * freq(c, start) * idf(c), where
/// freq(c, start) is the connecting edge weight.
PreferenceVector MakeContextualPreference(
    const TatGraph& graph, const GraphStats& stats, NodeId start,
    ContextualPreferenceOptions options = {});

}  // namespace kqr

