#include "walk/preference.h"

#include <algorithm>
#include <unordered_map>

namespace kqr {

void PreferenceVector::Normalize() {
  double total = 0;
  for (const auto& [node, w] : entries) total += w;
  if (total <= 0) return;
  for (auto& [node, w] : entries) w /= total;
}

PreferenceVector MakeBasicPreference(NodeId start) {
  PreferenceVector r;
  r.entries.emplace_back(start, 1.0);
  return r;
}

PreferenceVector MakeContextualPreference(
    const TatGraph& graph, const GraphStats& stats, NodeId start,
    ContextualPreferenceOptions options) {
  // Group context nodes (direct neighbors, Def. 6) by field/class and
  // count per-field cardinality |F_i|.
  std::unordered_map<NodeClass, size_t> field_cardinality;
  for (const Arc& arc : graph.Neighbors(start)) {
    ++field_cardinality[stats.ClassOf(arc.target)];
  }

  struct Weighted {
    NodeId node;
    NodeClass cls;
    double weight;
  };
  std::vector<Weighted> context;
  context.reserve(graph.Degree(start));
  for (const Arc& arc : graph.Neighbors(start)) {
    NodeClass cls = stats.ClassOf(arc.target);
    double field_weight =
        1.0 / static_cast<double>(field_cardinality[cls]);
    double node_weight =
        static_cast<double>(arc.weight) * stats.Idf(arc.target);
    context.push_back(Weighted{arc.target, cls, field_weight * node_weight});
  }

  if (options.max_nodes_per_field > 0) {
    // Keep the top-weighted nodes within each field.
    std::stable_sort(context.begin(), context.end(),
                     [](const Weighted& a, const Weighted& b) {
                       if (a.cls != b.cls) return a.cls < b.cls;
                       return a.weight > b.weight;
                     });
    std::vector<Weighted> kept;
    kept.reserve(context.size());
    size_t run = 0;
    for (size_t i = 0; i < context.size(); ++i) {
      if (i > 0 && context[i].cls != context[i - 1].cls) run = 0;
      if (run < options.max_nodes_per_field) kept.push_back(context[i]);
      ++run;
    }
    context = std::move(kept);
  }

  PreferenceVector r;
  double context_total = 0;
  for (const Weighted& c : context) context_total += c.weight;

  if (context_total <= 0) {
    // Isolated node: fall back to the basic preference.
    return MakeBasicPreference(start);
  }

  double self = std::clamp(options.self_weight, 0.0, 1.0);
  r.entries.reserve(context.size() + 1);
  if (self > 0) r.entries.emplace_back(start, self);
  for (const Weighted& c : context) {
    r.entries.emplace_back(c.node,
                           (1.0 - self) * c.weight / context_total);
  }
  return r;
}

}  // namespace kqr
