#include "walk/random_walk.h"

#include <cmath>

namespace kqr {

RandomWalkResult RandomWalkEngine::Run(const PreferenceVector& preference) {
  const size_t n = graph_.num_nodes();
  RandomWalkResult result;
  if (n == 0) {
    result.converged = true;
    return result;
  }

  // Validate the preference before touching the dense arrays: an entry
  // whose node lies outside the graph would be a silent out-of-bounds
  // write, and an unnormalized vector would leak (or invent) probability
  // mass through the restart term every iteration. Invalid entries are
  // dropped; the survivors are rescaled to sum to 1.
  restart_.clear();
  double total = 0.0;
  for (const auto& [node, w] : preference.entries) {
    if (node >= n || !std::isfinite(w) || w <= 0.0) continue;
    restart_.emplace_back(node, w);
    total += w;
  }
  if (restart_.empty() || total <= 0.0) {
    // No usable restart mass: there is no walk to run. Return the all-zero
    // vector rather than inventing a distribution.
    result.scores.assign(n, 0.0);
    result.converged = true;
    return result;
  }
  if (total != 1.0) {
    const double inv = 1.0 / total;
    for (auto& [node, w] : restart_) w *= inv;
  }

  // Start from the restart distribution. p_/next_ are engine scratch,
  // reused across walks so a batch of walks allocates once.
  p_.assign(n, 0.0);
  for (const auto& [node, w] : restart_) p_[node] += w;
  next_.assign(n, 0.0);

  const double lambda = options_.damping;
  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    std::fill(next_.begin(), next_.end(), 0.0);
    double dangling = 0.0;
    // Push step: distribute each node's mass over its out-arcs.
    for (NodeId u = 0; u < n; ++u) {
      double mass = p_[u];
      if (mass == 0.0) continue;
      double wdeg = graph_.WeightedDegree(u);
      if (wdeg <= 0.0) {
        dangling += mass;
        continue;
      }
      double scale = lambda * mass / wdeg;
      for (const Arc& arc : graph_.Neighbors(u)) {
        next_[arc.target] += scale * arc.weight;
      }
    }
    // Restart mass: (1-λ) of everything plus λ of the dangling mass goes
    // back through the (normalized) restart distribution.
    double restart = (1.0 - lambda) + lambda * dangling;
    for (const auto& [node, w] : restart_) {
      next_[node] += restart * w;
    }

    double delta = 0.0;
    for (size_t i = 0; i < n; ++i) delta += std::fabs(next_[i] - p_[i]);
    p_.swap(next_);
    result.iterations = iter + 1;
    if (delta < options_.epsilon) {
      result.converged = true;
      break;
    }
  }
  // Copy (not move) out so the scratch keeps its capacity for the next walk.
  result.scores = p_;
  return result;
}

}  // namespace kqr
