#include "walk/random_walk.h"

#include <cmath>

namespace kqr {

RandomWalkResult RandomWalkEngine::Run(
    const PreferenceVector& preference) const {
  const size_t n = graph_.num_nodes();
  RandomWalkResult result;
  result.scores.assign(n, 0.0);
  if (n == 0) {
    result.converged = true;
    return result;
  }

  std::vector<double> r(n, 0.0);
  for (const auto& [node, w] : preference.entries) r[node] = w;

  // Start from the restart distribution.
  std::vector<double>& p = result.scores;
  p = r;
  std::vector<double> next(n, 0.0);

  const double lambda = options_.damping;
  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    double dangling = 0.0;
    // Push step: distribute each node's mass over its out-arcs.
    for (NodeId u = 0; u < n; ++u) {
      double mass = p[u];
      if (mass == 0.0) continue;
      double wdeg = graph_.WeightedDegree(u);
      if (wdeg <= 0.0) {
        dangling += mass;
        continue;
      }
      double scale = lambda * mass / wdeg;
      for (const Arc& arc : graph_.Neighbors(u)) {
        next[arc.target] += scale * arc.weight;
      }
    }
    // Restart mass: (1-λ) of everything plus λ of the dangling mass goes
    // back through r.
    double restart = (1.0 - lambda) + lambda * dangling;
    for (const auto& [node, w] : preference.entries) {
      next[node] += restart * w;
    }

    double delta = 0.0;
    for (size_t i = 0; i < n; ++i) delta += std::fabs(next[i] - p[i]);
    p.swap(next);
    result.iterations = iter + 1;
    if (delta < options_.epsilon) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace kqr
