// Similarity extraction: ranks nodes of the *same class* as the starting
// node by their stationary random-walk score (Eq. 2). Two modes mirror the
// paper's comparison: basic (one-hot restart) and contextual (Algorithm 1).

#pragma once

#include <vector>

#include "graph/graph_stats.h"
#include "graph/tat_graph.h"
#include "walk/random_walk.h"

namespace kqr {

/// \brief One similar node with its score.
struct ScoredNode {
  NodeId node = kInvalidNodeId;
  double score = 0.0;
};

enum class PreferenceMode {
  kBasic,       ///< one-hot restart on the start node (Sec. IV-B.1)
  kContextual,  ///< contextual biased preference (Sec. IV-B.2, Alg. 1)
};

struct SimilarityOptions {
  PreferenceMode mode = PreferenceMode::kContextual;
  RandomWalkOptions walk;
  ContextualPreferenceOptions context;
  /// Popularity discount α: candidates are ranked by p[t] / freq(t)^α
  /// instead of the raw stationary score (Eq. 2 is α = 0). Personalized
  /// walks systematically over-score globally frequent hub terms
  /// ("efficient", "data", ...); dividing by a power of global frequency
  /// is the walk-side analogue of the idf weighting the paper already
  /// applies in the contextual preference (Sec. IV-B.2).
  double popularity_discount = 0.5;
};

/// \brief Runs Algorithm 1 end to end for one starting node.
///
/// Owns a RandomWalkEngine whose scratch buffers are reused across walks,
/// so an extractor is cheap to drive over a whole vocabulary but must not
/// be shared across threads — batch builders create one per worker.
class SimilarityExtractor {
 public:
  SimilarityExtractor(const TatGraph& graph, const GraphStats& stats,
                      SimilarityOptions options = {})
      : graph_(graph),
        stats_(stats),
        options_(options),
        engine_(graph, options.walk) {}

  /// \brief Top `k` nodes of the same class as `start`, ranked by walk
  /// score, excluding `start` itself. Scores are the raw stationary
  /// probabilities (callers normalize as needed).
  std::vector<ScoredNode> TopSimilar(NodeId start, size_t k);

  /// \brief Full stationary vector for `start` under the configured
  /// preference mode (exposed for tests and diagnostics).
  RandomWalkResult Walk(NodeId start);

  /// Walks executed by this extractor so far (offline stats).
  size_t walks_run() const { return walks_run_; }
  /// Power-iteration steps summed over those walks.
  size_t walk_iterations() const { return walk_iterations_; }

  const SimilarityOptions& options() const { return options_; }

 private:
  const TatGraph& graph_;
  const GraphStats& stats_;
  SimilarityOptions options_;
  RandomWalkEngine engine_;
  size_t walks_run_ = 0;
  size_t walk_iterations_ = 0;
};

}  // namespace kqr

