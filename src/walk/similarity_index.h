// SimilarityIndex: the offline stage's product — for each term, its ranked
// list of similar terms, precomputed so online reformulation is a lookup.

#ifndef KQR_WALK_SIMILARITY_INDEX_H_
#define KQR_WALK_SIMILARITY_INDEX_H_

#include <unordered_map>
#include <vector>

#include "common/offline_stats.h"
#include "common/result.h"
#include "text/vocabulary.h"
#include "walk/similarity.h"

namespace kqr {

/// \brief A term and its similarity to some reference term.
struct SimilarTerm {
  TermId term = kInvalidTermId;
  double score = 0.0;
};

struct SimilarityIndexOptions {
  /// Similar terms stored per term.
  size_t list_size = 20;
  /// Only terms whose graph node has at least this degree get an entry
  /// (degree-0 terms were cut from the graph; degree-1 terms have trivial
  /// context).
  size_t min_degree = 1;
  /// Worker threads for the batch build. 0 = auto: the KQR_THREADS
  /// environment variable when set, else the hardware concurrency. The
  /// built index is bit-for-bit identical for every thread count.
  size_t num_threads = 0;
  SimilarityOptions similarity;
};

/// \brief Precomputed term → similar-term lists.
class SimilarityIndex {
 public:
  /// \brief Runs the similarity extractor for every eligible term.
  /// This is the heavyweight offline step (one personalized walk per
  /// term), sharded across `options.num_threads` workers. Fills
  /// `build_stats` when given.
  static SimilarityIndex Build(const TatGraph& graph,
                               const GraphStats& stats,
                               SimilarityIndexOptions options = {},
                               OfflineBuildStats* build_stats = nullptr);

  /// \brief Builds entries only for `terms` (used by tests and by online
  /// fallback for out-of-index query terms).
  static SimilarityIndex BuildFor(const TatGraph& graph,
                                  const GraphStats& stats,
                                  const std::vector<TermId>& terms,
                                  SimilarityIndexOptions options = {},
                                  OfflineBuildStats* build_stats = nullptr);

  /// Ranked similar terms; empty if the term has no entry.
  const std::vector<SimilarTerm>& Lookup(TermId term) const;

  bool Contains(TermId term) const { return lists_.count(term) > 0; }
  size_t size() const { return lists_.size(); }

  /// Similarity between two specific terms per the index (0 when absent
  /// from the list). Symmetric max of both directions.
  double SimilarityOf(TermId a, TermId b) const;

  /// \brief Installs (or replaces) a term's list. Used by alternative
  /// similarity providers (e.g. the co-occurrence baseline) to assemble an
  /// index with the same interface.
  void Insert(TermId term, std::vector<SimilarTerm> list) {
    lists_[term] = std::move(list);
  }

 private:
  std::unordered_map<TermId, std::vector<SimilarTerm>> lists_;
};

}  // namespace kqr

#endif  // KQR_WALK_SIMILARITY_INDEX_H_
