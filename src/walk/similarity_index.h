// SimilarityIndex: the offline stage's product — for each term, its ranked
// list of similar terms, precomputed so online reformulation is a lookup.
//
// Thread-safety: the index is a memoization target for the serving layer's
// lazy per-term preparation, so Lookup/Contains/SimilarityOf and Insert may
// be called concurrently from many threads. Storage is sharded by term id;
// each shard pairs a reader-writer lock with a node-stable hash map, so a
// span returned by Lookup stays valid while other threads insert
// (entries are never erased; Insert on an existing term replaces the list
// contents in place and is only safe when no reader holds that term's
// span — the serving layer inserts each term at most once). Freeze()
// marks the index complete, after which every read skips locking entirely.
//
// A second storage tier exists for deserialized models: InstallFlat loads
// a whole frozen index as one offset-framed pool (model format v3). Terms
// present in the flat tier are immutable and served without touching the
// sharded maps; terms absent from it still go through the lazy path, so a
// partially prepared model round-trips through a file correctly.

#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/offline_stats.h"
#include "common/result.h"
#include "text/vocabulary.h"
#include "walk/similarity.h"

namespace kqr {

/// \brief A term and its similarity to some reference term.
struct SimilarTerm {
  TermId term = kInvalidTermId;
  double score = 0.0;
};

struct SimilarityIndexOptions {
  /// Similar terms stored per term.
  size_t list_size = 20;
  /// Only terms whose graph node has at least this degree get an entry
  /// (degree-0 terms were cut from the graph; degree-1 terms have trivial
  /// context).
  size_t min_degree = 1;
  /// Worker threads for the batch build. 0 = auto: the KQR_THREADS
  /// environment variable when set, else the hardware concurrency. The
  /// built index is bit-for-bit identical for every thread count.
  size_t num_threads = 0;
  SimilarityOptions similarity;
};

/// \brief Precomputed term → similar-term lists.
class SimilarityIndex {
 public:
  SimilarityIndex();
  SimilarityIndex(SimilarityIndex&& other) noexcept;
  SimilarityIndex& operator=(SimilarityIndex&& other) noexcept;
  SimilarityIndex(const SimilarityIndex&) = delete;
  SimilarityIndex& operator=(const SimilarityIndex&) = delete;

  /// \brief Runs the similarity extractor for every eligible term.
  /// This is the heavyweight offline step (one personalized walk per
  /// term), sharded across `options.num_threads` workers. Fills
  /// `build_stats` when given.
  static SimilarityIndex Build(const TatGraph& graph,
                               const GraphStats& stats,
                               SimilarityIndexOptions options = {},
                               OfflineBuildStats* build_stats = nullptr);

  /// \brief Builds entries only for `terms` (used by tests and by online
  /// fallback for out-of-index query terms).
  static SimilarityIndex BuildFor(const TatGraph& graph,
                                  const GraphStats& stats,
                                  const std::vector<TermId>& terms,
                                  SimilarityIndexOptions options = {},
                                  OfflineBuildStats* build_stats = nullptr);

  /// Ranked similar terms; empty if the term has no entry. The returned
  /// span stays valid across concurrent Inserts of other terms.
  std::span<const SimilarTerm> Lookup(TermId term) const;

  bool Contains(TermId term) const;
  size_t size() const;

  /// Similarity between two specific terms per the index (0 when absent
  /// from the list). Symmetric max of both directions.
  double SimilarityOf(TermId a, TermId b) const;

  /// \brief Installs (or replaces) a term's list. Used by the serving
  /// layer's lazy per-term preparation and by alternative similarity
  /// providers (e.g. the co-occurrence baseline). Checks against Freeze()
  /// and against the flat tier (flat entries are immutable).
  void Insert(TermId term, std::vector<SimilarTerm> list);

  /// \brief Installs the flat frozen tier from deserialized parts (model
  /// format v3): `offsets` has `present.size() + 1` entries framing
  /// `pool`, and `present[t]` says whether term t has an entry (possibly
  /// empty — distinct from "not prepared"). Must run before the index is
  /// shared across threads.
  void InstallFlat(std::vector<uint64_t> offsets,
                   std::vector<SimilarTerm> pool,
                   std::vector<uint8_t> present);

  /// \brief Declares the index complete: no further Insert is allowed and
  /// reads stop taking locks. Called once the offline stage has prepared
  /// every term (eager builds).
  void Freeze() { frozen_.store(true, std::memory_order_release); }
  bool frozen() const { return frozen_.load(std::memory_order_acquire); }

 private:
  static constexpr size_t kNumShards = 16;

  struct Shard {
    mutable SharedMutex mu;
    std::unordered_map<TermId, std::vector<SimilarTerm>> lists
        GUARDED_BY(mu);
  };

  Shard& shard(TermId term) const { return shards_[term % kNumShards]; }

  bool InFlat(TermId term) const {
    return term < flat_present_.size() && flat_present_[term] != 0;
  }

  // unique_ptr keeps shards at stable addresses and makes moves cheap
  // (moving is NOT thread-safe; it happens only while single-threaded,
  // before a model is shared).
  std::unique_ptr<Shard[]> shards_;
  std::atomic<bool> frozen_{false};

  // Flat frozen tier (InstallFlat). Written once single-threaded, then
  // read-only — no locking needed.
  std::vector<uint64_t> flat_offsets_;  // size flat_present_.size() + 1
  std::vector<SimilarTerm> flat_pool_;
  std::vector<uint8_t> flat_present_;
};

}  // namespace kqr
