#include "walk/similarity_index.h"

#include <algorithm>

#include "common/parallel_for.h"
#include "common/timer.h"

namespace kqr {

SimilarityIndex SimilarityIndex::Build(const TatGraph& graph,
                                       const GraphStats& stats,
                                       SimilarityIndexOptions options,
                                       OfflineBuildStats* build_stats) {
  std::vector<TermId> terms;
  const Vocabulary& vocab = graph.vocab();
  terms.reserve(vocab.size());
  for (TermId t = 0; t < vocab.size(); ++t) terms.push_back(t);
  return BuildFor(graph, stats, terms, options, build_stats);
}

SimilarityIndex SimilarityIndex::BuildFor(
    const TatGraph& graph, const GraphStats& stats,
    const std::vector<TermId>& terms, SimilarityIndexOptions options,
    OfflineBuildStats* build_stats) {
  Timer timer;
  SimilarityIndex index;
  const size_t workers = std::max<size_t>(
      1, std::min(ResolveThreadCount(options.num_threads),
                  std::max<size_t>(terms.size(), 1)));

  // One extractor per worker: each owns a walk engine whose scratch
  // buffers are reused across that worker's walks, and each walk is
  // independent, so results don't depend on which worker ran them.
  std::vector<SimilarityExtractor> extractors;
  extractors.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    extractors.emplace_back(graph, stats, options.similarity);
  }

  // Per-term result slots, merged in term order below — the index contents
  // are therefore identical to a serial build for any worker count.
  std::vector<std::vector<SimilarTerm>> lists(terms.size());
  std::vector<char> built(terms.size(), 0);
  ParallelFor(terms.size(), workers, [&](size_t worker, size_t i) {
    NodeId node = graph.NodeOfTerm(terms[i]);
    if (graph.Degree(node) < options.min_degree) return;
    std::vector<ScoredNode> similar =
        extractors[worker].TopSimilar(node, options.list_size);
    std::vector<SimilarTerm> list;
    list.reserve(similar.size());
    for (const ScoredNode& s : similar) {
      list.push_back(SimilarTerm{graph.TermOfNode(s.node), s.score});
    }
    lists[i] = std::move(list);
    built[i] = 1;
  });

  size_t built_count = 0;
  for (size_t i = 0; i < terms.size(); ++i) {
    if (!built[i]) continue;
    ++built_count;
    index.lists_.emplace(terms[i], std::move(lists[i]));
  }

  if (build_stats != nullptr) {
    build_stats->terms_total = terms.size();
    build_stats->terms_built = built_count;
    build_stats->terms_skipped = terms.size() - built_count;
    build_stats->walks_run = 0;
    build_stats->walk_iterations = 0;
    for (const SimilarityExtractor& e : extractors) {
      build_stats->walks_run += e.walks_run();
      build_stats->walk_iterations += e.walk_iterations();
    }
    build_stats->threads = workers;
    build_stats->wall_ms = timer.ElapsedMillis();
  }
  return index;
}

const std::vector<SimilarTerm>& SimilarityIndex::Lookup(TermId term) const {
  static const std::vector<SimilarTerm> kEmpty;
  auto it = lists_.find(term);
  return it == lists_.end() ? kEmpty : it->second;
}

double SimilarityIndex::SimilarityOf(TermId a, TermId b) const {
  double best = 0.0;
  for (const SimilarTerm& s : Lookup(a)) {
    if (s.term == b && s.score > best) best = s.score;
  }
  for (const SimilarTerm& s : Lookup(b)) {
    if (s.term == a && s.score > best) best = s.score;
  }
  return best;
}

}  // namespace kqr
