#include "walk/similarity_index.h"

#include <algorithm>

#include "common/logging.h"
#include "common/parallel_for.h"
#include "common/timer.h"

namespace kqr {

SimilarityIndex::SimilarityIndex()
    : shards_(std::make_unique<Shard[]>(kNumShards)) {}

SimilarityIndex::SimilarityIndex(SimilarityIndex&& other) noexcept
    : shards_(std::move(other.shards_)),
      frozen_(other.frozen_.load(std::memory_order_relaxed)),
      flat_offsets_(std::move(other.flat_offsets_)),
      flat_pool_(std::move(other.flat_pool_)),
      flat_present_(std::move(other.flat_present_)) {
  other.shards_ = std::make_unique<Shard[]>(kNumShards);
  other.frozen_.store(false, std::memory_order_relaxed);
  other.flat_offsets_.clear();
  other.flat_pool_.clear();
  other.flat_present_.clear();
}

SimilarityIndex& SimilarityIndex::operator=(
    SimilarityIndex&& other) noexcept {
  if (this != &other) {
    shards_ = std::move(other.shards_);
    frozen_.store(other.frozen_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    flat_offsets_ = std::move(other.flat_offsets_);
    flat_pool_ = std::move(other.flat_pool_);
    flat_present_ = std::move(other.flat_present_);
    other.shards_ = std::make_unique<Shard[]>(kNumShards);
    other.frozen_.store(false, std::memory_order_relaxed);
    other.flat_offsets_.clear();
    other.flat_pool_.clear();
    other.flat_present_.clear();
  }
  return *this;
}

SimilarityIndex SimilarityIndex::Build(const TatGraph& graph,
                                       const GraphStats& stats,
                                       SimilarityIndexOptions options,
                                       OfflineBuildStats* build_stats) {
  std::vector<TermId> terms;
  const Vocabulary& vocab = graph.vocab();
  terms.reserve(vocab.size());
  for (TermId t = 0; t < vocab.size(); ++t) terms.push_back(t);
  return BuildFor(graph, stats, terms, options, build_stats);
}

SimilarityIndex SimilarityIndex::BuildFor(
    const TatGraph& graph, const GraphStats& stats,
    const std::vector<TermId>& terms, SimilarityIndexOptions options,
    OfflineBuildStats* build_stats) {
  Timer timer;
  SimilarityIndex index;
  const size_t workers = std::max<size_t>(
      1, std::min(ResolveThreadCount(options.num_threads),
                  std::max<size_t>(terms.size(), 1)));

  // One extractor per worker: each owns a walk engine whose scratch
  // buffers are reused across that worker's walks, and each walk is
  // independent, so results don't depend on which worker ran them.
  std::vector<SimilarityExtractor> extractors;
  extractors.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    extractors.emplace_back(graph, stats, options.similarity);
  }

  // Per-term result slots, merged in term order below — the index contents
  // are therefore identical to a serial build for any worker count.
  std::vector<std::vector<SimilarTerm>> lists(terms.size());
  std::vector<char> built(terms.size(), 0);
  ParallelFor(terms.size(), workers, [&](size_t worker, size_t i) {
    NodeId node = graph.NodeOfTerm(terms[i]);
    if (graph.Degree(node) < options.min_degree) return;
    std::vector<ScoredNode> similar =
        extractors[worker].TopSimilar(node, options.list_size);
    std::vector<SimilarTerm> list;
    list.reserve(similar.size());
    for (const ScoredNode& s : similar) {
      list.push_back(SimilarTerm{graph.TermOfNode(s.node), s.score});
    }
    lists[i] = std::move(list);
    built[i] = 1;
  });

  size_t built_count = 0;
  for (size_t i = 0; i < terms.size(); ++i) {
    if (!built[i]) continue;
    ++built_count;
    index.Insert(terms[i], std::move(lists[i]));
  }

  if (build_stats != nullptr) {
    build_stats->terms_total = terms.size();
    build_stats->terms_built = built_count;
    build_stats->terms_skipped = terms.size() - built_count;
    build_stats->walks_run = 0;
    build_stats->walk_iterations = 0;
    for (const SimilarityExtractor& e : extractors) {
      build_stats->walks_run += e.walks_run();
      build_stats->walk_iterations += e.walk_iterations();
    }
    build_stats->threads = workers;
    build_stats->wall_ms = timer.ElapsedMillis();
  }
  return index;
}

std::span<const SimilarTerm> SimilarityIndex::Lookup(TermId term) const {
  if (InFlat(term)) {
    return std::span<const SimilarTerm>(
        flat_pool_.data() + flat_offsets_[term],
        flat_offsets_[term + 1] - flat_offsets_[term]);
  }
  const Shard& s = shard(term);
  // Frozen indexes skip the reader lock entirely (no writer can exist
  // after the frozen flag's release/acquire pair); OptionalReaderLock
  // carries that argument for the capability analysis.
  OptionalReaderLock lock(&s.mu, !frozen());
  auto it = s.lists.find(term);
  // The span outlives the lock: entries are node-stable and never
  // erased, and the serving layer never replaces a term's list once a
  // reader can reach it.
  return it == s.lists.end() ? std::span<const SimilarTerm>{}
                             : std::span<const SimilarTerm>(it->second);
}

bool SimilarityIndex::Contains(TermId term) const {
  if (InFlat(term)) return true;
  const Shard& s = shard(term);
  OptionalReaderLock lock(&s.mu, !frozen());
  return s.lists.count(term) > 0;
}

size_t SimilarityIndex::size() const {
  size_t total = 0;
  for (uint8_t present : flat_present_) total += present != 0 ? 1 : 0;
  for (size_t i = 0; i < kNumShards; ++i) {
    OptionalReaderLock lock(&shards_[i].mu, !frozen());
    total += shards_[i].lists.size();
  }
  return total;
}

double SimilarityIndex::SimilarityOf(TermId a, TermId b) const {
  double best = 0.0;
  for (const SimilarTerm& s : Lookup(a)) {
    if (s.term == b && s.score > best) best = s.score;
  }
  for (const SimilarTerm& s : Lookup(b)) {
    if (s.term == a && s.score > best) best = s.score;
  }
  return best;
}

void SimilarityIndex::Insert(TermId term, std::vector<SimilarTerm> list) {
  KQR_CHECK(!frozen()) << "Insert into a frozen SimilarityIndex";
  KQR_CHECK(!InFlat(term)) << "Insert over a flat (mapped) similarity entry";
  Shard& s = shard(term);
  WriterMutexLock lock(&s.mu);
  auto [it, inserted] = s.lists.try_emplace(term, std::move(list));
  if (!inserted) it->second = std::move(list);
}

void SimilarityIndex::InstallFlat(std::vector<uint64_t> offsets,
                                  std::vector<SimilarTerm> pool,
                                  std::vector<uint8_t> present) {
  KQR_CHECK(offsets.size() == present.size() + 1)
      << "flat offsets must frame every term";
  KQR_CHECK(offsets.empty() || offsets.back() == pool.size())
      << "flat offsets must frame the pool";
  flat_offsets_ = std::move(offsets);
  flat_pool_ = std::move(pool);
  flat_present_ = std::move(present);
}

}  // namespace kqr
