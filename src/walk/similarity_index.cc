#include "walk/similarity_index.h"

namespace kqr {

SimilarityIndex SimilarityIndex::Build(const TatGraph& graph,
                                       const GraphStats& stats,
                                       SimilarityIndexOptions options) {
  std::vector<TermId> terms;
  const Vocabulary& vocab = graph.vocab();
  terms.reserve(vocab.size());
  for (TermId t = 0; t < vocab.size(); ++t) terms.push_back(t);
  return BuildFor(graph, stats, terms, options);
}

SimilarityIndex SimilarityIndex::BuildFor(
    const TatGraph& graph, const GraphStats& stats,
    const std::vector<TermId>& terms, SimilarityIndexOptions options) {
  SimilarityIndex index;
  SimilarityExtractor extractor(graph, stats, options.similarity);
  for (TermId term : terms) {
    NodeId node = graph.NodeOfTerm(term);
    if (graph.Degree(node) < options.min_degree) continue;
    std::vector<ScoredNode> similar =
        extractor.TopSimilar(node, options.list_size);
    std::vector<SimilarTerm> list;
    list.reserve(similar.size());
    for (const ScoredNode& s : similar) {
      list.push_back(SimilarTerm{graph.TermOfNode(s.node), s.score});
    }
    index.lists_.emplace(term, std::move(list));
  }
  return index;
}

const std::vector<SimilarTerm>& SimilarityIndex::Lookup(TermId term) const {
  static const std::vector<SimilarTerm> kEmpty;
  auto it = lists_.find(term);
  return it == lists_.end() ? kEmpty : it->second;
}

double SimilarityIndex::SimilarityOf(TermId a, TermId b) const {
  double best = 0.0;
  for (const SimilarTerm& s : Lookup(a)) {
    if (s.term == b && s.score > best) best = s.score;
  }
  for (const SimilarTerm& s : Lookup(b)) {
    if (s.term == a && s.score > best) best = s.score;
  }
  return best;
}

}  // namespace kqr
