// Snapshot formatters: one MetricsSnapshot → JSON (operator tooling,
// `kqr_cli --stats`) or Prometheus exposition text (`--stats-prom`, a
// scrape endpoint). Metric names may carry a literal label block
// (`name{key="value"}`); the Prometheus formatter folds histogram bucket
// labels into it, the JSON formatter uses the full name as the key.

#pragma once

#include <string>

#include "obs/metrics.h"

namespace kqr {

/// \brief The snapshot as a single JSON object:
/// {"counters": {...}, "gauges": {...}, "histograms": {name: {count,
/// sum, mean, p50, p95, p99, buckets: [{le, count}, ...]}}}.
/// Keys are emitted in snapshot (name-sorted) order; output is
/// deterministic for a given snapshot.
std::string MetricsToJson(const MetricsSnapshot& snapshot);

/// \brief Prometheus text exposition format (type comments, cumulative
/// `_bucket{le=...}` lines, `_sum`/`_count` per histogram).
std::string MetricsToPrometheus(const MetricsSnapshot& snapshot);

/// \brief Escapes `text` for embedding in a JSON string literal.
std::string JsonEscape(const std::string& text);

}  // namespace kqr
