// Pre-resolved metric handles for the serving and offline pipelines: the
// names below are the engine's stable metric surface (documented in
// DESIGN.md "Observability"); ResolveIn registers them all once so hot
// paths never touch the registry mutex. A default-constructed
// ServingMetrics (all null) is the kill switch — every recording site
// checks its handle, so a model built with EngineOptions::enable_metrics
// = false pays one null test per stage and nothing else.

#pragma once

#include "obs/metrics.h"

namespace kqr {

struct ServingMetrics {
  // Online serving path.
  Counter* requests = nullptr;            ///< kqr_requests_total
  Counter* unresolvable = nullptr;        ///< kqr_unresolvable_requests_total
  Counter* scratch_hits = nullptr;        ///< kqr_scratch_hits_total
  Counter* scratch_misses = nullptr;      ///< kqr_scratch_misses_total
  Counter* astar_expanded = nullptr;      ///< kqr_astar_nodes_expanded_total
  Counter* astar_generated = nullptr;     ///< kqr_astar_nodes_generated_total
  LatencyHistogram* request_seconds = nullptr;    ///< kqr_request_seconds
  LatencyHistogram* candidate_seconds = nullptr;  ///< …{stage="candidate"}
  LatencyHistogram* model_seconds = nullptr;      ///< …{stage="model"}
  LatencyHistogram* decode_seconds = nullptr;     ///< …{stage="decode"}
  LatencyHistogram* trellis_states = nullptr;     ///< kqr_trellis_states

  // Sharded term cache (lazy offline preparation).
  Counter* term_cache_hits = nullptr;     ///< kqr_term_cache_hits_total
  Counter* term_cache_misses = nullptr;   ///< kqr_term_cache_misses_total
  Counter* lazy_terms_prepared = nullptr; ///< kqr_lazy_terms_prepared_total

  /// \brief Registers every serving metric in `registry` and returns the
  /// resolved handles. Null registry → all-null handles (disabled).
  static ServingMetrics ResolveIn(MetricsRegistry* registry) {
    ServingMetrics m;
    if (registry == nullptr) return m;
    m.requests = registry->GetCounter("kqr_requests_total");
    m.unresolvable =
        registry->GetCounter("kqr_unresolvable_requests_total");
    m.scratch_hits = registry->GetCounter("kqr_scratch_hits_total");
    m.scratch_misses = registry->GetCounter("kqr_scratch_misses_total");
    m.astar_expanded =
        registry->GetCounter("kqr_astar_nodes_expanded_total");
    m.astar_generated =
        registry->GetCounter("kqr_astar_nodes_generated_total");
    m.request_seconds = registry->GetHistogram("kqr_request_seconds");
    m.candidate_seconds = registry->GetHistogram(
        "kqr_online_stage_seconds{stage=\"candidate\"}");
    m.model_seconds = registry->GetHistogram(
        "kqr_online_stage_seconds{stage=\"model\"}");
    m.decode_seconds = registry->GetHistogram(
        "kqr_online_stage_seconds{stage=\"decode\"}");
    m.trellis_states =
        registry->GetHistogram("kqr_trellis_states", DefaultCountBounds());
    m.term_cache_hits = registry->GetCounter("kqr_term_cache_hits_total");
    m.term_cache_misses =
        registry->GetCounter("kqr_term_cache_misses_total");
    m.lazy_terms_prepared =
        registry->GetCounter("kqr_lazy_terms_prepared_total");
    return m;
  }
};

}  // namespace kqr
