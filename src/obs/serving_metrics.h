// Pre-resolved metric handles for the serving and offline pipelines: the
// names below are the engine's stable metric surface (documented in
// DESIGN.md "Observability"); ResolveIn registers them all once so hot
// paths never touch the registry mutex. A default-constructed
// ServingMetrics (all null) is the kill switch — every recording site
// checks its handle, so a model built with EngineOptions::enable_metrics
// = false pays one null test per stage and nothing else.

#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.h"

namespace kqr {

struct ServingMetrics {
  // Online serving path.
  Counter* requests = nullptr;            ///< kqr_requests_total
  Counter* unresolvable = nullptr;        ///< kqr_unresolvable_requests_total
  Counter* scratch_hits = nullptr;        ///< kqr_scratch_hits_total
  Counter* scratch_misses = nullptr;      ///< kqr_scratch_misses_total
  Counter* astar_expanded = nullptr;      ///< kqr_astar_nodes_expanded_total
  Counter* astar_generated = nullptr;     ///< kqr_astar_nodes_generated_total
  Counter* astar_pruned = nullptr;        ///< kqr_astar_nodes_pruned_total
  Counter* viterbi_scored = nullptr;   ///< kqr_viterbi_extensions_scored_total
  Counter* viterbi_pruned = nullptr;   ///< kqr_viterbi_extensions_pruned_total
  LatencyHistogram* request_seconds = nullptr;    ///< kqr_request_seconds
  LatencyHistogram* candidate_seconds = nullptr;  ///< …{stage="candidate"}
  LatencyHistogram* model_seconds = nullptr;      ///< …{stage="model"}
  LatencyHistogram* decode_seconds = nullptr;     ///< …{stage="decode"}
  LatencyHistogram* trellis_states = nullptr;     ///< kqr_trellis_states

  // Sharded term cache (lazy offline preparation).
  Counter* term_cache_hits = nullptr;     ///< kqr_term_cache_hits_total
  Counter* term_cache_misses = nullptr;   ///< kqr_term_cache_misses_total
  Counter* lazy_terms_prepared = nullptr; ///< kqr_lazy_terms_prepared_total

  /// \brief Registers every serving metric in `registry` and returns the
  /// resolved handles. Null registry → all-null handles (disabled).
  static ServingMetrics ResolveIn(MetricsRegistry* registry) {
    ServingMetrics m;
    if (registry == nullptr) return m;
    m.requests = registry->GetCounter("kqr_requests_total");
    m.unresolvable =
        registry->GetCounter("kqr_unresolvable_requests_total");
    m.scratch_hits = registry->GetCounter("kqr_scratch_hits_total");
    m.scratch_misses = registry->GetCounter("kqr_scratch_misses_total");
    m.astar_expanded =
        registry->GetCounter("kqr_astar_nodes_expanded_total");
    m.astar_generated =
        registry->GetCounter("kqr_astar_nodes_generated_total");
    m.astar_pruned = registry->GetCounter("kqr_astar_nodes_pruned_total");
    m.viterbi_scored =
        registry->GetCounter("kqr_viterbi_extensions_scored_total");
    m.viterbi_pruned =
        registry->GetCounter("kqr_viterbi_extensions_pruned_total");
    m.request_seconds = registry->GetHistogram("kqr_request_seconds");
    m.candidate_seconds = registry->GetHistogram(
        "kqr_online_stage_seconds{stage=\"candidate\"}");
    m.model_seconds = registry->GetHistogram(
        "kqr_online_stage_seconds{stage=\"model\"}");
    m.decode_seconds = registry->GetHistogram(
        "kqr_online_stage_seconds{stage=\"decode\"}");
    m.trellis_states =
        registry->GetHistogram("kqr_trellis_states", DefaultCountBounds());
    m.term_cache_hits = registry->GetCounter("kqr_term_cache_hits_total");
    m.term_cache_misses =
        registry->GetCounter("kqr_term_cache_misses_total");
    m.lazy_terms_prepared =
        registry->GetCounter("kqr_lazy_terms_prepared_total");
    return m;
  }
};

/// \brief Per-request metrics staging block: the request path bumps plain
/// (single-threaded, non-atomic) fields and buffers histogram samples,
/// then FlushInto folds the whole request into the registry-backed
/// handles with one sharded-atomic RMW per touched counter — instead of
/// one per event. The block lives in RequestContext, so batch front-ends
/// (kqr::server) can carry it across a whole batch and flush once.
///
/// Request-path code in src/core must record through this block; direct
/// Counter/LatencyHistogram calls there are rejected by tools/lint.py
/// (rule metrics-discipline).
struct RequestMetricsBlock {
  uint64_t requests = 0;
  uint64_t unresolvable = 0;
  uint64_t scratch_hits = 0;
  uint64_t scratch_misses = 0;
  uint64_t astar_expanded = 0;
  uint64_t astar_generated = 0;
  uint64_t astar_pruned = 0;
  uint64_t viterbi_scored = 0;
  uint64_t viterbi_pruned = 0;
  uint64_t term_cache_hits = 0;
  uint64_t term_cache_misses = 0;
  uint64_t lazy_terms_prepared = 0;

  struct Observation {
    LatencyHistogram* histogram;
    double value;
  };
  /// Buffered histogram samples (capacity persists across flushes, so a
  /// warm context stops allocating here after the first few requests).
  std::vector<Observation> observations;

  /// Stages one histogram sample; null histogram → no-op (metrics off).
  void Observe(LatencyHistogram* histogram, double value) {
    if (histogram != nullptr) observations.push_back({histogram, value});
  }

  /// \brief Folds the staged values into the resolved handles and resets
  /// the block. With metrics disabled (all-null handles) it only resets.
  void FlushInto(const ServingMetrics& m) {
    if (m.requests != nullptr) {
      if (requests != 0) m.requests->Increment(requests);
      if (unresolvable != 0) m.unresolvable->Increment(unresolvable);
      if (scratch_hits != 0) m.scratch_hits->Increment(scratch_hits);
      if (scratch_misses != 0) m.scratch_misses->Increment(scratch_misses);
      if (astar_expanded != 0) m.astar_expanded->Increment(astar_expanded);
      if (astar_generated != 0) {
        m.astar_generated->Increment(astar_generated);
      }
      if (astar_pruned != 0) m.astar_pruned->Increment(astar_pruned);
      if (viterbi_scored != 0) m.viterbi_scored->Increment(viterbi_scored);
      if (viterbi_pruned != 0) m.viterbi_pruned->Increment(viterbi_pruned);
      if (term_cache_hits != 0) {
        m.term_cache_hits->Increment(term_cache_hits);
      }
      if (term_cache_misses != 0) {
        m.term_cache_misses->Increment(term_cache_misses);
      }
      if (lazy_terms_prepared != 0) {
        m.lazy_terms_prepared->Increment(lazy_terms_prepared);
      }
      for (const Observation& o : observations) {
        o.histogram->Observe(o.value);
      }
    }
    requests = 0;
    unresolvable = 0;
    scratch_hits = 0;
    scratch_misses = 0;
    astar_expanded = 0;
    astar_generated = 0;
    astar_pruned = 0;
    viterbi_scored = 0;
    viterbi_pruned = 0;
    term_cache_hits = 0;
    term_cache_misses = 0;
    lazy_terms_prepared = 0;
    observations.clear();
  }
};

}  // namespace kqr
