#include "obs/trace.h"

#include <cstdio>

namespace kqr {

size_t RequestTrace::BeginSpan(const char* name) {
  if (!enabled_) return npos;
  TraceSpan span;
  span.name = name;
  span.start_seconds = epoch_.ElapsedSeconds();
  span.depth = depth_;
  ++depth_;
  spans_.push_back(span);
  return spans_.size() - 1;
}

void RequestTrace::EndSpan(size_t index, uint64_t items) {
  if (index == npos || index >= spans_.size()) return;
  TraceSpan& span = spans_[index];
  span.duration_seconds = epoch_.ElapsedSeconds() - span.start_seconds;
  span.items = items;
  if (depth_ > 0) --depth_;
}

void RequestTrace::AddSpan(const char* name, double duration_seconds,
                           uint64_t items) {
  if (!enabled_) return;
  TraceSpan span;
  span.name = name;
  const double now = epoch_.ElapsedSeconds();
  span.start_seconds = now > duration_seconds ? now - duration_seconds : 0.0;
  span.duration_seconds = duration_seconds;
  span.items = items;
  span.depth = depth_;
  spans_.push_back(span);
}

double RequestTrace::SpanSeconds(const std::string& name) const {
  for (const TraceSpan& span : spans_) {
    if (name == span.name) return span.duration_seconds;
  }
  return 0.0;
}

std::string RequestTrace::ToString() const {
  std::string out;
  char line[160];
  for (const TraceSpan& span : spans_) {
    const int indent = 2 + 2 * span.depth;
    if (span.items > 0) {
      std::snprintf(line, sizeof(line), "%*s%-24s %9.3fms  (%llu items)\n",
                    indent, "", span.name, span.duration_seconds * 1e3,
                    static_cast<unsigned long long>(span.items));
    } else {
      std::snprintf(line, sizeof(line), "%*s%-24s %9.3fms\n", indent, "",
                    span.name, span.duration_seconds * 1e3);
    }
    out += line;
  }
  return out;
}

}  // namespace kqr
