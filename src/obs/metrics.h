// Always-on serving metrics: sharded atomic counters, gauges, and
// fixed-bucket latency histograms behind a MetricsRegistry. The hot path
// (Increment/Set/Observe) is lock-free — registration and scraping take a
// registry mutex, recording touches only relaxed atomics — so the online
// pipeline can record per-request without perturbing the concurrency
// profile PR 2 established. All registry-owned metric objects live as
// long as the registry; components resolve pointers once at construction
// and record through them thereafter.
//
// Metric names follow the Prometheus convention and may carry a literal
// label block: `kqr_online_stage_seconds{stage="candidate"}`. The
// formatters in obs/export.h understand that shape; the registry treats
// the full string as an opaque key. See DESIGN.md "Observability" for the
// naming scheme.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"

namespace kqr {

/// Stable per-thread shard index in [0, 2^64): threads enumerate
/// themselves on first use, so counter shards spread load without any
/// coordination on the recording path.
size_t ThisThreadShardIndex();

/// \brief Monotonic counter, sharded across cache lines so concurrent
/// writers from different threads do not bounce one hot word.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t n = 1) {
    cells_[ThisThreadShardIndex() % kShards].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Sum over shards. Concurrent with writers: the total is exact once
  /// writers quiesce, monotone-approximate while they run.
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& c : cells_) {
      total += c.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  static constexpr size_t kShards = 16;
  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };
  Cell cells_[kShards];
};

/// \brief Last-write-wins double value (build-stage timings, config
/// facts). Set/Value are lock-free.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Value-semantic histogram state: what a scrape returns and what
/// the property tests exercise. Merge is associative and commutative with
/// the default-constructed-with-same-bounds snapshot as identity.
struct HistogramSnapshot {
  /// Upper bucket bounds, ascending; an implicit +inf bucket follows.
  std::vector<double> bounds;
  /// counts.size() == bounds.size() + 1; counts[i] = observations with
  /// value <= bounds[i] (last: > bounds.back()).
  std::vector<uint64_t> counts;
  uint64_t count = 0;
  double sum = 0.0;

  /// \brief Adds `other` in (bounds must match; checked).
  void MergeFrom(const HistogramSnapshot& other);

  /// \brief Nearest-rank quantile estimate, q in [0, 1] (clamped).
  /// Returns the upper bound of the bucket holding the rank-th
  /// observation (the last finite bound for the overflow bucket), 0 when
  /// empty. Monotone in q by construction.
  double Quantile(double q) const;

  double Mean() const { return count == 0 ? 0.0 : sum / count; }
};

/// \brief Subtracts `before` from `after` bucket-wise (interval scrape:
/// the histogram of everything observed between two snapshots).
HistogramSnapshot HistogramDelta(const HistogramSnapshot& after,
                                 const HistogramSnapshot& before);

/// Default latency buckets: log-spaced 1µs … 10s, four per decade.
std::vector<double> DefaultLatencyBounds();

/// Default size buckets for count-valued histograms (trellis states,
/// candidate list sizes): powers of two 1 … 2^20.
std::vector<double> DefaultCountBounds();

/// \brief Fixed-bucket histogram; Observe is lock-free (one relaxed
/// fetch_add per bucket/count/sum). Bounds are fixed at construction so
/// snapshots from any thread merge without rebinning.
class LatencyHistogram {
 public:
  explicit LatencyHistogram(std::vector<double> bounds =
                                DefaultLatencyBounds());
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void Observe(double value);

  HistogramSnapshot Snapshot() const;

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;
  // bounds_.size() + 1 buckets; unique_ptr keeps atomics at stable
  // addresses (the registry never moves a metric after registration).
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// \brief One scrape of every registered metric, in deterministic
/// (name-sorted) order. Plain data; feed to obs/export.h formatters.
struct MetricsSnapshot {
  struct CounterSample {
    std::string name;
    uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    double value = 0.0;
  };
  struct HistogramSample {
    std::string name;
    HistogramSnapshot histogram;
  };

  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// Counter value by exact name; 0 when absent.
  uint64_t CounterValue(const std::string& name) const;
  /// Histogram by exact name; nullptr when absent.
  const HistogramSnapshot* Histogram(const std::string& name) const;
};

/// \brief Owns every metric of one engine instance. Get-or-create is
/// mutex-protected and idempotent (same name → same object); the
/// returned pointers are stable for the registry's lifetime and are the
/// hot-path handles. No global registry exists — a ServingModel owns its
/// registry, so two models never share counters.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` applies only on first registration of `name`.
  LatencyHistogram* GetHistogram(
      const std::string& name,
      std::vector<double> bounds = DefaultLatencyBounds());

  MetricsSnapshot Snapshot() const;

 private:
  mutable Mutex mu_;
  // The maps are guarded; the metric objects they own are not — their
  // recording surfaces are lock-free by design, and the pointers handed
  // out by Get* stay valid without the registry mutex.
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_
      GUARDED_BY(mu_);
};

}  // namespace kqr
