// Lightweight request/build tracing: a RequestTrace is a flat vector of
// timed spans with nesting depth, owned by exactly one thread (it rides
// in RequestContext for online requests, and in the ServingModel for the
// offline build) — no synchronization, no allocation once the span
// vector's capacity is warm. Disabled traces cost two branches per stage.
//
// Span names are static strings (stage identifiers, not formatted text)
// so starting a span never allocates.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/timer.h"

namespace kqr {

/// \brief One completed pipeline stage.
struct TraceSpan {
  const char* name = "";
  /// Offset from the trace epoch (Clear/enable time).
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  /// Stage-dependent payload: candidate states built, trellis cells,
  /// frontier pops — 0 when the stage has no natural count.
  uint64_t items = 0;
  /// Nesting level (0 = top-level stage).
  int depth = 0;
};

/// \brief Per-request (or per-build) span recorder. Not thread-safe: one
/// trace belongs to one thread at a time, like the RequestContext that
/// carries it.
class RequestTrace {
 public:
  bool enabled() const { return enabled_; }

  /// \brief Enables recording and resets the epoch; previously recorded
  /// spans are kept (callers Clear() explicitly between requests).
  void Enable() {
    enabled_ = true;
    epoch_.Reset();
  }
  void Disable() { enabled_ = false; }

  /// \brief Drops all spans and resets the epoch; keeps enablement.
  void Clear() {
    spans_.clear();
    depth_ = 0;
    epoch_.Reset();
  }

  /// \brief Opens a span; returns its index for EndSpan. No-op (returns
  /// npos) when disabled.
  size_t BeginSpan(const char* name);

  /// \brief Closes the span opened as `index`, stamping its duration and
  /// payload count. Tolerates npos (the matching BeginSpan was a no-op).
  void EndSpan(size_t index, uint64_t items = 0);

  /// \brief Records an already-measured span, stamped as ending now. For
  /// stages that ran on worker threads: the trace is single-owner, so the
  /// workers time themselves and the owner records the results after
  /// joining. No-op when disabled.
  void AddSpan(const char* name, double duration_seconds, uint64_t items = 0);

  const std::vector<TraceSpan>& spans() const { return spans_; }

  /// Duration of the first span with `name`, or 0 when absent.
  double SpanSeconds(const std::string& name) const;

  /// \brief Indented per-span rendering, one line each:
  /// "  candidates  1.23ms  (42 items)".
  std::string ToString() const;

  static constexpr size_t npos = static_cast<size_t>(-1);

 private:
  bool enabled_ = false;
  int depth_ = 0;
  Timer epoch_;
  std::vector<TraceSpan> spans_;
};

/// \brief RAII span: opens on construction, closes on destruction (or at
/// an explicit End). Null/disabled traces make every operation a no-op,
/// so instrumented code needs no branches of its own.
class TraceScope {
 public:
  TraceScope(RequestTrace* trace, const char* name)
      : trace_(trace != nullptr && trace->enabled() ? trace : nullptr),
        index_(trace_ != nullptr ? trace_->BeginSpan(name)
                                 : RequestTrace::npos) {}

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  ~TraceScope() { End(); }

  /// \brief Attaches the stage's item count (reported at close).
  void SetItems(uint64_t items) { items_ = items; }

  /// \brief Closes the span now (idempotent).
  void End() {
    if (trace_ != nullptr) {
      trace_->EndSpan(index_, items_);
      trace_ = nullptr;
    }
  }

 private:
  RequestTrace* trace_;
  size_t index_;
  uint64_t items_ = 0;
};

}  // namespace kqr
