#include "obs/export.h"

#include <cmath>
#include <cstdio>

namespace kqr {
namespace {

std::string FormatNumber(double v) {
  if (std::isnan(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string FormatCount(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Splits `name{key="value"}` into base and inner label text (no
/// braces); labels empty when the name is plain.
void SplitName(const std::string& name, std::string* base,
               std::string* labels) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    *base = name;
    labels->clear();
    return;
  }
  *base = name.substr(0, brace);
  *labels = name.substr(brace + 1, name.size() - brace - 2);
}

/// `base` + merged label block with an extra label appended.
std::string WithExtraLabel(const std::string& base,
                           const std::string& labels,
                           const std::string& extra) {
  std::string out = base + "{";
  if (!labels.empty()) out += labels + ",";
  out += extra + "}";
  return out;
}

std::string PromLine(const std::string& base, const std::string& labels,
                     const std::string& value) {
  std::string out = base;
  if (!labels.empty()) out += "{" + labels + "}";
  out += " " + value + "\n";
  return out;
}

}  // namespace

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string MetricsToJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    const auto& c = snapshot.counters[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + JsonEscape(c.name) + "\": " + FormatCount(c.value);
  }
  out += snapshot.counters.empty() ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const auto& g = snapshot.gauges[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + JsonEscape(g.name) + "\": " + FormatNumber(g.value);
  }
  out += snapshot.gauges.empty() ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    const HistogramSnapshot& hist = h.histogram;
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + JsonEscape(h.name) + "\": {\n";
    out += "      \"count\": " + FormatCount(hist.count) + ",\n";
    out += "      \"sum\": " + FormatNumber(hist.sum) + ",\n";
    out += "      \"mean\": " + FormatNumber(hist.Mean()) + ",\n";
    out += "      \"p50\": " + FormatNumber(hist.Quantile(0.50)) + ",\n";
    out += "      \"p95\": " + FormatNumber(hist.Quantile(0.95)) + ",\n";
    out += "      \"p99\": " + FormatNumber(hist.Quantile(0.99)) + ",\n";
    out += "      \"buckets\": [";
    for (size_t b = 0; b < hist.counts.size(); ++b) {
      if (b > 0) out += ", ";
      const std::string le = b < hist.bounds.size()
                                 ? FormatNumber(hist.bounds[b])
                                 : std::string("\"+inf\"");
      out += "{\"le\": " + le +
             ", \"count\": " + FormatCount(hist.counts[b]) + "}";
    }
    out += "]\n    }";
  }
  out += snapshot.histograms.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string MetricsToPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string base;
  std::string labels;
  std::string previous_base;

  for (const auto& c : snapshot.counters) {
    SplitName(c.name, &base, &labels);
    if (base != previous_base) {
      out += "# TYPE " + base + " counter\n";
      previous_base = base;
    }
    out += PromLine(base, labels, FormatCount(c.value));
  }
  previous_base.clear();
  for (const auto& g : snapshot.gauges) {
    SplitName(g.name, &base, &labels);
    if (base != previous_base) {
      out += "# TYPE " + base + " gauge\n";
      previous_base = base;
    }
    out += PromLine(base, labels, FormatNumber(g.value));
  }
  previous_base.clear();
  for (const auto& h : snapshot.histograms) {
    SplitName(h.name, &base, &labels);
    if (base != previous_base) {
      out += "# TYPE " + base + " histogram\n";
      previous_base = base;
    }
    const HistogramSnapshot& hist = h.histogram;
    uint64_t cumulative = 0;
    for (size_t b = 0; b < hist.counts.size(); ++b) {
      cumulative += hist.counts[b];
      const std::string le =
          b < hist.bounds.size()
              ? "le=\"" + FormatNumber(hist.bounds[b]) + "\""
              : std::string("le=\"+Inf\"");
      out += WithExtraLabel(base + "_bucket", labels, le) + " " +
             FormatCount(cumulative) + "\n";
    }
    out += PromLine(base + "_sum", labels, FormatNumber(hist.sum));
    out += PromLine(base + "_count", labels, FormatCount(hist.count));
  }
  return out;
}

}  // namespace kqr
