#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace kqr {

size_t ThisThreadShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local const size_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

std::vector<double> DefaultLatencyBounds() {
  // 1µs … 10s, four buckets per decade (×~1.78 steps).
  std::vector<double> bounds;
  double decade = 1e-6;
  for (int d = 0; d < 7; ++d) {
    for (double m : {1.0, 1.778, 3.162, 5.623}) {
      bounds.push_back(decade * m);
    }
    decade *= 10.0;
  }
  bounds.push_back(10.0);
  return bounds;
}

std::vector<double> DefaultCountBounds() {
  std::vector<double> bounds;
  for (double b = 1.0; b <= double(1 << 20); b *= 2.0) bounds.push_back(b);
  return bounds;
}

void HistogramSnapshot::MergeFrom(const HistogramSnapshot& other) {
  KQR_CHECK(bounds == other.bounds)
      << "merging histograms with different bucket bounds";
  KQR_CHECK(counts.size() == other.counts.size());
  for (size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  count += other.count;
  sum += other.sum;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(std::isnan(q) ? 1.0 : q, 0.0, 1.0);
  // Nearest rank: the ceil(q·count)-th observation, 1-based; q = 0 maps
  // to the first.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= rank) {
      // Overflow bucket has no finite upper bound; report the largest
      // finite bound as the floor of the estimate.
      return i < bounds.size() ? bounds[i]
                               : (bounds.empty() ? 0.0 : bounds.back());
    }
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

HistogramSnapshot HistogramDelta(const HistogramSnapshot& after,
                                 const HistogramSnapshot& before) {
  KQR_CHECK(after.bounds == before.bounds)
      << "delta of histograms with different bucket bounds";
  HistogramSnapshot delta = after;
  for (size_t i = 0; i < delta.counts.size(); ++i) {
    KQR_CHECK(delta.counts[i] >= before.counts[i])
        << "histogram delta would be negative (snapshots swapped?)";
    delta.counts[i] -= before.counts[i];
  }
  delta.count -= before.count;
  delta.sum -= before.sum;
  return delta;
}

namespace {

/// fetch_add for atomic<double> without requiring C++20 library support
/// for floating-point fetch_add on every toolchain.
void AtomicAdd(std::atomic<double>* target, double delta) {
  double observed = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(observed, observed + delta,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

LatencyHistogram::LatencyHistogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  KQR_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be ascending";
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void LatencyHistogram::Observe(double value) {
  const size_t bucket =
      std::upper_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snap.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  for (const CounterSample& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::Histogram(
    const std::string& name) const {
  for (const HistogramSample& h : histograms) {
    if (h.name == name) return &h.histogram;
  }
  return nullptr;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name,
                                                std::vector<double> bounds) {
  MutexLock lock(&mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<LatencyHistogram>(std::move(bounds));
  }
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(&mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->Value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->Value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.push_back({name, histogram->Snapshot()});
  }
  return snap;
}

}  // namespace kqr
