#include "storage/table.h"

#include <limits>

namespace kqr {

Result<RowIndex> Table::Insert(std::vector<Value> row) {
  KQR_RETURN_NOT_OK(schema_.ValidateRow(row));
  if (rows_.size() >=
      static_cast<size_t>(std::numeric_limits<RowIndex>::max())) {
    return Status::OutOfRange("table '" + name() + "' is full");
  }
  int64_t pk = row[schema_.primary_key_index()].AsInt64();
  auto [it, inserted] =
      pk_index_.emplace(pk, static_cast<RowIndex>(rows_.size()));
  if (!inserted) {
    return Status::AlreadyExists("duplicate primary key " +
                                 std::to_string(pk) + " in table '" +
                                 name() + "'");
  }
  rows_.emplace_back(std::move(row));
  return static_cast<RowIndex>(rows_.size() - 1);
}

std::optional<RowIndex> Table::FindByPk(int64_t pk) const {
  auto it = pk_index_.find(pk);
  if (it == pk_index_.end()) return std::nullopt;
  return it->second;
}

}  // namespace kqr
