// Database: the catalog plus whole-database integrity checks. This is the
// structured-data source the paper's offline stage consumes.

#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/catalog.h"

namespace kqr {

/// \brief A named collection of tables with referential-integrity checking.
class Database {
 public:
  explicit Database(std::string name) : name_(std::move(name)) {}
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  const std::string& name() const { return name_; }
  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  Result<Table*> CreateTable(Schema schema) {
    return catalog_.CreateTable(std::move(schema));
  }
  Table* FindTable(const std::string& name) {
    return catalog_.FindTable(name);
  }
  const Table* FindTable(const std::string& name) const {
    return catalog_.FindTable(name);
  }

  /// Total row count across tables.
  size_t TotalRows() const;

  /// \brief Full referential-integrity check: every non-null FK cell
  /// resolves to an existing parent primary key.
  Status ValidateIntegrity() const;

 private:
  std::string name_;
  Catalog catalog_;
};

}  // namespace kqr

