#include "storage/catalog.h"

namespace kqr {

Result<Table*> Catalog::CreateTable(Schema schema) {
  // Copy the name before `schema` is consumed by the Table constructor.
  std::string name = schema.table_name();
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  auto table = std::make_unique<Table>(std::move(schema));
  Table* ptr = table.get();
  tables_.emplace(name, std::move(table));
  order_.push_back(std::move(name));
  return ptr;
}

Table* Catalog::FindTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Catalog::FindTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<Table*> Catalog::tables() {
  std::vector<Table*> out;
  out.reserve(order_.size());
  for (const std::string& n : order_) out.push_back(tables_.at(n).get());
  return out;
}

std::vector<const Table*> Catalog::tables() const {
  std::vector<const Table*> out;
  out.reserve(order_.size());
  for (const std::string& n : order_) out.push_back(tables_.at(n).get());
  return out;
}

Status Catalog::ValidateForeignKeyTargets() const {
  for (const std::string& n : order_) {
    const Table* t = tables_.at(n).get();
    for (const ForeignKey& fk : t->schema().foreign_keys()) {
      if (tables_.count(fk.parent_table) == 0) {
        return Status::InvalidArgument(
            "table '" + n + "' declares FK to missing table '" +
            fk.parent_table + "'");
      }
    }
  }
  return Status::OK();
}

}  // namespace kqr
