#include "storage/database.h"

namespace kqr {

size_t Database::TotalRows() const {
  size_t n = 0;
  for (const Table* t : catalog_.tables()) n += t->num_rows();
  return n;
}

Status Database::ValidateIntegrity() const {
  KQR_RETURN_NOT_OK(catalog_.ValidateForeignKeyTargets());
  for (const Table* t : catalog_.tables()) {
    const Schema& schema = t->schema();
    for (const ForeignKey& fk : schema.foreign_keys()) {
      size_t col = *schema.FindColumn(fk.column);
      const Table* parent = catalog_.FindTable(fk.parent_table);
      for (size_t r = 0; r < t->num_rows(); ++r) {
        const Value& v = t->row(static_cast<RowIndex>(r)).at(col);
        if (v.is_null()) continue;
        if (!parent->FindByPk(v.AsInt64()).has_value()) {
          return Status::Corruption(
              "table '" + t->name() + "' row " + std::to_string(r) +
              " FK '" + fk.column + "'=" + std::to_string(v.AsInt64()) +
              " has no parent in '" + fk.parent_table + "'");
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace kqr
