// Catalog: name → table registry with FK target resolution.

#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/table.h"

namespace kqr {

/// \brief Owns tables by name and checks cross-table declarations.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;

  /// \brief Registers a new empty table for `schema`. Fails if a table of
  /// the same name exists. Returns a stable non-owning pointer.
  Result<Table*> CreateTable(Schema schema);

  Table* FindTable(const std::string& name);
  const Table* FindTable(const std::string& name) const;

  /// Tables in creation order.
  std::vector<Table*> tables();
  std::vector<const Table*> tables() const;

  size_t num_tables() const { return order_.size(); }

  /// \brief Checks every FK declaration references an existing table.
  Status ValidateForeignKeyTargets() const;

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::vector<std::string> order_;
};

}  // namespace kqr

