#include "storage/csv.h"

#include <charconv>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace kqr {

Result<std::vector<std::string>> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
      } else {
        cur.push_back(c);
        ++i;
      }
    } else {
      if (c == '"') {
        if (!cur.empty()) {
          return Status::Corruption("quote inside unquoted CSV field: " +
                                    line);
        }
        in_quotes = true;
        ++i;
      } else if (c == ',') {
        fields.push_back(std::move(cur));
        cur.clear();
        ++i;
      } else if (c == '\r' && i + 1 == line.size()) {
        ++i;  // trailing CR from CRLF input
      } else {
        cur.push_back(c);
        ++i;
      }
    }
  }
  if (in_quotes) {
    return Status::Corruption("unterminated quote in CSV line: " + line);
  }
  fields.push_back(std::move(cur));
  return fields;
}

std::string FormatCsvLine(const std::vector<std::string>& fields) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back(',');
    const std::string& f = fields[i];
    bool needs_quote = f.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quote) {
      out += f;
      continue;
    }
    out.push_back('"');
    for (char c : f) {
      if (c == '"') out.push_back('"');
      out.push_back(c);
    }
    out.push_back('"');
  }
  return out;
}

namespace {
Result<Value> ParseCell(const std::string& text, ValueType type) {
  if (text.empty()) return Value::Null();
  switch (type) {
    case ValueType::kInt64: {
      int64_t v = 0;
      auto [ptr, ec] =
          std::from_chars(text.data(), text.data() + text.size(), v);
      if (ec != std::errc() || ptr != text.data() + text.size()) {
        return Status::Corruption("cannot parse int64 from '" + text + "'");
      }
      return Value(v);
    }
    case ValueType::kDouble: {
      try {
        size_t pos = 0;
        double v = std::stod(text, &pos);
        if (pos != text.size()) {
          return Status::Corruption("cannot parse double from '" + text +
                                    "'");
        }
        return Value(v);
      } catch (...) {
        return Status::Corruption("cannot parse double from '" + text + "'");
      }
    }
    case ValueType::kString:
      return Value(text);
    case ValueType::kNull:
      return Value::Null();
  }
  return Status::Internal("unreachable cell type");
}
}  // namespace

Status LoadCsvInto(std::istream& in, Table* table) {
  const Schema& schema = table->schema();
  std::string line;
  if (!std::getline(in, line)) {
    return Status::Corruption("CSV stream is empty (missing header)");
  }
  KQR_ASSIGN_OR_RETURN(std::vector<std::string> header, ParseCsvLine(line));
  if (header.size() != schema.num_columns()) {
    return Status::Corruption("CSV header arity " +
                              std::to_string(header.size()) +
                              " != schema arity " +
                              std::to_string(schema.num_columns()));
  }
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] != schema.column(i).name) {
      return Status::Corruption("CSV header column " + std::to_string(i) +
                                " is '" + header[i] + "', expected '" +
                                schema.column(i).name + "'");
    }
  }
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line == "\r") continue;
    KQR_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                         ParseCsvLine(line));
    if (fields.size() != schema.num_columns()) {
      return Status::Corruption("CSV line " + std::to_string(line_no) +
                                " arity mismatch");
    }
    std::vector<Value> row;
    row.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      KQR_ASSIGN_OR_RETURN(Value v,
                           ParseCell(fields[i], schema.column(i).type));
      row.push_back(std::move(v));
    }
    auto result = table->Insert(std::move(row));
    if (!result.ok()) return result.status();
  }
  return Status::OK();
}

Status LoadCsvFileInto(const std::string& path, Table* table) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  return LoadCsvInto(in, table);
}

Status DumpCsv(const Table& table, std::ostream& out) {
  const Schema& schema = table.schema();
  std::vector<std::string> header;
  header.reserve(schema.num_columns());
  for (const Column& c : schema.columns()) header.push_back(c.name);
  out << FormatCsvLine(header) << "\n";
  for (size_t r = 0; r < table.num_rows(); ++r) {
    const Tuple& t = table.row(static_cast<RowIndex>(r));
    std::vector<std::string> fields;
    fields.reserve(t.size());
    for (size_t i = 0; i < t.size(); ++i) {
      fields.push_back(t.at(i).ToString());
    }
    out << FormatCsvLine(fields) << "\n";
  }
  if (!out) return Status::IOError("CSV write failed");
  return Status::OK();
}

Status DumpCsvFile(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  return DumpCsv(table, out);
}

}  // namespace kqr
