// Schema: column metadata for one table, including the text-analysis role
// of each column (Sec. IV-A of the paper distinguishes segmented fields like
// paper titles from atomic fields like author names).

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/value.h"

namespace kqr {

/// \brief How a column participates in term-node extraction (Def. 5).
enum class TextRole : uint8_t {
  /// Not a text field; no term nodes are extracted.
  kNone = 0,
  /// Long text; tokenized/segmented into multiple term nodes (paper titles).
  kSegmented,
  /// Whole value is one semantic unit and becomes a single term node
  /// (author name, venue name). No segmentation (Sec. IV-A).
  kAtomic,
};

/// \brief One column of a table.
struct Column {
  std::string name;
  ValueType type = ValueType::kNull;
  TextRole text_role = TextRole::kNone;

  Column() = default;
  Column(std::string n, ValueType t, TextRole role = TextRole::kNone)
      : name(std::move(n)), type(t), text_role(role) {}
};

/// \brief A foreign-key declaration: this table's `column` references the
/// primary key of `parent_table`.
struct ForeignKey {
  std::string column;
  std::string parent_table;
};

/// \brief Ordered column list plus key declarations.
class Schema {
 public:
  Schema() = default;

  /// \param table_name the owning table's name (used in error messages and
  ///     field labels).
  /// \param columns column definitions; names must be unique and non-empty.
  /// \param primary_key name of the int64 primary-key column.
  /// \param foreign_keys FK declarations; columns must exist and be int64.
  static Result<Schema> Make(std::string table_name,
                             std::vector<Column> columns,
                             std::string primary_key,
                             std::vector<ForeignKey> foreign_keys = {});

  const std::string& table_name() const { return table_name_; }
  const std::vector<Column>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }

  /// Index of `name`, or nullopt.
  std::optional<size_t> FindColumn(const std::string& name) const;

  size_t primary_key_index() const { return pk_index_; }
  const std::string& primary_key() const { return columns_[pk_index_].name; }

  const std::vector<ForeignKey>& foreign_keys() const {
    return foreign_keys_;
  }

  /// Column indexes with a text role != kNone, in declaration order.
  std::vector<size_t> TextColumns() const;

  /// \brief Checks a row's arity and cell types against this schema.
  /// Nulls are allowed in any non-PK column.
  Status ValidateRow(const std::vector<Value>& row) const;

 private:
  std::string table_name_;
  std::vector<Column> columns_;
  size_t pk_index_ = 0;
  std::vector<ForeignKey> foreign_keys_;
};

}  // namespace kqr

