#include "storage/schema.h"

#include <unordered_set>

namespace kqr {

Result<Schema> Schema::Make(std::string table_name,
                            std::vector<Column> columns,
                            std::string primary_key,
                            std::vector<ForeignKey> foreign_keys) {
  if (table_name.empty()) {
    return Status::InvalidArgument("table name must be non-empty");
  }
  if (columns.empty()) {
    return Status::InvalidArgument("table '" + table_name +
                                   "' needs at least one column");
  }
  std::unordered_set<std::string> seen;
  for (const Column& c : columns) {
    if (c.name.empty()) {
      return Status::InvalidArgument("table '" + table_name +
                                     "' has an unnamed column");
    }
    if (!seen.insert(c.name).second) {
      return Status::InvalidArgument("table '" + table_name +
                                     "' has duplicate column '" + c.name +
                                     "'");
    }
    if (c.text_role != TextRole::kNone && c.type != ValueType::kString) {
      return Status::InvalidArgument(
          "column '" + c.name + "' has a text role but type " +
          ValueTypeName(c.type));
    }
  }

  Schema s;
  s.table_name_ = std::move(table_name);
  s.columns_ = std::move(columns);

  auto pk = [&]() -> std::optional<size_t> {
    for (size_t i = 0; i < s.columns_.size(); ++i) {
      if (s.columns_[i].name == primary_key) return i;
    }
    return std::nullopt;
  }();
  if (!pk.has_value()) {
    return Status::InvalidArgument("primary key '" + primary_key +
                                   "' not found in table '" +
                                   s.table_name_ + "'");
  }
  if (s.columns_[*pk].type != ValueType::kInt64) {
    return Status::InvalidArgument("primary key '" + primary_key +
                                   "' must be int64");
  }
  s.pk_index_ = *pk;

  for (const ForeignKey& fk : foreign_keys) {
    auto idx = [&]() -> std::optional<size_t> {
      for (size_t i = 0; i < s.columns_.size(); ++i) {
        if (s.columns_[i].name == fk.column) return i;
      }
      return std::nullopt;
    }();
    if (!idx.has_value()) {
      return Status::InvalidArgument("foreign key column '" + fk.column +
                                     "' not found in table '" +
                                     s.table_name_ + "'");
    }
    if (s.columns_[*idx].type != ValueType::kInt64) {
      return Status::InvalidArgument("foreign key column '" + fk.column +
                                     "' must be int64");
    }
  }
  s.foreign_keys_ = std::move(foreign_keys);
  return s;
}

std::optional<size_t> Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return std::nullopt;
}

std::vector<size_t> Schema::TextColumns() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].text_role != TextRole::kNone) out.push_back(i);
  }
  return out;
}

Status Schema::ValidateRow(const std::vector<Value>& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(columns_.size()) + " for table '" + table_name_ +
        "'");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) {
      if (i == pk_index_) {
        return Status::InvalidArgument("primary key '" +
                                       columns_[i].name + "' is null");
      }
      continue;
    }
    if (row[i].type() != columns_[i].type) {
      return Status::InvalidArgument(
          "column '" + columns_[i].name + "' expects " +
          ValueTypeName(columns_[i].type) + " but got " +
          ValueTypeName(row[i].type()));
    }
  }
  return Status::OK();
}

}  // namespace kqr
