// Tuple: one row of a table, addressed by (table, row index) or by its
// primary key. Kept as a plain value vector; the owning Table provides
// schema context.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "storage/value.h"

namespace kqr {

/// \brief A row of values. Interpretation (column names/types) lives in the
/// owning Table's Schema.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  const Value& at(size_t i) const { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  /// \brief Debug rendering: pipe-joined cells.
  std::string ToString() const;

  bool operator==(const Tuple& other) const {
    return values_ == other.values_;
  }

 private:
  std::vector<Value> values_;
};

}  // namespace kqr

