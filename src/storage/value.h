// Value: the typed cell of the relational substrate.

#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace kqr {

/// \brief Storage types supported by the engine. The paper's workload
/// (bibliographic and product catalogs) needs keys, numbers and text.
enum class ValueType : uint8_t { kNull = 0, kInt64, kDouble, kString };

const char* ValueTypeName(ValueType t);

/// \brief A single typed cell. Null, 64-bit integer, double, or string.
class Value {
 public:
  Value() : rep_(std::monostate{}) {}
  explicit Value(int64_t v) : rep_(v) {}
  explicit Value(double v) : rep_(v) {}
  explicit Value(std::string v) : rep_(std::move(v)) {}
  explicit Value(const char* v) : rep_(std::string(v)) {}

  static Value Null() { return Value(); }

  ValueType type() const {
    switch (rep_.index()) {
      case 0:
        return ValueType::kNull;
      case 1:
        return ValueType::kInt64;
      case 2:
        return ValueType::kDouble;
      default:
        return ValueType::kString;
    }
  }

  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed accessors; calling the wrong one is a programming error
  /// (checked in debug builds).
  int64_t AsInt64() const;
  double AsDouble() const;
  const std::string& AsString() const;

  /// \brief Renders for CSV/debug output. Null renders as empty string.
  std::string ToString() const;

  /// \brief Total order: null < int/double (numeric order) < string
  /// (lexicographic). Ints and doubles compare numerically with each other.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// \brief Hash consistent with operator== (ints and equal-valued doubles
  /// hash alike).
  size_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> rep_;
};

}  // namespace kqr

