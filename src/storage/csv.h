// CSV import/export for tables: lets examples persist and reload the
// synthetic corpora, and lets users bring their own structured data.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/table.h"

namespace kqr {

/// \brief Parses one RFC-4180-style CSV record (quoted fields, embedded
/// commas/quotes). Exposed for testing.
Result<std::vector<std::string>> ParseCsvLine(const std::string& line);

/// \brief Serializes fields, quoting when needed.
std::string FormatCsvLine(const std::vector<std::string>& fields);

/// \brief Appends rows from a CSV stream into `table`. The header must
/// match the schema's column names exactly (order included). Cells are
/// parsed per the schema's column types; empty cells become NULL.
Status LoadCsvInto(std::istream& in, Table* table);

/// \brief Convenience file wrapper over LoadCsvInto.
Status LoadCsvFileInto(const std::string& path, Table* table);

/// \brief Writes the table (header + all rows) as CSV.
Status DumpCsv(const Table& table, std::ostream& out);

Status DumpCsvFile(const Table& table, const std::string& path);

}  // namespace kqr

