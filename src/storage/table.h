// Table: an in-memory relation with a primary-key index.

#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace kqr {

/// \brief Row position within a table.
using RowIndex = uint32_t;

/// \brief An append-only in-memory relation. Rows are validated against the
/// schema on insert and indexed by their int64 primary key.
class Table {
 public:
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  const std::string& name() const { return schema_.table_name(); }
  size_t num_rows() const { return rows_.size(); }

  /// \brief Validates and appends a row. Fails on arity/type mismatch or
  /// duplicate primary key.
  Result<RowIndex> Insert(std::vector<Value> row);

  const Tuple& row(RowIndex i) const { return rows_[i]; }

  /// \brief Primary-key value of row `i`.
  int64_t PrimaryKeyOf(RowIndex i) const {
    return rows_[i].at(schema_.primary_key_index()).AsInt64();
  }

  /// \brief Row index holding primary key `pk`, or nullopt.
  std::optional<RowIndex> FindByPk(int64_t pk) const;

  const std::vector<Tuple>& rows() const { return rows_; }

 private:
  Schema schema_;
  std::vector<Tuple> rows_;
  std::unordered_map<int64_t, RowIndex> pk_index_;
};

}  // namespace kqr

