#include "storage/value.h"

#include <cmath>
#include <functional>
#include <sstream>

#include "common/logging.h"

namespace kqr {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

int64_t Value::AsInt64() const {
  KQR_DCHECK(type() == ValueType::kInt64);
  return std::get<int64_t>(rep_);
}

double Value::AsDouble() const {
  KQR_DCHECK(type() == ValueType::kDouble);
  return std::get<double>(rep_);
}

const std::string& Value::AsString() const {
  KQR_DCHECK(type() == ValueType::kString);
  return std::get<std::string>(rep_);
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "";
    case ValueType::kInt64:
      return std::to_string(std::get<int64_t>(rep_));
    case ValueType::kDouble: {
      std::ostringstream os;
      os << std::get<double>(rep_);
      return os.str();
    }
    case ValueType::kString:
      return std::get<std::string>(rep_);
  }
  return "";
}

namespace {
// Rank used for cross-type ordering: null < numeric < string.
int TypeRank(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return 0;
    case ValueType::kInt64:
    case ValueType::kDouble:
      return 1;
    case ValueType::kString:
      return 2;
  }
  return 3;
}
}  // namespace

int Value::Compare(const Value& other) const {
  int ra = TypeRank(type());
  int rb = TypeRank(other.type());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kInt64:
    case ValueType::kDouble: {
      double a = type() == ValueType::kInt64
                     ? static_cast<double>(std::get<int64_t>(rep_))
                     : std::get<double>(rep_);
      double b = other.type() == ValueType::kInt64
                     ? static_cast<double>(std::get<int64_t>(other.rep_))
                     : std::get<double>(other.rep_);
      if (a < b) return -1;
      if (a > b) return 1;
      return 0;
    }
    case ValueType::kString: {
      const std::string& a = std::get<std::string>(rep_);
      const std::string& b = std::get<std::string>(other.rep_);
      return a.compare(b) < 0 ? -1 : (a == b ? 0 : 1);
    }
  }
  return 0;
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kInt64:
      return std::hash<double>()(
          static_cast<double>(std::get<int64_t>(rep_)));
    case ValueType::kDouble:
      return std::hash<double>()(std::get<double>(rep_));
    case ValueType::kString:
      return std::hash<std::string>()(std::get<std::string>(rep_));
  }
  return 0;
}

}  // namespace kqr
