#include "core/engine.h"

#include <algorithm>

#include "common/logging.h"

namespace kqr {

ReformulationEngine::ReformulationEngine(Database db, EngineOptions options)
    : db_(std::move(db)),
      options_(options),
      analyzer_(options.analyzer) {}

Result<std::unique_ptr<ReformulationEngine>> ReformulationEngine::Build(
    Database db, EngineOptions options) {
  KQR_RETURN_NOT_OK(db.ValidateIntegrity());
  std::unique_ptr<ReformulationEngine> engine(
      new ReformulationEngine(std::move(db), options));
  KQR_RETURN_NOT_OK(engine->Init());
  return engine;
}

Status ReformulationEngine::Init() {
  KQR_ASSIGN_OR_RETURN(InvertedIndex index,
                       InvertedIndex::Build(db_, analyzer_, &vocab_));
  index_ = std::make_unique<InvertedIndex>(std::move(index));

  KQR_ASSIGN_OR_RETURN(
      TatGraph graph,
      BuildTatGraph(db_, vocab_, *index_, options_.graph));
  graph_ = std::make_unique<TatGraph>(std::move(graph));
  stats_ = std::make_unique<GraphStats>(*graph_);

  if (options_.precompute_offline) {
    std::vector<TermId> all;
    all.reserve(vocab_.size());
    for (TermId t = 0; t < vocab_.size(); ++t) all.push_back(t);
    if (options_.use_cooccurrence_similarity) {
      PrecomputeFor(all);
    } else {
      // Batch builders shard the per-term work across threads
      // (options_.similarity.num_threads / options_.closeness.num_threads)
      // and produce the same lists EnsureTerm would, in any thread count.
      similarity_ =
          SimilarityIndex::Build(*graph_, *stats_, options_.similarity);
      std::vector<TermId> eligible;
      eligible.reserve(all.size());
      for (TermId t : all) {
        // EnsureTerm gates closeness on the same degree floor.
        if (graph_->Degree(graph_->NodeOfTerm(t)) >=
            options_.similarity.min_degree) {
          eligible.push_back(t);
        }
      }
      closeness_ =
          ClosenessIndex::BuildFor(*graph_, eligible, options_.closeness);
      prepared_.insert(all.begin(), all.end());
    }
  }
  return Status::OK();
}

void ReformulationEngine::EnsureTerm(TermId term) {
  if (prepared_.count(term) > 0) return;
  prepared_.insert(term);

  if (graph_->Degree(graph_->NodeOfTerm(term)) <
      options_.similarity.min_degree) {
    return;  // isolated or cut from the graph: no lists to build
  }

  if (!similarity_.Contains(term)) {
    if (options_.use_cooccurrence_similarity) {
      CooccurrenceSimilarity cooc(*graph_, options_.cooccurrence);
      similarity_.Insert(term, cooc.TopSimilar(term));
    } else {
      SimilarityExtractor extractor(*graph_, *stats_,
                                    options_.similarity.similarity);
      std::vector<ScoredNode> similar = extractor.TopSimilar(
          graph_->NodeOfTerm(term), options_.similarity.list_size);
      std::vector<SimilarTerm> list;
      list.reserve(similar.size());
      for (const ScoredNode& s : similar) {
        list.push_back(SimilarTerm{graph_->TermOfNode(s.node), s.score});
      }
      similarity_.Insert(term, std::move(list));
    }
  }

  if (!closeness_.Contains(term)) {
    ClosenessExtractor extractor(*graph_, options_.closeness.closeness);
    closeness_.Insert(
        term, extractor.TopClose(term, options_.closeness.list_size));
  }
}

void ReformulationEngine::PrecomputeFor(const std::vector<TermId>& terms) {
  for (TermId t : terms) EnsureTerm(t);
}

void ReformulationEngine::ImportTermRelations(
    TermId term, std::vector<SimilarTerm> similar,
    std::vector<CloseTerm> close) {
  similarity_.Insert(term, std::move(similar));
  closeness_.Insert(term, std::move(close));
  prepared_.insert(term);
}

std::vector<TermId> ReformulationEngine::PreparedTerms() const {
  std::vector<TermId> terms(prepared_.begin(), prepared_.end());
  std::sort(terms.begin(), terms.end());
  return terms;
}

Result<std::vector<TermId>> ReformulationEngine::ResolveQuery(
    const std::string& text) const {
  QueryParser parser(analyzer_, vocab_);
  KeywordQuery query = parser.Parse(text);
  if (query.keywords.empty()) {
    return Status::InvalidArgument("query is empty: '" + text + "'");
  }
  std::vector<TermId> terms;
  terms.reserve(query.keywords.size());
  for (const QueryKeyword& keyword : query.keywords) {
    if (!keyword.resolved()) {
      return Status::NotFound("keyword '" + keyword.surface +
                              "' matches no term in the corpus");
    }
    // Most frequent field wins.
    TermId best = keyword.terms.front();
    for (TermId t : keyword.terms) {
      if (index_->DocFreq(t) > index_->DocFreq(best)) best = t;
    }
    terms.push_back(best);
  }
  return terms;
}

Result<std::vector<ReformulatedQuery>> ReformulationEngine::Reformulate(
    const std::string& text, size_t k, ReformulationTimings* timings) {
  KQR_ASSIGN_OR_RETURN(std::vector<TermId> terms, ResolveQuery(text));
  return ReformulateTerms(terms, k, timings);
}

std::vector<ReformulatedQuery> ReformulationEngine::ReformulateTerms(
    const std::vector<TermId>& query_terms, size_t k,
    ReformulationTimings* timings) {
  // Offline products must exist for the query terms and for every
  // candidate substitute (the HMM reads closeness between candidates).
  for (TermId t : query_terms) EnsureTerm(t);
  CandidateBuilder builder(similarity_,
                           options_.reformulator.candidates);
  for (TermId t : query_terms) {
    for (const CandidateState& s : builder.BuildFor(t)) {
      if (!s.is_void) EnsureTerm(s.term);
    }
  }

  Reformulator reformulator(similarity_, closeness_, *stats_, *graph_,
                            options_.reformulator);
  return reformulator.Reformulate(query_terms, k, timings);
}

KeywordQuery ReformulationEngine::QueryFromTerms(
    const std::vector<TermId>& terms) const {
  KeywordQuery query;
  query.keywords.reserve(terms.size());
  for (TermId t : terms) {
    if (t == kInvalidTermId) continue;  // void position: keyword deleted
    query.keywords.push_back(QueryKeyword{vocab_.text(t), {t}});
  }
  return query;
}

Result<SearchOutcome> ReformulationEngine::Search(
    const std::string& text) const {
  QueryParser parser(analyzer_, vocab_);
  KeywordQuery query = parser.Parse(text);
  if (!query.FullyResolved()) {
    return Status::NotFound("query has unresolvable keywords: '" + text +
                            "'");
  }
  KeywordSearch search(*graph_, *index_, options_.search);
  return search.Search(query);
}

size_t ReformulationEngine::CountResults(
    const std::vector<TermId>& query_terms) const {
  KeywordSearch search(*graph_, *index_, options_.search);
  return search.CountResults(QueryFromTerms(query_terms));
}

size_t ReformulationEngine::CountTrees(
    const std::vector<TermId>& query_terms) const {
  KeywordSearch search(*graph_, *index_, options_.search);
  return search.CountTrees(QueryFromTerms(query_terms));
}

}  // namespace kqr
