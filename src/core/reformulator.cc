#include "core/reformulator.h"

#include "common/timer.h"

namespace kqr {

const char* TopKAlgorithmName(TopKAlgorithm algorithm) {
  switch (algorithm) {
    case TopKAlgorithm::kExtendedViterbi:
      return "extended-viterbi";
    case TopKAlgorithm::kViterbiAStar:
      return "viterbi-astar";
    case TopKAlgorithm::kRankBaseline:
      return "rank-baseline";
  }
  return "?";
}

std::string ReformulatedQuery::ToString(const Vocabulary& vocab) const {
  std::string out;
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) out += " ";
    out += terms[i] == kInvalidTermId ? "∅" : vocab.text(terms[i]);
  }
  return out;
}

std::vector<ReformulatedQuery> Reformulator::Reformulate(
    const std::vector<TermId>& query_terms, size_t k,
    ReformulationTimings* timings) const {
  std::vector<ReformulatedQuery> out;
  if (query_terms.empty() || k == 0) return out;

  Timer timer;
  CandidateBuilder builder(similarity_, options_.candidates);
  std::vector<std::vector<CandidateState>> candidates =
      builder.Build(query_terms);
  for (const auto& list : candidates) {
    if (list.empty()) return out;  // unresolvable position
  }
  if (timings != nullptr) {
    timings->candidate_seconds = timer.ElapsedSeconds();
  }
  timer.Reset();

  // The identity query may occupy one result slot before we drop it, so
  // over-fetch by one.
  const size_t fetch = options_.drop_identity ? k + 1 : k;

  std::vector<DecodedPath> paths;
  HmmModel model;
  switch (options_.algorithm) {
    case TopKAlgorithm::kRankBaseline: {
      if (timings != nullptr) timings->model_seconds = 0.0;
      timer.Reset();
      paths = RankBaselineTopK(candidates, fetch);
      break;
    }
    case TopKAlgorithm::kExtendedViterbi:
    case TopKAlgorithm::kViterbiAStar: {
      HmmBuilder hmm_builder(closeness_, stats_, graph_, options_.hmm);
      model = hmm_builder.Build(candidates);
      if (timings != nullptr) {
        timings->model_seconds = timer.ElapsedSeconds();
      }
      timer.Reset();
      if (options_.algorithm == TopKAlgorithm::kExtendedViterbi) {
        paths = ViterbiTopK(model, fetch);
      } else {
        paths = AStarTopK(model, fetch,
                          timings != nullptr ? &timings->astar : nullptr);
      }
      break;
    }
  }
  if (timings != nullptr) timings->decode_seconds = timer.ElapsedSeconds();

  out.reserve(paths.size());
  for (const DecodedPath& path : paths) {
    ReformulatedQuery query;
    query.score = path.score;
    query.terms.reserve(path.states.size());
    bool identity = true;
    for (size_t c = 0; c < path.states.size(); ++c) {
      const CandidateState& s = candidates[c][path.states[c]];
      query.terms.push_back(s.is_void ? kInvalidTermId : s.term);
      if (!s.is_original) identity = false;
    }
    query.is_identity = identity;
    if (options_.drop_identity && identity) continue;
    out.push_back(std::move(query));
    if (out.size() >= k) break;
  }
  return out;
}

}  // namespace kqr
