#include "core/reformulator.h"

#include "common/timer.h"

namespace kqr {

const char* TopKAlgorithmName(TopKAlgorithm algorithm) {
  switch (algorithm) {
    case TopKAlgorithm::kExtendedViterbi:
      return "extended-viterbi";
    case TopKAlgorithm::kViterbiAStar:
      return "viterbi-astar";
    case TopKAlgorithm::kRankBaseline:
      return "rank-baseline";
  }
  return "?";
}

Status ReformulatorOptions::Validate() const {
  if (candidates.per_term == 0 && !candidates.include_original &&
      !candidates.include_void) {
    return Status::InvalidArgument(
        "candidate options admit no states (per_term == 0, no original, "
        "no void)");
  }
  if (candidates.void_similarity < 0.0) {
    return Status::InvalidArgument("void_similarity must be >= 0");
  }
  if (hmm.void_transition < 0.0) {
    return Status::InvalidArgument("void_transition must be >= 0");
  }
  if (hmm.transition_weight < 0.0 || hmm.emission_weight < 0.0) {
    return Status::InvalidArgument(
        "HMM component weights must be >= 0 (log-linear exponents)");
  }
  return Status::OK();
}

std::string ReformulatedQuery::ToString(const Vocabulary& vocab) const {
  std::string out;
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) out += " ";
    out += terms[i] == kInvalidTermId ? "∅" : vocab.text(terms[i]);
  }
  return out;
}

Result<std::vector<ReformulatedQuery>> Reformulator::Reformulate(
    const std::vector<TermId>& query_terms, size_t k,
    ReformulationTimings* timings, RequestContext* ctx) const {
  std::vector<ReformulatedQuery> out;
  if (query_terms.empty()) {
    return Status::InvalidArgument("query has no terms");
  }
  if (k == 0) return Status::InvalidArgument("k must be positive");

  // Without a caller-provided context, all scratch lives on this frame —
  // same results, just cold buffers every call.
  RequestContext local;
  RequestContext& c = ctx != nullptr ? *ctx : local;
  ReformulationTimings local_timings;
  ReformulationTimings& t = timings != nullptr ? *timings : local_timings;

  // Scratch-reuse accounting (one coarse capacity probe per stage): warm
  // buffers mean this request pays no stage-level allocations.
  const bool warm_candidates = c.candidates.capacity() >= query_terms.size() &&
                               !c.candidates.empty();
  const bool warm_model = !c.model.emission.empty();
  bool warm_decode = false;

  RequestTrace* trace =
      ctx != nullptr && ctx->trace.enabled() ? &ctx->trace : nullptr;
  TraceScope request_span(trace, "reformulate");

  // All metric events for this request stage into the context's plain-
  // counter block; the registry's sharded atomics are touched once per
  // request at flush (or once per batch when the front-end defers).
  RequestMetricsBlock& mb = c.metrics_block;
  const auto flush_metrics = [&]() {
    if (ctx != nullptr && ctx->defer_metrics_flush) return;
    mb.FlushInto(metrics_ != nullptr ? *metrics_ : ServingMetrics{});
  };

  Timer timer;
  TraceScope candidate_span(trace, "candidates");
  CandidateBuilder builder(similarity_, options_.candidates);
  builder.BuildInto(query_terms, &c.candidates);
  const auto& candidates = c.candidates;
  size_t trellis_states = 0;
  for (const auto& list : candidates) trellis_states += list.size();
  candidate_span.SetItems(trellis_states);
  candidate_span.End();
  for (size_t pos = 0; pos < candidates.size(); ++pos) {
    if (candidates[pos].empty()) {
      if (metrics_ != nullptr && metrics_->unresolvable != nullptr) {
        ++mb.unresolvable;
        flush_metrics();
      }
      return Status::NotFound("no candidate states at query position " +
                              std::to_string(pos));
    }
  }
  t.candidate_seconds = timer.ElapsedSeconds();
  timer.Reset();

  // Deadline gate between candidate generation and HMM assembly (the
  // server's admission deadline propagates here through the context).
  if (c.DeadlineExpired()) {
    return Status::DeadlineExceeded("deadline passed after candidate stage");
  }

  // The identity query may occupy one result slot before we drop it, so
  // over-fetch by one.
  const size_t fetch = options_.drop_identity ? k + 1 : k;

  std::vector<DecodedPath> paths;
  switch (options_.algorithm) {
    case TopKAlgorithm::kRankBaseline: {
      t.model_seconds = 0.0;
      timer.Reset();
      paths = RankBaselineTopK(candidates, fetch);
      warm_decode = warm_model;  // no decoder scratch; mirror the model bit
      break;
    }
    case TopKAlgorithm::kExtendedViterbi:
    case TopKAlgorithm::kViterbiAStar: {
      TraceScope model_span(trace, "hmm-model");
      HmmBuilder hmm_builder(closeness_, stats_, graph_, options_.hmm);
      hmm_builder.BuildInto(candidates, &c.model);
      model_span.End();
      t.model_seconds = timer.ElapsedSeconds();
      timer.Reset();
      // Deadline gate between HMM assembly and top-k decode.
      if (c.DeadlineExpired()) {
        return Status::DeadlineExceeded("deadline passed after model stage");
      }
      if (options_.algorithm == TopKAlgorithm::kExtendedViterbi) {
        TraceScope decode_span(trace, "viterbi-topk");
        warm_decode = !c.viterbi.cell_score.empty();
        paths = ViterbiTopK(c.model, fetch, &c.viterbi, &t.viterbi,
                            options_.prune_decode);
        decode_span.SetItems(paths.size());
      } else {
        TraceScope decode_span(trace, "astar-topk");
        warm_decode = !c.astar.viterbi.delta.empty();
        paths = AStarTopK(c.model, fetch, &t.astar, &c.astar,
                          options_.prune_decode);
        decode_span.SetItems(t.astar.nodes_expanded);
      }
      break;
    }
  }
  t.decode_seconds = timer.ElapsedSeconds();
  request_span.SetItems(trellis_states);
  request_span.End();

  if (metrics_ != nullptr && metrics_->requests != nullptr) {
    ++mb.requests;
    mb.Observe(metrics_->request_seconds, t.TotalSeconds());
    mb.Observe(metrics_->candidate_seconds, t.candidate_seconds);
    mb.Observe(metrics_->model_seconds, t.model_seconds);
    mb.Observe(metrics_->decode_seconds, t.decode_seconds);
    mb.Observe(metrics_->trellis_states,
               static_cast<double>(trellis_states));
    mb.scratch_hits += (warm_candidates ? 1 : 0) + (warm_model ? 1 : 0) +
                       (warm_decode ? 1 : 0);
    mb.scratch_misses += (warm_candidates ? 0 : 1) + (warm_model ? 0 : 1) +
                         (warm_decode ? 0 : 1);
    if (options_.algorithm == TopKAlgorithm::kViterbiAStar) {
      mb.astar_expanded += t.astar.nodes_expanded;
      mb.astar_generated += t.astar.nodes_generated;
      mb.astar_pruned += t.astar.nodes_pruned;
    } else if (options_.algorithm == TopKAlgorithm::kExtendedViterbi) {
      mb.viterbi_scored += t.viterbi.extensions_scored;
      mb.viterbi_pruned += t.viterbi.extensions_pruned;
    }
  }
  flush_metrics();

  if (ctx != nullptr) {
    RequestStats& stats = ctx->stats;
    ++stats.requests;
    stats.candidate_seconds += t.candidate_seconds;
    stats.model_seconds += t.model_seconds;
    stats.decode_seconds += t.decode_seconds;
    stats.scratch_hits += (warm_candidates ? 1 : 0) + (warm_model ? 1 : 0) +
                          (warm_decode ? 1 : 0);
    stats.scratch_misses += (warm_candidates ? 0 : 1) +
                            (warm_model ? 0 : 1) + (warm_decode ? 0 : 1);
  }

  out.reserve(paths.size());
  for (const DecodedPath& path : paths) {
    ReformulatedQuery query;
    query.score = path.score;
    query.terms.reserve(path.states.size());
    bool identity = true;
    for (size_t pos = 0; pos < path.states.size(); ++pos) {
      const CandidateState& s = candidates[pos][path.states[pos]];
      query.terms.push_back(s.is_void ? kInvalidTermId : s.term);
      if (!s.is_original) identity = false;
    }
    query.is_identity = identity;
    if (options_.drop_identity && identity) continue;
    out.push_back(std::move(query));
    if (out.size() >= k) break;
  }
  return out;
}

}  // namespace kqr
