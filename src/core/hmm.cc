#include "core/hmm.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace kqr {

double HmmModel::PathScore(const std::vector<int>& path) const {
  KQR_DCHECK(path.size() == num_positions());
  if (path.empty()) return 0.0;
  double score = pi[path[0]] * emission[0][path[0]];
  for (size_t c = 1; c < path.size(); ++c) {
    score *= trans[c - 1][path[c - 1]][path[c]] * emission[c][path[c]];
  }
  return score;
}

void HmmModel::ComputeBounds() {
  const size_t m = num_positions();
  emission_max.assign(m, 0.0);
  trans_max.assign(m >= 1 ? m - 1 : 0, 0.0);
  suffix_bound.assign(m, 1.0);
  for (size_t c = 0; c < m; ++c) {
    double best = 0.0;
    for (double e : emission[c]) {
      if (e > best) best = e;
    }
    emission_max[c] = best;
  }
  for (size_t c = 0; c + 1 < m; ++c) {
    double best = 0.0;
    for (const std::vector<double>& row : trans[c]) {
      for (double a : row) {
        if (a > best) best = a;
      }
    }
    trans_max[c] = best;
  }
  // Backward max-product: an upper bound on the mass of any suffix
  // strictly after c, since every concrete transition/emission pair is
  // dominated by the position-level maxima.
  if (m < 2) return;
  for (size_t c = m - 1; c-- > 0;) {
    suffix_bound[c] = trans_max[c] * emission_max[c + 1] * suffix_bound[c + 1];
  }
}

double HmmBuilder::TransitionAffinity(const CandidateState& from,
                                      const CandidateState& to) const {
  if (from.is_void || to.is_void) return options_.void_transition;
  double clos = closeness_.ClosenessOf(from.term, to.term);
  if (options_.log_compress) clos = std::log1p(clos);
  if (options_.transition_weight != 1.0) {
    clos = std::pow(clos, options_.transition_weight);
  }
  return clos;
}

void HmmBuilder::BuildInto(
    const std::vector<std::vector<CandidateState>>& candidates,
    HmmModel* model) const {
  // Copy-assign reuses the inner vectors' capacity when `model` served a
  // previous request.
  model->states = candidates;
  const size_t m = model->states.size();
  model->pi.clear();
  model->emission.resize(m);
  model->trans.resize(m >= 1 ? m - 1 : 0);
  if (m == 0) {
    model->ComputeBounds();
    return;
  }

  // π (Eq. 7): frequency of each first-position candidate, normalized.
  model->pi.reserve(model->states[0].size());
  for (const CandidateState& s : model->states[0]) {
    double freq = s.is_void
                      ? 1.0
                      : stats_.Freq(graph_.NodeOfTerm(s.term));
    model->pi.push_back(options_.log_compress ? std::log1p(freq) : freq);
  }
  NormalizeToDistribution(&model->pi);

  // Emissions (Eq. 9): similarity, smoothed (Eq. 5) then normalized per
  // position.
  for (size_t c = 0; c < m; ++c) {
    model->emission[c].clear();
    model->emission[c].reserve(model->states[c].size());
    for (const CandidateState& s : model->states[c]) {
      double b = s.similarity;
      if (options_.emission_weight != 1.0 && b > 0.0) {
        b = std::pow(b, options_.emission_weight);
      }
      model->emission[c].push_back(b);
    }
    SmoothToMean(&model->emission[c], options_.smoothing.lambda);
    NormalizeToDistribution(&model->emission[c]);
  }

  // Transitions (Eq. 8): closeness, row-smoothed (Eq. 6) then row-
  // normalized.
  for (size_t c = 0; c + 1 < m; ++c) {
    const auto& from_states = model->states[c];
    const auto& to_states = model->states[c + 1];
    model->trans[c].resize(from_states.size());
    for (size_t i = 0; i < from_states.size(); ++i) {
      model->trans[c][i].assign(to_states.size(), 0.0);
      for (size_t j = 0; j < to_states.size(); ++j) {
        model->trans[c][i][j] =
            TransitionAffinity(from_states[i], to_states[j]);
      }
      SmoothToMean(&model->trans[c][i], options_.smoothing.lambda);
      NormalizeToDistribution(&model->trans[c][i]);
    }
  }

  model->ComputeBounds();
}

HmmModel HmmBuilder::Build(
    const std::vector<std::vector<CandidateState>>& candidates) const {
  HmmModel model;
  BuildInto(candidates, &model);
  return model;
}

TermBoundsTable TermBoundsTable::FromOwned(
    std::vector<double> emission_caps, std::vector<double> transition_caps) {
  KQR_CHECK(emission_caps.size() == transition_caps.size())
      << "bound columns must cover the same terms";
  TermBoundsTable table;
  table.owned_emission_ = std::move(emission_caps);
  table.owned_transition_ = std::move(transition_caps);
  table.emission_caps_ = table.owned_emission_;
  table.transition_caps_ = table.owned_transition_;
  return table;
}

TermBoundsTable TermBoundsTable::FromMapped(
    std::span<const double> emission_caps,
    std::span<const double> transition_caps) {
  KQR_CHECK(emission_caps.size() == transition_caps.size())
      << "bound columns must cover the same terms";
  TermBoundsTable table;
  table.emission_caps_ = emission_caps;
  table.transition_caps_ = transition_caps;
  return table;
}

TermBoundsTable ComputeTermBounds(const SimilarityIndex& similarity,
                                  const ClosenessIndex& closeness,
                                  size_t num_terms) {
  std::vector<double> emission(num_terms, 0.0);
  std::vector<double> transition(num_terms, 0.0);
  for (TermId t = 0; t < num_terms; ++t) {
    for (const SimilarTerm& s : similarity.Lookup(t)) {
      emission[t] = std::max(emission[t], s.score);
    }
    for (const CloseTerm& c : closeness.Lookup(t)) {
      transition[t] = std::max(transition[t], c.closeness);
    }
  }
  return TermBoundsTable::FromOwned(std::move(emission),
                                    std::move(transition));
}

}  // namespace kqr
