// Offline-product persistence: the similarity and closeness indexes are
// the expensive output of the offline stage (one personalized walk and
// one path search per term). Snapshots let a deployment run the offline
// stage once and serve many online processes, the way the paper's system
// precomputed term relations into MySQL.
//
// Two formats persist offline products; they serve different jobs:
//
// v2 text snapshot (this header, line-oriented, version-tagged):
//   kqr-offline-v2
//   fingerprint <hex>          -- model/corpus fingerprint
//   sim <term> <n> [<term> <score>]{n}
//   clos <term> <n> [<term> <closeness> <distance>]{n}
//   end <records> <fnv-hex>    -- completeness + content trailer
// Human-readable and diff-friendly; loads by parsing every line and
// merging into a model the caller already built from the corpus. Carries
// only the per-term lists — the vocabulary, graph and inverted index are
// rebuilt from the database on every process start.
//
// v3 binary model file (core/model_file.h, "kqrmdl3\0" magic): a
// sectioned, checksummed container holding *every* frozen structure —
// vocabulary string table, inverted index, CSR adjacency, the per-term
// lists, decode bounds — block-compressed and mmap-able, so a process
// opens a ready-to-serve model via ServingModel::OpenMapped without
// re-tokenizing or rebuilding the graph. Prefer v3 for serving cold
// starts; keep v2 for inspecting or hand-patching offline products.
//
// TermIds are deterministic for a given (database, analyzer) pair, so the
// fingerprint guards against loading a snapshot into a different corpus.

#pragma once

#include <iosfwd>
#include <string>

#include "closeness/closeness_index.h"
#include "common/status.h"
#include "walk/similarity_index.h"

namespace kqr {

class ServingModel;

/// \brief Stable fingerprint of a model's corpus-derived state.
uint64_t ModelFingerprint(const ServingModel& model);

/// \brief Writes every term's offline products currently cached in the
/// model.
Status SaveOfflineSnapshot(const ServingModel& model, std::ostream& out);
Status SaveOfflineSnapshotFile(const ServingModel& model,
                               const std::string& path);

/// \brief Loads offline products into the model (merging with whatever is
/// already cached; already-prepared terms keep their lists). Fails on
/// version or fingerprint mismatch.
Status LoadOfflineSnapshot(const ServingModel* model, std::istream& in);
Status LoadOfflineSnapshotFile(const ServingModel* model,
                               const std::string& path);

}  // namespace kqr

