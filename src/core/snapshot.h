// Offline-product persistence: the similarity and closeness indexes are
// the expensive output of the offline stage (one personalized walk and
// one path search per term). Snapshots let a deployment run the offline
// stage once and serve many online processes, the way the paper's system
// precomputed term relations into MySQL.
//
// Format (line-oriented text, version-tagged):
//   kqr-offline-v1
//   fingerprint <hex>          -- model/corpus fingerprint
//   sim <term> <n> [<term> <score>]{n}
//   clos <term> <n> [<term> <closeness> <distance>]{n}
//
// TermIds are deterministic for a given (database, analyzer) pair, so the
// fingerprint guards against loading a snapshot into a different corpus.

#pragma once

#include <iosfwd>
#include <string>

#include "closeness/closeness_index.h"
#include "common/status.h"
#include "walk/similarity_index.h"

namespace kqr {

class ServingModel;

/// \brief Stable fingerprint of a model's corpus-derived state.
uint64_t ModelFingerprint(const ServingModel& model);

/// \brief Writes every term's offline products currently cached in the
/// model.
Status SaveOfflineSnapshot(const ServingModel& model, std::ostream& out);
Status SaveOfflineSnapshotFile(const ServingModel& model,
                               const std::string& path);

/// \brief Loads offline products into the model (merging with whatever is
/// already cached; already-prepared terms keep their lists). Fails on
/// version or fingerprint mismatch.
Status LoadOfflineSnapshot(const ServingModel* model, std::istream& in);
Status LoadOfflineSnapshotFile(const ServingModel* model,
                               const std::string& path);

}  // namespace kqr

