#include "core/rank_baseline.h"

#include <algorithm>
#include <queue>
#include <set>

namespace kqr {

std::vector<DecodedPath> RankBaselineTopK(
    const std::vector<std::vector<CandidateState>>& candidates, size_t k) {
  std::vector<DecodedPath> out;
  const size_t m = candidates.size();
  if (m == 0 || k == 0) return out;

  // Per-position candidate order, best similarity first.
  std::vector<std::vector<int>> order(m);
  for (size_t c = 0; c < m; ++c) {
    if (candidates[c].empty()) return out;
    order[c].resize(candidates[c].size());
    for (size_t i = 0; i < order[c].size(); ++i) {
      order[c][i] = static_cast<int>(i);
    }
    std::stable_sort(order[c].begin(), order[c].end(),
                     [&](int a, int b) {
                       return candidates[c][a].similarity >
                              candidates[c][b].similarity;
                     });
  }

  auto score_of = [&](const std::vector<int>& ranks) {
    double s = 1.0;
    for (size_t c = 0; c < m; ++c) {
      s *= candidates[c][order[c][ranks[c]]].similarity;
    }
    return s;
  };

  // Lazy best-first walk over the rank lattice (classic k-max-products):
  // start at all-zeros; popping a vertex pushes each +1-in-one-coordinate
  // successor.
  struct Entry {
    double score;
    std::vector<int> ranks;
    bool operator<(const Entry& other) const {
      return score < other.score;
    }
  };
  std::priority_queue<Entry> frontier;
  std::set<std::vector<int>> seen;

  std::vector<int> origin(m, 0);
  frontier.push(Entry{score_of(origin), origin});
  seen.insert(origin);

  while (!frontier.empty() && out.size() < k) {
    Entry top = frontier.top();
    frontier.pop();

    DecodedPath path;
    path.score = top.score;
    path.states.resize(m);
    for (size_t c = 0; c < m; ++c) {
      path.states[c] = order[c][top.ranks[c]];
    }
    out.push_back(std::move(path));

    for (size_t c = 0; c < m; ++c) {
      if (static_cast<size_t>(top.ranks[c]) + 1 >= order[c].size()) {
        continue;
      }
      std::vector<int> next = top.ranks;
      ++next[c];
      if (seen.insert(next).second) {
        frontier.push(Entry{score_of(next), std::move(next)});
      }
    }
  }
  return out;
}

}  // namespace kqr
