// Model format v3: the serving artifact persisted as one sectioned,
// checksummed, mmap-able container (common/io/container.h). SaveModelFile
// freezes a built model's corpus-derived state — vocabulary, inverted
// index, TAT adjacency, similarity/closeness lists, HMM decode bounds,
// preparation state — into block-compressed columns; OpenMapped (declared
// on ServingModel) rebuilds a serving model from the file without running
// any of the offline stage, serving the large score arrays zero-copy out
// of the mapping.
//
// Compatibility: v3 is a different artifact from the v2 text snapshot
// (core/snapshot.h). A v2 snapshot carries only the similar/close lists
// and still needs a full build to import into; a v3 file carries the
// whole frozen model and opens in milliseconds.

#pragma once

#include <string>

#include "common/result.h"
#include "common/status.h"
#include "core/serving_model.h"

namespace kqr {

/// \brief Serializes the model's frozen state into a v3 container blob.
/// Works for lazy models too: whatever is prepared at call time is saved,
/// and the preparation state round-trips (unprepared terms stay lazy in
/// the reopened model).
Result<std::string> SerializeModel(const ServingModel& model);

/// \brief SerializeModel + atomic file write (temp + rename).
Status SaveModelFile(const ServingModel& model, const std::string& path);

/// \brief Hash of the EngineOptions fields that shape the persisted lists
/// (similarity list size / degree floor, closeness list size, similarity
/// source). OpenMapped refuses a file whose stored hash disagrees with
/// the options it was given, because the frozen lists would not match
/// what a fresh build under those options produces.
uint64_t ModelConfigHash(const EngineOptions& options);

}  // namespace kqr
