// Faceted suggestion organization — the paper's future-work extension
// ("exploit the reformulated queries to support ad hoc faceted retrieval
// over structured data"). Reformulations are grouped by *which fields
// changed*: swapping a venue name explores the venue facet, swapping title
// terms explores the topic facet, and so on. A UI can render each group
// as one facet panel.
//
// Also provides per-substitution explanations (similarity, closeness,
// graph distance) so a suggestion can be justified to the user.

#pragma once

#include <string>
#include <vector>

#include "core/serving_model.h"
#include "core/reformulator.h"

namespace kqr {

/// \brief One facet group: reformulations whose substitutions touch the
/// same set of fields.
struct SuggestionFacet {
  /// Sorted field ids where substitutions happened; empty = deletions
  /// only.
  std::vector<FieldId> fields;
  /// Human-readable label, e.g. "venues.name" or
  /// "papers.title + authors.name".
  std::string label;
  /// Indices into the ranking passed to GroupByFacets, best first.
  std::vector<size_t> suggestions;
};

/// \brief Groups a ranking by changed-field signature. Groups are ordered
/// by their best (lowest-index) suggestion; identity reformulations are
/// skipped.
std::vector<SuggestionFacet> GroupByFacets(
    const std::vector<TermId>& original,
    const std::vector<ReformulatedQuery>& ranking,
    const Vocabulary& vocab);

/// \brief Explanation of one position of one reformulated query.
struct SubstitutionExplanation {
  size_t position = 0;
  TermId from = kInvalidTermId;
  TermId to = kInvalidTermId;  // kInvalidTermId = deleted
  bool kept = false;           // to == from
  /// Similarity of the substitute to the original term (offline index).
  double similarity = 0.0;
  /// Closeness between this substitute and the previous kept substitute.
  double closeness_to_previous = 0.0;
  /// Shortest TAT-graph distance from the original term (−1 unknown).
  int distance = -1;

  std::string ToString(const Vocabulary& vocab) const;
};

/// \brief Explains every position of `suggestion` against `original`
/// using the model's offline indexes (terms must be prepared, which they
/// are for any suggestion the model itself produced).
std::vector<SubstitutionExplanation> ExplainReformulation(
    const ServingModel& model, const std::vector<TermId>& original,
    const ReformulatedQuery& suggestion);

}  // namespace kqr

