#include "core/smoothing.h"

namespace kqr {

void SmoothToMean(std::vector<double>* v, double lambda) {
  if (v->empty()) return;
  double sum = 0;
  for (double x : *v) sum += x;
  if (sum <= 0) return;
  double mean = sum / static_cast<double>(v->size());
  for (double& x : *v) x = lambda * x + (1.0 - lambda) * mean;
}

void SmoothRowsToMean(std::vector<std::vector<double>>* rows,
                      double lambda) {
  for (std::vector<double>& row : *rows) SmoothToMean(&row, lambda);
}

void NormalizeToDistribution(std::vector<double>* v) {
  if (v->empty()) return;
  double sum = 0;
  for (double x : *v) sum += x;
  if (sum <= 0) {
    double u = 1.0 / static_cast<double>(v->size());
    for (double& x : *v) x = u;
    return;
  }
  for (double& x : *v) x /= sum;
}

}  // namespace kqr
