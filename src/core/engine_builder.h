// EngineBuilder: the offline build layer. Configures options, runs the
// full offline stage (Figure 2's left half — analyzer, inverted index,
// TAT graph, stats, and optionally the batch-built similarity/closeness
// indexes), optionally imports a persisted snapshot, and produces the
// immutable ServingModel the online layer shares across threads.

#pragma once

#include <memory>
#include <string>

#include "common/result.h"
#include "core/serving_model.h"
#include "storage/database.h"

namespace kqr {

/// \brief database → shared_ptr<const ServingModel>.
class EngineBuilder {
 public:
  explicit EngineBuilder(EngineOptions options = {})
      : options_(std::move(options)) {}

  const EngineOptions& options() const { return options_; }
  EngineOptions* mutable_options() { return &options_; }

  /// \brief Imports the offline snapshot at `path` into the model after
  /// the build (merging with whatever the build itself prepared). The
  /// build fails if the snapshot does not match the corpus.
  EngineBuilder& LoadSnapshotFrom(std::string path) {
    snapshot_path_ = std::move(path);
    return *this;
  }

  /// \brief Runs the offline stage and returns the serving artifact.
  /// With options().precompute_offline the returned model is fully
  /// prepared and frozen (every serving read is lock-free); otherwise
  /// per-term products are computed lazily on first use.
  Result<std::shared_ptr<const ServingModel>> Build(Database db) const;

  /// \brief Persists a built model as a v3 model file (core/model_file.h).
  /// Reopen with ServingModel::OpenMapped under the same options; the
  /// reopened model's reformulation output is bit-identical.
  static Status SaveModel(const ServingModel& model,
                          const std::string& path);

 private:
  EngineOptions options_;
  std::string snapshot_path_;
};

}  // namespace kqr

