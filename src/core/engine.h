// ReformulationEngine: the library's top-level facade. Owns the database
// and every derived structure (analyzer, inverted index, TAT graph, stats,
// similarity and closeness indexes), runs the offline stage (eagerly or
// lazily per term), and serves online reformulation and keyword search.
//
// This mirrors the paper's Figure 2 flowchart end to end.

#ifndef KQR_CORE_ENGINE_H_
#define KQR_CORE_ENGINE_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "closeness/closeness_index.h"
#include "common/result.h"
#include "core/reformulator.h"
#include "graph/graph_stats.h"
#include "graph/tat_builder.h"
#include "search/keyword_search.h"
#include "search/query.h"
#include "storage/database.h"
#include "text/analyzer.h"
#include "text/inverted_index.h"
#include "walk/cooccurrence.h"
#include "walk/similarity_index.h"

namespace kqr {

struct EngineOptions {
  AnalyzerOptions analyzer;
  TatBuilderOptions graph;
  SimilarityIndexOptions similarity;
  ClosenessIndexOptions closeness;
  ReformulatorOptions reformulator;
  SearchOptions search;
  /// Use the co-occurrence baseline instead of the contextual random walk
  /// as the similarity source (the paper's "Co-occurrence reformulation"
  /// arm).
  bool use_cooccurrence_similarity = false;
  CooccurrenceOptions cooccurrence;
  /// Run the full offline stage at Build() (one walk + one path search per
  /// vocabulary term). When false, per-term results are computed lazily on
  /// first use and cached — same results, pay-as-you-go.
  bool precompute_offline = false;
};

/// \brief End-to-end keyword query reformulation over one database.
///
/// Not movable (internal structures hold stable pointers); create via
/// Build(). Lazy offline computation makes the online entry points
/// non-const; the engine is not thread-safe.
class ReformulationEngine {
 public:
  static Result<std::unique_ptr<ReformulationEngine>> Build(
      Database db, EngineOptions options = {});

  ReformulationEngine(const ReformulationEngine&) = delete;
  ReformulationEngine& operator=(const ReformulationEngine&) = delete;

  /// \brief Makes sure the offline products (similar-term list + close-
  /// term list) exist for `term`.
  void EnsureTerm(TermId term);

  /// \brief Offline pass over an explicit term set (benches call this so
  /// online timing excludes offline work).
  void PrecomputeFor(const std::vector<TermId>& terms);

  /// \brief Installs externally computed offline products for `term`
  /// (snapshot loading, Sec. core/snapshot.h) and marks it prepared.
  void ImportTermRelations(TermId term, std::vector<SimilarTerm> similar,
                           std::vector<CloseTerm> close);

  /// \brief Terms whose offline products are currently cached, in
  /// ascending order.
  std::vector<TermId> PreparedTerms() const;

  /// \brief Parses free text and picks one term node per keyword (the
  /// most frequent field on ties). Fails if any keyword is unresolvable.
  Result<std::vector<TermId>> ResolveQuery(const std::string& text) const;

  /// \brief End-to-end online reformulation for free-text input.
  Result<std::vector<ReformulatedQuery>> Reformulate(
      const std::string& text, size_t k,
      ReformulationTimings* timings = nullptr);

  /// \brief Online reformulation for pre-resolved terms.
  std::vector<ReformulatedQuery> ReformulateTerms(
      const std::vector<TermId>& query_terms, size_t k,
      ReformulationTimings* timings = nullptr);

  /// \brief Keyword search (Def. 3) for free text.
  Result<SearchOutcome> Search(const std::string& text) const;

  /// \brief Connecting-root count for a term-level query (cohesion
  /// signal).
  size_t CountResults(const std::vector<TermId>& query_terms) const;

  /// \brief Distinct result-tree count per Def. 3 (Table III metric).
  size_t CountTrees(const std::vector<TermId>& query_terms) const;

  /// \brief KeywordQuery from resolved terms (each keyword = one term).
  KeywordQuery QueryFromTerms(const std::vector<TermId>& terms) const;

  // Component access (read-only views for benches/tests/examples).
  const Database& db() const { return db_; }
  const Analyzer& analyzer() const { return analyzer_; }
  const Vocabulary& vocab() const { return vocab_; }
  const InvertedIndex& index() const { return *index_; }
  const TatGraph& graph() const { return *graph_; }
  const GraphStats& stats() const { return *stats_; }
  const SimilarityIndex& similarity_index() const { return similarity_; }
  const ClosenessIndex& closeness_index() const { return closeness_; }
  const EngineOptions& options() const { return options_; }
  EngineOptions* mutable_options() { return &options_; }

 private:
  ReformulationEngine(Database db, EngineOptions options);

  Status Init();

  Database db_;
  EngineOptions options_;
  Analyzer analyzer_;
  Vocabulary vocab_;
  std::unique_ptr<InvertedIndex> index_;
  std::unique_ptr<TatGraph> graph_;
  std::unique_ptr<GraphStats> stats_;
  SimilarityIndex similarity_;
  ClosenessIndex closeness_;
  std::unordered_set<TermId> prepared_;
};

}  // namespace kqr

#endif  // KQR_CORE_ENGINE_H_
