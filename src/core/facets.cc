#include "core/facets.h"

#include <algorithm>
#include <map>

namespace kqr {

std::vector<SuggestionFacet> GroupByFacets(
    const std::vector<TermId>& original,
    const std::vector<ReformulatedQuery>& ranking,
    const Vocabulary& vocab) {
  std::map<std::vector<FieldId>, SuggestionFacet> groups;
  for (size_t i = 0; i < ranking.size(); ++i) {
    const ReformulatedQuery& q = ranking[i];
    if (q.is_identity || q.terms.size() != original.size()) continue;
    std::vector<FieldId> changed;
    for (size_t c = 0; c < q.terms.size(); ++c) {
      TermId t = q.terms[c];
      if (t == original[c]) continue;
      if (t == kInvalidTermId) continue;  // deletion: no field
      FieldId f = vocab.field_of(t);
      if (std::find(changed.begin(), changed.end(), f) == changed.end()) {
        changed.push_back(f);
      }
    }
    std::sort(changed.begin(), changed.end());
    auto [it, inserted] = groups.try_emplace(changed);
    SuggestionFacet& facet = it->second;
    if (inserted) {
      facet.fields = changed;
      if (changed.empty()) {
        facet.label = "deletions";
      } else {
        for (size_t f = 0; f < changed.size(); ++f) {
          if (f > 0) facet.label += " + ";
          facet.label += vocab.field(changed[f]).Label();
        }
      }
    }
    facet.suggestions.push_back(i);
  }

  std::vector<SuggestionFacet> out;
  out.reserve(groups.size());
  for (auto& [key, facet] : groups) out.push_back(std::move(facet));
  std::sort(out.begin(), out.end(),
            [](const SuggestionFacet& a, const SuggestionFacet& b) {
              return a.suggestions.front() < b.suggestions.front();
            });
  return out;
}

std::string SubstitutionExplanation::ToString(
    const Vocabulary& vocab) const {
  std::string out = "position " + std::to_string(position) + ": ";
  if (to == kInvalidTermId) {
    out += "drop '" + std::string(vocab.text(from)) + "'";
    return out;
  }
  if (kept) {
    out += "keep '" + std::string(vocab.text(from)) + "'";
    return out;
  }
  out += "'" + std::string(vocab.text(from)) + "' -> '" +
         std::string(vocab.text(to)) + "'";
  out += " (sim " + std::to_string(similarity);
  if (distance >= 0) {
    out += ", graph distance " + std::to_string(distance);
  }
  out += ")";
  return out;
}

std::vector<SubstitutionExplanation> ExplainReformulation(
    const ServingModel& model, const std::vector<TermId>& original,
    const ReformulatedQuery& suggestion) {
  std::vector<SubstitutionExplanation> out;
  const size_t m =
      std::min(original.size(), suggestion.terms.size());
  TermId previous_kept = kInvalidTermId;
  for (size_t c = 0; c < m; ++c) {
    SubstitutionExplanation e;
    e.position = c;
    e.from = original[c];
    e.to = suggestion.terms[c];
    e.kept = e.to == e.from;
    if (e.to != kInvalidTermId) {
      if (!e.kept) {
        e.similarity =
            model.similarity_index().SimilarityOf(e.from, e.to);
        e.distance = model.closeness_index().DistanceOf(e.from, e.to);
      }
      if (previous_kept != kInvalidTermId) {
        e.closeness_to_previous =
            model.closeness_index().ClosenessOf(previous_kept, e.to);
      }
      previous_kept = e.to;
    }
    out.push_back(e);
  }
  return out;
}

}  // namespace kqr
