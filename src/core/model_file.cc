// Model format v3 serializer/loader. See model_file.h for the format
// story and common/io/container.h for the byte layout. The loader is the
// deserializing counterpart of ServingModel::Init: every structural claim
// a section makes (framing, id ranges, monotonicity, cross-section
// consistency) is checked before anything is installed, so a malformed
// file fails with kCorruption and imports nothing.

#include "core/model_file.h"

#include <array>
#include <atomic>
#include <cstring>
#include <functional>
#include <utility>
#include <vector>

#include "audit/model_auditor.h"
#include "common/parallel_for.h"
#include "common/io/codec.h"
#include "common/io/container.h"
#include "common/io/io.h"
#include "common/logging.h"
#include "common/timer.h"
#include "core/snapshot.h"
#include "obs/trace.h"

namespace kqr {

namespace {

// Section names. Grouped by subsystem; every array-valued section's
// element count lives in the section table (codec contract).
constexpr char kSecMeta[] = "meta";
constexpr char kSecVocabFields[] = "vocab.fields";
constexpr char kSecVocabTermFields[] = "vocab.term_fields";
constexpr char kSecVocabTextOffsets[] = "vocab.text_offsets";
constexpr char kSecVocabArena[] = "vocab.arena";
constexpr char kSecIixOffsets[] = "iix.offsets";
constexpr char kSecIixTables[] = "iix.tables";
constexpr char kSecIixRows[] = "iix.rows";
constexpr char kSecIixFreqs[] = "iix.freqs";
constexpr char kSecTableSizes[] = "space.table_sizes";
constexpr char kSecCsrOffsets[] = "csr.offsets";
constexpr char kSecCsrTargets[] = "csr.targets";
constexpr char kSecCsrWeights[] = "csr.weights";
constexpr char kSecSimPresent[] = "sim.present";
constexpr char kSecSimOffsets[] = "sim.offsets";
constexpr char kSecSimTerms[] = "sim.terms";
constexpr char kSecSimScores[] = "sim.scores";
constexpr char kSecClosPresent[] = "clos.present";
constexpr char kSecClosOffsets[] = "clos.offsets";
constexpr char kSecClosTerms[] = "clos.terms";
constexpr char kSecClosDistances[] = "clos.distances";
constexpr char kSecClosScores[] = "clos.scores";
constexpr char kSecBoundsEmission[] = "bounds.emission";
constexpr char kSecBoundsTransition[] = "bounds.transition";
constexpr char kSecPrepared[] = "prepared";

// "meta" is a fixed array of little-endian u64 words.
enum MetaWord : size_t {
  kMetaFingerprint = 0,
  kMetaConfigHash,
  kMetaFlags,
  kMetaVocabTerms,
  kMetaNumFields,
  kMetaIndexedTuples,
  kMetaCorpusTuples,
  kMetaNumNodes,
  kMetaNumArcs,
  kMetaNumTables,
  kMetaWords,  // count sentinel
};
constexpr uint64_t kFlagFullyPrepared = 1;

std::string RawU64Payload(std::span<const uint64_t> values) {
  std::string out;
  out.reserve(values.size() * 8);
  for (uint64_t v : values) PutU64Le(&out, v);
  return out;
}

// Score arrays are stored as native little-endian IEEE754 so the loader
// can reference them in place from the mapping. Every supported target
// is little-endian; a big-endian port would byte-swap here and lose the
// zero-copy read path, nothing else.
template <typename T>
std::string RawScalarPayload(std::span<const T> values) {
  std::string out(values.size() * sizeof(T), '\0');
  if (!values.empty()) {
    std::memcpy(out.data(), values.data(), out.size());
  }
  return out;
}

std::string RawBytePayload(std::span<const uint8_t> values) {
  return std::string(reinterpret_cast<const char*>(values.data()),
                     values.size());
}

std::string BitPackedPayload(std::span<const uint32_t> values) {
  std::string out;
  EncodeBitPacked(values, &out);
  return out;
}

std::string DeltaPayload(std::span<const uint64_t> sorted) {
  std::string out;
  EncodeDeltaVarints(sorted, &out);
  return out;
}

Status Corrupt(const std::string& what) { return Status::Corruption(what); }

}  // namespace

uint64_t ModelConfigHash(const EngineOptions& options) {
  uint64_t h = kFnv64Basis;
  h = Fnv1aU64(h, options.similarity.list_size);
  h = Fnv1aU64(h, options.similarity.min_degree);
  h = Fnv1aU64(h, options.closeness.list_size);
  h = Fnv1aU64(h, options.use_cooccurrence_similarity ? 1 : 0);
  return h;
}

Result<std::string> SerializeModel(const ServingModel& model) {
  const Vocabulary& vocab = model.vocab();
  const size_t n = vocab.size();
  const InvertedIndex& iix = model.index();
  const CsrGraph& csr = model.graph().adjacency();
  const NodeSpace& space = model.graph().space();
  ContainerWriter writer;

  {
    std::array<uint64_t, kMetaWords> meta{};
    meta[kMetaFingerprint] = ModelFingerprint(model);
    meta[kMetaConfigHash] = ModelConfigHash(model.options());
    meta[kMetaFlags] = model.fully_prepared() ? kFlagFullyPrepared : 0;
    meta[kMetaVocabTerms] = n;
    meta[kMetaNumFields] = vocab.num_fields();
    meta[kMetaIndexedTuples] = iix.num_indexed_tuples();
    meta[kMetaCorpusTuples] = iix.num_corpus_tuples();
    meta[kMetaNumNodes] = csr.num_nodes();
    meta[kMetaNumArcs] = csr.num_arcs();
    meta[kMetaNumTables] = space.num_tables();
    writer.AddSection(kSecMeta, SectionCodec::kRaw, kMetaWords,
                      RawU64Payload(meta));
  }

  // -- Vocabulary ------------------------------------------------------
  {
    std::string fields;
    for (size_t f = 0; f < vocab.num_fields(); ++f) {
      const FieldInfo& info = vocab.field(static_cast<FieldId>(f));
      PutVarint64(&fields, info.table.size());
      fields.append(info.table);
      PutVarint64(&fields, info.column.size());
      fields.append(info.column);
      fields.push_back(static_cast<char>(info.role));
    }
    writer.AddSection(kSecVocabFields, SectionCodec::kRaw,
                      vocab.num_fields(), std::move(fields));

    std::vector<uint32_t> term_fields(n);
    std::vector<uint64_t> text_offsets(n + 1);
    for (TermId t = 0; t < n; ++t) {
      term_fields[t] = vocab.field_of(t);
      text_offsets[t] = vocab.text_offset(t);
    }
    text_offsets[n] = vocab.arena().size();
    writer.AddSection(kSecVocabTermFields, SectionCodec::kBitPacked, n,
                      BitPackedPayload(term_fields));
    writer.AddSection(kSecVocabTextOffsets, SectionCodec::kVarintDelta,
                      n + 1, DeltaPayload(text_offsets));
    writer.AddSection(kSecVocabArena, SectionCodec::kRaw,
                      vocab.arena().size(), std::string(vocab.arena()));
  }

  // -- Inverted index --------------------------------------------------
  {
    const std::span<const Posting> postings = iix.postings();
    std::vector<uint32_t> tables(postings.size());
    std::vector<uint32_t> rows(postings.size());
    std::vector<uint32_t> freqs(postings.size());
    for (size_t i = 0; i < postings.size(); ++i) {
      tables[i] = postings[i].tuple.table;
      rows[i] = postings[i].tuple.row;
      freqs[i] = postings[i].freq;
    }
    writer.AddSection(kSecIixOffsets, SectionCodec::kVarintDelta,
                      iix.offsets().size(), DeltaPayload(iix.offsets()));
    writer.AddSection(kSecIixTables, SectionCodec::kBitPacked,
                      postings.size(), BitPackedPayload(tables));
    writer.AddSection(kSecIixRows, SectionCodec::kBitPacked,
                      postings.size(), BitPackedPayload(rows));
    writer.AddSection(kSecIixFreqs, SectionCodec::kBitPacked,
                      postings.size(), BitPackedPayload(freqs));
  }

  // -- Node space + adjacency ------------------------------------------
  {
    std::vector<uint64_t> table_sizes(space.table_sizes().begin(),
                                      space.table_sizes().end());
    std::string sizes_payload;
    EncodeVarints(table_sizes, &sizes_payload);
    writer.AddSection(kSecTableSizes, SectionCodec::kVarint,
                      table_sizes.size(), std::move(sizes_payload));

    const std::span<const Arc> arcs = csr.arcs();
    std::vector<uint32_t> targets(arcs.size());
    std::vector<float> weights(arcs.size());
    for (size_t i = 0; i < arcs.size(); ++i) {
      targets[i] = arcs[i].target;
      weights[i] = arcs[i].weight;
    }
    writer.AddSection(kSecCsrOffsets, SectionCodec::kVarintDelta,
                      csr.offsets().size(), DeltaPayload(csr.offsets()));
    writer.AddSection(kSecCsrTargets, SectionCodec::kBitPacked,
                      targets.size(), BitPackedPayload(targets));
    writer.AddSection(kSecCsrWeights, SectionCodec::kRaw, weights.size(),
                      RawScalarPayload<float>(weights));
    // Weighted degrees are NOT stored: the loader re-accumulates them
    // from the arcs in CSR row order — the same float-into-double sum, in
    // the same order, the original build performed — so the recomputed
    // table is bit-identical and the format saves 8 bytes per node.
  }

  // -- Frozen similarity / closeness lists -----------------------------
  {
    const SimilarityIndex& sim = model.similarity_index();
    std::vector<uint8_t> present(n, 0);
    std::vector<uint64_t> offsets(n + 1, 0);
    std::vector<uint32_t> terms;
    std::vector<double> scores;
    for (TermId t = 0; t < n; ++t) {
      offsets[t] = terms.size();
      if (!sim.Contains(t)) continue;
      present[t] = 1;
      for (const SimilarTerm& s : sim.Lookup(t)) {
        terms.push_back(s.term);
        scores.push_back(s.score);
      }
    }
    offsets[n] = terms.size();
    writer.AddSection(kSecSimPresent, SectionCodec::kRaw, n,
                      RawBytePayload(present));
    writer.AddSection(kSecSimOffsets, SectionCodec::kVarintDelta, n + 1,
                      DeltaPayload(offsets));
    writer.AddSection(kSecSimTerms, SectionCodec::kBitPacked, terms.size(),
                      BitPackedPayload(terms));
    writer.AddSection(kSecSimScores, SectionCodec::kRaw, scores.size(),
                      RawScalarPayload<double>(scores));
  }
  {
    const ClosenessIndex& clos = model.closeness_index();
    std::vector<uint8_t> present(n, 0);
    std::vector<uint64_t> offsets(n + 1, 0);
    std::vector<uint32_t> terms;
    std::vector<uint32_t> distances;
    std::vector<double> scores;
    for (TermId t = 0; t < n; ++t) {
      offsets[t] = terms.size();
      if (!clos.Contains(t)) continue;
      present[t] = 1;
      for (const CloseTerm& c : clos.Lookup(t)) {
        terms.push_back(c.term);
        distances.push_back(c.distance);
        scores.push_back(c.closeness);
      }
    }
    offsets[n] = terms.size();
    writer.AddSection(kSecClosPresent, SectionCodec::kRaw, n,
                      RawBytePayload(present));
    writer.AddSection(kSecClosOffsets, SectionCodec::kVarintDelta, n + 1,
                      DeltaPayload(offsets));
    writer.AddSection(kSecClosTerms, SectionCodec::kBitPacked, terms.size(),
                      BitPackedPayload(terms));
    writer.AddSection(kSecClosDistances, SectionCodec::kBitPacked,
                      distances.size(), BitPackedPayload(distances));
    writer.AddSection(kSecClosScores, SectionCodec::kRaw, scores.size(),
                      RawScalarPayload<double>(scores));
  }

  // -- Decode bounds + preparation state -------------------------------
  {
    // Recomputed from the lists at save time (cheap: one pass over the
    // pools), so lazy models that never materialized a bounds table still
    // persist correct caps for whatever they have prepared.
    const TermBoundsTable bounds = ComputeTermBounds(
        model.similarity_index(), model.closeness_index(), n);
    writer.AddSection(kSecBoundsEmission, SectionCodec::kRaw, n,
                      RawScalarPayload<double>(bounds.emission_caps()));
    writer.AddSection(kSecBoundsTransition, SectionCodec::kRaw, n,
                      RawScalarPayload<double>(bounds.transition_caps()));

    std::vector<uint8_t> prepared(n, 0);
    for (TermId t : model.PreparedTerms()) prepared[t] = 1;
    writer.AddSection(kSecPrepared, SectionCodec::kRaw, n,
                      RawBytePayload(prepared));
  }

  return writer.Finish();
}

Status SaveModelFile(const ServingModel& model, const std::string& path) {
  KQR_ASSIGN_OR_RETURN(std::string blob, SerializeModel(model));
  return WriteFileBytes(
      path, std::span<const std::byte>(
                reinterpret_cast<const std::byte*>(blob.data()),
                blob.size()));
}

// ---------------------------------------------------------------------
// Loader
// ---------------------------------------------------------------------

namespace {

/// Reads the fixed meta word array.
Status ReadMeta(const ContainerReader& reader,
                std::array<uint64_t, kMetaWords>* meta) {
  KQR_ASSIGN_OR_RETURN(std::span<const std::byte> bytes,
                       reader.Payload(kSecMeta));
  if (bytes.size() != kMetaWords * 8) {
    return Corrupt("meta section has wrong size");
  }
  for (size_t i = 0; i < kMetaWords; ++i) {
    (*meta)[i] = GetU64Le(bytes.data() + i * 8);
  }
  return Status::OK();
}

/// Decodes a u64 section and checks its element count.
Status ReadU64Column(const ContainerReader& reader, const char* name,
                     size_t expect, std::vector<uint64_t>* out) {
  KQR_ASSIGN_OR_RETURN(*out, reader.ReadU64s(name));
  if (out->size() != expect) {
    return Corrupt(std::string(name) + " has wrong element count");
  }
  return Status::OK();
}

Status ReadU32Column(const ContainerReader& reader, const char* name,
                     size_t expect, std::vector<uint32_t>* out) {
  KQR_ASSIGN_OR_RETURN(*out, reader.ReadU32s(name));
  if (out->size() != expect) {
    return Corrupt(std::string(name) + " has wrong element count");
  }
  return Status::OK();
}

Status ReadF64Column(const ContainerReader& reader, const char* name,
                     size_t expect, std::span<const double>* out) {
  KQR_ASSIGN_OR_RETURN(*out, reader.RawF64(name));
  if (out->size() != expect) {
    return Corrupt(std::string(name) + " has wrong element count");
  }
  return Status::OK();
}

/// A presence bitmap: one byte per term, strictly 0 or 1.
Status ReadPresence(const ContainerReader& reader, const char* name,
                    size_t expect, std::vector<uint8_t>* out) {
  KQR_ASSIGN_OR_RETURN(std::span<const std::byte> bytes,
                       reader.Payload(name));
  if (bytes.size() != expect) {
    return Corrupt(std::string(name) + " has wrong element count");
  }
  out->resize(bytes.size());
  for (size_t i = 0; i < bytes.size(); ++i) {
    const uint8_t b = static_cast<uint8_t>(bytes[i]);
    if (b > 1) return Corrupt(std::string(name) + " byte is not 0/1");
    (*out)[i] = b;
  }
  return Status::OK();
}

/// Offsets column shared checks: first 0, last == pool size. Monotonicity
/// is guaranteed by the delta codec.
Status CheckFraming(const char* name, const std::vector<uint64_t>& offsets,
                    uint64_t pool_size) {
  if (offsets.empty() || offsets.front() != 0 ||
      offsets.back() != pool_size) {
    return Corrupt(std::string(name) + " does not frame its pool");
  }
  return Status::OK();
}

/// Workers for parallel list validation. Lists are independent, so the
/// per-term validators fan out; the lowest failing term wins so the error
/// is deterministic.
constexpr size_t kValidateWorkers = 0;  // 0 = auto (inline on one core)

/// Checks that absent terms own empty ranges, then validates every
/// present term's slice with the same validators the v2 snapshot loader
/// uses — nothing the auditors would reject gets installed.
template <typename Entry, typename Validate>
Status CheckLists(const char* what, const std::vector<uint8_t>& present,
                  const std::vector<uint64_t>& offsets,
                  const std::vector<Entry>& pool, Validate&& validate) {
  const size_t n = present.size();
  std::atomic<size_t> first_bad{n};
  ParallelFor(n, kValidateWorkers, [&](size_t, size_t t) {
    const size_t len = offsets[t + 1] - offsets[t];
    const bool ok =
        present[t] == 0
            ? len == 0
            : validate(static_cast<TermId>(t),
                       std::span<const Entry>(pool.data() + offsets[t], len))
                  .ok();
    if (!ok) {
      size_t cur = first_bad.load(std::memory_order_relaxed);
      while (t < cur && !first_bad.compare_exchange_weak(
                            cur, t, std::memory_order_relaxed)) {
      }
    }
  });
  const size_t t = first_bad.load(std::memory_order_relaxed);
  if (t == n) return Status::OK();
  // Re-run the failing term serially to recover the detailed message.
  const size_t len = offsets[t + 1] - offsets[t];
  if (present[t] == 0) {
    return Corrupt(std::string(what) + ": absent term has a non-empty list");
  }
  return validate(static_cast<TermId>(t),
                  std::span<const Entry>(pool.data() + offsets[t], len));
}

}  // namespace

Status ServingModel::InitFromContainer(const ContainerReader& reader,
                                       std::shared_ptr<const MappedFile> file,
                                       const ModelOpenOptions& open) {
  (void)open;  // checksum / mapping policy already applied by the caller
  mapped_file_ = std::move(file);

  std::array<uint64_t, kMetaWords> meta{};
  KQR_RETURN_NOT_OK(ReadMeta(reader, &meta));
  if (meta[kMetaConfigHash] != ModelConfigHash(options_)) {
    return Status::InvalidArgument(
        "model file was built under different engine options (similarity/"
        "closeness list shape or similarity source)");
  }
  const size_t n = meta[kMetaVocabTerms];
  const size_t num_nodes = meta[kMetaNumNodes];
  const size_t num_arcs = meta[kMetaNumArcs];
  if (n > static_cast<size_t>(kInvalidTermId) ||
      num_nodes > static_cast<size_t>(kInvalidNodeId)) {
    return Corrupt("meta counts exceed id space");
  }

  // -- Vocabulary ------------------------------------------------------
  std::vector<FieldInfo> fields;
  {
    KQR_ASSIGN_OR_RETURN(const SectionInfo* sec,
                         reader.Find(kSecVocabFields));
    if (sec->items != meta[kMetaNumFields]) {
      return Corrupt("vocab.fields count disagrees with meta");
    }
    KQR_ASSIGN_OR_RETURN(std::span<const std::byte> bytes,
                         reader.Payload(kSecVocabFields));
    ByteReader br(bytes);
    fields.reserve(sec->items);
    for (uint64_t i = 0; i < sec->items; ++i) {
      FieldInfo info;
      KQR_ASSIGN_OR_RETURN(uint64_t table_len, br.Varint64());
      KQR_ASSIGN_OR_RETURN(std::span<const std::byte> table_bytes,
                           br.Bytes(table_len));
      KQR_ASSIGN_OR_RETURN(uint64_t column_len, br.Varint64());
      KQR_ASSIGN_OR_RETURN(std::span<const std::byte> column_bytes,
                           br.Bytes(column_len));
      KQR_ASSIGN_OR_RETURN(std::span<const std::byte> role_byte,
                           br.Bytes(1));
      const uint8_t role = static_cast<uint8_t>(role_byte[0]);
      if (role > static_cast<uint8_t>(TextRole::kAtomic)) {
        return Corrupt("vocab.fields has an unknown text role");
      }
      info.table.assign(reinterpret_cast<const char*>(table_bytes.data()),
                        table_bytes.size());
      info.column.assign(reinterpret_cast<const char*>(column_bytes.data()),
                         column_bytes.size());
      info.role = static_cast<TextRole>(role);
      fields.push_back(std::move(info));
    }
    if (!br.done()) return Corrupt("vocab.fields has trailing bytes");
  }
  {
    std::vector<uint32_t> term_fields_raw;
    KQR_RETURN_NOT_OK(
        ReadU32Column(reader, kSecVocabTermFields, n, &term_fields_raw));
    std::vector<FieldId> term_fields(n);
    for (size_t t = 0; t < n; ++t) {
      if (term_fields_raw[t] >= fields.size()) {
        return Corrupt("vocab.term_fields references an unknown field");
      }
      term_fields[t] = static_cast<FieldId>(term_fields_raw[t]);
    }
    std::vector<uint64_t> text_offsets;
    KQR_RETURN_NOT_OK(
        ReadU64Column(reader, kSecVocabTextOffsets, n + 1, &text_offsets));
    KQR_ASSIGN_OR_RETURN(std::string_view arena,
                         reader.RawText(kSecVocabArena));
    KQR_RETURN_NOT_OK(
        CheckFraming(kSecVocabTextOffsets, text_offsets, arena.size()));
    for (size_t t = 0; t < n; ++t) {
      if (text_offsets[t + 1] - text_offsets[t] > UINT32_MAX) {
        return Corrupt("vocab term text too long");
      }
    }
    vocab_ = Vocabulary::FromParts(std::move(fields),
                                   std::move(term_fields),
                                   std::move(text_offsets), arena);
  }

  // -- Independent sections --------------------------------------------
  // The inverted index, adjacency, and the two frozen list families
  // decode disjoint sections into disjoint members, reading only the
  // container and the vocabulary built above — so the four blocks fan out
  // across threads. Workers time themselves; the spans are recorded after
  // the join because the trace is single-owner.
  const auto load_iix = [&]() -> Status {
    KQR_ASSIGN_OR_RETURN(const SectionInfo* sec,
                         reader.Find(kSecIixOffsets));
    const size_t expect_offsets = sec->items;  // n + 1, or 0 (empty corpus)
    if (expect_offsets != 0 && expect_offsets != n + 1) {
      return Corrupt("iix.offsets count disagrees with vocab size");
    }
    std::vector<uint64_t> offsets;
    KQR_RETURN_NOT_OK(
        ReadU64Column(reader, kSecIixOffsets, expect_offsets, &offsets));
    KQR_ASSIGN_OR_RETURN(const SectionInfo* tables_sec,
                         reader.Find(kSecIixTables));
    const size_t num_postings = tables_sec->items;
    if (offsets.empty()) {
      if (num_postings != 0) {
        return Corrupt("iix has postings but no offsets");
      }
    } else {
      KQR_RETURN_NOT_OK(CheckFraming(kSecIixOffsets, offsets, num_postings));
    }
    std::vector<uint32_t> tables, rows, freqs;
    KQR_RETURN_NOT_OK(
        ReadU32Column(reader, kSecIixTables, num_postings, &tables));
    KQR_RETURN_NOT_OK(ReadU32Column(reader, kSecIixRows, num_postings, &rows));
    KQR_RETURN_NOT_OK(
        ReadU32Column(reader, kSecIixFreqs, num_postings, &freqs));
    std::vector<Posting> pool(num_postings);
    for (size_t i = 0; i < num_postings; ++i) {
      if (tables[i] >= meta[kMetaNumTables] || tables[i] > UINT16_MAX) {
        return Corrupt("iix.tables references an unknown table");
      }
      pool[i].tuple.table = static_cast<uint16_t>(tables[i]);
      pool[i].tuple.row = rows[i];
      pool[i].freq = freqs[i];
    }
    index_ = std::make_unique<InvertedIndex>(InvertedIndex::FromParts(
        std::move(offsets), std::move(pool), meta[kMetaIndexedTuples],
        meta[kMetaCorpusTuples]));
    return Status::OK();
  };

  const auto load_graph = [&]() -> Status {
    std::vector<uint64_t> sizes_raw;
    KQR_RETURN_NOT_OK(ReadU64Column(reader, kSecTableSizes,
                                    meta[kMetaNumTables], &sizes_raw));
    std::vector<size_t> table_sizes(sizes_raw.begin(), sizes_raw.end());
    NodeSpace space(std::move(table_sizes), n);
    if (space.num_nodes() != num_nodes) {
      return Corrupt("space.table_sizes disagrees with meta node count");
    }

    std::vector<uint64_t> offsets;
    KQR_RETURN_NOT_OK(
        ReadU64Column(reader, kSecCsrOffsets, num_nodes + 1, &offsets));
    KQR_RETURN_NOT_OK(CheckFraming(kSecCsrOffsets, offsets, num_arcs));
    std::vector<uint32_t> targets;
    KQR_RETURN_NOT_OK(
        ReadU32Column(reader, kSecCsrTargets, num_arcs, &targets));
    KQR_ASSIGN_OR_RETURN(std::span<const float> weights,
                         reader.RawF32(kSecCsrWeights));
    if (weights.size() != num_arcs) {
      return Corrupt("csr.weights has wrong element count");
    }
    std::vector<Arc> arcs(num_arcs);
    for (size_t i = 0; i < num_arcs; ++i) {
      if (targets[i] >= num_nodes) {
        return Corrupt("csr.targets references an unknown node");
      }
      arcs[i].target = targets[i];
      arcs[i].weight = weights[i];
    }
    // Re-accumulate weighted degrees in CSR row order — float weights
    // summed into a double, exactly the order and arithmetic the original
    // FromUndirectedEdges build used, so the table is bit-identical to
    // the one the saved model served with.
    std::vector<double> degrees(num_nodes, 0.0);
    for (size_t u = 0; u < num_nodes; ++u) {
      for (uint64_t i = offsets[u]; i < offsets[u + 1]; ++i) {
        degrees[u] += arcs[i].weight;
      }
    }
    graph_ = std::make_unique<TatGraph>(
        std::move(space),
        CsrGraph::FromParts(std::move(offsets), std::move(arcs),
                            std::move(degrees)),
        &vocab_, &db_);
    return Status::OK();
  };

  const auto load_sim = [&]() -> Status {
    std::vector<uint8_t> present;
    KQR_RETURN_NOT_OK(ReadPresence(reader, kSecSimPresent, n, &present));
    std::vector<uint64_t> offsets;
    KQR_RETURN_NOT_OK(
        ReadU64Column(reader, kSecSimOffsets, n + 1, &offsets));
    KQR_ASSIGN_OR_RETURN(const SectionInfo* terms_sec,
                         reader.Find(kSecSimTerms));
    const size_t count = terms_sec->items;
    KQR_RETURN_NOT_OK(CheckFraming(kSecSimOffsets, offsets, count));
    std::vector<uint32_t> terms;
    KQR_RETURN_NOT_OK(ReadU32Column(reader, kSecSimTerms, count, &terms));
    std::span<const double> scores;
    KQR_RETURN_NOT_OK(ReadF64Column(reader, kSecSimScores, count, &scores));
    std::vector<SimilarTerm> pool(count);
    for (size_t i = 0; i < count; ++i) {
      pool[i] = SimilarTerm{terms[i], scores[i]};
    }
    KQR_RETURN_NOT_OK(CheckLists(
        kSecSimTerms, present, offsets, pool,
        [&](TermId t, std::span<const SimilarTerm> list) {
          return ValidateSimilarList(t, list, n);
        }));
    similarity_.InstallFlat(std::move(offsets), std::move(pool),
                            std::move(present));
    return Status::OK();
  };

  const auto load_clos = [&]() -> Status {
    std::vector<uint8_t> present;
    KQR_RETURN_NOT_OK(ReadPresence(reader, kSecClosPresent, n, &present));
    std::vector<uint64_t> offsets;
    KQR_RETURN_NOT_OK(
        ReadU64Column(reader, kSecClosOffsets, n + 1, &offsets));
    KQR_ASSIGN_OR_RETURN(const SectionInfo* terms_sec,
                         reader.Find(kSecClosTerms));
    const size_t count = terms_sec->items;
    KQR_RETURN_NOT_OK(CheckFraming(kSecClosOffsets, offsets, count));
    std::vector<uint32_t> terms;
    KQR_RETURN_NOT_OK(ReadU32Column(reader, kSecClosTerms, count, &terms));
    std::vector<uint32_t> distances;
    KQR_RETURN_NOT_OK(
        ReadU32Column(reader, kSecClosDistances, count, &distances));
    std::span<const double> scores;
    KQR_RETURN_NOT_OK(
        ReadF64Column(reader, kSecClosScores, count, &scores));
    std::vector<CloseTerm> pool(count);
    for (size_t i = 0; i < count; ++i) {
      pool[i] = CloseTerm{terms[i], scores[i], distances[i]};
    }
    KQR_RETURN_NOT_OK(CheckLists(
        kSecClosTerms, present, offsets, pool,
        [&](TermId t, std::span<const CloseTerm> list) {
          return ValidateCloseList(t, list, n);
        }));
    closeness_.InstallFlat(std::move(offsets), std::move(pool),
                           std::move(present));
    return Status::OK();
  };

  {
    static constexpr const char* kBlockNames[] = {"open-iix", "open-graph",
                                                  "open-sim", "open-clos"};
    const std::function<Status()> blocks[] = {load_iix, load_graph, load_sim,
                                              load_clos};
    Status statuses[4];
    double seconds[4] = {0.0, 0.0, 0.0, 0.0};
    ParallelFor(4, 0, [&](size_t, size_t i) {
      Timer timer;
      statuses[i] = blocks[i]();
      seconds[i] = timer.ElapsedSeconds();
    });
    for (size_t i = 0; i < 4; ++i) {
      build_trace_.AddSpan(kBlockNames[i], seconds[i]);
    }
    for (size_t i = 0; i < 4; ++i) {
      KQR_RETURN_NOT_OK(statuses[i]);
    }
  }

  // The fingerprint covers (vocab, graph shape, corpus): fail before
  // anything downstream consumes a mismatched model.
  if (ModelFingerprint(*this) != meta[kMetaFingerprint]) {
    return Corrupt(
        "model file fingerprint mismatch: built from a different corpus");
  }

  {
    TraceScope span(&build_trace_, "open-stats");
    stats_ = std::make_unique<GraphStats>(*graph_);
    search_ =
        std::make_unique<KeywordSearch>(*graph_, *index_, options_.search);
  }

  // -- Decode bounds + preparation state -------------------------------
  {
    std::span<const double> emission, transition;
    KQR_RETURN_NOT_OK(
        ReadF64Column(reader, kSecBoundsEmission, n, &emission));
    KQR_RETURN_NOT_OK(
        ReadF64Column(reader, kSecBoundsTransition, n, &transition));
    term_bounds_ = TermBoundsTable::FromMapped(emission, transition);
  }
  {
    std::vector<uint8_t> prepared;
    KQR_RETURN_NOT_OK(ReadPresence(reader, kSecPrepared, n, &prepared));
    const bool fully =
        (meta[kMetaFlags] & kFlagFullyPrepared) != 0;
    prepared_flags_ = std::make_unique<std::atomic<uint8_t>[]>(
        std::max<size_t>(n, 1));
    for (size_t t = 0; t < n; ++t) {
      if (fully && prepared[t] == 0) {
        return Corrupt("fully-prepared model has an unprepared term");
      }
      prepared_flags_[t].store(prepared[t], std::memory_order_relaxed);
    }
    term_mutexes_ = std::make_unique<Mutex[]>(kTermShards);
    if (fully) {
      similarity_.Freeze();
      closeness_.Freeze();
      fully_prepared_.store(true, std::memory_order_release);
    }
  }

  return Status::OK();
}

Result<std::shared_ptr<const ServingModel>> ServingModel::OpenMapped(
    Database db, const std::string& path, EngineOptions options,
    ModelOpenOptions open) {
  KQR_RETURN_NOT_OK(options.Validate());
  KQR_RETURN_NOT_OK(db.ValidateIntegrity());
  KQR_ASSIGN_OR_RETURN(std::shared_ptr<const MappedFile> file,
                       MappedFile::Open(path, open.prefer_mmap));
  KQR_ASSIGN_OR_RETURN(
      ContainerReader reader,
      ContainerReader::Open(file->bytes(), open.verify_checksums));
  std::shared_ptr<ServingModel> model(
      new ServingModel(std::move(db), options));
  {
    TraceScope span(&model->build_trace_, "mapped-open");
    KQR_RETURN_NOT_OK(
        model->InitFromContainer(reader, std::move(file), open));
    span.SetItems(model->vocab().size());
  }
  if (MetricsRegistry* registry = model->metrics_registry()) {
    for (const TraceSpan& span : model->build_trace_.spans()) {
      registry
          ->GetGauge(std::string("kqr_build_stage_seconds{stage=\"") +
                     span.name + "\"}")
          ->Set(span.duration_seconds);
    }
  }
  model->build_trace_.Disable();
  return std::shared_ptr<const ServingModel>(std::move(model));
}

}  // namespace kqr
