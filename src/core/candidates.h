// Candidate hidden-state construction (Sec. V-B): each query term's
// similar-term list becomes its candidate state list, optionally extended
// with the *original* state (keep the input term) and a *void* state
// (delete the term), exactly as the paper allows.

#pragma once

#include <string>
#include <vector>

#include "graph/graph_stats.h"
#include "text/vocabulary.h"
#include "walk/similarity_index.h"

namespace kqr {

/// \brief One hidden state at one query position.
struct CandidateState {
  /// The substitute term; kInvalidTermId for the void (deletion) state.
  TermId term = kInvalidTermId;
  /// Raw (unnormalized) emission affinity sim(term, q_i).
  double similarity = 0.0;
  bool is_original = false;
  bool is_void = false;
};

struct CandidateOptions {
  /// n: candidate states drawn from the similar-term list per position.
  size_t per_term = 20;
  /// Add the original query term as a state ("allow the original term
  /// existing in the new reformulated query").
  bool include_original = true;
  /// Add the void state ("deletion of initial terms"). Off by default;
  /// the ablation bench flips it.
  bool include_void = false;
  /// Emission affinity assigned to the void state when enabled.
  double void_similarity = 0.02;
};

/// \brief Builds per-position candidate lists from the similarity index.
class CandidateBuilder {
 public:
  CandidateBuilder(const SimilarityIndex& index, CandidateOptions options = {})
      : index_(index), options_(options) {}

  /// \brief States for one query position. The original state's affinity is
  /// set to the top list score (it is at least as similar to itself as any
  /// substitute).
  std::vector<CandidateState> BuildFor(TermId query_term) const;

  /// \brief States for every position of the query.
  std::vector<std::vector<CandidateState>> Build(
      const std::vector<TermId>& query_terms) const;

  /// \brief Like BuildFor, but fills `*out` in place (cleared first) so a
  /// serving thread can reuse its capacity across requests.
  void BuildForInto(TermId query_term, std::vector<CandidateState>* out) const;

  /// \brief Like Build into caller-owned per-position lists. `out->size()`
  /// is set to the query length; inner vectors keep their capacity.
  void BuildInto(const std::vector<TermId>& query_terms,
                 std::vector<std::vector<CandidateState>>* out) const;

  const CandidateOptions& options() const { return options_; }

 private:
  const SimilarityIndex& index_;
  CandidateOptions options_;
};

}  // namespace kqr

