// Reformulator: the online stage (Sec. V). Accepts a resolved keyword
// query, builds the candidate trellis from the offline indexes, decodes
// top-k substitutive queries, and reports per-stage timings.

#pragma once

#include <string>
#include <vector>

#include "closeness/closeness_index.h"
#include "common/result.h"
#include "core/astar_topk.h"
#include "core/candidates.h"
#include "core/hmm.h"
#include "core/rank_baseline.h"
#include "core/request_context.h"
#include "core/viterbi_topk.h"
#include "obs/serving_metrics.h"
#include "walk/similarity_index.h"

namespace kqr {

/// \brief Which top-k decoder runs.
enum class TopKAlgorithm {
  kExtendedViterbi,  ///< Algorithm 2
  kViterbiAStar,     ///< Algorithm 3 (default; the paper's winner)
  kRankBaseline,     ///< similarity-only greedy baseline (Sec. VI-B)
};

const char* TopKAlgorithmName(TopKAlgorithm algorithm);

/// \brief One suggested query Q'.
struct ReformulatedQuery {
  std::vector<TermId> terms;  // kInvalidTermId marks a deleted position
  double score = 0.0;         // p(Q'|Q), Eq. 10
  /// True when every position kept the original term (the identity
  /// reformulation; callers usually skip it when presenting).
  bool is_identity = false;

  std::string ToString(const Vocabulary& vocab) const;
};

/// \brief Wall-clock breakdown of one reformulation call.
struct ReformulationTimings {
  double candidate_seconds = 0.0;
  double model_seconds = 0.0;
  double decode_seconds = 0.0;
  AStarStats astar;      // populated for kViterbiAStar
  ViterbiStats viterbi;  // populated for kExtendedViterbi

  double TotalSeconds() const {
    return candidate_seconds + model_seconds + decode_seconds;
  }
};

struct ReformulatorOptions {
  CandidateOptions candidates;
  HmmOptions hmm;
  TopKAlgorithm algorithm = TopKAlgorithm::kViterbiAStar;
  /// Drop the identity reformulation from the output.
  bool drop_identity = true;
  /// Bound-based early termination in the top-k decoders (DESIGN.md
  /// "Bound-based pruning"). Exact: results are bit-identical on or off;
  /// off exists for benchmarking and the pruning property tests.
  bool prune_decode = true;

  /// \brief Rejects configurations that cannot serve (no candidate
  /// states, negative affinities/weights). Checked at construction
  /// boundaries: EngineBuilder::Build and ReformulateTermsWith.
  Status Validate() const;
};

/// \brief Online query reformulation against prebuilt offline indexes.
///
/// Options are fixed at construction (the object is immutable and safe to
/// share across threads); to serve with different options, construct
/// another Reformulator — construction is a few pointer copies.
class Reformulator {
 public:
  /// `metrics`, when non-null, receives per-stage observations (it must
  /// outlive the Reformulator; ServingModel passes its own resolved
  /// handles). Null metrics serve identically with zero recording.
  Reformulator(const SimilarityIndex& similarity,
               const ClosenessIndex& closeness, const GraphStats& stats,
               const TatGraph& graph, ReformulatorOptions options = {},
               const ServingMetrics* metrics = nullptr)
      : similarity_(similarity),
        closeness_(closeness),
        stats_(stats),
        graph_(graph),
        options_(options),
        metrics_(metrics) {}

  /// \brief Top-k reformulations of `query_terms` (one TermId per input
  /// keyword). `timings`, when non-null, receives the stage breakdown.
  /// `ctx`, when non-null, supplies reusable scratch buffers and
  /// accumulates per-request stats; results are identical with or
  /// without it. When `ctx` carries a deadline it is checked between
  /// pipeline stages.
  ///
  /// Errors (never a partial result):
  ///   kInvalidArgument   empty query or k == 0
  ///   kNotFound          a position has no candidate states
  ///   kDeadlineExceeded  ctx->deadline passed mid-pipeline
  Result<std::vector<ReformulatedQuery>> Reformulate(
      const std::vector<TermId>& query_terms, size_t k,
      ReformulationTimings* timings = nullptr,
      RequestContext* ctx = nullptr) const;

  const ReformulatorOptions& options() const { return options_; }

 private:
  const SimilarityIndex& similarity_;
  const ClosenessIndex& closeness_;
  const GraphStats& stats_;
  const TatGraph& graph_;
  ReformulatorOptions options_;
  const ServingMetrics* metrics_;
};

}  // namespace kqr

