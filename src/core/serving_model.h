// ServingModel: the immutable online-serving artifact. EngineBuilder runs
// the offline stage (database → analyzer/index/graph/stats → similarity
// and closeness indexes) and hands back a shared_ptr<const ServingModel>;
// from then on every entry point is const and safe to call from any
// number of threads concurrently, with results bit-identical to serial.
//
// The only mutation behind the const facade is memoization: when a model
// is built without precompute_offline, per-term offline products are
// computed on first use behind a sharded-mutex term cache (double-checked
// lookup, extractors drawn from a scratch pool). Each term's products are
// a pure function of that term, and the closeness pair-map merge is
// order-independent, so the cache converges to the same state regardless
// of which threads prepare which terms in which order — see DESIGN.md
// "Serving architecture".

#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "closeness/closeness_index.h"
#include "common/mutex.h"
#include "common/result.h"
#include "core/reformulator.h"
#include "core/request_context.h"
#include "graph/graph_stats.h"
#include "graph/tat_builder.h"
#include "obs/metrics.h"
#include "obs/serving_metrics.h"
#include "obs/trace.h"
#include "search/keyword_search.h"
#include "search/query.h"
#include "storage/database.h"
#include "text/analyzer.h"
#include "text/inverted_index.h"
#include "walk/cooccurrence.h"
#include "walk/similarity_index.h"

namespace kqr {

class ContainerReader;
class MappedFile;

/// \brief How ServingModel::OpenMapped reads a v3 model file.
struct ModelOpenOptions {
  /// Verify every section's FNV-1a payload checksum at open time. Costs
  /// one sequential pass over the file (touches all pages); turning it
  /// off keeps opens O(pages touched by serving) but detects corruption
  /// only where structural validation happens to notice.
  bool verify_checksums = true;
  /// Memory-map the file (fall back to a heap read when mapping is
  /// unavailable). When false, always read into heap memory.
  bool prefer_mmap = true;
};

struct EngineOptions {
  AnalyzerOptions analyzer;
  TatBuilderOptions graph;
  SimilarityIndexOptions similarity;
  ClosenessIndexOptions closeness;
  ReformulatorOptions reformulator;
  SearchOptions search;
  /// Use the co-occurrence baseline instead of the contextual random walk
  /// as the similarity source (the paper's "Co-occurrence reformulation"
  /// arm).
  bool use_cooccurrence_similarity = false;
  CooccurrenceOptions cooccurrence;
  /// Run the full offline stage at build time (one walk + one path search
  /// per vocabulary term); the indexes are then frozen and every serving
  /// read is lock-free. When false, per-term results are computed lazily
  /// on first use and cached — same results, pay-as-you-go.
  bool precompute_offline = false;
  /// In debug builds (NDEBUG undefined) EngineBuilder::Build runs a
  /// ModelAuditor pass over the finished model and fails the build on any
  /// invariant violation. Set false to opt out (e.g. benches on huge
  /// corpora). Release builds never audit implicitly; call
  /// ModelAuditor::Audit or `kqr_cli --audit` explicitly.
  bool debug_audit = true;
  /// Kill switch for the observability layer. When true (default) the
  /// model owns a MetricsRegistry and every serving/build stage records
  /// into it (lock-free on the hot path; see DESIGN.md "Observability"
  /// for the measured overhead). When false no registry exists and every
  /// recording site reduces to one null check.
  bool enable_metrics = true;

  /// \brief Rejects configurations that cannot build or serve. Called by
  /// EngineBuilder::Build before any offline work starts; also validates
  /// the nested ReformulatorOptions.
  Status Validate() const;
};

/// \brief End-to-end keyword query reformulation over one database:
/// the immutable product of EngineBuilder::Build.
///
/// Thread-safety: all public methods are const and concurrency-safe.
/// Callers that want warm scratch buffers pass a per-thread
/// RequestContext; passing nullptr serves from cold stack buffers.
class ServingModel {
 public:
  ServingModel(const ServingModel&) = delete;
  ServingModel& operator=(const ServingModel&) = delete;
  ~ServingModel();

  /// \brief Opens a v3 model file (core/model_file.h) produced by
  /// SaveModelFile, skipping the whole offline stage: frozen structures
  /// are decoded from (or served zero-copy out of) the mapped file.
  /// `db` must be the same corpus the model was built from (checked via
  /// the stored fingerprint) and `options` must agree with the build
  /// configuration where it shapes the stored lists (checked via a
  /// config hash). Reformulation output is bit-identical to the model
  /// that was saved.
  static Result<std::shared_ptr<const ServingModel>> OpenMapped(
      Database db, const std::string& path, EngineOptions options = {},
      ModelOpenOptions open = {});

  /// \brief Parses free text and picks one term node per keyword (the
  /// most frequent field on ties). Fails if any keyword is unresolvable.
  Result<std::vector<TermId>> ResolveQuery(const std::string& text) const;

  /// \brief End-to-end online reformulation for free-text input.
  Result<std::vector<ReformulatedQuery>> Reformulate(
      const std::string& text, size_t k, RequestContext* ctx = nullptr,
      ReformulationTimings* timings = nullptr) const;

  /// \brief Online reformulation for pre-resolved terms, under the model's
  /// built-in reformulator options.
  ///
  /// Errors (never a partial result):
  ///   kInvalidArgument   empty query, k == 0, or a term outside the vocab
  ///   kNotFound          a position has no candidate states
  ///   kDeadlineExceeded  ctx->deadline passed mid-pipeline
  Result<std::vector<ReformulatedQuery>> ReformulateTerms(
      const std::vector<TermId>& query_terms, size_t k,
      RequestContext* ctx = nullptr,
      ReformulationTimings* timings = nullptr) const;

  /// \brief Online reformulation under caller-supplied options (benches
  /// sweep algorithms/candidate shapes this way; the old mutable_options
  /// pattern raced with serving). Candidate preparation honors
  /// `opts.candidates`. Same error contract as ReformulateTerms, plus
  /// kInvalidArgument when `opts` fails Validate().
  Result<std::vector<ReformulatedQuery>> ReformulateTermsWith(
      const ReformulatorOptions& opts,
      const std::vector<TermId>& query_terms, size_t k,
      RequestContext* ctx = nullptr,
      ReformulationTimings* timings = nullptr) const;

  /// \brief Makes sure the offline products (similar-term list + close-
  /// term list) exist for `term`. Returns true when this call did the
  /// preparation (false: already prepared). Concurrency-safe. `block`,
  /// when non-null, stages the term-cache hit/miss counts instead of
  /// touching the registry (request paths pass their context's block;
  /// build-time callers pass nothing and record directly).
  bool EnsureTerm(TermId term, RequestMetricsBlock* block = nullptr) const;

  /// \brief Offline pass over an explicit term set (benches call this so
  /// online timing excludes offline work).
  void PrecomputeFor(const std::vector<TermId>& terms) const;

  /// \brief Batched lazy preparation: ensures offline products exist for
  /// every term in `terms` AND for every candidate substitute those terms
  /// generate (the closure the online pipeline needs), visiting each
  /// unique term exactly once. A server micro-batch calls this with the
  /// union of its requests' terms, so terms shared across requests get
  /// one shared prep pass instead of per-request double-checked misses.
  /// Returns the number of terms this call prepared. No-op (returns 0) on
  /// fully prepared models. Concurrency-safe and order-independent: the
  /// cache converges to the same state as per-request preparation.
  /// `block`, when non-null, stages the cache-metric events (see
  /// EnsureTerm).
  size_t PrepareTermsBatch(const std::vector<TermId>& terms,
                           RequestMetricsBlock* block = nullptr) const;

  /// \brief Folds a context's staged metrics block into this model's
  /// registry handles (pure reset when metrics are disabled). The online
  /// pipeline flushes automatically per request unless
  /// ctx->defer_metrics_flush is set — front-ends that set it (the
  /// batching server) call this once per batch instead.
  void FlushRequestMetrics(RequestContext* ctx) const {
    if (ctx != nullptr) ctx->metrics_block.FlushInto(metrics_);
  }

  /// \brief Installs externally computed offline products for `term`
  /// (snapshot loading) and marks it prepared. No-op for terms already
  /// prepared — live lookups are never invalidated.
  void ImportTermRelations(TermId term, std::vector<SimilarTerm> similar,
                           std::vector<CloseTerm> close) const;

  /// \brief Terms whose offline products are currently cached, in
  /// ascending order.
  std::vector<TermId> PreparedTerms() const;

  /// True when every vocabulary term is prepared (eager builds, or a lazy
  /// model that has by now touched everything).
  bool fully_prepared() const {
    return fully_prepared_.load(std::memory_order_acquire);
  }

  /// \brief Keyword search (Def. 3) for free text.
  Result<SearchOutcome> Search(const std::string& text) const;

  /// \brief Connecting-root count for a term-level query (cohesion
  /// signal).
  size_t CountResults(const std::vector<TermId>& query_terms) const;

  /// \brief Distinct result-tree count per Def. 3 (Table III metric).
  size_t CountTrees(const std::vector<TermId>& query_terms) const;

  /// \brief KeywordQuery from resolved terms (each keyword = one term).
  KeywordQuery QueryFromTerms(const std::vector<TermId>& terms) const;

  // Component access (read-only views for benches/tests/examples).
  const Database& db() const { return db_; }
  const Analyzer& analyzer() const { return analyzer_; }
  const Vocabulary& vocab() const { return vocab_; }
  const InvertedIndex& index() const { return *index_; }
  const TatGraph& graph() const { return *graph_; }
  const GraphStats& stats() const { return *stats_; }
  const SimilarityIndex& similarity_index() const { return similarity_; }
  const ClosenessIndex& closeness_index() const { return closeness_; }
  const EngineOptions& options() const { return options_; }

  /// \brief Per-term decode-bound caps (see TermBoundsTable). Non-empty
  /// for eagerly built models and for models opened from a v3 file;
  /// empty on lazy builds (the caps of an unprepared term are unknown).
  const TermBoundsTable& term_bounds() const { return term_bounds_; }

  /// \brief The model's metrics registry; nullptr when built with
  /// enable_metrics = false. Scraping (Snapshot) is safe concurrent with
  /// serving; the registry's recording surfaces are thread-safe, so the
  /// non-const pointee behind this const accessor is deliberate (same
  /// memoization-facade argument as the term cache).
  MetricsRegistry* metrics_registry() const { return registry_.get(); }

  /// \brief Scrape-and-format convenience: current snapshot, or an empty
  /// snapshot when metrics are disabled.
  MetricsSnapshot MetricsNow() const {
    return registry_ != nullptr ? registry_->Snapshot() : MetricsSnapshot{};
  }

  /// \brief Stage spans recorded while this model was built (inverted
  /// index, TAT graph, batch index builds, snapshot import, audit).
  /// Immutable after Build returns.
  const RequestTrace& build_trace() const { return build_trace_; }

  /// \brief Claims the model's single serving-front-end slot. At most one
  /// Server may front a model at a time: the kqr_server_* metrics a
  /// Server registers in this model's registry are per-front-end
  /// counters, and two servers double-counting into one set would
  /// corrupt the accounting silently. Returns false when another Server
  /// already holds the claim (Server::Create maps that to
  /// kAlreadyExists). Const for the same memoization-facade reason as
  /// the term cache: the claim is front-end bookkeeping, not model
  /// state.
  bool TryAcquireServerClaim() const {
    bool expected = false;
    return server_claim_.compare_exchange_strong(
        expected, true, std::memory_order_acq_rel);
  }

  /// \brief Releases the front-end claim; called exactly once per claim
  /// by Server::Drain after its workers have joined, so a new Server can
  /// front the model (drain-and-replace rollover).
  void ReleaseServerClaim() const {
    server_claim_.store(false, std::memory_order_release);
  }

 private:
  friend class EngineBuilder;

  /// Per-worker offline machinery for lazy preparation (the similarity
  /// extractor owns walk-engine scratch and must not be shared across
  /// threads). Checked out of pool_ for the duration of one PrepareTerm.
  struct PrepareScratch;

  ServingModel(Database db, EngineOptions options);
  Status Init();

  /// Deserializing counterpart of Init (defined in core/model_file.cc):
  /// rebuilds every frozen structure from a validated v3 container. Takes
  /// ownership of `file` so zero-copy views stay valid for the model's
  /// lifetime.
  Status InitFromContainer(const ContainerReader& reader,
                           std::shared_ptr<const MappedFile> file,
                           const ModelOpenOptions& open);

  /// Slow path of EnsureTerm: caller holds the term's shard mutex.
  void PrepareTerm(TermId term) const;

  /// Number of term-shard mutexes for the lazy-preparation cache.
  static constexpr size_t kTermShards = 64;

  /// Backing bytes for mapped models. MUST stay the first member: every
  /// zero-copy view below (vocab arena, weighted degrees, bound caps)
  /// points into it, and members destruct in reverse declaration order,
  /// so the mapping outlives all of them. Null for built models.
  std::shared_ptr<const MappedFile> mapped_file_;

  Database db_;
  EngineOptions options_;
  Analyzer analyzer_;
  Vocabulary vocab_;
  std::unique_ptr<InvertedIndex> index_;
  std::unique_ptr<TatGraph> graph_;
  std::unique_ptr<GraphStats> stats_;
  std::unique_ptr<KeywordSearch> search_;

  /// Static decode-bound caps (eager builds and mapped models; empty on
  /// lazy builds). May view mapped_file_.
  TermBoundsTable term_bounds_;

  // Memoization state (mutable behind the const facade; see file header).
  mutable SimilarityIndex similarity_;
  mutable ClosenessIndex closeness_;
  /// prepared_flags_[t]: 0 = unprepared, 1 = prepared. Readers check with
  /// acquire; preparers set with release while holding t's shard mutex.
  /// The flags are atomics (not GUARDED_BY a term mutex) because the
  /// fast-path read is deliberately lock-free; the shard mutex guards the
  /// *preparation* of a term — an invariant ("PrepareTerm runs at most
  /// once per term"), not a field — which is beyond what the capability
  /// analysis can express for a dynamically indexed mutex array.
  std::unique_ptr<std::atomic<uint8_t>[]> prepared_flags_;
  std::unique_ptr<Mutex[]> term_mutexes_;
  std::atomic<bool> fully_prepared_{false};

  /// Single-front-end claim (see TryAcquireServerClaim).
  mutable std::atomic<bool> server_claim_{false};

  /// Pool of reusable offline extractors for lazy preparation.
  mutable Mutex pool_mu_;
  mutable std::vector<std::unique_ptr<PrepareScratch>> pool_
      GUARDED_BY(pool_mu_);

  /// Observability. The registry is behind unique_ptr so const methods
  /// can record through it (recording is thread-safe by construction);
  /// metrics_ caches resolved handles so serving never takes the
  /// registry mutex. Null/empty when enable_metrics is false.
  std::unique_ptr<MetricsRegistry> registry_;
  ServingMetrics metrics_;
  /// Offline build spans; written single-threaded during Build, read-only
  /// afterwards.
  RequestTrace build_trace_;
};

}  // namespace kqr

