#include "core/candidates.h"

namespace kqr {

std::vector<CandidateState> CandidateBuilder::BuildFor(
    TermId query_term) const {
  const std::vector<SimilarTerm>& similar = index_.Lookup(query_term);
  std::vector<CandidateState> states;
  states.reserve(options_.per_term + 2);

  double top_score = similar.empty() ? 1.0 : similar.front().score;

  if (options_.include_original) {
    CandidateState original;
    original.term = query_term;
    original.similarity = top_score;
    original.is_original = true;
    states.push_back(original);
  }

  for (size_t i = 0; i < similar.size() && i < options_.per_term; ++i) {
    if (similar[i].term == query_term) continue;  // original already added
    CandidateState s;
    s.term = similar[i].term;
    s.similarity = similar[i].score;
    states.push_back(s);
  }

  if (options_.include_void) {
    CandidateState v;
    v.is_void = true;
    v.similarity = options_.void_similarity * top_score;
    states.push_back(v);
  }
  return states;
}

std::vector<std::vector<CandidateState>> CandidateBuilder::Build(
    const std::vector<TermId>& query_terms) const {
  std::vector<std::vector<CandidateState>> out;
  out.reserve(query_terms.size());
  for (TermId t : query_terms) out.push_back(BuildFor(t));
  return out;
}

}  // namespace kqr
