#include "core/candidates.h"

namespace kqr {

void CandidateBuilder::BuildForInto(TermId query_term,
                                    std::vector<CandidateState>* out) const {
  std::span<const SimilarTerm> similar = index_.Lookup(query_term);
  out->clear();
  out->reserve(options_.per_term + 2);

  double top_score = similar.empty() ? 1.0 : similar.front().score;

  if (options_.include_original) {
    CandidateState original;
    original.term = query_term;
    original.similarity = top_score;
    original.is_original = true;
    out->push_back(original);
  }

  // Count non-self candidates taken, not list positions scanned: when the
  // original term appears in its own similar list, skipping it must not
  // consume one of the per_term slots.
  size_t taken = 0;
  for (size_t i = 0; i < similar.size() && taken < options_.per_term; ++i) {
    if (similar[i].term == query_term) continue;  // original already added
    CandidateState s;
    s.term = similar[i].term;
    s.similarity = similar[i].score;
    out->push_back(s);
    ++taken;
  }

  if (options_.include_void) {
    CandidateState v;
    v.is_void = true;
    v.similarity = options_.void_similarity * top_score;
    out->push_back(v);
  }
}

std::vector<CandidateState> CandidateBuilder::BuildFor(
    TermId query_term) const {
  std::vector<CandidateState> states;
  BuildForInto(query_term, &states);
  return states;
}

void CandidateBuilder::BuildInto(
    const std::vector<TermId>& query_terms,
    std::vector<std::vector<CandidateState>>* out) const {
  out->resize(query_terms.size());
  for (size_t c = 0; c < query_terms.size(); ++c) {
    BuildForInto(query_terms[c], &(*out)[c]);
  }
}

std::vector<std::vector<CandidateState>> CandidateBuilder::Build(
    const std::vector<TermId>& query_terms) const {
  std::vector<std::vector<CandidateState>> out;
  BuildInto(query_terms, &out);
  return out;
}

}  // namespace kqr
