// Algorithm 2: extended Viterbi for top-k hidden sequences. The classical
// DP is widened so each (position, state) cell keeps its k best incoming
// paths; complexity O(m·n²·k·log k), as analyzed in Sec. V-C.
//
// Both decoders accept an optional ViterbiScratch so a serving thread can
// reuse the DP tables across requests instead of reallocating them per
// call; passing nullptr allocates locally and is equivalent.
//
// ViterbiTopK supports exact bound-based pruning (the WAND/MaxScore idiom
// applied to the trellis): a backward max-product pass yields, per cell,
// the best achievable completion mass, and any extension whose upper
// bound cannot enter the final top-k is skipped. Pruning is strictly
// below the running k-th best *achievable* score, so the returned paths
// and scores are bit-identical with pruning on or off (the derivation is
// in DESIGN.md "Bound-based pruning").

#pragma once

#include <cstdint>
#include <vector>

#include "core/hmm.h"

namespace kqr {

/// \brief One decoded hidden-state sequence: a state index per position
/// plus its probability (Eq. 10).
struct DecodedPath {
  std::vector<int> states;
  double score = 0.0;
};

/// \brief Relative slack applied to the pruning threshold θ in both
/// decoders: an extension is cut only when its upper bound falls strictly
/// below θ·(1 − 1e-9).
///
/// θ and the bounds are the *same* exact quantities computed under
/// different association orders (forward prefix products vs. backward
/// max-product suffixes), so under IEEE rounding they can disagree by a
/// few ulps (relative error ≲ m·2⁻⁵² per product chain) even when equal
/// in exact arithmetic. Without slack, a top-k path whose bound rounds
/// one ulp below its own achievable score can prune *itself*. The 1e-9
/// margin exceeds the accumulated rounding error by ~six orders of
/// magnitude, so everything cut is certifiably below the true k-th best —
/// results stay bit-identical with pruning on or off — while the pruning
/// power given up is unmeasurable.
inline constexpr double kDecodeThetaSlack = 1.0 - 1e-9;

/// \brief Instrumentation of one ViterbiTopK run. An "extension" is one
/// (previous state → state) edge group considered by the widened DP — the
/// unit the score upper bound gates.
struct ViterbiStats {
  size_t extensions_scored = 0;  ///< edge groups that entered the rank loop
  size_t extensions_pruned = 0;  ///< edge groups skipped via the bound
};

/// \brief Reusable DP tables for the Viterbi decoders. Contents are
/// overwritten on every call; only capacity carries over between requests.
///
/// The widened top-k DP is stored SoA: flat score/backpointer arrays with
/// one k-slot block per (position, state) cell, so the hot loop touches
/// contiguous memory and no per-cell vectors are ever allocated.
struct ViterbiScratch {
  /// delta[c][i] = max prefix score ending in state i at position c.
  std::vector<std::vector<double>> delta;
  /// back[c][i] = argmax predecessor state (-1 at position 0).
  std::vector<std::vector<int>> back;

  /// state_offset[c] = index of position c's first cell; size m+1. The
  /// cell (c, i) owns slots [(state_offset[c]+i)·k, +k) of the flat
  /// arrays below, each cell sorted by descending score.
  std::vector<size_t> state_offset;
  std::vector<double> cell_score;
  std::vector<int32_t> cell_prev_state;  // -1 at position 0
  std::vector<int32_t> cell_prev_rank;
  std::vector<int32_t> cell_count;  ///< live slots per cell (≤ k)

  /// suffix[state_offset[c]+i] = exact best completion mass strictly
  /// after position c from state i (backward max-product pass); 1 at the
  /// last position. Only filled when pruning is on.
  std::vector<double> suffix;
  /// Min-heap of the k best achievable complete-path scores seen so far
  /// (the pruning threshold θ is its minimum once full).
  std::vector<double> theta_heap;
};

/// \brief Top-k sequences by Eq. 10, best first. `k` ≥ 1. Only
/// positive-probability paths are returned (a zero-score "reformulation"
/// is meaningless; real models are smoothed positive). `stats`, when
/// non-null, receives extension counters. `prune` toggles bound-based
/// early termination; results are identical either way.
std::vector<DecodedPath> ViterbiTopK(const HmmModel& model, size_t k,
                                     ViterbiScratch* scratch = nullptr,
                                     ViterbiStats* stats = nullptr,
                                     bool prune = true);

/// \brief Classical Viterbi (top-1) into caller-owned scratch. Fills
/// `scratch->delta` / `scratch->back` (Algorithm 3 reuses delta as its A*
/// heuristic) and writes the best path into `*best`. A model with a
/// zero-state position admits no complete path: `*best` comes back empty
/// with score 0 (delta/back rows are still shaped for the request).
void ViterbiDecodeInto(const HmmModel& model, ViterbiScratch* scratch,
                       DecodedPath* best);

/// \brief Classical Viterbi (top-1); also returns the full δ table
/// (delta[c][i] = max prefix score ending in state i at position c), which
/// Algorithm 3 reuses as its A* heuristic.
struct ViterbiOutcome {
  DecodedPath best;
  std::vector<std::vector<double>> delta;
};

ViterbiOutcome ViterbiDecode(const HmmModel& model);

}  // namespace kqr
