// Algorithm 2: extended Viterbi for top-k hidden sequences. The classical
// DP is widened so each (position, state) cell keeps its k best incoming
// paths; complexity O(m·n²·k·log k), as analyzed in Sec. V-C.

#ifndef KQR_CORE_VITERBI_TOPK_H_
#define KQR_CORE_VITERBI_TOPK_H_

#include <vector>

#include "core/hmm.h"

namespace kqr {

/// \brief One decoded hidden-state sequence: a state index per position
/// plus its probability (Eq. 10).
struct DecodedPath {
  std::vector<int> states;
  double score = 0.0;
};

/// \brief Top-k sequences by Eq. 10, best first. `k` ≥ 1.
std::vector<DecodedPath> ViterbiTopK(const HmmModel& model, size_t k);

/// \brief Classical Viterbi (top-1); also returns the full δ table
/// (delta[c][i] = max prefix score ending in state i at position c), which
/// Algorithm 3 reuses as its A* heuristic.
struct ViterbiOutcome {
  DecodedPath best;
  std::vector<std::vector<double>> delta;
};

ViterbiOutcome ViterbiDecode(const HmmModel& model);

}  // namespace kqr

#endif  // KQR_CORE_VITERBI_TOPK_H_
