// Algorithm 2: extended Viterbi for top-k hidden sequences. The classical
// DP is widened so each (position, state) cell keeps its k best incoming
// paths; complexity O(m·n²·k·log k), as analyzed in Sec. V-C.
//
// Both decoders accept an optional ViterbiScratch so a serving thread can
// reuse the DP tables across requests instead of reallocating them per
// call; passing nullptr allocates locally and is equivalent.

#pragma once

#include <vector>

#include "core/hmm.h"

namespace kqr {

/// \brief One decoded hidden-state sequence: a state index per position
/// plus its probability (Eq. 10).
struct DecodedPath {
  std::vector<int> states;
  double score = 0.0;
};

/// \brief Backtracking record for the widened DP: which
/// (prev_state, prev_rank) produced the rank-r path ending at this cell.
struct ViterbiCell {
  double score;
  int prev_state;  // -1 at position 0
  int prev_rank;
};

/// \brief Reusable DP tables for the Viterbi decoders. Contents are
/// overwritten on every call; only capacity carries over between requests.
struct ViterbiScratch {
  /// delta[c][i] = max prefix score ending in state i at position c.
  std::vector<std::vector<double>> delta;
  /// back[c][i] = argmax predecessor state (-1 at position 0).
  std::vector<std::vector<int>> back;
  /// cells[c][i] = up to k best paths ending at (position c, state i).
  std::vector<std::vector<std::vector<ViterbiCell>>> cells;
};

/// \brief Top-k sequences by Eq. 10, best first. `k` ≥ 1.
std::vector<DecodedPath> ViterbiTopK(const HmmModel& model, size_t k,
                                     ViterbiScratch* scratch = nullptr);

/// \brief Classical Viterbi (top-1) into caller-owned scratch. Fills
/// `scratch->delta` / `scratch->back` (Algorithm 3 reuses delta as its A*
/// heuristic) and writes the best path into `*best`.
void ViterbiDecodeInto(const HmmModel& model, ViterbiScratch* scratch,
                       DecodedPath* best);

/// \brief Classical Viterbi (top-1); also returns the full δ table
/// (delta[c][i] = max prefix score ending in state i at position c), which
/// Algorithm 3 reuses as its A* heuristic.
struct ViterbiOutcome {
  DecodedPath best;
  std::vector<std::vector<double>> delta;
};

ViterbiOutcome ViterbiDecode(const HmmModel& model);

}  // namespace kqr

