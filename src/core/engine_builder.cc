#include "core/engine_builder.h"

#include <vector>

#include "audit/model_auditor.h"
#include "core/hmm.h"
#include "core/model_file.h"
#include "core/snapshot.h"
#include "obs/trace.h"

namespace kqr {

namespace {

/// Publishes one offline batch-build's counters under a stage label
/// (stage seconds come from the build-trace span of the same name,
/// published at the end of Build).
void RecordBuildStats(MetricsRegistry* registry, const char* stage,
                      const OfflineBuildStats& stats) {
  if (registry == nullptr) return;
  const std::string label = std::string("{stage=\"") + stage + "\"}";
  registry->GetGauge("kqr_build_stage_threads" + label)
      ->Set(static_cast<double>(stats.threads));
  registry->GetCounter("kqr_build_terms_built_total" + label)
      ->Increment(stats.terms_built);
  registry->GetCounter("kqr_build_terms_skipped_total" + label)
      ->Increment(stats.terms_skipped);
  if (stats.walks_run > 0) {
    registry->GetCounter("kqr_build_walks_total" + label)
        ->Increment(stats.walks_run);
    registry->GetCounter("kqr_build_walk_iterations_total" + label)
        ->Increment(stats.walk_iterations);
  }
}

}  // namespace

Result<std::shared_ptr<const ServingModel>> EngineBuilder::Build(
    Database db) const {
  KQR_RETURN_NOT_OK(options_.Validate());
  KQR_RETURN_NOT_OK(db.ValidateIntegrity());
  std::shared_ptr<ServingModel> model(
      new ServingModel(std::move(db), options_));
  KQR_RETURN_NOT_OK(model->Init());
  MetricsRegistry* registry = model->metrics_registry();

  if (options_.precompute_offline) {
    std::vector<TermId> all;
    all.reserve(model->vocab().size());
    for (TermId t = 0; t < model->vocab().size(); ++t) all.push_back(t);
    if (options_.use_cooccurrence_similarity) {
      TraceScope span(&model->build_trace_, "cooccurrence-precompute");
      model->PrecomputeFor(all);
      span.SetItems(all.size());
    } else {
      // Batch builders shard the per-term work across threads
      // (options.similarity.num_threads / options.closeness.num_threads)
      // and produce the same lists lazy EnsureTerm would, for any thread
      // count.
      {
        TraceScope span(&model->build_trace_, "similarity-index");
        OfflineBuildStats stats;
        model->similarity_ = SimilarityIndex::Build(
            model->graph(), model->stats(), options_.similarity, &stats);
        span.SetItems(stats.terms_built);
        RecordBuildStats(registry, "similarity-index", stats);
      }
      std::vector<TermId> eligible;
      eligible.reserve(all.size());
      for (TermId t : all) {
        // Lazy preparation gates closeness on the same degree floor.
        if (model->graph().Degree(model->graph().NodeOfTerm(t)) >=
            options_.similarity.min_degree) {
          eligible.push_back(t);
        }
      }
      {
        TraceScope span(&model->build_trace_, "closeness-index");
        OfflineBuildStats stats;
        model->closeness_ = ClosenessIndex::BuildFor(
            model->graph(), eligible, options_.closeness, &stats);
        span.SetItems(stats.terms_built);
        RecordBuildStats(registry, "closeness-index", stats);
      }
      for (TermId t : all) {
        model->prepared_flags_[t].store(1, std::memory_order_relaxed);
      }
    }
  }

  if (!snapshot_path_.empty()) {
    TraceScope span(&model->build_trace_, "snapshot-import");
    KQR_RETURN_NOT_OK(LoadOfflineSnapshotFile(model.get(), snapshot_path_));
  }

  if (options_.precompute_offline) {
    // Everything a request could touch now exists; serving reads go
    // lock-free from here on.
    model->similarity_.Freeze();
    model->closeness_.Freeze();
    model->fully_prepared_.store(true, std::memory_order_release);
    // The lists are final, so the static decode-bound caps are too.
    model->term_bounds_ = ComputeTermBounds(
        model->similarity_, model->closeness_, model->vocab().size());
  }

#ifndef NDEBUG
  // Debug builds prove the frozen structures well-formed before anything
  // serves from them, so an offline-stage bug fails the build step loudly
  // instead of surfacing as silently wrong rankings downstream.
  if (options_.debug_audit) {
    TraceScope span(&model->build_trace_, "debug-audit");
    const AuditReport report = ModelAuditor().Audit(*model);
    if (!report.ok()) {
      return Status::Corruption("model failed its build audit: " +
                                report.Summary() + "\n" +
                                report.ToString());
    }
  }
#endif

  // Publish the per-stage build timings (Init's spans plus the blocks
  // above) as gauges, then stop the trace: the spans are frozen once the
  // model is shared.
  if (registry != nullptr) {
    for (const TraceSpan& span : model->build_trace_.spans()) {
      registry
          ->GetGauge(std::string("kqr_build_stage_seconds{stage=\"") +
                     span.name + "\"}")
          ->Set(span.duration_seconds);
    }
    registry->GetGauge("kqr_build_vocab_terms")
        ->Set(static_cast<double>(model->vocab().size()));
    registry->GetGauge("kqr_build_graph_nodes")
        ->Set(static_cast<double>(model->graph().num_nodes()));
    registry->GetGauge("kqr_build_graph_edges")
        ->Set(static_cast<double>(model->graph().num_edges()));
  }
  model->build_trace_.Disable();

  return std::shared_ptr<const ServingModel>(std::move(model));
}

Status EngineBuilder::SaveModel(const ServingModel& model,
                                const std::string& path) {
  return SaveModelFile(model, path);
}

}  // namespace kqr
