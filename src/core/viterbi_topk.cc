#include "core/viterbi_topk.h"

#include <algorithm>

#include "common/logging.h"
#include "common/top_k.h"

namespace kqr {

std::vector<DecodedPath> ViterbiTopK(const HmmModel& model, size_t k,
                                     ViterbiScratch* scratch) {
  const size_t m = model.num_positions();
  std::vector<DecodedPath> out;
  if (m == 0 || k == 0) return out;

  ViterbiScratch local;
  ViterbiScratch& s = scratch != nullptr ? *scratch : local;

  // L[c][i] = up to k best paths ending at state i of position c, sorted
  // descending. Positions/states beyond this request's shape may hold
  // stale data from a previous request; every loop below is bounded by
  // the current model's shape, so that data is never read.
  auto& L = s.cells;
  if (L.size() < m) L.resize(m);

  if (L[0].size() < model.num_states(0)) L[0].resize(model.num_states(0));
  for (size_t i = 0; i < model.num_states(0); ++i) {
    L[0][i].clear();
    L[0][i].push_back(
        ViterbiCell{model.pi[i] * model.emission[0][i], -1, -1});
  }

  for (size_t c = 1; c < m; ++c) {
    if (L[c].size() < model.num_states(c)) L[c].resize(model.num_states(c));
    for (size_t i = 0; i < model.num_states(c); ++i) {
      L[c][i].clear();
      TopK<std::pair<int, int>> top(k);
      for (size_t j = 0; j < model.num_states(c - 1); ++j) {
        double edge = model.trans[c - 1][j][i] * model.emission[c][i];
        if (edge <= 0.0) continue;
        for (size_t r = 0; r < L[c - 1][j].size(); ++r) {
          top.Add(L[c - 1][j][r].score * edge,
                  {static_cast<int>(j), static_cast<int>(r)});
        }
      }
      for (auto& [prev, score] : top.TakeSorted()) {
        L[c][i].push_back(ViterbiCell{score, prev.first, prev.second});
      }
    }
  }

  // Gather global top-k over the last position.
  TopK<std::pair<int, int>> finals(k);
  for (size_t i = 0; i < model.num_states(m - 1); ++i) {
    for (size_t r = 0; r < L[m - 1][i].size(); ++r) {
      finals.Add(L[m - 1][i][r].score,
                 {static_cast<int>(i), static_cast<int>(r)});
    }
  }

  for (auto& [end, score] : finals.TakeSorted()) {
    DecodedPath path;
    path.score = score;
    path.states.assign(m, 0);
    int state = end.first;
    int rank = end.second;
    for (size_t c = m; c-- > 0;) {
      path.states[c] = state;
      const ViterbiCell& cell = L[c][state][rank];
      state = cell.prev_state;
      rank = cell.prev_rank;
    }
    out.push_back(std::move(path));
  }
  return out;
}

void ViterbiDecodeInto(const HmmModel& model, ViterbiScratch* scratch,
                       DecodedPath* best) {
  KQR_CHECK(scratch != nullptr && best != nullptr);
  best->states.clear();
  best->score = 0.0;
  const size_t m = model.num_positions();
  if (m == 0) return;

  auto& delta = scratch->delta;
  auto& back = scratch->back;
  if (delta.size() < m) delta.resize(m);
  if (back.size() < m) back.resize(m);

  delta[0].assign(model.num_states(0), 0.0);
  back[0].assign(model.num_states(0), -1);
  for (size_t i = 0; i < model.num_states(0); ++i) {
    delta[0][i] = model.pi[i] * model.emission[0][i];
  }
  for (size_t c = 1; c < m; ++c) {
    delta[c].assign(model.num_states(c), 0.0);
    back[c].assign(model.num_states(c), -1);
    for (size_t i = 0; i < model.num_states(c); ++i) {
      double best_score = 0.0;
      int arg = -1;
      for (size_t j = 0; j < model.num_states(c - 1); ++j) {
        double s = delta[c - 1][j] * model.trans[c - 1][j][i];
        if (s > best_score) {
          best_score = s;
          arg = static_cast<int>(j);
        }
      }
      delta[c][i] = best_score * model.emission[c][i];
      back[c][i] = arg;
    }
  }

  // Backtrack the single best path.
  size_t last = m - 1;
  int arg = 0;
  double best_score = -1.0;
  for (size_t i = 0; i < model.num_states(last); ++i) {
    if (delta[last][i] > best_score) {
      best_score = delta[last][i];
      arg = static_cast<int>(i);
    }
  }
  best->score = best_score;
  best->states.assign(m, 0);
  for (size_t c = m; c-- > 0;) {
    best->states[c] = arg;
    arg = back[c][arg];
    if (arg < 0 && c > 0) {
      // Unreachable state chain (can happen if every transition into the
      // argmax is zero); degenerate but keep indices valid.
      arg = 0;
    }
  }
}

ViterbiOutcome ViterbiDecode(const HmmModel& model) {
  ViterbiOutcome outcome;
  ViterbiScratch scratch;
  ViterbiDecodeInto(model, &scratch, &outcome.best);
  // The scratch was freshly allocated, so delta holds exactly
  // num_positions rows — safe to hand out as the outcome table.
  outcome.delta = std::move(scratch.delta);
  return outcome;
}

}  // namespace kqr
