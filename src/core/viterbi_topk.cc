#include "core/viterbi_topk.h"

#include <algorithm>
#include <functional>

#include "common/logging.h"
#include "common/top_k.h"

namespace kqr {

namespace {

// Inserts `score` into the sorted-descending cell block at `base` with
// `count` live slots (capacity k), replicating TopK's semantics exactly:
// ties keep the earlier insertion ahead, and when full the evicted slot is
// the last one (lowest score; among tied minima the latest inserted, which
// sorted-after-equals insertion keeps at the back). Returns the new count.
inline int32_t CellInsert(double* scores, int32_t* prev_states,
                          int32_t* prev_ranks, int32_t count, size_t k,
                          double score, int32_t prev_state,
                          int32_t prev_rank) {
  int32_t pos = count;
  if (count == static_cast<int32_t>(k)) {
    pos = count - 1;  // evict the last slot
  }
  while (pos > 0 && scores[pos - 1] < score) --pos;
  for (int32_t t = (count == static_cast<int32_t>(k) ? count - 1 : count);
       t > pos; --t) {
    scores[t] = scores[t - 1];
    prev_states[t] = prev_states[t - 1];
    prev_ranks[t] = prev_ranks[t - 1];
  }
  scores[pos] = score;
  prev_states[pos] = prev_state;
  prev_ranks[pos] = prev_rank;
  return count == static_cast<int32_t>(k) ? count : count + 1;
}

}  // namespace

std::vector<DecodedPath> ViterbiTopK(const HmmModel& model, size_t k,
                                     ViterbiScratch* scratch,
                                     ViterbiStats* stats, bool prune) {
  const size_t m = model.num_positions();
  std::vector<DecodedPath> out;
  if (stats != nullptr) *stats = ViterbiStats{};
  if (m == 0 || k == 0) return out;
  for (size_t c = 0; c < m; ++c) {
    // A position with no candidate states admits no complete path.
    if (model.num_states(c) == 0) return out;
  }

  ViterbiScratch local;
  ViterbiScratch& s = scratch != nullptr ? *scratch : local;

  // Flat SoA trellis: cell (c, i) owns k slots starting at
  // (state_offset[c] + i) · k, sorted by descending score. Slots beyond
  // cell_count may hold stale data from a previous request; cell_count
  // bounds every read, so it is never observed.
  s.state_offset.assign(m + 1, 0);
  for (size_t c = 0; c < m; ++c) {
    s.state_offset[c + 1] = s.state_offset[c] + model.num_states(c);
  }
  const size_t total_cells = s.state_offset[m];
  const size_t slots = total_cells * k;
  if (s.cell_score.size() < slots) {
    s.cell_score.resize(slots);
    s.cell_prev_state.resize(slots);
    s.cell_prev_rank.resize(slots);
  }
  s.cell_count.assign(total_cells, 0);

  // Backward max-product pass: suffix[state_offset[c]+i] is the exact
  // best mass any completion strictly after position c can collect from
  // state i. It refines the model's position-level suffix_bound (for all
  // i, suffix[c,i] ≤ suffix_bound[c], since each factor is dominated by
  // the position maxima) and makes the per-extension upper bound
  //   prefix · edge · suffix[c,i]
  // achievable — the greedy completion realizes it — which is what lets
  // θ stay a certified lower bound on the final k-th best score.
  if (prune) {
    if (s.suffix.size() < total_cells) s.suffix.resize(total_cells);
    const size_t last_off = s.state_offset[m - 1];
    for (size_t i = 0; i < model.num_states(m - 1); ++i) {
      s.suffix[last_off + i] = 1.0;
    }
    for (size_t c = m - 1; c-- > 0;) {
      const size_t off = s.state_offset[c];
      const size_t next_off = s.state_offset[c + 1];
      const size_t nn = model.num_states(c + 1);
      for (size_t i = 0; i < model.num_states(c); ++i) {
        double best = 0.0;
        const std::vector<double>& row = model.trans[c][i];
        for (size_t j = 0; j < nn; ++j) {
          const double v = row[j] * model.emission[c + 1][j] *
                           s.suffix[next_off + j];
          if (v > best) best = v;
        }
        s.suffix[off + i] = best;
      }
    }
  }

  // θ = best certified lower bound on the final k-th best complete-path
  // score. Within one position, every slot insertion corresponds to a
  // distinct prefix, hence (via its greedy completion) a distinct
  // complete path — so once the per-position min-heap holds k achievable
  // scores, its minimum is sound. The heap resets at each position
  // (mixing positions could count the same complete path twice: a prefix
  // and its own extension complete to the same path); θ itself only ever
  // rises. Comparisons go against theta_cut = θ·kDecodeThetaSlack so that
  // ulp-level disagreement between forward products and the backward
  // suffix bound can never cut a genuine top-k path (see the constant's
  // docs in viterbi_topk.h).
  double theta = 0.0;
  double theta_cut = 0.0;
  std::vector<double>& heap = s.theta_heap;
  heap.clear();
  const auto offer = [&heap, &theta, &theta_cut, k](double achievable) {
    if (heap.size() < k) {
      heap.push_back(achievable);
      std::push_heap(heap.begin(), heap.end(), std::greater<double>());
      if (heap.size() == k && heap.front() > theta) {
        theta = heap.front();
        theta_cut = theta * kDecodeThetaSlack;
      }
    } else if (achievable > heap.front()) {
      std::pop_heap(heap.begin(), heap.end(), std::greater<double>());
      heap.back() = achievable;
      std::push_heap(heap.begin(), heap.end(), std::greater<double>());
      if (heap.front() > theta) {
        theta = heap.front();
        theta_cut = theta * kDecodeThetaSlack;
      }
    }
  };

  size_t scored = 0;
  size_t pruned = 0;

  // Seed position 0. Zero-probability seeds are dropped: a path with
  // p(Q'|Q) = 0 is not a reformulation, and propagating such prefixes
  // only wastes slots (real smoothed models have no zero seeds anyway).
  for (size_t i = 0; i < model.num_states(0); ++i) {
    const double s0 = model.pi[i] * model.emission[0][i];
    if (s0 <= 0.0) continue;
    const size_t base = i * k;
    s.cell_score[base] = s0;
    s.cell_prev_state[base] = -1;
    s.cell_prev_rank[base] = -1;
    s.cell_count[i] = 1;
    if (prune) offer(s0 * s.suffix[i]);
  }

  for (size_t c = 1; c < m; ++c) {
    const size_t prev_off = s.state_offset[c - 1];
    const size_t off = s.state_offset[c];
    const size_t np = model.num_states(c - 1);
    const size_t ni = model.num_states(c);
    if (prune) heap.clear();
    for (size_t i = 0; i < ni; ++i) {
      const size_t base = (off + i) * k;
      double* cell_scores = s.cell_score.data() + base;
      int32_t* cell_prev = s.cell_prev_state.data() + base;
      int32_t* cell_rank = s.cell_prev_rank.data() + base;
      int32_t count = 0;
      const double nu = prune ? s.suffix[off + i] : 1.0;
      const double em = model.emission[c][i];
      for (size_t j = 0; j < np; ++j) {
        const double edge = model.trans[c - 1][j][i] * em;
        if (edge <= 0.0) continue;
        const int32_t pcount = s.cell_count[prev_off + j];
        if (pcount == 0) continue;
        const size_t pbase = (prev_off + j) * k;
        if (prune && s.cell_score[pbase] * edge * nu < theta_cut) {
          // Even the best prefix in cell (c−1, j), greedily completed,
          // lands strictly below the certified k-th best: no path through
          // this edge group can reach the output (nor can any descendant
          // of such a prefix — its own bound only shrinks).
          ++pruned;
          continue;
        }
        ++scored;
        for (int32_t r = 0; r < pcount; ++r) {
          const double sc = s.cell_score[pbase + r] * edge;
          // Ranks are sorted descending, so both cutoffs are breaks.
          if (prune && sc * nu < theta_cut) break;
          if (count == static_cast<int32_t>(k) &&
              sc <= cell_scores[k - 1]) {
            break;
          }
          count = CellInsert(cell_scores, cell_prev, cell_rank, count, k, sc,
                             static_cast<int32_t>(j), r);
          if (prune) offer(sc * nu);
        }
      }
      s.cell_count[off + i] = count;
    }
  }

  // Gather the global top-k over the last position.
  TopK<std::pair<int, int>> finals(k);
  const size_t last_off = s.state_offset[m - 1];
  for (size_t i = 0; i < model.num_states(m - 1); ++i) {
    const size_t base = (last_off + i) * k;
    const int32_t count = s.cell_count[last_off + i];
    for (int32_t r = 0; r < count; ++r) {
      finals.Add(s.cell_score[base + r],
                 {static_cast<int>(i), static_cast<int>(r)});
    }
  }

  for (auto& [end, score] : finals.TakeSorted()) {
    DecodedPath path;
    path.score = score;
    path.states.assign(m, 0);
    int state = end.first;
    int rank = end.second;
    for (size_t c = m; c-- > 0;) {
      path.states[c] = state;
      const size_t slot =
          (s.state_offset[c] + static_cast<size_t>(state)) * k +
          static_cast<size_t>(rank);
      state = s.cell_prev_state[slot];
      rank = s.cell_prev_rank[slot];
    }
    out.push_back(std::move(path));
  }
  if (stats != nullptr) {
    stats->extensions_scored = scored;
    stats->extensions_pruned = pruned;
  }
  return out;
}

void ViterbiDecodeInto(const HmmModel& model, ViterbiScratch* scratch,
                       DecodedPath* best) {
  KQR_CHECK(scratch != nullptr && best != nullptr);
  best->states.clear();
  best->score = 0.0;
  const size_t m = model.num_positions();
  if (m == 0) return;

  auto& delta = scratch->delta;
  auto& back = scratch->back;
  if (delta.size() < m) delta.resize(m);
  if (back.size() < m) back.resize(m);

  bool feasible = true;
  delta[0].assign(model.num_states(0), 0.0);
  back[0].assign(model.num_states(0), -1);
  for (size_t i = 0; i < model.num_states(0); ++i) {
    delta[0][i] = model.pi[i] * model.emission[0][i];
  }
  for (size_t c = 1; c < m; ++c) {
    delta[c].assign(model.num_states(c), 0.0);
    back[c].assign(model.num_states(c), -1);
    for (size_t i = 0; i < model.num_states(c); ++i) {
      double best_score = 0.0;
      int arg = -1;
      for (size_t j = 0; j < model.num_states(c - 1); ++j) {
        double s = delta[c - 1][j] * model.trans[c - 1][j][i];
        if (s > best_score) {
          best_score = s;
          arg = static_cast<int>(j);
        }
      }
      delta[c][i] = best_score * model.emission[c][i];
      back[c][i] = arg;
    }
  }
  for (size_t c = 0; c < m; ++c) {
    if (model.num_states(c) == 0) feasible = false;
  }
  // A zero-state position admits no complete path: leave *best empty with
  // score 0 (the δ/back rows above are still shaped for this request, so
  // A* can keep using them as its heuristic table).
  if (!feasible) return;

  // Backtrack the single best path.
  const size_t last = m - 1;
  int arg = 0;
  double best_score = delta[last][0];
  for (size_t i = 1; i < model.num_states(last); ++i) {
    if (delta[last][i] > best_score) {
      best_score = delta[last][i];
      arg = static_cast<int>(i);
    }
  }
  best->score = best_score;
  best->states.assign(m, 0);
  for (size_t c = m; c-- > 0;) {
    best->states[c] = arg;
    arg = back[c][arg];
    if (arg < 0 && c > 0) {
      // Unreachable state chain (can happen if every transition into the
      // argmax is zero); degenerate but keep indices valid.
      arg = 0;
    }
  }
}

ViterbiOutcome ViterbiDecode(const HmmModel& model) {
  ViterbiOutcome outcome;
  ViterbiScratch scratch;
  ViterbiDecodeInto(model, &scratch, &outcome.best);
  // The scratch was freshly allocated, so delta holds exactly
  // num_positions rows — safe to hand out as the outcome table.
  outcome.delta = std::move(scratch.delta);
  return outcome;
}

}  // namespace kqr
