#include "core/viterbi_topk.h"

#include <algorithm>

#include "common/logging.h"
#include "common/top_k.h"

namespace kqr {

namespace {
/// Backtracking record for the widened DP: which (prev_state, prev_rank)
/// produced the rank-r path ending at this cell.
struct CellPath {
  double score;
  int prev_state;  // -1 at position 0
  int prev_rank;
};
}  // namespace

std::vector<DecodedPath> ViterbiTopK(const HmmModel& model, size_t k) {
  const size_t m = model.num_positions();
  std::vector<DecodedPath> out;
  if (m == 0 || k == 0) return out;

  // L[c][i] = up to k best paths ending at state i of position c,
  // sorted descending.
  std::vector<std::vector<std::vector<CellPath>>> L(m);

  L[0].resize(model.num_states(0));
  for (size_t i = 0; i < model.num_states(0); ++i) {
    L[0][i].push_back(
        CellPath{model.pi[i] * model.emission[0][i], -1, -1});
  }

  for (size_t c = 1; c < m; ++c) {
    L[c].resize(model.num_states(c));
    for (size_t i = 0; i < model.num_states(c); ++i) {
      TopK<std::pair<int, int>> top(k);
      for (size_t j = 0; j < model.num_states(c - 1); ++j) {
        double edge = model.trans[c - 1][j][i] * model.emission[c][i];
        if (edge <= 0.0) continue;
        for (size_t r = 0; r < L[c - 1][j].size(); ++r) {
          top.Add(L[c - 1][j][r].score * edge,
                  {static_cast<int>(j), static_cast<int>(r)});
        }
      }
      for (auto& [prev, score] : top.TakeSorted()) {
        L[c][i].push_back(CellPath{score, prev.first, prev.second});
      }
    }
  }

  // Gather global top-k over the last position.
  TopK<std::pair<int, int>> finals(k);
  for (size_t i = 0; i < model.num_states(m - 1); ++i) {
    for (size_t r = 0; r < L[m - 1][i].size(); ++r) {
      finals.Add(L[m - 1][i][r].score,
                 {static_cast<int>(i), static_cast<int>(r)});
    }
  }

  for (auto& [end, score] : finals.TakeSorted()) {
    DecodedPath path;
    path.score = score;
    path.states.assign(m, 0);
    int state = end.first;
    int rank = end.second;
    for (size_t c = m; c-- > 0;) {
      path.states[c] = state;
      const CellPath& cell = L[c][state][rank];
      state = cell.prev_state;
      rank = cell.prev_rank;
    }
    out.push_back(std::move(path));
  }
  return out;
}

ViterbiOutcome ViterbiDecode(const HmmModel& model) {
  ViterbiOutcome outcome;
  const size_t m = model.num_positions();
  if (m == 0) return outcome;

  auto& delta = outcome.delta;
  delta.resize(m);
  std::vector<std::vector<int>> back(m);

  delta[0].resize(model.num_states(0));
  back[0].assign(model.num_states(0), -1);
  for (size_t i = 0; i < model.num_states(0); ++i) {
    delta[0][i] = model.pi[i] * model.emission[0][i];
  }
  for (size_t c = 1; c < m; ++c) {
    delta[c].assign(model.num_states(c), 0.0);
    back[c].assign(model.num_states(c), -1);
    for (size_t i = 0; i < model.num_states(c); ++i) {
      double best = 0.0;
      int arg = -1;
      for (size_t j = 0; j < model.num_states(c - 1); ++j) {
        double s = delta[c - 1][j] * model.trans[c - 1][j][i];
        if (s > best) {
          best = s;
          arg = static_cast<int>(j);
        }
      }
      delta[c][i] = best * model.emission[c][i];
      back[c][i] = arg;
    }
  }

  // Backtrack the single best path.
  size_t last = m - 1;
  int arg = 0;
  double best = -1.0;
  for (size_t i = 0; i < model.num_states(last); ++i) {
    if (delta[last][i] > best) {
      best = delta[last][i];
      arg = static_cast<int>(i);
    }
  }
  outcome.best.score = best;
  outcome.best.states.assign(m, 0);
  for (size_t c = m; c-- > 0;) {
    outcome.best.states[c] = arg;
    arg = back[c][arg];
    if (arg < 0 && c > 0) {
      // Unreachable state chain (can happen if every transition into the
      // argmax is zero); degenerate but keep indices valid.
      arg = 0;
    }
  }
  return outcome;
}

}  // namespace kqr
