// Algorithm 3: two-stage top-k decoding. Stage 1 runs classical Viterbi,
// memorizing δ (the exact max prefix score per cell). Stage 2 runs an A*
// best-first search *backwards* from the last position: a partial path is
// a suffix; its g-score is the exact suffix mass and its h-score is the
// δ-derived optimal completion, so f = g·h is an exact upper bound and
// completed paths pop out of the frontier in true top-k order.
//
// Suffixes live in an index-based SoA pool (AStarScratch) instead of
// shared-pointer linked lists: augmenting a suffix appends one pool entry
// pointing at the shared tail, and the whole pool plus the frontier heap
// can be reused across requests by a serving thread. Passing a null
// scratch allocates locally and is equivalent.
//
// With `prune` on, the seed f-values (which equal δ at the last position,
// i.e. k achievable complete-path scores) certify a lower bound θ on the
// final k-th best score, and any augmentation with f < θ is never pushed.
// Because f is exact, such nodes could never pop before the k-th
// completion anyway — pruning leaves the pop sequence (and hence the
// output) bit-identical while shrinking the frontier.

#pragma once

#include <cstdint>
#include <vector>

#include "core/viterbi_topk.h"

namespace kqr {

/// \brief Instrumentation of one Algorithm-3 run, feeding Figs. 8–10.
struct AStarStats {
  double viterbi_seconds = 0.0;  // stage 1
  double astar_seconds = 0.0;    // stage 2
  size_t nodes_expanded = 0;     // IP pops
  size_t nodes_generated = 0;    // augmentations pushed
  size_t nodes_pruned = 0;       // augmentations skipped via the θ bound
};

/// \brief An incomplete path on the A* frontier.
struct AStarFrontier {
  double f;      // g × h — exact upper bound on any completion
  double g;      // suffix mass: emissions c..m−1, transitions c..m−2
  size_t c;      // position of the suffix head
  int32_t path;  // pool index of the suffix head
};

/// \brief Reusable buffers for AStarTopK: the stage-1 Viterbi tables, the
/// suffix pool (SoA: pool_state[n] is the head state of suffix n,
/// pool_next[n] the pool index of its tail toward position m−1, −1
/// terminating), and the frontier heap. Cleared (not shrunk) per call.
struct AStarScratch {
  ViterbiScratch viterbi;
  DecodedPath viterbi_best;
  std::vector<int32_t> pool_state;
  std::vector<int32_t> pool_next;
  std::vector<AStarFrontier> heap;
  std::vector<double> seeds;  ///< positive seed f-values, for the θ bound
};

/// \brief Top-k sequences by Eq. 10, best first — identical output contract
/// to ViterbiTopK, different cost profile. `prune` toggles θ-bound frontier
/// pruning; results are identical either way.
std::vector<DecodedPath> AStarTopK(const HmmModel& model, size_t k,
                                   AStarStats* stats = nullptr,
                                   AStarScratch* scratch = nullptr,
                                   bool prune = true);

}  // namespace kqr
