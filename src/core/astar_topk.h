// Algorithm 3: two-stage top-k decoding. Stage 1 runs classical Viterbi,
// memorizing δ (the exact max prefix score per cell). Stage 2 runs an A*
// best-first search *backwards* from the last position: a partial path is
// a suffix; its g-score is the exact suffix mass and its h-score is the
// δ-derived optimal completion, so f = g·h is an exact upper bound and
// completed paths pop out of the frontier in true top-k order.
//
// Suffixes live in an index-based pool (AStarScratch) instead of
// shared-pointer linked lists: augmenting a suffix appends one pool entry
// pointing at the shared tail, and the whole pool plus the frontier heap
// can be reused across requests by a serving thread. Passing a null
// scratch allocates locally and is equivalent.

#pragma once

#include <cstdint>
#include <vector>

#include "core/viterbi_topk.h"

namespace kqr {

/// \brief Instrumentation of one Algorithm-3 run, feeding Figs. 8–10.
struct AStarStats {
  double viterbi_seconds = 0.0;  // stage 1
  double astar_seconds = 0.0;    // stage 2
  size_t nodes_expanded = 0;     // IP pops
  size_t nodes_generated = 0;    // augmentations pushed
};

/// \brief One pooled suffix link: a state plus the pool index of the rest
/// of the suffix (toward position m−1); −1 terminates.
struct AStarSuffix {
  int state;
  int32_t next;
};

/// \brief An incomplete path on the A* frontier.
struct AStarFrontier {
  double f;      // g × h — exact upper bound on any completion
  double g;      // suffix mass: emissions c..m−1, transitions c..m−2
  size_t c;      // position of the suffix head
  int32_t path;  // pool index of the suffix head
};

/// \brief Reusable buffers for AStarTopK: the stage-1 Viterbi tables, the
/// suffix pool, and the frontier heap. Cleared (not shrunk) per call.
struct AStarScratch {
  ViterbiScratch viterbi;
  DecodedPath viterbi_best;
  std::vector<AStarSuffix> pool;
  std::vector<AStarFrontier> heap;
};

/// \brief Top-k sequences by Eq. 10, best first — identical output contract
/// to ViterbiTopK, different cost profile.
std::vector<DecodedPath> AStarTopK(const HmmModel& model, size_t k,
                                   AStarStats* stats = nullptr,
                                   AStarScratch* scratch = nullptr);

}  // namespace kqr

