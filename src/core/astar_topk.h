// Algorithm 3: two-stage top-k decoding. Stage 1 runs classical Viterbi,
// memorizing δ (the exact max prefix score per cell). Stage 2 runs an A*
// best-first search *backwards* from the last position: a partial path is
// a suffix; its g-score is the exact suffix mass and its h-score is the
// δ-derived optimal completion, so f = g·h is an exact upper bound and
// completed paths pop out of the frontier in true top-k order.

#ifndef KQR_CORE_ASTAR_TOPK_H_
#define KQR_CORE_ASTAR_TOPK_H_

#include <vector>

#include "core/viterbi_topk.h"

namespace kqr {

/// \brief Instrumentation of one Algorithm-3 run, feeding Figs. 8–10.
struct AStarStats {
  double viterbi_seconds = 0.0;  // stage 1
  double astar_seconds = 0.0;    // stage 2
  size_t nodes_expanded = 0;     // IP pops
  size_t nodes_generated = 0;    // augmentations pushed
};

/// \brief Top-k sequences by Eq. 10, best first — identical output contract
/// to ViterbiTopK, different cost profile.
std::vector<DecodedPath> AStarTopK(const HmmModel& model, size_t k,
                                   AStarStats* stats = nullptr);

}  // namespace kqr

#endif  // KQR_CORE_ASTAR_TOPK_H_
