// Score smoothing (Eqs. 5–6): the HMM's product score is "sensitive to
// zero" — one missing closeness pair kills an otherwise good query. The
// paper smooths each local score toward a global aggregate with mixing
// parameter λ, "keeping the aggregated scores unchanged in order to
// maintain the probabilistic meaning of the parameters".
//
// We realize that contract exactly: vectors are smoothed toward their own
// mean (sum preserved), transition rows toward their row mean (row sums
// preserved).

#pragma once

#include <vector>

namespace kqr {

struct SmoothingOptions {
  /// λ in Eqs. 5–6: weight of the local score; 1−λ goes to the aggregate.
  /// λ = 1 disables smoothing. The fig5 ablation sweep shows quality is
  /// monotone in λ on clean corpora; 0.9 keeps the zero-rescue property
  /// with minimal flattening.
  double lambda = 0.9;
};

/// \brief v[i] ← λ·v[i] + (1−λ)·mean(v). Sum is preserved. No-op on empty
/// input or all-zero input.
void SmoothToMean(std::vector<double>* v, double lambda);

/// \brief Applies SmoothToMean to every row of a dense row-major matrix.
void SmoothRowsToMean(std::vector<std::vector<double>>* rows,
                      double lambda);

/// \brief Scales v to sum to 1; an all-zero vector becomes uniform.
void NormalizeToDistribution(std::vector<double>* v);

}  // namespace kqr

