// Rank-based reformulation baseline (Sec. VI-B): "enumerate the possible
// combinations of corresponding terms, and return the queries with top
// similarity scores with original query" — i.e. maximize the aggregated
// similarity, ignoring closeness/cohesion entirely.

#pragma once

#include <vector>

#include "core/candidates.h"
#include "core/viterbi_topk.h"

namespace kqr {

/// \brief Top-k candidate combinations by the product of per-position
/// similarities (lazy best-first enumeration — no O(nᵐ) blowup). Returned
/// state indices refer to `candidates`.
std::vector<DecodedPath> RankBaselineTopK(
    const std::vector<std::vector<CandidateState>>& candidates, size_t k);

}  // namespace kqr

