#include "core/serving_model.h"

#include <algorithm>

#include "common/logging.h"

namespace kqr {

/// One checkout's worth of offline machinery. The similarity extractor
/// carries walk-engine scratch (reuse is what makes lazy preparation
/// cheap), and extractor reuse is bit-deterministic: every walk starts
/// from a fully reinitialized state.
struct ServingModel::PrepareScratch {
  SimilarityExtractor similarity;
  ClosenessExtractor closeness;
  std::unique_ptr<CooccurrenceSimilarity> cooccurrence;

  PrepareScratch(const TatGraph& graph, const GraphStats& stats,
                 const EngineOptions& options)
      : similarity(graph, stats, options.similarity.similarity),
        closeness(graph, options.closeness.closeness) {
    if (options.use_cooccurrence_similarity) {
      cooccurrence = std::make_unique<CooccurrenceSimilarity>(
          graph, options.cooccurrence);
    }
  }
};

Status EngineOptions::Validate() const {
  KQR_RETURN_NOT_OK(reformulator.Validate());
  if (similarity.list_size == 0) {
    return Status::InvalidArgument(
        "similarity.list_size must be positive (no similar lists means no "
        "candidates)");
  }
  if (closeness.list_size == 0) {
    return Status::InvalidArgument("closeness.list_size must be positive");
  }
  if (reformulator.hmm.smoothing.lambda < 0.0 ||
      reformulator.hmm.smoothing.lambda > 1.0) {
    return Status::InvalidArgument(
        "smoothing lambda must be in [0, 1] (it is a mixture weight)");
  }
  return Status::OK();
}

ServingModel::ServingModel(Database db, EngineOptions options)
    : db_(std::move(db)),
      options_(options),
      analyzer_(options.analyzer) {
  if (options_.enable_metrics) {
    registry_ = std::make_unique<MetricsRegistry>();
    metrics_ = ServingMetrics::ResolveIn(registry_.get());
    build_trace_.Enable();
  }
}

ServingModel::~ServingModel() = default;

Status ServingModel::Init() {
  {
    TraceScope span(&build_trace_, "inverted-index");
    KQR_ASSIGN_OR_RETURN(InvertedIndex index,
                         InvertedIndex::Build(db_, analyzer_, &vocab_));
    index_ = std::make_unique<InvertedIndex>(std::move(index));
    span.SetItems(vocab_.size());
  }

  {
    TraceScope span(&build_trace_, "tat-graph");
    KQR_ASSIGN_OR_RETURN(TatGraph graph,
                         BuildTatGraph(db_, vocab_, *index_, options_.graph));
    graph_ = std::make_unique<TatGraph>(std::move(graph));
    span.SetItems(graph_->num_nodes());
  }
  {
    TraceScope span(&build_trace_, "graph-stats");
    stats_ = std::make_unique<GraphStats>(*graph_);
  }
  search_ = std::make_unique<KeywordSearch>(*graph_, *index_,
                                            options_.search);

  prepared_flags_ =
      std::make_unique<std::atomic<uint8_t>[]>(std::max<size_t>(
          vocab_.size(), 1));
  for (size_t t = 0; t < vocab_.size(); ++t) {
    prepared_flags_[t].store(0, std::memory_order_relaxed);
  }
  term_mutexes_ = std::make_unique<Mutex[]>(kTermShards);
  return Status::OK();
}

bool ServingModel::EnsureTerm(TermId term, RequestMetricsBlock* block) const {
  if (term >= vocab_.size()) return false;
  if (fully_prepared_.load(std::memory_order_acquire)) return false;
  // Request paths stage cache accounting in the caller's block (flushed
  // once per request/batch); blockless callers (eager builds, snapshot
  // import, tools) record directly — they are off the serving hot path.
  const auto count_hit = [&]() {
    if (block != nullptr) {
      ++block->term_cache_hits;
    } else if (metrics_.term_cache_hits != nullptr) {
      metrics_.term_cache_hits->Increment();  // lint:allow metrics-discipline
    }
  };
  // Fast path: already prepared. Release store below pairs with this
  // acquire, so a reader that sees the flag also sees the inserted lists.
  if (prepared_flags_[term].load(std::memory_order_acquire) != 0) {
    count_hit();
    return false;
  }
  MutexLock lock(&term_mutexes_[term % kTermShards]);
  if (prepared_flags_[term].load(std::memory_order_relaxed) != 0) {
    count_hit();
    return false;  // lost the race; the winner prepared it
  }
  if (block != nullptr) {
    ++block->term_cache_misses;
  } else if (metrics_.term_cache_misses != nullptr) {
    metrics_.term_cache_misses->Increment();  // lint:allow metrics-discipline
  }
  PrepareTerm(term);
  prepared_flags_[term].store(1, std::memory_order_release);
  return true;
}

void ServingModel::PrepareTerm(TermId term) const {
  if (graph_->Degree(graph_->NodeOfTerm(term)) <
      options_.similarity.min_degree) {
    return;  // isolated or cut from the graph: no lists to build
  }

  // Check out pooled offline machinery (walk engines are too heavy to
  // construct per term and not shareable across threads).
  std::unique_ptr<PrepareScratch> scratch;
  {
    MutexLock lock(&pool_mu_);
    if (!pool_.empty()) {
      scratch = std::move(pool_.back());
      pool_.pop_back();
    }
  }
  if (scratch == nullptr) {
    scratch = std::make_unique<PrepareScratch>(*graph_, *stats_, options_);
  }

  if (!similarity_.Contains(term)) {
    if (options_.use_cooccurrence_similarity) {
      similarity_.Insert(term, scratch->cooccurrence->TopSimilar(term));
    } else {
      std::vector<ScoredNode> similar = scratch->similarity.TopSimilar(
          graph_->NodeOfTerm(term), options_.similarity.list_size);
      std::vector<SimilarTerm> list;
      list.reserve(similar.size());
      for (const ScoredNode& s : similar) {
        list.push_back(SimilarTerm{graph_->TermOfNode(s.node), s.score});
      }
      similarity_.Insert(term, std::move(list));
    }
  }

  if (!closeness_.Contains(term)) {
    closeness_.Insert(
        term, scratch->closeness.TopClose(term, options_.closeness.list_size));
  }

  MutexLock lock(&pool_mu_);
  pool_.push_back(std::move(scratch));
}

void ServingModel::PrecomputeFor(const std::vector<TermId>& terms) const {
  for (TermId t : terms) EnsureTerm(t);
}

size_t ServingModel::PrepareTermsBatch(const std::vector<TermId>& terms,
                                       RequestMetricsBlock* block) const {
  if (fully_prepared_.load(std::memory_order_acquire)) return 0;

  // Dedup the batch's query terms so shared terms get one double-checked
  // lookup (and at most one preparation) for the whole batch.
  std::vector<TermId> unique = terms;
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());

  size_t prepared = 0;
  for (TermId t : unique) {
    if (t < vocab_.size()) prepared += EnsureTerm(t, block) ? 1 : 0;
  }

  // The online pipeline also reads closeness between candidates, so the
  // preparation closure includes every candidate substitute. Expanding
  // from the deduped term set means a candidate shared by many requests
  // is expanded and prepared once per batch, not once per request.
  CandidateBuilder builder(similarity_, options_.reformulator.candidates);
  std::vector<TermId> substitutes;
  for (TermId t : unique) {
    if (t >= vocab_.size()) continue;
    for (const CandidateState& s : builder.BuildFor(t)) {
      if (!s.is_void) substitutes.push_back(s.term);
    }
  }
  std::sort(substitutes.begin(), substitutes.end());
  substitutes.erase(std::unique(substitutes.begin(), substitutes.end()),
                    substitutes.end());
  for (TermId t : substitutes) {
    prepared += EnsureTerm(t, block) ? 1 : 0;
  }

  if (prepared > 0) {
    if (block != nullptr) {
      block->lazy_terms_prepared += prepared;
    } else if (metrics_.lazy_terms_prepared != nullptr) {
      metrics_.lazy_terms_prepared->Increment(  // lint:allow metrics-discipline
          prepared);
    }
  }
  return prepared;
}

void ServingModel::ImportTermRelations(TermId term,
                                       std::vector<SimilarTerm> similar,
                                       std::vector<CloseTerm> close) const {
  if (term >= vocab_.size()) return;
  MutexLock lock(&term_mutexes_[term % kTermShards]);
  if (prepared_flags_[term].load(std::memory_order_relaxed) != 0) {
    return;  // never replace lists a live reader may hold
  }
  similarity_.Insert(term, std::move(similar));
  closeness_.Insert(term, std::move(close));
  prepared_flags_[term].store(1, std::memory_order_release);
}

std::vector<TermId> ServingModel::PreparedTerms() const {
  std::vector<TermId> terms;
  for (TermId t = 0; t < vocab_.size(); ++t) {
    if (prepared_flags_[t].load(std::memory_order_acquire) != 0) {
      terms.push_back(t);
    }
  }
  return terms;
}

Result<std::vector<TermId>> ServingModel::ResolveQuery(
    const std::string& text) const {
  QueryParser parser(analyzer_, vocab_);
  KeywordQuery query = parser.Parse(text);
  if (query.keywords.empty()) {
    return Status::InvalidArgument("query is empty: '" + text + "'");
  }
  std::vector<TermId> terms;
  terms.reserve(query.keywords.size());
  for (const QueryKeyword& keyword : query.keywords) {
    if (!keyword.resolved()) {
      return Status::NotFound("keyword '" + keyword.surface +
                              "' matches no term in the corpus");
    }
    // Most frequent field wins.
    TermId best = keyword.terms.front();
    for (TermId t : keyword.terms) {
      if (index_->DocFreq(t) > index_->DocFreq(best)) best = t;
    }
    terms.push_back(best);
  }
  return terms;
}

Result<std::vector<ReformulatedQuery>> ServingModel::Reformulate(
    const std::string& text, size_t k, RequestContext* ctx,
    ReformulationTimings* timings) const {
  KQR_ASSIGN_OR_RETURN(std::vector<TermId> terms, ResolveQuery(text));
  return ReformulateTerms(terms, k, ctx, timings);
}

Result<std::vector<ReformulatedQuery>> ServingModel::ReformulateTerms(
    const std::vector<TermId>& query_terms, size_t k, RequestContext* ctx,
    ReformulationTimings* timings) const {
  return ReformulateTermsWith(options_.reformulator, query_terms, k, ctx,
                              timings);
}

Result<std::vector<ReformulatedQuery>> ServingModel::ReformulateTermsWith(
    const ReformulatorOptions& opts, const std::vector<TermId>& query_terms,
    size_t k, RequestContext* ctx, ReformulationTimings* timings) const {
  KQR_RETURN_NOT_OK(opts.Validate());
  for (TermId t : query_terms) {
    if (t == kInvalidTermId || t >= vocab_.size()) {
      return Status::InvalidArgument("query term id " + std::to_string(t) +
                                     " is outside the vocabulary");
    }
  }

  // Offline products must exist for the query terms and for every
  // candidate substitute (the HMM reads closeness between candidates).
  // Eagerly built models skip this entirely; server micro-batches mostly
  // skip it too because PrepareTermsBatch ran first (every check below
  // then hits its prepared flag).
  if (!fully_prepared_.load(std::memory_order_acquire)) {
    RequestMetricsBlock* block =
        ctx != nullptr ? &ctx->metrics_block : nullptr;
    size_t prepared = 0;
    for (TermId t : query_terms) prepared += EnsureTerm(t, block) ? 1 : 0;
    CandidateBuilder builder(similarity_, opts.candidates);
    for (TermId t : query_terms) {
      for (const CandidateState& s : builder.BuildFor(t)) {
        if (!s.is_void) prepared += EnsureTerm(s.term, block) ? 1 : 0;
      }
    }
    if (ctx != nullptr) ctx->stats.lazy_terms_prepared += prepared;
    if (prepared > 0) {
      if (block != nullptr) {
        block->lazy_terms_prepared += prepared;
      } else if (metrics_.lazy_terms_prepared != nullptr) {
        metrics_.lazy_terms_prepared
            ->Increment(prepared);  // lint:allow metrics-discipline
      }
    }
    // Deadline gate after lazy preparation (first-touch preparation can
    // dwarf the online stages).
    if (ctx != nullptr && ctx->DeadlineExpired()) {
      // Flush what lazy prep staged before bailing — the pipeline's own
      // end-of-request flush is never reached on this path.
      if (!ctx->defer_metrics_flush) ctx->metrics_block.FlushInto(metrics_);
      return Status::DeadlineExceeded(
          "deadline passed after lazy term preparation");
    }
  }

  Reformulator reformulator(similarity_, closeness_, *stats_, *graph_, opts,
                            registry_ != nullptr ? &metrics_ : nullptr);
  return reformulator.Reformulate(query_terms, k, timings, ctx);
}

KeywordQuery ServingModel::QueryFromTerms(
    const std::vector<TermId>& terms) const {
  KeywordQuery query;
  query.keywords.reserve(terms.size());
  for (TermId t : terms) {
    if (t == kInvalidTermId) continue;  // void position: keyword deleted
    query.keywords.push_back(QueryKeyword{std::string(vocab_.text(t)), {t}});
  }
  return query;
}

Result<SearchOutcome> ServingModel::Search(const std::string& text) const {
  QueryParser parser(analyzer_, vocab_);
  KeywordQuery query = parser.Parse(text);
  if (!query.FullyResolved()) {
    return Status::NotFound("query has unresolvable keywords: '" + text +
                            "'");
  }
  return search_->Search(query);
}

size_t ServingModel::CountResults(
    const std::vector<TermId>& query_terms) const {
  return search_->CountResults(QueryFromTerms(query_terms));
}

size_t ServingModel::CountTrees(
    const std::vector<TermId>& query_terms) const {
  return search_->CountTrees(QueryFromTerms(query_terms));
}

}  // namespace kqr
