// Per-request state for the online serving layer. A ServingModel is
// immutable and shared; everything mutable during one Reformulate call
// lives here instead, so N threads serve concurrently by giving each its
// own RequestContext. Reusing one context across requests on the same
// thread keeps the trellis/HMM/decoder buffers' capacity warm — the
// allocations that used to happen per call become no-ops.

#pragma once

#include <chrono>
#include <cstddef>
#include <vector>

#include "core/astar_topk.h"
#include "core/candidates.h"
#include "core/hmm.h"
#include "core/viterbi_topk.h"
#include "obs/serving_metrics.h"
#include "obs/trace.h"

namespace kqr {

/// \brief Aggregated per-request statistics, accumulated across every
/// request served through one RequestContext.
struct RequestStats {
  size_t requests = 0;

  /// Stage-time sums over all requests (same breakdown as
  /// ReformulationTimings, summed).
  double candidate_seconds = 0.0;
  double model_seconds = 0.0;
  double decode_seconds = 0.0;

  /// Scratch-reuse accounting: per request, each decode stage checks once
  /// whether its buffers already had capacity (warm, a hit) or had to
  /// allocate (cold, a miss).
  size_t scratch_hits = 0;
  size_t scratch_misses = 0;

  /// Terms whose offline products were computed lazily on the serving
  /// path because a request touched them first (ServingModel fills this).
  size_t lazy_terms_prepared = 0;

  double TotalSeconds() const {
    return candidate_seconds + model_seconds + decode_seconds;
  }
  double ScratchHitRate() const {
    size_t total = scratch_hits + scratch_misses;
    return total == 0 ? 0.0 : static_cast<double>(scratch_hits) / total;
  }

  void MergeFrom(const RequestStats& other) {
    requests += other.requests;
    candidate_seconds += other.candidate_seconds;
    model_seconds += other.model_seconds;
    decode_seconds += other.decode_seconds;
    scratch_hits += other.scratch_hits;
    scratch_misses += other.scratch_misses;
    lazy_terms_prepared += other.lazy_terms_prepared;
  }
};

/// \brief Reusable per-request scratch. Not thread-safe: one context
/// belongs to one thread at a time. Default-constructed state is valid
/// (cold buffers); contents are overwritten on every request.
struct RequestContext {
  /// Candidate trellis (per-position hidden-state lists).
  std::vector<std::vector<CandidateState>> candidates;
  /// Materialized HMM for the current request.
  HmmModel model;
  /// Extended-Viterbi (Algorithm 2) DP tables.
  ViterbiScratch viterbi;
  /// Viterbi+A* (Algorithm 3) tables, suffix pool, and frontier heap.
  AStarScratch astar;

  RequestStats stats;

  /// Staged metrics for the in-flight request: the pipeline bumps these
  /// plain counters / buffered samples and the whole block is folded into
  /// the shared MetricsRegistry once per request — or once per batch when
  /// a front-end sets defer_metrics_flush and calls
  /// ServingModel::FlushRequestMetrics itself.
  RequestMetricsBlock metrics_block;
  /// When true, the pipeline leaves metrics_block unflushed after each
  /// request; the owner of the context must flush. kqr::Server sets this
  /// on its worker contexts to amortize the atomics over a batch.
  bool defer_metrics_flush = false;

  /// Per-request span recorder. Disabled by default (two branches per
  /// stage); call trace.Enable() to capture stage spans, trace.Clear()
  /// between requests to drop the previous request's spans.
  RequestTrace trace;

  /// Absolute deadline for the current request. The default (epoch) means
  /// no deadline. The online pipeline checks it between stages (after
  /// lazy preparation, candidate generation, and HMM assembly) and fails
  /// the request with StatusCode::kDeadlineExceeded — never a partial
  /// result. The serving front-end (kqr::Server) sets and clears this per
  /// request; direct callers may set it by hand.
  std::chrono::steady_clock::time_point deadline{};

  bool has_deadline() const {
    return deadline != std::chrono::steady_clock::time_point{};
  }
  /// True when a deadline is set and has passed. Costs one clock read
  /// when a deadline is set, one comparison otherwise.
  bool DeadlineExpired() const {
    return has_deadline() && std::chrono::steady_clock::now() >= deadline;
  }
};

}  // namespace kqr

