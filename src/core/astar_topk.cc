#include "core/astar_topk.h"

#include <algorithm>

#include "common/timer.h"

namespace kqr {

namespace {

// Max-f heap order for std::push_heap/pop_heap. Ties on f break toward
// the smaller pool index (FIFO): (f, path) is a strict total order, so
// the pop sequence is fully determined by which nodes exist — pruning
// removes nodes without reordering the survivors, which is what keeps the
// output bit-identical with pruning on or off even through score ties.
inline bool FrontierLess(const AStarFrontier& a, const AStarFrontier& b) {
  return a.f < b.f || (a.f == b.f && a.path > b.path);
}

}  // namespace

std::vector<DecodedPath> AStarTopK(const HmmModel& model, size_t k,
                                   AStarStats* stats, AStarScratch* scratch,
                                   bool prune) {
  std::vector<DecodedPath> out;
  const size_t m = model.num_positions();
  if (m == 0 || k == 0) return out;
  for (size_t c = 0; c < m; ++c) {
    // A position with no candidate states admits no complete path.
    if (model.num_states(c) == 0) return out;
  }

  AStarScratch local;
  AStarScratch& s = scratch != nullptr ? *scratch : local;

  Timer timer;
  // Stage 1: Viterbi; δ[c][i] is the exact best prefix mass ending at
  // state i of position c (emission at c included).
  ViterbiDecodeInto(model, &s.viterbi, &s.viterbi_best);
  const auto& delta = s.viterbi.delta;
  if (stats != nullptr) stats->viterbi_seconds = timer.ElapsedSeconds();
  timer.Reset();

  // h(c, s): best achievable mass of positions 0..c−1 plus the bridge
  // transition into state s at position c. For c = 0 it is π(s).
  auto bridge = [&](size_t c, int st) -> double {
    if (c == 0) return model.pi[st];
    double best = 0.0;
    for (size_t j = 0; j < model.num_states(c - 1); ++j) {
      double v = delta[c - 1][j] * model.trans[c - 1][j][st];
      if (v > best) best = v;
    }
    return best;
  };

  // Incomplete paths, max-f first. The pool is append-only for the whole
  // run, so frontier entries can hold plain indices into it.
  auto& pool_state = s.pool_state;
  auto& pool_next = s.pool_next;
  auto& ip = s.heap;
  pool_state.clear();
  pool_next.clear();
  ip.clear();

  auto push = [&](double f, double g, size_t c, int state, int32_t tail) {
    pool_state.push_back(static_cast<int32_t>(state));
    pool_next.push_back(tail);
    ip.push_back(AStarFrontier{f, g, c,
                               static_cast<int32_t>(pool_state.size() - 1)});
    std::push_heap(ip.begin(), ip.end(), FrontierLess);
    if (stats != nullptr) ++stats->nodes_generated;
  };

  // θ = k-th largest positive seed f. Each seed f equals δ[m−1][i] (an
  // achievable complete-path score, one distinct path per last-position
  // state), so the k best seeds certify that the final k-th best score is
  // at least θ — any node with f strictly below θ can never complete into
  // the output and need not be generated. Comparisons use
  // theta_cut = θ·kDecodeThetaSlack: augmented f = g·h re-associates the
  // products behind δ, so it can land an ulp below θ for a path that
  // actually ties the k-th best (see viterbi_topk.h).
  double theta = 0.0;
  double theta_cut = 0.0;
  if (prune) {
    auto& seeds = s.seeds;
    seeds.clear();
    for (size_t i = 0; i < model.num_states(m - 1); ++i) {
      const double f = delta[m - 1][i];
      if (f > 0.0) seeds.push_back(f);
    }
    if (seeds.size() >= k) {
      std::nth_element(seeds.begin(), seeds.begin() + (k - 1), seeds.end(),
                       std::greater<double>());
      theta = seeds[k - 1];
      theta_cut = theta * kDecodeThetaSlack;
    }
  }
  size_t pruned = 0;

  // Seed: single-state suffixes at the last position. Zero-probability
  // states are dead for queries of every length — a zero-score path is
  // not a reformulation, and ViterbiTopK never emits one.
  for (size_t i = 0; i < model.num_states(m - 1); ++i) {
    double g = model.emission[m - 1][i];
    double h = bridge(m - 1, static_cast<int>(i));
    double f = g * h;
    if (f <= 0.0) continue;  // dead state
    if (prune && f < theta_cut) {
      ++pruned;
      continue;
    }
    push(f, g, m - 1, static_cast<int>(i), -1);
  }

  while (!ip.empty() && out.size() < k) {
    std::pop_heap(ip.begin(), ip.end(), FrontierLess);
    AStarFrontier top = ip.back();
    ip.pop_back();
    if (stats != nullptr) ++stats->nodes_expanded;

    if (top.c == 0) {
      // Complete: f = g × π(s₀) is the exact Eq. 10 score.
      DecodedPath path;
      path.score = top.f;
      path.states.reserve(m);
      for (int32_t n = top.path; n >= 0; n = pool_next[n]) {
        path.states.push_back(pool_state[n]);
      }
      out.push_back(std::move(path));
      continue;
    }

    // Augment with every state of the previous position.
    size_t c = top.c - 1;
    int head = pool_state[top.path];
    for (size_t j = 0; j < model.num_states(c); ++j) {
      double g = top.g * model.trans[c][j][head] * model.emission[c][j];
      if (g <= 0.0) continue;
      double h = bridge(c, static_cast<int>(j));
      if (h <= 0.0) continue;
      double f = g * h;
      if (prune && f < theta_cut) {
        ++pruned;
        continue;
      }
      push(f, g, c, static_cast<int>(j), top.path);
    }
  }

  if (stats != nullptr) {
    stats->astar_seconds = timer.ElapsedSeconds();
    stats->nodes_pruned += pruned;
  }
  return out;
}

}  // namespace kqr
