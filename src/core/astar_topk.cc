#include "core/astar_topk.h"

#include <algorithm>
#include <memory>
#include <queue>

#include "common/timer.h"

namespace kqr {

namespace {

// A suffix path (positions c..m−1) stored as a shared linked list so that
// augmenting does not copy the tail (IP holds many overlapping suffixes).
struct SuffixNode {
  int state;
  std::shared_ptr<const SuffixNode> next;  // toward position m−1
};

struct Frontier {
  double f;       // g × h — exact upper bound on any completion
  double g;       // suffix mass: emissions c..m−1, transitions c..m−2
  size_t c;       // position of the suffix head
  std::shared_ptr<const SuffixNode> path;

  bool operator<(const Frontier& other) const { return f < other.f; }
};

}  // namespace

std::vector<DecodedPath> AStarTopK(const HmmModel& model, size_t k,
                                   AStarStats* stats) {
  std::vector<DecodedPath> out;
  const size_t m = model.num_positions();
  if (m == 0 || k == 0) return out;

  Timer timer;
  // Stage 1: Viterbi; δ[c][i] is the exact best prefix mass ending at
  // state i of position c (emission at c included).
  ViterbiOutcome viterbi = ViterbiDecode(model);
  const auto& delta = viterbi.delta;
  if (stats != nullptr) stats->viterbi_seconds = timer.ElapsedSeconds();
  timer.Reset();

  // h(c, s): best achievable mass of positions 0..c−1 plus the bridge
  // transition into state s at position c. For c = 0 it is π(s).
  auto bridge = [&](size_t c, int s) -> double {
    if (c == 0) return model.pi[s];
    double best = 0.0;
    for (size_t j = 0; j < model.num_states(c - 1); ++j) {
      double v = delta[c - 1][j] * model.trans[c - 1][j][s];
      if (v > best) best = v;
    }
    return best;
  };

  std::priority_queue<Frontier> ip;  // incomplete paths, max-f first

  // Seed: single-state suffixes at the last position.
  for (size_t i = 0; i < model.num_states(m - 1); ++i) {
    double g = model.emission[m - 1][i];
    double h = bridge(m - 1, static_cast<int>(i));
    if (g * h <= 0.0 && m > 1) continue;  // dead state
    auto node = std::make_shared<SuffixNode>(
        SuffixNode{static_cast<int>(i), nullptr});
    ip.push(Frontier{g * h, g, m - 1, std::move(node)});
    if (stats != nullptr) ++stats->nodes_generated;
  }

  while (!ip.empty() && out.size() < k) {
    Frontier top = ip.top();
    ip.pop();
    if (stats != nullptr) ++stats->nodes_expanded;

    if (top.c == 0) {
      // Complete: f = g × π(s₀) is the exact Eq. 10 score.
      DecodedPath path;
      path.score = top.f;
      path.states.reserve(m);
      for (const SuffixNode* n = top.path.get(); n != nullptr;
           n = n->next.get()) {
        path.states.push_back(n->state);
      }
      out.push_back(std::move(path));
      continue;
    }

    // Augment with every state of the previous position.
    size_t c = top.c - 1;
    int head = top.path->state;
    for (size_t j = 0; j < model.num_states(c); ++j) {
      double g = top.g * model.trans[c][j][head] * model.emission[c][j];
      if (g <= 0.0) continue;
      double h = bridge(c, static_cast<int>(j));
      if (h <= 0.0) continue;
      auto node = std::make_shared<SuffixNode>(
          SuffixNode{static_cast<int>(j), top.path});
      ip.push(Frontier{g * h, g, c, std::move(node)});
      if (stats != nullptr) ++stats->nodes_generated;
    }
  }

  if (stats != nullptr) stats->astar_seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace kqr
