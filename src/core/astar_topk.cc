#include "core/astar_topk.h"

#include <algorithm>

#include "common/timer.h"

namespace kqr {

namespace {

// Max-f heap order for std::push_heap/pop_heap.
inline bool FrontierLess(const AStarFrontier& a, const AStarFrontier& b) {
  return a.f < b.f;
}

}  // namespace

std::vector<DecodedPath> AStarTopK(const HmmModel& model, size_t k,
                                   AStarStats* stats, AStarScratch* scratch) {
  std::vector<DecodedPath> out;
  const size_t m = model.num_positions();
  if (m == 0 || k == 0) return out;

  AStarScratch local;
  AStarScratch& s = scratch != nullptr ? *scratch : local;

  Timer timer;
  // Stage 1: Viterbi; δ[c][i] is the exact best prefix mass ending at
  // state i of position c (emission at c included).
  ViterbiDecodeInto(model, &s.viterbi, &s.viterbi_best);
  const auto& delta = s.viterbi.delta;
  if (stats != nullptr) stats->viterbi_seconds = timer.ElapsedSeconds();
  timer.Reset();

  // h(c, s): best achievable mass of positions 0..c−1 plus the bridge
  // transition into state s at position c. For c = 0 it is π(s).
  auto bridge = [&](size_t c, int st) -> double {
    if (c == 0) return model.pi[st];
    double best = 0.0;
    for (size_t j = 0; j < model.num_states(c - 1); ++j) {
      double v = delta[c - 1][j] * model.trans[c - 1][j][st];
      if (v > best) best = v;
    }
    return best;
  };

  // Incomplete paths, max-f first. The pool is append-only for the whole
  // run, so frontier entries can hold plain indices into it.
  auto& pool = s.pool;
  auto& ip = s.heap;
  pool.clear();
  ip.clear();

  auto push = [&](double f, double g, size_t c, int state, int32_t tail) {
    pool.push_back(AStarSuffix{state, tail});
    ip.push_back(
        AStarFrontier{f, g, c, static_cast<int32_t>(pool.size() - 1)});
    std::push_heap(ip.begin(), ip.end(), FrontierLess);
    if (stats != nullptr) ++stats->nodes_generated;
  };

  // Seed: single-state suffixes at the last position.
  for (size_t i = 0; i < model.num_states(m - 1); ++i) {
    double g = model.emission[m - 1][i];
    double h = bridge(m - 1, static_cast<int>(i));
    if (g * h <= 0.0 && m > 1) continue;  // dead state
    push(g * h, g, m - 1, static_cast<int>(i), -1);
  }

  while (!ip.empty() && out.size() < k) {
    std::pop_heap(ip.begin(), ip.end(), FrontierLess);
    AStarFrontier top = ip.back();
    ip.pop_back();
    if (stats != nullptr) ++stats->nodes_expanded;

    if (top.c == 0) {
      // Complete: f = g × π(s₀) is the exact Eq. 10 score.
      DecodedPath path;
      path.score = top.f;
      path.states.reserve(m);
      for (int32_t n = top.path; n >= 0; n = pool[n].next) {
        path.states.push_back(pool[n].state);
      }
      out.push_back(std::move(path));
      continue;
    }

    // Augment with every state of the previous position.
    size_t c = top.c - 1;
    int head = pool[top.path].state;
    for (size_t j = 0; j < model.num_states(c); ++j) {
      double g = top.g * model.trans[c][j][head] * model.emission[c][j];
      if (g <= 0.0) continue;
      double h = bridge(c, static_cast<int>(j));
      if (h <= 0.0) continue;
      push(g * h, g, c, static_cast<int>(j), top.path);
    }
  }

  if (stats != nullptr) stats->astar_seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace kqr
