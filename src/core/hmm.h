// The reformulation HMM (Sec. V-B): observed symbols are the input query
// terms; hidden states are the candidate substitutes. π comes from term
// frequency (Eq. 7), transitions from closeness (Eq. 8), emissions from
// similarity (Eq. 9), all smoothed per Eqs. 5–6 and normalized into
// distributions.

#pragma once

#include <span>
#include <vector>

#include "closeness/closeness_index.h"
#include "core/candidates.h"
#include "core/smoothing.h"
#include "graph/graph_stats.h"
#include "walk/similarity_index.h"

namespace kqr {

/// \brief Fully materialized trellis for one query. Positions 0..m−1, with
/// n_c states at position c (n ≤ candidates + original + void).
struct HmmModel {
  /// states[c][i] — candidate i at position c.
  std::vector<std::vector<CandidateState>> states;
  /// pi[i] — initial distribution over states[0] (Eq. 7).
  std::vector<double> pi;
  /// emission[c][i] — B(states[c][i], q_c) (Eq. 9), normalized per c.
  std::vector<std::vector<double>> emission;
  /// trans[c][i][j] — A between states[c][i] and states[c+1][j] (Eq. 8),
  /// normalized per row. Size m−1.
  std::vector<std::vector<std::vector<double>>> trans;

  /// Per-position upper bounds for WAND/MaxScore-style decode pruning,
  /// filled by ComputeBounds() (HmmBuilder::BuildInto always calls it).
  /// emission_max[c] = max_i emission[c][i]; trans_max[c] = max over the
  /// whole slice trans[c] (size m−1); suffix_bound[c] bounds the mass any
  /// path can collect strictly after position c:
  ///   suffix_bound[m−1] = 1,
  ///   suffix_bound[c]   = trans_max[c] · emission_max[c+1] · suffix_bound[c+1].
  /// Hand-assembled models (tests) may leave these empty — bounds_ready()
  /// is false and the decoders derive their own bounds instead.
  std::vector<double> emission_max;
  std::vector<double> trans_max;
  std::vector<double> suffix_bound;

  size_t num_positions() const { return states.size(); }
  size_t num_states(size_t position) const {
    return states[position].size();
  }

  /// \brief Recomputes emission_max / trans_max / suffix_bound from the
  /// current matrices. Idempotent; must be re-run after any mutation.
  void ComputeBounds();

  /// True when the bound vectors match the current trellis shape.
  bool bounds_ready() const {
    const size_t m = num_positions();
    return emission_max.size() == m && suffix_bound.size() == m &&
           trans_max.size() + (m > 0 ? 1 : 0) == m;
  }

  /// Full path probability p(Q'|Q) (Eq. 10) for states `path` (one state
  /// index per position).
  double PathScore(const std::vector<int>& path) const;
};

struct HmmOptions {
  SmoothingOptions smoothing;
  /// Transition affinity for void states (they carry no closeness of their
  /// own; the walk passes "through" them at this discount).
  double void_transition = 0.05;
  /// Compress closeness (Eq. 8) and frequency (Eq. 7) through log1p
  /// before normalization. Raw path-count closeness spans four orders of
  /// magnitude and would drown the similarity emissions; the paper's
  /// pruned top-lists had a bounded range, which the compression
  /// restores.
  bool log_compress = true;
  /// Log-linear weight on the transition component: A is raised to this
  /// power (after compression, before smoothing/normalization). 1 is the
  /// paper's plain product (Eq. 10); < 1 softens the closeness pull
  /// relative to the similarity emissions.
  double transition_weight = 1.0;
  /// Log-linear weight on the emission component: B is raised to this
  /// power before smoothing/normalization. > 1 sharpens the similarity
  /// signal so that frequent-but-dissimilar candidates (generic filler
  /// terms) cannot ride in on π·A alone. 2 balances the components on
  /// boilerplate-heavy corpora (see the fig5 ablation).
  double emission_weight = 2.0;
};

/// \brief Assembles HmmModel from the offline indexes.
class HmmBuilder {
 public:
  HmmBuilder(const ClosenessIndex& closeness, const GraphStats& stats,
             const TatGraph& graph, HmmOptions options = {})
      : closeness_(closeness),
        stats_(stats),
        graph_(graph),
        options_(options) {}

  /// \param candidates per-position candidate lists (CandidateBuilder
  /// output); every position must be non-empty.
  HmmModel Build(
      const std::vector<std::vector<CandidateState>>& candidates) const;

  /// \brief Like Build, but fills `*model` in place so a serving thread
  /// can reuse the matrices' capacity across requests. All fields are
  /// overwritten.
  void BuildInto(const std::vector<std::vector<CandidateState>>& candidates,
                 HmmModel* model) const;

 private:
  double TransitionAffinity(const CandidateState& from,
                            const CandidateState& to) const;

  const ClosenessIndex& closeness_;
  const GraphStats& stats_;
  const TatGraph& graph_;
  HmmOptions options_;
};

/// \brief Per-term static decode-bound caps, precomputed offline and
/// persisted in v3 model files: emission_cap(t) is the largest similarity
/// score in t's similar-term list, transition_cap(t) the largest closeness
/// in its close-term list. They upper-bound any per-request emission /
/// transition mass a candidate for t can contribute, so a serving process
/// can cut candidates before trellis assembly (wiring that cut into the
/// candidate stage is ROADMAP item 3 — today the table is stored, audited,
/// and exposed). Backed either by owned memory or by raw sections of a
/// mapped model file (the file must then outlive the table).
class TermBoundsTable {
 public:
  TermBoundsTable() = default;
  TermBoundsTable(TermBoundsTable&&) noexcept = default;
  TermBoundsTable& operator=(TermBoundsTable&&) noexcept = default;
  // Copying would alias the owned backing; the table is shared by
  // reference from its ServingModel instead.
  TermBoundsTable(const TermBoundsTable&) = delete;
  TermBoundsTable& operator=(const TermBoundsTable&) = delete;

  static TermBoundsTable FromOwned(std::vector<double> emission_caps,
                                   std::vector<double> transition_caps);
  /// Zero-copy over mapped sections; spans must outlive the table.
  static TermBoundsTable FromMapped(std::span<const double> emission_caps,
                                    std::span<const double> transition_caps);

  bool empty() const { return emission_caps_.empty(); }
  size_t size() const { return emission_caps_.size(); }

  double emission_cap(TermId term) const { return emission_caps_[term]; }
  double transition_cap(TermId term) const {
    return transition_caps_[term];
  }

  std::span<const double> emission_caps() const { return emission_caps_; }
  std::span<const double> transition_caps() const {
    return transition_caps_;
  }

 private:
  std::span<const double> emission_caps_;
  std::span<const double> transition_caps_;
  std::vector<double> owned_emission_;
  std::vector<double> owned_transition_;
};

/// \brief Computes the per-term caps from the frozen lists. Terms without
/// an entry get cap 0 (nothing to bound).
TermBoundsTable ComputeTermBounds(const SimilarityIndex& similarity,
                                  const ClosenessIndex& closeness,
                                  size_t num_terms);

}  // namespace kqr

