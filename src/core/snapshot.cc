#include "core/snapshot.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "core/serving_model.h"

namespace kqr {

namespace {
constexpr const char kMagic[] = "kqr-offline-v1";

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}
}  // namespace

uint64_t ModelFingerprint(const ServingModel& model) {
  uint64_t h = 0xcbf29ce484222325ULL;
  h = Fnv1a(h, model.vocab().size());
  h = Fnv1a(h, model.graph().num_nodes());
  h = Fnv1a(h, model.graph().num_edges());
  h = Fnv1a(h, model.db().TotalRows());
  for (char c : model.db().name()) h = Fnv1a(h, uint64_t(c));
  return h;
}

Status SaveOfflineSnapshot(const ServingModel& model,
                           std::ostream& out) {
  out.precision(17);  // round-trip doubles exactly
  out << kMagic << "\n";
  out << "fingerprint " << std::hex << ModelFingerprint(model)
      << std::dec << "\n";
  for (TermId term : model.PreparedTerms()) {
    const auto& sim = model.similarity_index().Lookup(term);
    out << "sim " << term << " " << sim.size();
    for (const SimilarTerm& s : sim) {
      out << " " << s.term << " " << s.score;
    }
    out << "\n";
    const auto& clos = model.closeness_index().Lookup(term);
    out << "clos " << term << " " << clos.size();
    for (const CloseTerm& c : clos) {
      out << " " << c.term << " " << c.closeness << " " << c.distance;
    }
    out << "\n";
  }
  if (!out) return Status::IOError("snapshot write failed");
  return Status::OK();
}

Status SaveOfflineSnapshotFile(const ServingModel& model,
                               const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' to write");
  return SaveOfflineSnapshot(model, out);
}

Status LoadOfflineSnapshot(const ServingModel* model, std::istream& in) {
  if (model == nullptr) {
    return Status::InvalidArgument("model must be non-null");
  }
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    return Status::Corruption("bad snapshot magic: '" + line + "'");
  }
  if (!std::getline(in, line)) {
    return Status::Corruption("missing fingerprint line");
  }
  {
    std::istringstream fp(line);
    std::string tag;
    uint64_t value = 0;
    fp >> tag >> std::hex >> value;
    if (!fp || tag != "fingerprint") {
      return Status::Corruption("malformed fingerprint line");
    }
    if (value != ModelFingerprint(*model)) {
      return Status::InvalidArgument(
          "snapshot fingerprint does not match this corpus");
    }
  }

  // Accumulate sim/clos pairs per term; install when both seen (a trailing
  // sim without clos installs with empty closeness at EOF).
  std::vector<SimilarTerm> pending_sim;
  TermId pending_term = kInvalidTermId;
  bool has_sim = false;
  auto flush = [&]() {
    if (pending_term != kInvalidTermId && has_sim) {
      model->ImportTermRelations(pending_term, std::move(pending_sim),
                                  {});
    }
    pending_sim.clear();
    has_sim = false;
    pending_term = kInvalidTermId;
  };

  const size_t num_terms = model->vocab().size();
  size_t line_no = 2;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string kind;
    TermId term = 0;
    size_t n = 0;
    row >> kind >> term >> n;
    if (!row || term >= num_terms) {
      return Status::Corruption("snapshot line " + std::to_string(line_no) +
                                " malformed");
    }
    if (kind == "sim") {
      flush();
      pending_term = term;
      has_sim = true;
      pending_sim.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        SimilarTerm s;
        row >> s.term >> s.score;
        if (!row || s.term >= num_terms) {
          return Status::Corruption("snapshot line " +
                                    std::to_string(line_no) +
                                    " has bad sim entry");
        }
        pending_sim.push_back(s);
      }
    } else if (kind == "clos") {
      std::vector<CloseTerm> close;
      close.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        CloseTerm c;
        row >> c.term >> c.closeness >> c.distance;
        if (!row || c.term >= num_terms) {
          return Status::Corruption("snapshot line " +
                                    std::to_string(line_no) +
                                    " has bad clos entry");
        }
        close.push_back(c);
      }
      if (term != pending_term || !has_sim) {
        return Status::Corruption(
            "snapshot line " + std::to_string(line_no) +
            ": clos record without preceding sim for term " +
            std::to_string(term));
      }
      model->ImportTermRelations(term, std::move(pending_sim),
                                  std::move(close));
      pending_sim.clear();
      has_sim = false;
      pending_term = kInvalidTermId;
    } else {
      return Status::Corruption("snapshot line " + std::to_string(line_no) +
                                " has unknown kind '" + kind + "'");
    }
  }
  flush();
  return Status::OK();
}

Status LoadOfflineSnapshotFile(const ServingModel* model,
                               const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' to read");
  return LoadOfflineSnapshot(model, in);
}

}  // namespace kqr
