#include "core/snapshot.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "audit/model_auditor.h"
#include "core/serving_model.h"

namespace kqr {

namespace {
constexpr const char kMagic[] = "kqr-offline-v2";
constexpr uint64_t kFnvBasis = 0xcbf29ce484222325ULL;

uint64_t FnvByte(uint64_t h, uint8_t b) {
  h ^= b;
  h *= 0x100000001b3ULL;
  return h;
}

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = FnvByte(h, static_cast<uint8_t>((v >> (i * 8)) & 0xff));
  }
  return h;
}

/// Folds one record line (as written, newline included) into the running
/// content checksum the trailer certifies.
uint64_t HashLine(uint64_t h, const std::string& line) {
  for (char ch : line) h = FnvByte(h, static_cast<uint8_t>(ch));
  return FnvByte(h, '\n');
}

Status CorruptAt(size_t line_no, const std::string& what) {
  return Status::Corruption("snapshot line " + std::to_string(line_no) +
                            ": " + what);
}
}  // namespace

uint64_t ModelFingerprint(const ServingModel& model) {
  uint64_t h = kFnvBasis;
  h = Fnv1a(h, model.vocab().size());
  h = Fnv1a(h, model.graph().num_nodes());
  h = Fnv1a(h, model.graph().num_edges());
  h = Fnv1a(h, model.db().TotalRows());
  for (char c : model.db().name()) {
    h = Fnv1a(h, static_cast<uint64_t>(c));
  }
  return h;
}

Status SaveOfflineSnapshot(const ServingModel& model,
                           std::ostream& out) {
  out << kMagic << "\n";
  out << "fingerprint " << std::hex << ModelFingerprint(model)
      << std::dec << "\n";
  uint64_t checksum = kFnvBasis;
  size_t records = 0;
  auto emit = [&](const std::string& line) {
    checksum = HashLine(checksum, line);
    ++records;
    out << line << "\n";
  };
  for (TermId term : model.PreparedTerms()) {
    std::ostringstream line;
    line.precision(17);  // round-trip doubles exactly
    line << "sim " << term;
    const auto& sim = model.similarity_index().Lookup(term);
    line << " " << sim.size();
    for (const SimilarTerm& s : sim) {
      line << " " << s.term << " " << s.score;
    }
    emit(line.str());

    line.str({});
    line << "clos " << term;
    const auto& clos = model.closeness_index().Lookup(term);
    line << " " << clos.size();
    for (const CloseTerm& c : clos) {
      line << " " << c.term << " " << c.closeness << " " << c.distance;
    }
    emit(line.str());
  }
  // The trailer certifies completeness (record count) and content (FNV-1a
  // over the record bytes): a truncated or bit-flipped file cannot load.
  out << "end " << records << " " << std::hex << checksum << std::dec
      << "\n";
  if (!out) return Status::IOError("snapshot write failed");
  return Status::OK();
}

Status SaveOfflineSnapshotFile(const ServingModel& model,
                               const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' to write");
  return SaveOfflineSnapshot(model, out);
}

Status LoadOfflineSnapshot(const ServingModel* model, std::istream& in) {
  if (model == nullptr) {
    return Status::InvalidArgument("model must be non-null");
  }
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    return Status::Corruption("bad snapshot magic: '" + line + "'");
  }
  if (!std::getline(in, line)) {
    return Status::Corruption("missing fingerprint line");
  }
  {
    std::istringstream fp(line);
    std::string tag;
    uint64_t value = 0;
    fp >> tag >> std::hex >> value;
    std::string extra;
    if (!fp || tag != "fingerprint" || (fp >> extra)) {
      return Status::Corruption("malformed fingerprint line");
    }
    if (value != ModelFingerprint(*model)) {
      return Status::InvalidArgument(
          "snapshot fingerprint does not match this corpus");
    }
  }

  // Phase 1: parse and audit the whole file into memory. Nothing is
  // installed until the trailer proves the byte stream complete and every
  // record passes the same validators ModelAuditor applies to live
  // structures — an import is never trusted.
  struct TermRecord {
    TermId term = kInvalidTermId;
    std::vector<SimilarTerm> sim;
    std::vector<CloseTerm> close;
  };
  std::vector<TermRecord> parsed;
  std::vector<bool> seen(model->vocab().size(), false);
  TermRecord pending;
  bool has_pending = false;

  const size_t num_terms = model->vocab().size();
  uint64_t checksum = kFnvBasis;
  size_t records = 0;
  bool saw_trailer = false;
  size_t line_no = 2;
  while (std::getline(in, line)) {
    ++line_no;
    if (saw_trailer) {
      return CorruptAt(line_no, "trailing data after the end trailer");
    }
    std::istringstream row(line);
    std::string kind;
    row >> kind;
    if (kind == "end") {
      size_t claimed_records = 0;
      uint64_t claimed_checksum = 0;
      std::string extra;
      row >> claimed_records >> std::hex >> claimed_checksum;
      if (!row || (row >> extra)) {
        return CorruptAt(line_no, "malformed end trailer");
      }
      if (claimed_records != records) {
        return CorruptAt(line_no,
                         "trailer claims " +
                             std::to_string(claimed_records) +
                             " records, file has " +
                             std::to_string(records) + " — truncated?");
      }
      if (claimed_checksum != checksum) {
        return CorruptAt(line_no,
                         "content checksum mismatch — snapshot bytes "
                         "were altered");
      }
      saw_trailer = true;
      continue;
    }

    checksum = HashLine(checksum, line);
    ++records;
    TermId term = 0;
    size_t n = 0;
    row >> term >> n;
    if (!row || term >= num_terms) {
      return CorruptAt(line_no, "malformed record");
    }
    // Lists are deduplicated term sets: anything longer than the
    // vocabulary is corrupt, and bounding n here keeps a bit-flipped
    // length from driving a huge allocation.
    if (n > num_terms) {
      return CorruptAt(line_no, "implausible list length " +
                                    std::to_string(n) + " for " +
                                    std::to_string(num_terms) + " terms");
    }
    if (kind == "sim") {
      if (has_pending) {
        return CorruptAt(line_no,
                         "sim record while term " +
                             std::to_string(pending.term) +
                             " is missing its clos record");
      }
      if (seen[term]) {
        return CorruptAt(line_no, "duplicate records for term " +
                                      std::to_string(term));
      }
      pending.term = term;
      pending.sim.clear();
      pending.sim.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        SimilarTerm s;
        row >> s.term >> s.score;
        if (!row) return CorruptAt(line_no, "bad sim entry");
        pending.sim.push_back(s);
      }
      std::string extra;
      if (row >> extra) return CorruptAt(line_no, "trailing tokens");
      Status st = ValidateSimilarList(term, pending.sim, num_terms);
      if (!st.ok()) return CorruptAt(line_no, st.message());
      has_pending = true;
    } else if (kind == "clos") {
      if (!has_pending || term != pending.term) {
        return CorruptAt(line_no,
                         "clos record without matching sim for term " +
                             std::to_string(term));
      }
      pending.close.clear();
      pending.close.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        CloseTerm c;
        row >> c.term >> c.closeness >> c.distance;
        if (!row) return CorruptAt(line_no, "bad clos entry");
        pending.close.push_back(c);
      }
      std::string extra;
      if (row >> extra) return CorruptAt(line_no, "trailing tokens");
      Status st = ValidateCloseList(term, pending.close, num_terms);
      if (!st.ok()) return CorruptAt(line_no, st.message());
      seen[term] = true;
      parsed.push_back(std::move(pending));
      pending = TermRecord{};
      has_pending = false;
    } else {
      return CorruptAt(line_no, "unknown kind '" + kind + "'");
    }
  }
  if (has_pending) {
    return Status::Corruption("snapshot truncated: term " +
                              std::to_string(pending.term) +
                              " has sim but no clos record");
  }
  if (!saw_trailer) {
    return Status::Corruption(
        "snapshot truncated: missing the end trailer");
  }

  // Phase 2: everything validated — install.
  for (TermRecord& record : parsed) {
    model->ImportTermRelations(record.term, std::move(record.sim),
                               std::move(record.close));
  }
  return Status::OK();
}

Status LoadOfflineSnapshotFile(const ServingModel* model,
                               const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' to read");
  return LoadOfflineSnapshot(model, in);
}

}  // namespace kqr
