#include "closeness/path_search.h"

#include <algorithm>
#include <deque>

#include "common/top_k.h"

namespace kqr {

std::vector<ReachedNode> SearchPaths(const TatGraph& graph, NodeId start,
                                     const PathSearchOptions& options) {
  // Sparse frontier of (node → walk count at current level).
  std::unordered_map<NodeId, double> cur;
  cur.emplace(start, 1.0);

  std::unordered_map<NodeId, ReachedNode> reached;
  reached.reserve(256);

  for (size_t len = 1; len <= options.max_length && !cur.empty(); ++len) {
    std::unordered_map<NodeId, double> next;
    next.reserve(cur.size() * 4);
    for (const auto& [u, count] : cur) {
      for (const Arc& arc : graph.Neighbors(u)) {
        NodeId v = arc.target;
        if (v == start) continue;  // never revisit the start
        double mass =
            options.weighted ? count * double(arc.weight) : count;
        next[v] += mass;
      }
    }

    // Beam pruning: keep top-`beam_width` nodes by count.
    if (options.beam_width > 0 && next.size() > options.beam_width) {
      TopK<NodeId> top(options.beam_width);
      for (const auto& [v, c] : next) top.Add(c, v);
      std::unordered_map<NodeId, double> pruned;
      pruned.reserve(options.beam_width);
      for (auto& [v, c] : top.TakeSorted()) pruned.emplace(v, c);
      next = std::move(pruned);
    }

    for (const auto& [v, c] : next) {
      auto [it, inserted] = reached.try_emplace(v);
      ReachedNode& r = it->second;
      if (inserted) {
        r.node = v;
        r.shortest = static_cast<uint32_t>(len);
        r.shortest_count = c;
      }
      r.closeness += c / static_cast<double>(len);
    }
    cur = std::move(next);
  }

  std::vector<ReachedNode> out;
  out.reserve(reached.size());
  for (auto& [v, r] : reached) out.push_back(r);
  // Deterministic order: by closeness desc, then node id.
  std::sort(out.begin(), out.end(),
            [](const ReachedNode& a, const ReachedNode& b) {
              if (a.closeness != b.closeness) {
                return a.closeness > b.closeness;
              }
              return a.node < b.node;
            });
  return out;
}

int ShortestDistance(const TatGraph& graph, NodeId a, NodeId b,
                     size_t max_distance) {
  if (a == b) return 0;
  std::unordered_map<NodeId, uint32_t> dist;
  std::deque<NodeId> queue;
  dist.emplace(a, 0);
  queue.push_back(a);
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    uint32_t d = dist[u];
    if (d >= max_distance) continue;
    for (const Arc& arc : graph.Neighbors(u)) {
      NodeId v = arc.target;
      if (dist.count(v)) continue;
      if (v == b) return static_cast<int>(d + 1);
      dist.emplace(v, d + 1);
      queue.push_back(v);
    }
  }
  return -1;
}

}  // namespace kqr
