// Bounded path search (Sec. IV-C, first stage): from a start node, count
// bounded-length paths to every reachable node, level by level, pruning
// low-count nodes to "maintain top ones and prune less frequent" as the
// paper prescribes.
//
// Counting note: exact simple-path counting is #P-hard; like the paper's
// level-by-level expansion ("distance i+1 nodes can be easily derived from
// distance i ones"), we count walks that never revisit the start node,
// which coincides with simple paths for the short bounds (≤4) used here in
// the bipartite-ish TAT topology, and is linear-time per level.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/tat_graph.h"

namespace kqr {

struct PathSearchOptions {
  /// Maximum path length (edges).
  size_t max_length = 4;
  /// Per-level beam: keep only this many highest-count nodes before
  /// expanding the next level. 0 disables pruning.
  size_t beam_width = 4096;
  /// Count weighted walks (product of edge weights) instead of plain
  /// path counts.
  bool weighted = false;
};

/// \brief Per-node outcome of a path search.
struct ReachedNode {
  NodeId node = kInvalidNodeId;
  /// Length of the shortest path found.
  uint32_t shortest = 0;
  /// Σ_{paths τ: start→node} 1/len(τ) over all counted paths (Eq. 3).
  double closeness = 0.0;
  /// Number of paths of the shortest length.
  double shortest_count = 0.0;
};

/// \brief Expands paths from `start` up to the bound, returning every
/// reached node (excluding `start`) with its closeness contribution.
std::vector<ReachedNode> SearchPaths(const TatGraph& graph, NodeId start,
                                     const PathSearchOptions& options = {});

/// \brief Shortest-path distance between two nodes via plain BFS, capped at
/// `max_distance`. Returns 0 for a==b and a negative value when not
/// reachable within the cap.
int ShortestDistance(const TatGraph& graph, NodeId a, NodeId b,
                     size_t max_distance);

}  // namespace kqr

