#include "closeness/closeness.h"

#include <algorithm>
#include <cmath>

namespace kqr {

double ClosenessExtractor::Closeness(TermId a, TermId b) const {
  if (a == b) return 0.0;
  NodeId start = graph_.NodeOfTerm(a);
  NodeId target = graph_.NodeOfTerm(b);
  for (const ReachedNode& r : SearchPaths(graph_, start, options_.path)) {
    if (r.node == target) return r.closeness;
  }
  return 0.0;
}

std::vector<CloseTerm> ClosenessExtractor::TopClose(
    TermId term, size_t k, std::optional<FieldId> field_filter) const {
  NodeId start = graph_.NodeOfTerm(term);
  std::vector<ReachedNode> reached =
      SearchPaths(graph_, start, options_.path);
  const Vocabulary& vocab = graph_.vocab();

  std::vector<CloseTerm> candidates;
  candidates.reserve(reached.size());
  std::vector<double> rank_keys;
  for (const ReachedNode& r : reached) {
    if (graph_.KindOf(r.node) != NodeKind::kTerm) continue;
    TermId t = graph_.TermOfNode(r.node);
    if (field_filter.has_value() && vocab.field_of(t) != *field_filter) {
      continue;
    }
    candidates.push_back(CloseTerm{t, r.closeness, r.shortest});
    double key = r.closeness;
    if (options_.rank_normalized) {
      key /= std::max(graph_.WeightedDegree(r.node), 1.0);
    }
    rank_keys.push_back(key);
  }

  // Stable partial sort by the ranking key.
  std::vector<size_t> order(candidates.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return rank_keys[a] > rank_keys[b];
  });
  std::vector<CloseTerm> out;
  out.reserve(std::min(k, candidates.size()));
  for (size_t i = 0; i < order.size() && out.size() < k; ++i) {
    out.push_back(candidates[order[i]]);
  }
  return out;
}

int ClosenessExtractor::Distance(TermId a, TermId b,
                                 size_t max_distance) const {
  return ShortestDistance(graph_, graph_.NodeOfTerm(a),
                          graph_.NodeOfTerm(b), max_distance);
}

}  // namespace kqr
