// Closeness extraction (Sec. IV-C): clos(v_i, v_j) = Σ_{τ: v_i→v_j} 1/len(τ)
// over bounded-length paths — a proxy for the two terms' joint keyword-
// search result coverage.

#pragma once

#include <optional>
#include <vector>

#include "closeness/path_search.h"
#include "graph/tat_graph.h"
#include "text/vocabulary.h"

namespace kqr {

/// \brief A close term with its closeness value and shortest distance.
struct CloseTerm {
  TermId term = kInvalidTermId;
  double closeness = 0.0;
  uint32_t distance = 0;
};

struct ClosenessOptions {
  PathSearchOptions path;
  /// Rank TopClose lists by closeness / freq(term) — the term's
  /// closeness *per occurrence* (a PMI-style normalization) — instead of
  /// raw closeness. Raw path counts are dominated by generic corpus-wide
  /// terms (they co-occur with everything); normalization surfaces the
  /// *informative* close terms. Stored closeness values are unaffected —
  /// only the ranking changes.
  bool rank_normalized = false;
};

/// \brief On-demand closeness queries over the TAT graph.
class ClosenessExtractor {
 public:
  explicit ClosenessExtractor(const TatGraph& graph,
                              ClosenessOptions options = {})
      : graph_(graph), options_(options) {}

  /// \brief Pairwise closeness between two term nodes (Eq. 3); 0 when not
  /// connected within the bound.
  double Closeness(TermId a, TermId b) const;

  /// \brief Top `k` close *term* nodes of `term`, over every field. Pass a
  /// field filter to restrict (e.g. Table I's "ranked close conferences").
  std::vector<CloseTerm> TopClose(
      TermId term, size_t k,
      std::optional<FieldId> field_filter = std::nullopt) const;

  /// \brief Shortest TAT-graph distance between two terms (Table III's
  /// query-distance metric); negative when unreachable within the bound.
  int Distance(TermId a, TermId b, size_t max_distance = 8) const;

  const ClosenessOptions& options() const { return options_; }

 private:
  const TatGraph& graph_;
  ClosenessOptions options_;
};

}  // namespace kqr

