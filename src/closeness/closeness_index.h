// ClosenessIndex: offline-precomputed per-term close-term lists ("we
// summarize the target corpus by term pair coverage", Sec. IV-C), so the
// online HMM can read transition weights without touching the graph.

#ifndef KQR_CLOSENESS_CLOSENESS_INDEX_H_
#define KQR_CLOSENESS_CLOSENESS_INDEX_H_

#include <unordered_map>
#include <vector>

#include "closeness/closeness.h"
#include "common/offline_stats.h"

namespace kqr {

struct ClosenessIndexOptions {
  /// Close terms stored per term ("we maintain top ones and prune less
  /// frequent").
  size_t list_size = 64;
  /// Worker threads for the batch build. 0 = auto: the KQR_THREADS
  /// environment variable when set, else the hardware concurrency. The
  /// built index is identical for every thread count.
  size_t num_threads = 0;
  ClosenessOptions closeness;
};

/// \brief Precomputed term → close-term lists with O(1) pair lookup.
class ClosenessIndex {
 public:
  /// \brief Runs one path search per term in `terms`, sharded across
  /// `options.num_threads` workers. Fills `build_stats` when given.
  static ClosenessIndex BuildFor(const TatGraph& graph,
                                 const std::vector<TermId>& terms,
                                 ClosenessIndexOptions options = {},
                                 OfflineBuildStats* build_stats = nullptr);

  /// Ranked close terms; empty when the term has no entry.
  const std::vector<CloseTerm>& Lookup(TermId term) const;

  bool Contains(TermId term) const { return lists_.count(term) > 0; }
  size_t size() const { return lists_.size(); }

  /// clos(a, b) per the index: max of the two stored directions, 0 when
  /// the pair was pruned everywhere.
  double ClosenessOf(TermId a, TermId b) const;

  /// Shortest distance recorded for the pair, or -1 when unknown.
  int DistanceOf(TermId a, TermId b) const;

  /// \brief Installs a term's list directly (testing / alternative
  /// providers).
  void Insert(TermId term, std::vector<CloseTerm> list);

 private:
  static uint64_t PairKey(TermId a, TermId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  std::unordered_map<TermId, std::vector<CloseTerm>> lists_;
  std::unordered_map<uint64_t, CloseTerm> pairs_;
};

}  // namespace kqr

#endif  // KQR_CLOSENESS_CLOSENESS_INDEX_H_
