// ClosenessIndex: offline-precomputed per-term close-term lists ("we
// summarize the target corpus by term pair coverage", Sec. IV-C), so the
// online HMM can read transition weights without touching the graph.
//
// Thread-safety mirrors SimilarityIndex: term lists and the pair map are
// sharded, each shard behind a reader-writer lock, so the serving layer's
// lazy per-term preparation can Insert while other threads read. Lookup
// references stay valid across concurrent inserts (node-stable storage,
// entries never erased). The pair map merges with an order-independent
// rule (max closeness, then min distance), so the final pair values do not
// depend on the order in which terms were prepared — the determinism
// argument in DESIGN.md "Serving architecture" relies on this. Freeze()
// marks the index complete and makes every read lock-free.
//
// Deserialized models (format v3) install their lists as one flat
// offset-framed pool via InstallFlat, which also replays every entry into
// the pair map with the same commutative merge — pair lookups are
// hash-based either way, so online HMM semantics are identical.

#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "closeness/closeness.h"
#include "common/mutex.h"
#include "common/offline_stats.h"

namespace kqr {

struct ClosenessIndexOptions {
  /// Close terms stored per term ("we maintain top ones and prune less
  /// frequent").
  size_t list_size = 64;
  /// Worker threads for the batch build. 0 = auto: the KQR_THREADS
  /// environment variable when set, else the hardware concurrency. The
  /// built index is identical for every thread count.
  size_t num_threads = 0;
  ClosenessOptions closeness;
};

/// \brief Precomputed term → close-term lists with O(1) pair lookup.
class ClosenessIndex {
 public:
  ClosenessIndex();
  ClosenessIndex(ClosenessIndex&& other) noexcept;
  ClosenessIndex& operator=(ClosenessIndex&& other) noexcept;
  ClosenessIndex(const ClosenessIndex&) = delete;
  ClosenessIndex& operator=(const ClosenessIndex&) = delete;

  /// \brief Runs one path search per term in `terms`, sharded across
  /// `options.num_threads` workers. Fills `build_stats` when given.
  static ClosenessIndex BuildFor(const TatGraph& graph,
                                 const std::vector<TermId>& terms,
                                 ClosenessIndexOptions options = {},
                                 OfflineBuildStats* build_stats = nullptr);

  /// Ranked close terms; empty when the term has no entry. The returned
  /// span stays valid across concurrent Inserts of other terms.
  std::span<const CloseTerm> Lookup(TermId term) const;

  bool Contains(TermId term) const;
  size_t size() const;

  /// clos(a, b) per the index: max of the two stored directions, 0 when
  /// the pair was pruned everywhere.
  double ClosenessOf(TermId a, TermId b) const;

  /// Shortest distance recorded for the pair, or -1 when unknown.
  int DistanceOf(TermId a, TermId b) const;

  /// \brief Installs a term's list (serving-layer lazy preparation,
  /// testing, alternative providers). Checks against Freeze() and against
  /// the flat tier (flat entries are immutable).
  void Insert(TermId term, std::vector<CloseTerm> list);

  /// \brief Installs the flat frozen tier from deserialized parts (model
  /// format v3): `offsets` has `present.size() + 1` entries framing
  /// `pool`; `present[t]` says whether term t has an entry. Every pool
  /// entry is also merged into the pair map (commutative, so the result
  /// matches the original build's pair map exactly). Must run before the
  /// index is shared across threads.
  void InstallFlat(std::vector<uint64_t> offsets,
                   std::vector<CloseTerm> pool,
                   std::vector<uint8_t> present);

  /// \brief Declares the index complete: no further Insert is allowed and
  /// reads stop taking locks (eager builds).
  void Freeze() { frozen_.store(true, std::memory_order_release); }
  bool frozen() const { return frozen_.load(std::memory_order_acquire); }

 private:
  static constexpr size_t kNumShards = 16;

  /// What pair lookups actually read; the direction-specific term id of
  /// the stored CloseTerm is deliberately dropped so the merged value is
  /// independent of which endpoint's list supplied it.
  struct PairEntry {
    double closeness = 0.0;
    uint32_t distance = 0;
  };

  struct ListShard {
    mutable SharedMutex mu;
    std::unordered_map<TermId, std::vector<CloseTerm>> lists GUARDED_BY(mu);
  };
  struct PairShard {
    mutable SharedMutex mu;
    std::unordered_map<uint64_t, PairEntry> pairs GUARDED_BY(mu);
  };

  static uint64_t PairKey(TermId a, TermId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  ListShard& list_shard(TermId term) const {
    return list_shards_[term % kNumShards];
  }
  PairShard& pair_shard(uint64_t key) const {
    // Mix the halves so sharding does not collapse to `b % kNumShards`.
    return pair_shards_[(key ^ (key >> 32)) % kNumShards];
  }

  bool InFlat(TermId term) const {
    return term < flat_present_.size() && flat_present_[term] != 0;
  }

  /// Best pair entry held by the flat tier for (a, b): scans both
  /// endpoints' flat lists (each bounded by the configured list size) and
  /// keeps the commutative-merge winner. Returns false when neither list
  /// covers the pair.
  bool FlatPairEntry(TermId a, TermId b, PairEntry* out) const;
  /// Merged pair entry across the flat tier and the lazy shard map.
  bool PairLookup(TermId a, TermId b, PairEntry* out) const;

  std::unique_ptr<ListShard[]> list_shards_;
  std::unique_ptr<PairShard[]> pair_shards_;
  std::atomic<bool> frozen_{false};

  // Flat frozen tier (InstallFlat). Written once single-threaded, then
  // read-only — no locking needed.
  std::vector<uint64_t> flat_offsets_;  // size flat_present_.size() + 1
  std::vector<CloseTerm> flat_pool_;
  std::vector<uint8_t> flat_present_;
};

}  // namespace kqr

