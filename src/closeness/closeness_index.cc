#include "closeness/closeness_index.h"

#include <algorithm>

#include "common/parallel_for.h"
#include "common/timer.h"

namespace kqr {

ClosenessIndex ClosenessIndex::BuildFor(const TatGraph& graph,
                                        const std::vector<TermId>& terms,
                                        ClosenessIndexOptions options,
                                        OfflineBuildStats* build_stats) {
  Timer timer;
  ClosenessIndex index;
  const size_t workers = std::max<size_t>(
      1, std::min(ResolveThreadCount(options.num_threads),
                  std::max<size_t>(terms.size(), 1)));

  // The extractor is stateless (path searches allocate locally), so one
  // shared instance serves all workers. Results land in per-term slots and
  // are inserted in term order below, which reproduces the serial build's
  // pair-map merge exactly.
  ClosenessExtractor extractor(graph, options.closeness);
  std::vector<std::vector<CloseTerm>> lists(terms.size());
  ParallelFor(terms.size(), workers, [&](size_t, size_t i) {
    lists[i] = extractor.TopClose(terms[i], options.list_size);
  });
  for (size_t i = 0; i < terms.size(); ++i) {
    index.Insert(terms[i], std::move(lists[i]));
  }

  if (build_stats != nullptr) {
    build_stats->terms_total = terms.size();
    build_stats->terms_built = terms.size();
    build_stats->terms_skipped = 0;
    build_stats->walks_run = 0;
    build_stats->walk_iterations = 0;
    build_stats->threads = workers;
    build_stats->wall_ms = timer.ElapsedMillis();
  }
  return index;
}

void ClosenessIndex::Insert(TermId term, std::vector<CloseTerm> list) {
  for (const CloseTerm& c : list) {
    uint64_t key = PairKey(term, c.term);
    auto it = pairs_.find(key);
    if (it == pairs_.end() || c.closeness > it->second.closeness) {
      pairs_[key] = c;
    }
  }
  lists_[term] = std::move(list);
}

const std::vector<CloseTerm>& ClosenessIndex::Lookup(TermId term) const {
  static const std::vector<CloseTerm> kEmpty;
  auto it = lists_.find(term);
  return it == lists_.end() ? kEmpty : it->second;
}

double ClosenessIndex::ClosenessOf(TermId a, TermId b) const {
  auto it = pairs_.find(PairKey(a, b));
  return it == pairs_.end() ? 0.0 : it->second.closeness;
}

int ClosenessIndex::DistanceOf(TermId a, TermId b) const {
  auto it = pairs_.find(PairKey(a, b));
  return it == pairs_.end() ? -1 : static_cast<int>(it->second.distance);
}

}  // namespace kqr
