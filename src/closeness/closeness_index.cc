#include "closeness/closeness_index.h"

namespace kqr {

ClosenessIndex ClosenessIndex::BuildFor(const TatGraph& graph,
                                        const std::vector<TermId>& terms,
                                        ClosenessIndexOptions options) {
  ClosenessIndex index;
  ClosenessExtractor extractor(graph, options.closeness);
  for (TermId t : terms) {
    index.Insert(t, extractor.TopClose(t, options.list_size));
  }
  return index;
}

void ClosenessIndex::Insert(TermId term, std::vector<CloseTerm> list) {
  for (const CloseTerm& c : list) {
    uint64_t key = PairKey(term, c.term);
    auto it = pairs_.find(key);
    if (it == pairs_.end() || c.closeness > it->second.closeness) {
      pairs_[key] = c;
    }
  }
  lists_[term] = std::move(list);
}

const std::vector<CloseTerm>& ClosenessIndex::Lookup(TermId term) const {
  static const std::vector<CloseTerm> kEmpty;
  auto it = lists_.find(term);
  return it == lists_.end() ? kEmpty : it->second;
}

double ClosenessIndex::ClosenessOf(TermId a, TermId b) const {
  auto it = pairs_.find(PairKey(a, b));
  return it == pairs_.end() ? 0.0 : it->second.closeness;
}

int ClosenessIndex::DistanceOf(TermId a, TermId b) const {
  auto it = pairs_.find(PairKey(a, b));
  return it == pairs_.end() ? -1 : static_cast<int>(it->second.distance);
}

}  // namespace kqr
