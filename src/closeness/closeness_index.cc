#include "closeness/closeness_index.h"

#include <algorithm>

#include "common/logging.h"
#include "common/parallel_for.h"
#include "common/timer.h"

namespace kqr {

ClosenessIndex::ClosenessIndex()
    : list_shards_(std::make_unique<ListShard[]>(kNumShards)),
      pair_shards_(std::make_unique<PairShard[]>(kNumShards)) {}

ClosenessIndex::ClosenessIndex(ClosenessIndex&& other) noexcept
    : list_shards_(std::move(other.list_shards_)),
      pair_shards_(std::move(other.pair_shards_)),
      frozen_(other.frozen_.load(std::memory_order_relaxed)),
      flat_offsets_(std::move(other.flat_offsets_)),
      flat_pool_(std::move(other.flat_pool_)),
      flat_present_(std::move(other.flat_present_)) {
  other.list_shards_ = std::make_unique<ListShard[]>(kNumShards);
  other.pair_shards_ = std::make_unique<PairShard[]>(kNumShards);
  other.frozen_.store(false, std::memory_order_relaxed);
  other.flat_offsets_.clear();
  other.flat_pool_.clear();
  other.flat_present_.clear();
}

ClosenessIndex& ClosenessIndex::operator=(ClosenessIndex&& other) noexcept {
  if (this != &other) {
    list_shards_ = std::move(other.list_shards_);
    pair_shards_ = std::move(other.pair_shards_);
    frozen_.store(other.frozen_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    flat_offsets_ = std::move(other.flat_offsets_);
    flat_pool_ = std::move(other.flat_pool_);
    flat_present_ = std::move(other.flat_present_);
    other.list_shards_ = std::make_unique<ListShard[]>(kNumShards);
    other.pair_shards_ = std::make_unique<PairShard[]>(kNumShards);
    other.frozen_.store(false, std::memory_order_relaxed);
    other.flat_offsets_.clear();
    other.flat_pool_.clear();
    other.flat_present_.clear();
  }
  return *this;
}

ClosenessIndex ClosenessIndex::BuildFor(const TatGraph& graph,
                                        const std::vector<TermId>& terms,
                                        ClosenessIndexOptions options,
                                        OfflineBuildStats* build_stats) {
  Timer timer;
  ClosenessIndex index;
  const size_t workers = std::max<size_t>(
      1, std::min(ResolveThreadCount(options.num_threads),
                  std::max<size_t>(terms.size(), 1)));

  // The extractor is stateless (path searches allocate locally), so one
  // shared instance serves all workers. Results land in per-term slots and
  // are inserted in term order below; Insert's pair merge is additionally
  // order-independent, so any insertion order would give the same index.
  ClosenessExtractor extractor(graph, options.closeness);
  std::vector<std::vector<CloseTerm>> lists(terms.size());
  ParallelFor(terms.size(), workers, [&](size_t, size_t i) {
    lists[i] = extractor.TopClose(terms[i], options.list_size);
  });
  for (size_t i = 0; i < terms.size(); ++i) {
    index.Insert(terms[i], std::move(lists[i]));
  }

  if (build_stats != nullptr) {
    build_stats->terms_total = terms.size();
    build_stats->terms_built = terms.size();
    build_stats->terms_skipped = 0;
    build_stats->walks_run = 0;
    build_stats->walk_iterations = 0;
    build_stats->threads = workers;
    build_stats->wall_ms = timer.ElapsedMillis();
  }
  return index;
}

void ClosenessIndex::Insert(TermId term, std::vector<CloseTerm> list) {
  KQR_CHECK(!frozen()) << "Insert into a frozen ClosenessIndex";
  KQR_CHECK(!InFlat(term)) << "Insert over a flat (mapped) closeness entry";
  // Merge pairs first, one shard lock at a time (never nested — no
  // deadlock regardless of which threads insert which terms). The merge
  // rule is commutative: keep the larger closeness, break ties by the
  // smaller distance, so the final pair values do not depend on insertion
  // order even when two terms' lists cover the same pair.
  for (const CloseTerm& c : list) {
    uint64_t key = PairKey(term, c.term);
    PairShard& ps = pair_shard(key);
    WriterMutexLock lock(&ps.mu);
    auto [it, inserted] =
        ps.pairs.try_emplace(key, PairEntry{c.closeness, c.distance});
    if (!inserted) {
      PairEntry& cur = it->second;
      if (c.closeness > cur.closeness ||
          (c.closeness == cur.closeness && c.distance < cur.distance)) {
        cur = PairEntry{c.closeness, c.distance};
      }
    }
  }
  ListShard& ls = list_shard(term);
  WriterMutexLock lock(&ls.mu);
  auto [it, inserted] = ls.lists.try_emplace(term, std::move(list));
  if (!inserted) it->second = std::move(list);
}

std::span<const CloseTerm> ClosenessIndex::Lookup(TermId term) const {
  if (InFlat(term)) {
    return std::span<const CloseTerm>(
        flat_pool_.data() + flat_offsets_[term],
        flat_offsets_[term + 1] - flat_offsets_[term]);
  }
  const ListShard& ls = list_shard(term);
  // Frozen indexes skip the reader lock (no writer can exist after the
  // frozen flag's release/acquire pair); OptionalReaderLock carries that
  // argument for the capability analysis.
  OptionalReaderLock lock(&ls.mu, !frozen());
  auto it = ls.lists.find(term);
  // The span outlives the lock: entries are node-stable and never
  // erased, and the serving layer never replaces a term's list once a
  // reader can reach it.
  return it == ls.lists.end() ? std::span<const CloseTerm>{}
                              : std::span<const CloseTerm>(it->second);
}

bool ClosenessIndex::Contains(TermId term) const {
  if (InFlat(term)) return true;
  const ListShard& ls = list_shard(term);
  OptionalReaderLock lock(&ls.mu, !frozen());
  return ls.lists.count(term) > 0;
}

size_t ClosenessIndex::size() const {
  size_t total = 0;
  for (uint8_t present : flat_present_) total += present != 0 ? 1 : 0;
  for (size_t i = 0; i < kNumShards; ++i) {
    OptionalReaderLock lock(&list_shards_[i].mu, !frozen());
    total += list_shards_[i].lists.size();
  }
  return total;
}

bool ClosenessIndex::FlatPairEntry(TermId a, TermId b,
                                   PairEntry* out) const {
  bool found = false;
  const auto scan = [&](TermId t, TermId other) {
    if (!InFlat(t)) return;
    for (uint64_t i = flat_offsets_[t]; i < flat_offsets_[t + 1]; ++i) {
      const CloseTerm& c = flat_pool_[i];
      if (c.term != other) continue;
      if (!found || c.closeness > out->closeness ||
          (c.closeness == out->closeness && c.distance < out->distance)) {
        *out = PairEntry{c.closeness, c.distance};
      }
      found = true;
    }
  };
  scan(a, b);
  if (a != b) scan(b, a);
  return found;
}

/// Merged pair entry across the flat tier and the lazy shard map, under
/// the same commutative rule Insert uses (max closeness, tie-broken by
/// min distance) — a pair covered by both tiers resolves to exactly what
/// one combined map would have held.
bool ClosenessIndex::PairLookup(TermId a, TermId b, PairEntry* out) const {
  bool found = FlatPairEntry(a, b, out);
  const uint64_t key = PairKey(a, b);
  const PairShard& ps = pair_shard(key);
  const auto consider = [&](const PairEntry& e) {
    if (!found || e.closeness > out->closeness ||
        (e.closeness == out->closeness && e.distance < out->distance)) {
      *out = e;
    }
    found = true;
  };
  OptionalReaderLock lock(&ps.mu, !frozen());
  auto it = ps.pairs.find(key);
  if (it != ps.pairs.end()) consider(it->second);
  return found;
}

double ClosenessIndex::ClosenessOf(TermId a, TermId b) const {
  PairEntry entry;
  return PairLookup(a, b, &entry) ? entry.closeness : 0.0;
}

void ClosenessIndex::InstallFlat(std::vector<uint64_t> offsets,
                                 std::vector<CloseTerm> pool,
                                 std::vector<uint8_t> present) {
  KQR_CHECK(offsets.size() == present.size() + 1)
      << "flat offsets must frame every term";
  KQR_CHECK(offsets.empty() || offsets.back() == pool.size())
      << "flat offsets must frame the pool";
  // The flat tier is NOT replayed into the pair map: pair lookups consult
  // it directly (FlatPairEntry scans the two endpoint lists, bounded by
  // the configured list size). Replaying tens of thousands of hash
  // inserts used to dominate the mmap cold-start this format exists for.
  flat_offsets_ = std::move(offsets);
  flat_pool_ = std::move(pool);
  flat_present_ = std::move(present);
}

int ClosenessIndex::DistanceOf(TermId a, TermId b) const {
  PairEntry entry;
  return PairLookup(a, b, &entry) ? static_cast<int>(entry.distance) : -1;
}

}  // namespace kqr
