#include "graph/csr.h"

#include <algorithm>

#include "common/logging.h"

namespace kqr {

CsrGraph CsrGraph::FromUndirectedEdges(
    size_t num_nodes,
    std::vector<std::tuple<uint32_t, uint32_t, float>> edges) {
  // Expand to directed arcs.
  std::vector<std::tuple<uint32_t, uint32_t, float>> arcs;
  arcs.reserve(edges.size() * 2);
  for (const auto& [u, v, w] : edges) {
    KQR_DCHECK(u < num_nodes && v < num_nodes);
    arcs.emplace_back(u, v, w);
    arcs.emplace_back(v, u, w);
  }
  std::sort(arcs.begin(), arcs.end());

  CsrGraph g;
  g.offsets_.assign(num_nodes + 1, 0);
  g.arcs_.reserve(arcs.size());
  g.weighted_degree_owned_.assign(num_nodes, 0.0);

  size_t i = 0;
  for (uint32_t u = 0; u < num_nodes; ++u) {
    g.offsets_[u] = g.arcs_.size();
    while (i < arcs.size() && std::get<0>(arcs[i]) == u) {
      uint32_t v = std::get<1>(arcs[i]);
      float w = 0;
      // Merge parallel arcs (u, v).
      while (i < arcs.size() && std::get<0>(arcs[i]) == u &&
             std::get<1>(arcs[i]) == v) {
        w += std::get<2>(arcs[i]);
        ++i;
      }
      g.arcs_.push_back(Arc{v, w});
      g.weighted_degree_owned_[u] += w;
    }
  }
  g.offsets_[num_nodes] = g.arcs_.size();
  g.weighted_degree_ = g.weighted_degree_owned_;
  return g;
}

CsrGraph CsrGraph::FromParts(std::vector<uint64_t> offsets,
                             std::vector<Arc> arcs,
                             std::vector<double> weighted_degree) {
  CsrGraph g;
  g.offsets_ = std::move(offsets);
  g.arcs_ = std::move(arcs);
  g.weighted_degree_owned_ = std::move(weighted_degree);
  g.weighted_degree_ = g.weighted_degree_owned_;
  return g;
}

CsrGraph CsrGraph::FromParts(std::vector<uint64_t> offsets,
                             std::vector<Arc> arcs,
                             std::span<const double> weighted_degree) {
  CsrGraph g;
  g.offsets_ = std::move(offsets);
  g.arcs_ = std::move(arcs);
  g.weighted_degree_ = weighted_degree;
  return g;
}

}  // namespace kqr
