#include "graph/tat_builder.h"

#include <tuple>
#include <vector>

namespace kqr {

Result<TatGraph> BuildTatGraph(const Database& db, const Vocabulary& vocab,
                               const InvertedIndex& index,
                               TatBuilderOptions options) {
  if (options.max_doc_frequency_fraction <= 0.0) {
    return Status::InvalidArgument(
        "max_doc_frequency_fraction must be positive");
  }
  std::vector<const Table*> tables = db.catalog().tables();
  std::vector<size_t> table_sizes;
  table_sizes.reserve(tables.size());
  for (const Table* t : tables) table_sizes.push_back(t->num_rows());

  NodeSpace space(std::move(table_sizes), vocab.size());

  std::vector<std::tuple<uint32_t, uint32_t, float>> edges;

  // Tuple—tuple edges from foreign keys.
  for (uint16_t t = 0; t < tables.size(); ++t) {
    const Table& table = *tables[t];
    const Schema& schema = table.schema();
    for (const ForeignKey& fk : schema.foreign_keys()) {
      size_t col = *schema.FindColumn(fk.column);
      const Table* parent = db.catalog().FindTable(fk.parent_table);
      if (parent == nullptr) {
        return Status::InvalidArgument("FK to missing table '" +
                                       fk.parent_table + "'");
      }
      uint16_t parent_idx = 0;
      for (uint16_t p = 0; p < tables.size(); ++p) {
        if (tables[p] == parent) {
          parent_idx = p;
          break;
        }
      }
      for (RowIndex r = 0; r < table.num_rows(); ++r) {
        const Value& v = table.row(r).at(col);
        if (v.is_null()) continue;
        auto parent_row = parent->FindByPk(v.AsInt64());
        if (!parent_row.has_value()) {
          return Status::Corruption("dangling FK in table '" +
                                    table.name() + "'");
        }
        edges.emplace_back(space.FromTuple(TupleRef{t, r}),
                           space.FromTuple(TupleRef{parent_idx, *parent_row}),
                           options.fk_edge_weight);
      }
    }
  }

  // Tuple—term edges from the inverted index, with a generic-term cut.
  const size_t df_cap = static_cast<size_t>(
      options.max_doc_frequency_fraction *
      static_cast<double>(index.num_corpus_tuples()));
  for (TermId term = 0; term < vocab.size(); ++term) {
    std::span<const Posting> postings = index.Lookup(term);
    if (postings.empty()) continue;
    if (df_cap > 0 && postings.size() > df_cap) continue;
    NodeId term_node = space.FromTerm(term);
    for (const Posting& p : postings) {
      edges.emplace_back(space.FromTuple(p.tuple), term_node,
                         static_cast<float>(p.freq));
    }
  }

  CsrGraph adjacency =
      CsrGraph::FromUndirectedEdges(space.num_nodes(), std::move(edges));
  return TatGraph(std::move(space), std::move(adjacency), &vocab, &db);
}

}  // namespace kqr
