#include "graph/tat_graph.h"

namespace kqr {

std::string TatGraph::DescribeNode(NodeId id) const {
  if (KindOf(id) == NodeKind::kTerm) {
    return vocab_->Describe(TermOfNode(id));
  }
  TupleRef ref = TupleOfNode(id);
  const Table* table = db_->catalog().tables()[ref.table];
  return table->name() + "#" +
         std::to_string(table->PrimaryKeyOf(ref.row));
}

}  // namespace kqr
