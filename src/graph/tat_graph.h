// TatGraph: the term augmented tuple graph (Def. 5) — the paper's central
// data structure. Tuple nodes connect via foreign-key references (the tuple
// graph, Def. 1); term nodes connect to the tuples containing them.

#pragma once

#include <memory>
#include <string>

#include "graph/csr.h"
#include "graph/node.h"
#include "storage/database.h"
#include "text/inverted_index.h"
#include "text/vocabulary.h"

namespace kqr {

/// \brief Immutable heterogeneous graph over tuples and terms.
///
/// Built by TatGraphBuilder. The graph does not own the database, the
/// vocabulary or the inverted index; callers keep them alive (the engine
/// facade in core/ bundles all of this).
class TatGraph {
 public:
  TatGraph(NodeSpace space, CsrGraph adjacency, const Vocabulary* vocab,
           const Database* db)
      : space_(std::move(space)),
        adjacency_(std::move(adjacency)),
        vocab_(vocab),
        db_(db) {}

  const NodeSpace& space() const { return space_; }
  const CsrGraph& adjacency() const { return adjacency_; }
  const Vocabulary& vocab() const { return *vocab_; }
  const Database& db() const { return *db_; }

  size_t num_nodes() const { return space_.num_nodes(); }
  size_t num_edges() const { return adjacency_.num_arcs() / 2; }

  std::span<const Arc> Neighbors(NodeId id) const {
    return adjacency_.Neighbors(id);
  }
  size_t Degree(NodeId id) const { return adjacency_.Degree(id); }
  double WeightedDegree(NodeId id) const {
    return adjacency_.WeightedDegree(id);
  }

  NodeKind KindOf(NodeId id) const { return space_.KindOf(id); }
  NodeClass ClassOf(NodeId id) const {
    return space_.ClassOf(id, *vocab_);
  }

  NodeId NodeOfTerm(TermId term) const { return space_.FromTerm(term); }
  NodeId NodeOfTuple(TupleRef ref) const { return space_.FromTuple(ref); }
  TermId TermOfNode(NodeId id) const { return space_.ToTerm(id); }
  TupleRef TupleOfNode(NodeId id) const { return space_.ToTuple(id); }

  /// \brief Human-readable node description: the term text with its field
  /// label, or the tuple's table/primary key.
  std::string DescribeNode(NodeId id) const;

 private:
  NodeSpace space_;
  CsrGraph adjacency_;
  const Vocabulary* vocab_;
  const Database* db_;
};

}  // namespace kqr

