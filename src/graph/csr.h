// Compressed sparse row adjacency with edge weights. Undirected graphs
// store both directions.
//
// The weighted-degree array is a span that can be backed either by the
// graph's own memory (FromUndirectedEdges, vector FromParts) or by a raw
// section of a mapped v3 model file (span FromParts) — the mapped file
// must then outlive the graph. Because the backing may be external, the
// graph is move-only: a copy would silently alias the source's storage.

#pragma once

#include <cstdint>
#include <span>
#include <tuple>
#include <vector>

namespace kqr {

/// \brief One weighted arc.
struct Arc {
  uint32_t target;
  float weight;
};

/// \brief Immutable CSR adjacency built from an edge list.
class CsrGraph {
 public:
  CsrGraph() = default;
  CsrGraph(CsrGraph&&) noexcept = default;
  CsrGraph& operator=(CsrGraph&&) noexcept = default;
  CsrGraph(const CsrGraph&) = delete;
  CsrGraph& operator=(const CsrGraph&) = delete;

  /// \brief Builds from an undirected weighted edge list; each (u,v,w) is
  /// materialized as two arcs. Parallel edges are merged by summing
  /// weights.
  static CsrGraph FromUndirectedEdges(
      size_t num_nodes, std::vector<std::tuple<uint32_t, uint32_t, float>>
                            edges);

  /// \brief Assembles a graph from pre-built raw parts without any
  /// validation (deserialized or externally produced adjacency). Callers
  /// that do not control the provenance of the parts must prove
  /// well-formedness with ModelAuditor::CheckAdjacency before walking.
  static CsrGraph FromParts(std::vector<uint64_t> offsets,
                            std::vector<Arc> arcs,
                            std::vector<double> weighted_degree);

  /// \brief Like FromParts, but the weighted-degree array stays where it
  /// is (zero-copy view into a mapped model file that must outlive the
  /// graph).
  static CsrGraph FromParts(std::vector<uint64_t> offsets,
                            std::vector<Arc> arcs,
                            std::span<const double> weighted_degree);

  size_t num_nodes() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  size_t num_arcs() const { return arcs_.size(); }

  std::span<const Arc> Neighbors(uint32_t node) const {
    return std::span<const Arc>(arcs_.data() + offsets_[node],
                                offsets_[node + 1] - offsets_[node]);
  }

  size_t Degree(uint32_t node) const {
    return offsets_[node + 1] - offsets_[node];
  }

  /// Sum of arc weights leaving `node` (the random-walk normalizer).
  double WeightedDegree(uint32_t node) const {
    return weighted_degree_[node];
  }

  // Raw structure views for auditing and serialization. offsets() has
  // num_nodes()+1 entries framing arcs(); weighted_degrees() has one
  // entry per node.
  std::span<const uint64_t> offsets() const { return offsets_; }
  std::span<const Arc> arcs() const { return arcs_; }
  std::span<const double> weighted_degrees() const {
    return weighted_degree_;
  }

 private:
  std::vector<uint64_t> offsets_;  // size num_nodes + 1
  std::vector<Arc> arcs_;
  /// View over weighted_degree_owned_ or a mapped file section. Vector
  /// moves keep heap storage stable, so the span survives moving the
  /// graph.
  std::span<const double> weighted_degree_;
  std::vector<double> weighted_degree_owned_;
};

}  // namespace kqr
