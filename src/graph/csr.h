// Compressed sparse row adjacency with edge weights. Undirected graphs
// store both directions.

#ifndef KQR_GRAPH_CSR_H_
#define KQR_GRAPH_CSR_H_

#include <cstdint>
#include <span>
#include <tuple>
#include <vector>

namespace kqr {

/// \brief One weighted arc.
struct Arc {
  uint32_t target;
  float weight;
};

/// \brief Immutable CSR adjacency built from an edge list.
class CsrGraph {
 public:
  CsrGraph() = default;

  /// \brief Builds from an undirected weighted edge list; each (u,v,w) is
  /// materialized as two arcs. Parallel edges are merged by summing
  /// weights.
  static CsrGraph FromUndirectedEdges(
      size_t num_nodes, std::vector<std::tuple<uint32_t, uint32_t, float>>
                            edges);

  size_t num_nodes() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  size_t num_arcs() const { return arcs_.size(); }

  std::span<const Arc> Neighbors(uint32_t node) const {
    return std::span<const Arc>(arcs_.data() + offsets_[node],
                                offsets_[node + 1] - offsets_[node]);
  }

  size_t Degree(uint32_t node) const {
    return offsets_[node + 1] - offsets_[node];
  }

  /// Sum of arc weights leaving `node` (the random-walk normalizer).
  double WeightedDegree(uint32_t node) const {
    return weighted_degree_[node];
  }

 private:
  std::vector<uint64_t> offsets_;  // size num_nodes + 1
  std::vector<Arc> arcs_;
  std::vector<double> weighted_degree_;
};

}  // namespace kqr

#endif  // KQR_GRAPH_CSR_H_
