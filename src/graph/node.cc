#include "graph/node.h"

#include "common/logging.h"

namespace kqr {

NodeSpace::NodeSpace(std::vector<size_t> table_sizes, size_t num_terms)
    : table_sizes_(std::move(table_sizes)), num_terms_(num_terms) {
  table_offsets_.reserve(table_sizes_.size());
  size_t offset = 0;
  for (size_t sz : table_sizes_) {
    table_offsets_.push_back(offset);
    offset += sz;
  }
  term_base_ = offset;
}

TupleRef NodeSpace::ToTuple(NodeId id) const {
  KQR_DCHECK(id < term_base_);
  // Tables are few (tens); linear scan beats binary search at this size.
  size_t t = table_offsets_.size() - 1;
  while (t > 0 && table_offsets_[t] > id) --t;
  return TupleRef{static_cast<uint16_t>(t),
                  static_cast<RowIndex>(id - table_offsets_[t])};
}

}  // namespace kqr
