// TatGraphBuilder: assembles the TAT graph from a database and its
// inverted index.
//
// Edge weights:
//  - tuple—tuple (foreign key): 1.0 per reference.
//  - tuple—term: the term's frequency in the tuple (from the posting).

#pragma once

#include "common/result.h"
#include "graph/tat_graph.h"

namespace kqr {

struct TatBuilderOptions {
  /// Terms appearing in more than this fraction of indexed tuples are too
  /// generic to be useful graph hubs and are left out of the graph (they
  /// remain in the index). 1.0 disables the cut.
  double max_doc_frequency_fraction = 0.25;
  /// Weight of a foreign-key edge.
  float fk_edge_weight = 1.0f;
};

/// \brief Builds the term augmented tuple graph. `db`, `vocab` and `index`
/// must outlive the returned graph.
Result<TatGraph> BuildTatGraph(const Database& db, const Vocabulary& vocab,
                               const InvertedIndex& index,
                               TatBuilderOptions options = {});

}  // namespace kqr

