#include "graph/graph_stats.h"

#include <cmath>

namespace kqr {

GraphStats::GraphStats(const TatGraph& graph) {
  const size_t n = graph.num_nodes();
  freq_.resize(n);
  idf_.resize(n);
  classes_.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    freq_[v] = graph.WeightedDegree(v);
    idf_[v] = std::log(1.0 + static_cast<double>(n) /
                                 (1.0 + static_cast<double>(
                                            graph.Degree(v))));
    classes_[v] = graph.ClassOf(v);
  }
}

}  // namespace kqr
