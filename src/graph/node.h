// Node identity in the term augmented tuple graph (Def. 5).
//
// Nodes are densely numbered: all tuple nodes first (grouped by table in
// catalog order), then all term nodes (by TermId). Every node belongs to a
// *class* — its table for tuple nodes, its field for term nodes — used by
// same-class filtering during similar-node extraction (Sec. IV-B: "we only
// extract similar nodes belonging to same classes of the initial node").

#pragma once

#include <cstdint>
#include <string>

#include "text/inverted_index.h"
#include "text/vocabulary.h"

namespace kqr {

using NodeId = uint32_t;
using NodeClass = uint32_t;

inline constexpr NodeId kInvalidNodeId = static_cast<NodeId>(-1);

/// \brief Whether a node stands for a tuple or a term.
enum class NodeKind : uint8_t { kTuple = 0, kTerm = 1 };

/// \brief Maps between dense NodeIds and the underlying TupleRef / TermId
/// address spaces.
class NodeSpace {
 public:
  NodeSpace() = default;

  /// \param table_sizes row count per table, in catalog order.
  /// \param num_terms size of the vocabulary.
  NodeSpace(std::vector<size_t> table_sizes, size_t num_terms);

  size_t num_nodes() const { return term_base_ + num_terms_; }
  size_t num_tuple_nodes() const { return term_base_; }
  size_t num_term_nodes() const { return num_terms_; }
  size_t num_tables() const { return table_offsets_.size(); }

  NodeKind KindOf(NodeId id) const {
    return id < term_base_ ? NodeKind::kTuple : NodeKind::kTerm;
  }

  NodeId FromTuple(TupleRef ref) const {
    return static_cast<NodeId>(table_offsets_[ref.table] + ref.row);
  }
  NodeId FromTerm(TermId term) const {
    return static_cast<NodeId>(term_base_ + term);
  }

  TupleRef ToTuple(NodeId id) const;
  TermId ToTerm(NodeId id) const {
    return static_cast<TermId>(id - term_base_);
  }

  /// Row count per table in catalog order (serialization view; the ctor
  /// argument round-trips through this).
  const std::vector<size_t>& table_sizes() const { return table_sizes_; }

  /// Class of a node: table index for tuples, num_tables + field for terms.
  /// Requires the vocabulary to resolve term fields.
  NodeClass ClassOf(NodeId id, const Vocabulary& vocab) const {
    if (KindOf(id) == NodeKind::kTuple) {
      return static_cast<NodeClass>(ToTuple(id).table);
    }
    return static_cast<NodeClass>(num_tables() +
                                  vocab.field_of(ToTerm(id)));
  }

 private:
  std::vector<size_t> table_offsets_;  // node id of each table's row 0
  std::vector<size_t> table_sizes_;
  size_t term_base_ = 0;
  size_t num_terms_ = 0;
};

}  // namespace kqr

