// GraphStats: per-node occurrence statistics over the TAT graph used by
// the contextual preference weighting (Sec. IV-B.2): freq(t0), idf(v), and
// per-class grouping of a node's context.

#pragma once

#include <vector>

#include "graph/tat_graph.h"

namespace kqr {

/// \brief Immutable statistics computed once per graph.
class GraphStats {
 public:
  explicit GraphStats(const TatGraph& graph);

  /// freq(v): global occurrence mass of a node — the sum of incident edge
  /// weights (for a term node this is its total corpus frequency among
  /// retained edges; for a tuple node, its connectivity mass).
  double Freq(NodeId v) const { return freq_[v]; }

  /// idf(v) = log(1 + N / (1 + deg(v))): inverse of the node's global
  /// occurrence statistics. Hub nodes get small idf, rare nodes large.
  double Idf(NodeId v) const { return idf_[v]; }

  /// Class of each node (cached to avoid vocab lookups in hot loops).
  NodeClass ClassOf(NodeId v) const { return classes_[v]; }

  size_t num_nodes() const { return freq_.size(); }

 private:
  std::vector<double> freq_;
  std::vector<double> idf_;
  std::vector<NodeClass> classes_;
};

}  // namespace kqr

