// Analyzer: the full text pipeline (tokenize → stopwords → stem) applied
// per the column's TextRole. This is the component that turns raw cell
// text into the term vocabulary of the TAT graph.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "storage/schema.h"
#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace kqr {

struct AnalyzerOptions {
  TokenizerOptions tokenizer;
  bool remove_stopwords = true;
  bool stem = true;
};

/// \brief Converts raw field text into normalized terms.
///
/// - Segmented fields (titles): tokenized, stopword-filtered, stemmed.
/// - Atomic fields (author/venue names): lowercased, inner whitespace
///   collapsed, kept as one term (Sec. IV-A: "segmentation should not be
///   applied" to such fields).
class Analyzer {
 public:
  explicit Analyzer(AnalyzerOptions options = {});

  /// Terms from a segmented text field, in occurrence order (duplicates
  /// preserved so callers can count term frequency).
  std::vector<std::string> AnalyzeSegmented(std::string_view text) const;

  /// The single normalized term of an atomic field; empty string if the
  /// field is blank.
  std::string AnalyzeAtomic(std::string_view text) const;

  /// Dispatch on role. kNone yields no terms.
  std::vector<std::string> Analyze(std::string_view text,
                                   TextRole role) const;

  const AnalyzerOptions& options() const { return options_; }

 private:
  AnalyzerOptions options_;
  Tokenizer tokenizer_;
  StopwordFilter stopwords_;
  PorterStemmer stemmer_;
};

}  // namespace kqr

