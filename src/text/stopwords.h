// Stopword filter with the standard English list plus domain additions.

#pragma once

#include <string>
#include <string_view>
#include <unordered_set>

namespace kqr {

/// \brief Membership test against a fixed stopword set.
class StopwordFilter {
 public:
  /// Default English stopword list (SMART-derived subset).
  StopwordFilter();

  /// Custom list.
  explicit StopwordFilter(std::unordered_set<std::string> words)
      : words_(std::move(words)) {}

  bool IsStopword(std::string_view token) const {
    return words_.count(std::string(token)) > 0;
  }

  void Add(std::string word) { words_.insert(std::move(word)); }
  size_t size() const { return words_.size(); }

 private:
  std::unordered_set<std::string> words_;
};

}  // namespace kqr

