// Porter stemming algorithm (M.F. Porter, 1980) — conflates inflected
// forms ("indexing", "indexed", "indexes" → "index") so that term nodes
// unify across morphological variants, as Lucene's analyzer did for the
// paper's corpus.

#pragma once

#include <string>
#include <string_view>

namespace kqr {

/// \brief Stateless Porter stemmer. Input must be lowercase ASCII letters;
/// words with other characters or length < 3 are returned unchanged.
class PorterStemmer {
 public:
  std::string Stem(std::string_view word) const;
};

}  // namespace kqr

