#include "text/tokenizer.h"

#include <cctype>

namespace kqr {

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> tokens;
  std::string cur;
  bool cur_all_digits = true;
  auto flush = [&]() {
    if (cur.size() >= options_.min_token_length &&
        !(options_.drop_numeric && cur_all_digits)) {
      tokens.push_back(cur);
    }
    cur.clear();
    cur_all_digits = true;
  };
  for (char raw : text) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      cur.push_back(static_cast<char>(std::tolower(c)));
      if (!std::isdigit(c)) cur_all_digits = false;
    } else {
      if (!cur.empty()) flush();
    }
  }
  if (!cur.empty()) flush();
  return tokens;
}

}  // namespace kqr
