#include "text/inverted_index.h"

#include <algorithm>
#include <map>

namespace kqr {

Result<InvertedIndex> InvertedIndex::Build(const Database& db,
                                           const Analyzer& analyzer,
                                           Vocabulary* vocab) {
  if (vocab == nullptr) {
    return Status::InvalidArgument("vocab must be non-null");
  }
  InvertedIndex index;
  std::vector<const Table*> tables = db.catalog().tables();
  if (tables.size() > static_cast<size_t>(uint16_t(-1))) {
    return Status::OutOfRange("too many tables");
  }

  for (uint16_t t = 0; t < tables.size(); ++t) {
    const Table& table = *tables[t];
    const Schema& schema = table.schema();
    std::vector<size_t> text_cols = schema.TextColumns();
    if (text_cols.empty()) continue;

    std::vector<FieldId> field_ids;
    field_ids.reserve(text_cols.size());
    for (size_t col : text_cols) {
      field_ids.push_back(vocab->RegisterField(
          table.name(), schema.column(col).name,
          schema.column(col).text_role));
    }

    index.num_corpus_tuples_ += table.num_rows();
    for (RowIndex r = 0; r < table.num_rows(); ++r) {
      const Tuple& tuple = table.row(r);
      bool produced = false;
      for (size_t ci = 0; ci < text_cols.size(); ++ci) {
        const Value& cell = tuple.at(text_cols[ci]);
        if (cell.is_null()) continue;
        std::vector<std::string> terms = analyzer.Analyze(
            cell.AsString(), schema.column(text_cols[ci]).text_role);
        // Aggregate within-cell term frequency.
        std::map<std::string, uint32_t> counts;
        for (const std::string& term : terms) ++counts[term];
        for (const auto& [text, freq] : counts) {
          TermId id = vocab->Intern(field_ids[ci], text);
          if (id >= index.postings_.size()) {
            index.postings_.resize(id + 1);
          }
          index.postings_[id].push_back(Posting{TupleRef{t, r}, freq});
          produced = true;
        }
      }
      if (produced) ++index.num_indexed_tuples_;
    }
  }

  // Postings come out sorted because we scan tables and rows in order, but
  // make the invariant explicit for safety.
  for (auto& plist : index.postings_) {
    std::sort(plist.begin(), plist.end(),
              [](const Posting& a, const Posting& b) {
                return a.tuple < b.tuple;
              });
  }
  return index;
}

const std::vector<Posting>& InvertedIndex::Lookup(TermId term) const {
  static const std::vector<Posting> kEmpty;
  if (term == kInvalidTermId || term >= postings_.size()) return kEmpty;
  return postings_[term];
}

uint64_t InvertedIndex::TotalFreq(TermId term) const {
  uint64_t total = 0;
  for (const Posting& p : Lookup(term)) total += p.freq;
  return total;
}

}  // namespace kqr
