#include "text/inverted_index.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace kqr {

Result<InvertedIndex> InvertedIndex::Build(const Database& db,
                                           const Analyzer& analyzer,
                                           Vocabulary* vocab) {
  if (vocab == nullptr) {
    return Status::InvalidArgument("vocab must be non-null");
  }
  InvertedIndex index;
  std::vector<const Table*> tables = db.catalog().tables();
  if (tables.size() > static_cast<size_t>(uint16_t(-1))) {
    return Status::OutOfRange("too many tables");
  }

  // Built nested first (terms intern out of order), flattened below.
  std::vector<std::vector<Posting>> postings;

  for (uint16_t t = 0; t < tables.size(); ++t) {
    const Table& table = *tables[t];
    const Schema& schema = table.schema();
    std::vector<size_t> text_cols = schema.TextColumns();
    if (text_cols.empty()) continue;

    std::vector<FieldId> field_ids;
    field_ids.reserve(text_cols.size());
    for (size_t col : text_cols) {
      field_ids.push_back(vocab->RegisterField(
          table.name(), schema.column(col).name,
          schema.column(col).text_role));
    }

    index.num_corpus_tuples_ += table.num_rows();
    for (RowIndex r = 0; r < table.num_rows(); ++r) {
      const Tuple& tuple = table.row(r);
      bool produced = false;
      for (size_t ci = 0; ci < text_cols.size(); ++ci) {
        const Value& cell = tuple.at(text_cols[ci]);
        if (cell.is_null()) continue;
        std::vector<std::string> terms = analyzer.Analyze(
            cell.AsString(), schema.column(text_cols[ci]).text_role);
        // Aggregate within-cell term frequency.
        std::map<std::string, uint32_t> counts;
        for (const std::string& term : terms) ++counts[term];
        for (const auto& [text, freq] : counts) {
          TermId id = vocab->Intern(field_ids[ci], text);
          if (id >= postings.size()) {
            postings.resize(id + 1);
          }
          postings[id].push_back(Posting{TupleRef{t, r}, freq});
          produced = true;
        }
      }
      if (produced) ++index.num_indexed_tuples_;
    }
  }

  // Postings come out sorted because we scan tables and rows in order, but
  // make the invariant explicit for safety.
  for (auto& plist : postings) {
    std::sort(plist.begin(), plist.end(),
              [](const Posting& a, const Posting& b) {
                return a.tuple < b.tuple;
              });
  }

  // Flatten into the pool + offsets layout.
  index.offsets_.reserve(postings.size() + 1);
  index.offsets_.push_back(0);
  size_t total = 0;
  for (const auto& plist : postings) total += plist.size();
  index.pool_.reserve(total);
  for (auto& plist : postings) {
    index.pool_.insert(index.pool_.end(), plist.begin(), plist.end());
    index.offsets_.push_back(index.pool_.size());
  }
  return index;
}

InvertedIndex InvertedIndex::FromParts(std::vector<uint64_t> offsets,
                                       std::vector<Posting> pool,
                                       size_t num_indexed_tuples,
                                       size_t num_corpus_tuples) {
  KQR_CHECK(!offsets.empty() && offsets.back() == pool.size())
      << "posting offsets must frame the pool";
  InvertedIndex index;
  index.offsets_ = std::move(offsets);
  index.pool_ = std::move(pool);
  index.num_indexed_tuples_ = num_indexed_tuples;
  index.num_corpus_tuples_ = num_corpus_tuples;
  return index;
}

uint64_t InvertedIndex::TotalFreq(TermId term) const {
  uint64_t total = 0;
  for (const Posting& p : Lookup(term)) total += p.freq;
  return total;
}

}  // namespace kqr
