// Tokenizer: splits segmented text fields (e.g. paper titles) into raw
// word tokens. ASCII-oriented, matching the paper's DBLP corpus.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace kqr {

struct TokenizerOptions {
  /// Tokens shorter than this are dropped (noise like single letters).
  size_t min_token_length = 2;
  /// Drop tokens that are all digits ("2012", page numbers).
  bool drop_numeric = true;
};

/// \brief Lowercases and splits on any non-alphanumeric byte. Produces raw
/// tokens; stopword removal and stemming happen in the Analyzer.
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {}) : options_(options) {}

  std::vector<std::string> Tokenize(std::string_view text) const;

 private:
  TokenizerOptions options_;
};

}  // namespace kqr

