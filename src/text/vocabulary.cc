#include "text/vocabulary.h"

#include "common/logging.h"

namespace kqr {

FieldId Vocabulary::RegisterField(const std::string& table,
                                  const std::string& column,
                                  TextRole role) {
  std::string key = table + "." + column;
  auto it = field_lookup_.find(key);
  if (it != field_lookup_.end()) return it->second;
  KQR_CHECK(fields_.size() < static_cast<size_t>(FieldId(-1)))
      << "too many fields";
  FieldId id = static_cast<FieldId>(fields_.size());
  fields_.push_back(FieldInfo{table, column, role});
  field_lookup_.emplace(std::move(key), id);
  return id;
}

std::optional<FieldId> Vocabulary::FindField(const std::string& table,
                                             const std::string& column)
    const {
  auto it = field_lookup_.find(table + "." + column);
  if (it == field_lookup_.end()) return std::nullopt;
  return it->second;
}

TermId Vocabulary::Intern(FieldId field, const std::string& text) {
  std::string key = Key(field, text);
  auto it = term_lookup_.find(key);
  if (it != term_lookup_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  terms_.push_back(TermRecord{field, text});
  term_lookup_.emplace(std::move(key), id);
  by_text_[text].push_back(id);
  return id;
}

std::optional<TermId> Vocabulary::Find(FieldId field,
                                       const std::string& text) const {
  auto it = term_lookup_.find(Key(field, text));
  if (it == term_lookup_.end()) return std::nullopt;
  return it->second;
}

std::vector<TermId> Vocabulary::FindAllFields(const std::string& text)
    const {
  auto it = by_text_.find(text);
  if (it == by_text_.end()) return {};
  return it->second;
}

std::string Vocabulary::Describe(TermId id) const {
  const TermRecord& t = terms_[id];
  return t.text + "@" + fields_[t.field].Label();
}

}  // namespace kqr
