#include "text/vocabulary.h"

#include "common/logging.h"

namespace kqr {

Vocabulary Vocabulary::FromParts(std::vector<FieldInfo> fields,
                                 std::vector<FieldId> term_fields,
                                 std::vector<uint64_t> text_offsets,
                                 std::string_view arena) {
  KQR_CHECK(text_offsets.size() == term_fields.size() + 1)
      << "text_offsets must frame every term";
  KQR_CHECK(text_offsets.empty() || text_offsets.back() <= arena.size())
      << "text offsets overrun the arena";
  Vocabulary v;
  v.fields_ = std::move(fields);
  for (FieldId f = 0; f < v.fields_.size(); ++f) {
    v.field_lookup_.emplace(v.fields_[f].Label(), f);
  }
  v.mapped_arena_ = arena;
  v.terms_.reserve(term_fields.size());
  for (size_t i = 0; i < term_fields.size(); ++i) {
    KQR_CHECK(term_fields[i] < v.fields_.size()) << "term field out of range";
    const uint64_t off = text_offsets[i];
    const uint64_t len = text_offsets[i + 1] - off;
    v.terms_.push_back(
        TermRecord{term_fields[i], off, static_cast<uint32_t>(len)});
    std::string_view text = arena.substr(off, len);
    TermId id = static_cast<TermId>(i);
    v.term_lookup_.emplace(Key(term_fields[i], text), id);
    v.by_text_[std::string(text)].push_back(id);
  }
  return v;
}

FieldId Vocabulary::RegisterField(const std::string& table,
                                  const std::string& column,
                                  TextRole role) {
  std::string key = table + "." + column;
  auto it = field_lookup_.find(key);
  if (it != field_lookup_.end()) return it->second;
  KQR_CHECK(fields_.size() < static_cast<size_t>(FieldId(-1)))
      << "too many fields";
  FieldId id = static_cast<FieldId>(fields_.size());
  fields_.push_back(FieldInfo{table, column, role});
  field_lookup_.emplace(std::move(key), id);
  return id;
}

std::optional<FieldId> Vocabulary::FindField(const std::string& table,
                                             const std::string& column)
    const {
  auto it = field_lookup_.find(table + "." + column);
  if (it == field_lookup_.end()) return std::nullopt;
  return it->second;
}

TermId Vocabulary::Intern(FieldId field, const std::string& text) {
  KQR_CHECK(mapped_arena_.data() == nullptr)
      << "cannot intern into a vocabulary backed by a mapped model file";
  std::string key = Key(field, text);
  auto it = term_lookup_.find(key);
  if (it != term_lookup_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  terms_.push_back(TermRecord{field, arena_.size(),
                              static_cast<uint32_t>(text.size())});
  arena_ += text;
  term_lookup_.emplace(std::move(key), id);
  by_text_[text].push_back(id);
  return id;
}

std::optional<TermId> Vocabulary::Find(FieldId field,
                                       const std::string& text) const {
  auto it = term_lookup_.find(Key(field, text));
  if (it == term_lookup_.end()) return std::nullopt;
  return it->second;
}

std::vector<TermId> Vocabulary::FindAllFields(const std::string& text)
    const {
  auto it = by_text_.find(text);
  if (it == by_text_.end()) return {};
  return it->second;
}

std::string Vocabulary::Describe(TermId id) const {
  const TermRecord& t = terms_[id];
  return std::string(text(id)) + "@" + fields_[t.field].Label();
}

}  // namespace kqr
