#include "text/porter_stemmer.h"

#include <cctype>

namespace kqr {

namespace {

// Working buffer for one word. Implements the predicates of Porter (1980):
// m() measure, vowel-in-stem, double consonant, *o (cvc) ending.
class Word {
 public:
  explicit Word(std::string_view w) : b_(w) {}

  const std::string& str() const { return b_; }
  size_t size() const { return b_.size(); }

  bool EndsWith(std::string_view suffix) const {
    if (b_.size() < suffix.size()) return false;
    return std::string_view(b_).substr(b_.size() - suffix.size()) == suffix;
  }

  // Replaces a verified suffix with `repl`.
  void ReplaceSuffix(size_t suffix_len, std::string_view repl) {
    b_.resize(b_.size() - suffix_len);
    b_.append(repl);
  }

  // True if b_[i] is a consonant per Porter's definition ('y' is a
  // consonant when preceded by a vowel... precisely: 'y' is a consonant if
  // at position 0 or preceded by a vowel-position consonant).
  bool IsConsonant(size_t i) const {
    char c = b_[i];
    switch (c) {
      case 'a':
      case 'e':
      case 'i':
      case 'o':
      case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !IsConsonant(i - 1);
      default:
        return true;
    }
  }

  // Porter's m: number of VC sequences in the stem b_[0, len).
  int Measure(size_t len) const {
    int m = 0;
    size_t i = 0;
    // Skip initial consonants.
    while (i < len && IsConsonant(i)) ++i;
    while (i < len) {
      // In a vowel run.
      while (i < len && !IsConsonant(i)) ++i;
      if (i >= len) break;
      ++m;  // saw V followed by C
      while (i < len && IsConsonant(i)) ++i;
    }
    return m;
  }

  // Measure of the stem remaining after removing a suffix of length sl.
  int MeasureWithout(size_t sl) const { return Measure(b_.size() - sl); }

  // *v*: stem (excluding suffix of length sl) contains a vowel.
  bool HasVowel(size_t sl) const {
    for (size_t i = 0; i + sl < b_.size(); ++i) {
      if (!IsConsonant(i)) return true;
    }
    return false;
  }

  // *d: stem ends with a double consonant.
  bool EndsDoubleConsonant() const {
    if (b_.size() < 2) return false;
    size_t n = b_.size();
    return b_[n - 1] == b_[n - 2] && IsConsonant(n - 1);
  }

  // *o: stem ends cvc where the final c is not w, x or y.
  bool EndsCvc(size_t sl) const {
    if (b_.size() < sl + 3) return false;
    size_t last = b_.size() - sl - 1;
    if (!IsConsonant(last) || IsConsonant(last - 1) ||
        !IsConsonant(last - 2)) {
      return false;
    }
    char c = b_[last];
    return c != 'w' && c != 'x' && c != 'y';
  }

  std::string b_;
};

struct Rule {
  const char* suffix;
  const char* replacement;
  int min_measure;  // applies when m(stem) > min_measure
};

// Applies the first matching rule from a step-2/3/4 style table.
// Returns true if a suffix matched (even if the measure condition failed,
// per Porter's "longest match" semantics).
bool ApplyRuleTable(Word* w, const Rule* rules, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    std::string_view suffix(rules[i].suffix);
    if (w->EndsWith(suffix)) {
      if (w->MeasureWithout(suffix.size()) > rules[i].min_measure) {
        w->ReplaceSuffix(suffix.size(), rules[i].replacement);
      }
      return true;
    }
  }
  return false;
}

void Step1a(Word* w) {
  if (w->EndsWith("sses")) {
    w->ReplaceSuffix(4, "ss");
  } else if (w->EndsWith("ies")) {
    w->ReplaceSuffix(3, "i");
  } else if (w->EndsWith("ss")) {
    // no-op
  } else if (w->EndsWith("s")) {
    w->ReplaceSuffix(1, "");
  }
}

void Step1b(Word* w) {
  bool cleanup = false;
  if (w->EndsWith("eed")) {
    if (w->MeasureWithout(3) > 0) w->ReplaceSuffix(3, "ee");
  } else if (w->EndsWith("ed") && w->HasVowel(2)) {
    w->ReplaceSuffix(2, "");
    cleanup = true;
  } else if (w->EndsWith("ing") && w->HasVowel(3)) {
    w->ReplaceSuffix(3, "");
    cleanup = true;
  }
  if (cleanup) {
    if (w->EndsWith("at") || w->EndsWith("bl") || w->EndsWith("iz")) {
      w->ReplaceSuffix(0, "e");
    } else if (w->EndsDoubleConsonant()) {
      char last = w->str().back();
      if (last != 'l' && last != 's' && last != 'z') {
        w->ReplaceSuffix(1, "");
      }
    } else if (w->Measure(w->size()) == 1 && w->EndsCvc(0)) {
      w->ReplaceSuffix(0, "e");
    }
  }
}

void Step1c(Word* w) {
  if (w->EndsWith("y") && w->HasVowel(1)) {
    w->ReplaceSuffix(1, "i");
  }
}

void Step2(Word* w) {
  static const Rule kRules[] = {
      {"ational", "ate", 0}, {"tional", "tion", 0}, {"enci", "ence", 0},
      {"anci", "ance", 0},   {"izer", "ize", 0},    {"abli", "able", 0},
      {"alli", "al", 0},     {"entli", "ent", 0},   {"eli", "e", 0},
      {"ousli", "ous", 0},   {"ization", "ize", 0}, {"ation", "ate", 0},
      {"ator", "ate", 0},    {"alism", "al", 0},    {"iveness", "ive", 0},
      {"fulness", "ful", 0}, {"ousness", "ous", 0}, {"aliti", "al", 0},
      {"iviti", "ive", 0},   {"biliti", "ble", 0},
  };
  ApplyRuleTable(w, kRules, sizeof(kRules) / sizeof(kRules[0]));
}

void Step3(Word* w) {
  static const Rule kRules[] = {
      {"icate", "ic", 0}, {"ative", "", 0},  {"alize", "al", 0},
      {"iciti", "ic", 0}, {"ical", "ic", 0}, {"ful", "", 0},
      {"ness", "", 0},
  };
  ApplyRuleTable(w, kRules, sizeof(kRules) / sizeof(kRules[0]));
}

void Step4(Word* w) {
  static const Rule kRules[] = {
      {"al", "", 1},    {"ance", "", 1}, {"ence", "", 1}, {"er", "", 1},
      {"ic", "", 1},    {"able", "", 1}, {"ible", "", 1}, {"ant", "", 1},
      {"ement", "", 1}, {"ment", "", 1}, {"ent", "", 1},
  };
  for (const Rule& r : kRules) {
    std::string_view suffix(r.suffix);
    if (w->EndsWith(suffix)) {
      if (w->MeasureWithout(suffix.size()) > r.min_measure) {
        w->ReplaceSuffix(suffix.size(), r.replacement);
      }
      return;
    }
  }
  // (m>1 and (*S or *T)) ION
  if (w->EndsWith("ion") && w->MeasureWithout(3) > 1 && w->size() >= 4) {
    char before = w->str()[w->size() - 4];
    if (before == 's' || before == 't') {
      w->ReplaceSuffix(3, "");
      return;
    }
  }
  static const Rule kTail[] = {
      {"ou", "", 1},  {"ism", "", 1}, {"ate", "", 1}, {"iti", "", 1},
      {"ous", "", 1}, {"ive", "", 1}, {"ize", "", 1},
  };
  for (const Rule& r : kTail) {
    std::string_view suffix(r.suffix);
    if (w->EndsWith(suffix)) {
      if (w->MeasureWithout(suffix.size()) > r.min_measure) {
        w->ReplaceSuffix(suffix.size(), r.replacement);
      }
      return;
    }
  }
}

void Step5a(Word* w) {
  if (w->EndsWith("e")) {
    int m = w->MeasureWithout(1);
    if (m > 1 || (m == 1 && !w->EndsCvc(1))) {
      w->ReplaceSuffix(1, "");
    }
  }
}

void Step5b(Word* w) {
  if (w->EndsDoubleConsonant() && w->str().back() == 'l' &&
      w->MeasureWithout(1) > 1) {
    w->ReplaceSuffix(1, "");
  }
}

}  // namespace

std::string PorterStemmer::Stem(std::string_view word) const {
  if (word.size() < 3) return std::string(word);
  for (char c : word) {
    if (!std::islower(static_cast<unsigned char>(c))) {
      return std::string(word);
    }
  }
  Word w(word);
  Step1a(&w);
  Step1b(&w);
  Step1c(&w);
  Step2(&w);
  Step3(&w);
  Step4(&w);
  Step5a(&w);
  Step5b(&w);
  return w.str();
}

}  // namespace kqr
