#include "text/analyzer.h"

#include <cctype>

namespace kqr {

Analyzer::Analyzer(AnalyzerOptions options)
    : options_(options), tokenizer_(options.tokenizer) {}

std::vector<std::string> Analyzer::AnalyzeSegmented(
    std::string_view text) const {
  std::vector<std::string> tokens = tokenizer_.Tokenize(text);
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (std::string& tok : tokens) {
    if (options_.remove_stopwords && stopwords_.IsStopword(tok)) continue;
    if (options_.stem) tok = stemmer_.Stem(tok);
    if (tok.size() >= options_.tokenizer.min_token_length) {
      out.push_back(std::move(tok));
    }
  }
  return out;
}

std::string Analyzer::AnalyzeAtomic(std::string_view text) const {
  std::string out;
  bool pending_space = false;
  for (char raw : text) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isspace(c)) {
      if (!out.empty()) pending_space = true;
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    out.push_back(static_cast<char>(std::tolower(c)));
  }
  return out;
}

std::vector<std::string> Analyzer::Analyze(std::string_view text,
                                           TextRole role) const {
  switch (role) {
    case TextRole::kNone:
      return {};
    case TextRole::kSegmented:
      return AnalyzeSegmented(text);
    case TextRole::kAtomic: {
      std::string atom = AnalyzeAtomic(text);
      if (atom.empty()) return {};
      return {std::move(atom)};
    }
  }
  return {};
}

}  // namespace kqr
