// InvertedIndex: term → tuple postings over a Database, the Lucene
// substitute. Built once offline; consumed by the TAT graph builder and by
// keyword search.
//
// Storage is a flat postings pool framed by per-term offsets (CSR-style),
// so the whole index serializes as three bit-packed columns in a v3 model
// file and Lookup is a bounds-checked span into the pool.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/database.h"
#include "text/analyzer.h"
#include "text/vocabulary.h"

namespace kqr {

/// \brief Identifies one tuple across the whole database: the table's
/// position in catalog order plus the row index.
struct TupleRef {
  uint16_t table = 0;
  RowIndex row = 0;

  bool operator==(const TupleRef& o) const {
    return table == o.table && row == o.row;
  }
  bool operator<(const TupleRef& o) const {
    return table != o.table ? table < o.table : row < o.row;
  }
};

/// \brief One posting: the tuple and the term's frequency in it.
struct Posting {
  TupleRef tuple;
  uint32_t freq = 0;
};

/// \brief Immutable term → postings map plus corpus statistics.
class InvertedIndex {
 public:
  /// \brief Analyzes every text column of every table and builds the index.
  /// Fields are registered into `vocab` (which may be shared with the TAT
  /// graph builder); terms are interned there.
  static Result<InvertedIndex> Build(const Database& db,
                                     const Analyzer& analyzer,
                                     Vocabulary* vocab);

  /// \brief Reassembles an index from serialized parts without validation
  /// (model format v3). `offsets` has num_terms + 1 entries framing
  /// `pool`; provenance must be proven elsewhere (container checksums,
  /// ModelAuditor).
  static InvertedIndex FromParts(std::vector<uint64_t> offsets,
                                 std::vector<Posting> pool,
                                 size_t num_indexed_tuples,
                                 size_t num_corpus_tuples);

  /// Postings of a term (sorted by tuple). Empty for unknown terms.
  std::span<const Posting> Lookup(TermId term) const {
    if (term == kInvalidTermId || offsets_.empty() ||
        term >= offsets_.size() - 1) {
      return {};
    }
    return std::span<const Posting>(pool_.data() + offsets_[term],
                                    offsets_[term + 1] - offsets_[term]);
  }

  /// Number of distinct tuples containing `term`.
  size_t DocFreq(TermId term) const { return Lookup(term).size(); }

  /// Total occurrences of `term` across the corpus.
  uint64_t TotalFreq(TermId term) const;

  /// Number of indexed tuples that produced at least one term.
  size_t num_indexed_tuples() const { return num_indexed_tuples_; }

  /// Total number of tuples eligible for indexing (rows in tables with at
  /// least one text column).
  size_t num_corpus_tuples() const { return num_corpus_tuples_; }

  size_t num_terms() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  // Raw structure views for serialization. offsets() has num_terms()+1
  // entries framing postings().
  std::span<const uint64_t> offsets() const { return offsets_; }
  std::span<const Posting> postings() const { return pool_; }

 private:
  InvertedIndex() = default;

  std::vector<uint64_t> offsets_;  // size num_terms + 1 (empty when empty)
  std::vector<Posting> pool_;      // postings in TermId-major order
  size_t num_indexed_tuples_ = 0;
  size_t num_corpus_tuples_ = 0;
};

}  // namespace kqr
