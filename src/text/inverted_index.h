// InvertedIndex: term → tuple postings over a Database, the Lucene
// substitute. Built once offline; consumed by the TAT graph builder and by
// keyword search.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/database.h"
#include "text/analyzer.h"
#include "text/vocabulary.h"

namespace kqr {

/// \brief Identifies one tuple across the whole database: the table's
/// position in catalog order plus the row index.
struct TupleRef {
  uint16_t table = 0;
  RowIndex row = 0;

  bool operator==(const TupleRef& o) const {
    return table == o.table && row == o.row;
  }
  bool operator<(const TupleRef& o) const {
    return table != o.table ? table < o.table : row < o.row;
  }
};

/// \brief One posting: the tuple and the term's frequency in it.
struct Posting {
  TupleRef tuple;
  uint32_t freq = 0;
};

/// \brief Immutable term → postings map plus corpus statistics.
class InvertedIndex {
 public:
  /// \brief Analyzes every text column of every table and builds the index.
  /// Fields are registered into `vocab` (which may be shared with the TAT
  /// graph builder); terms are interned there.
  static Result<InvertedIndex> Build(const Database& db,
                                     const Analyzer& analyzer,
                                     Vocabulary* vocab);

  /// Postings of a term (sorted by tuple). Empty for unknown terms.
  const std::vector<Posting>& Lookup(TermId term) const;

  /// Number of distinct tuples containing `term`.
  size_t DocFreq(TermId term) const { return Lookup(term).size(); }

  /// Total occurrences of `term` across the corpus.
  uint64_t TotalFreq(TermId term) const;

  /// Number of indexed tuples that produced at least one term.
  size_t num_indexed_tuples() const { return num_indexed_tuples_; }

  /// Total number of tuples eligible for indexing (rows in tables with at
  /// least one text column).
  size_t num_corpus_tuples() const { return num_corpus_tuples_; }

  size_t num_terms() const { return postings_.size(); }

 private:
  InvertedIndex() = default;

  std::vector<std::vector<Posting>> postings_;  // indexed by TermId
  size_t num_indexed_tuples_ = 0;
  size_t num_corpus_tuples_ = 0;
};

}  // namespace kqr

