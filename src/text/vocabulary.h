// Vocabulary: interning of field-labelled terms.
//
// Per Def. 5 of the paper, "term nodes with same text extracted from
// different fields are considered as different; we label them with field
// identifiers". A field is a (table, column) pair.
//
// Term text lives in a single flat arena (offset + length per term), so a
// vocabulary can be backed either by owned memory (the build path appends
// to its own arena) or by a span into a mapped v3 model file
// (FromParts) — text() is a zero-copy string_view either way.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "storage/schema.h"

namespace kqr {

using FieldId = uint16_t;
using TermId = uint32_t;

inline constexpr TermId kInvalidTermId = static_cast<TermId>(-1);

/// \brief Metadata for one text field (table + column).
struct FieldInfo {
  std::string table;
  std::string column;
  TextRole role = TextRole::kNone;

  std::string Label() const { return table + "." + column; }
};

/// \brief Bidirectional mapping between (field, text) pairs and dense
/// TermIds, plus field registry.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// \brief Reassembles a vocabulary from serialized parts (model format
  /// v3). `text_offsets` has size `term_fields.size() + 1` and frames each
  /// term's text inside `arena`; `arena` may point into a mapped file that
  /// must outlive the vocabulary — texts are served zero-copy from it.
  /// The lookup maps are rebuilt here (O(total text) hashing, no parsing).
  static Vocabulary FromParts(std::vector<FieldInfo> fields,
                              std::vector<FieldId> term_fields,
                              std::vector<uint64_t> text_offsets,
                              std::string_view arena);

  /// Registers (or finds) a field; idempotent per (table, column).
  FieldId RegisterField(const std::string& table, const std::string& column,
                        TextRole role);

  std::optional<FieldId> FindField(const std::string& table,
                                   const std::string& column) const;

  const FieldInfo& field(FieldId id) const { return fields_[id]; }
  size_t num_fields() const { return fields_.size(); }

  /// Interns `text` under `field`, returning a dense id (existing on
  /// repeat calls). Only valid on vocabularies that own their arena.
  TermId Intern(FieldId field, const std::string& text);

  /// Id of an already-interned term, or nullopt.
  std::optional<TermId> Find(FieldId field, const std::string& text) const;

  /// All term ids whose text matches, across every field. Used when a user
  /// query keyword carries no field label.
  std::vector<TermId> FindAllFields(const std::string& text) const;

  /// The term's text, viewing the arena — valid as long as the vocabulary
  /// (and, for mapped vocabularies, the mapped file) is alive.
  std::string_view text(TermId id) const {
    const TermRecord& t = terms_[id];
    return arena_view().substr(t.offset, t.length);
  }
  FieldId field_of(TermId id) const { return terms_[id].field; }

  /// "text@table.column" — unambiguous rendering for output.
  std::string Describe(TermId id) const;

  size_t size() const { return terms_.size(); }

  // Raw serialization views (model format v3). Terms are appended to the
  // arena in id order, so text_offset is non-decreasing in `id` and the
  // arena is exactly the concatenation of every term's text.
  std::string_view arena() const { return arena_view(); }
  uint64_t text_offset(TermId id) const { return terms_[id].offset; }

 private:
  struct TermRecord {
    FieldId field;
    uint64_t offset;
    uint32_t length;
  };

  static std::string Key(FieldId field, std::string_view text) {
    return std::to_string(field) + '\x1f' + std::string(text);
  }

  std::string_view arena_view() const {
    return mapped_arena_.data() != nullptr ? mapped_arena_
                                           : std::string_view(arena_);
  }

  std::vector<FieldInfo> fields_;
  std::unordered_map<std::string, FieldId> field_lookup_;
  std::vector<TermRecord> terms_;
  std::string arena_;              // owned text bytes (build path)
  std::string_view mapped_arena_;  // set instead when backed by a model file
  std::unordered_map<std::string, TermId> term_lookup_;
  std::unordered_map<std::string, std::vector<TermId>> by_text_;
};

}  // namespace kqr
