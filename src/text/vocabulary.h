// Vocabulary: interning of field-labelled terms.
//
// Per Def. 5 of the paper, "term nodes with same text extracted from
// different fields are considered as different; we label them with field
// identifiers". A field is a (table, column) pair.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/schema.h"

namespace kqr {

using FieldId = uint16_t;
using TermId = uint32_t;

inline constexpr TermId kInvalidTermId = static_cast<TermId>(-1);

/// \brief Metadata for one text field (table + column).
struct FieldInfo {
  std::string table;
  std::string column;
  TextRole role = TextRole::kNone;

  std::string Label() const { return table + "." + column; }
};

/// \brief Bidirectional mapping between (field, text) pairs and dense
/// TermIds, plus field registry.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Registers (or finds) a field; idempotent per (table, column).
  FieldId RegisterField(const std::string& table, const std::string& column,
                        TextRole role);

  std::optional<FieldId> FindField(const std::string& table,
                                   const std::string& column) const;

  const FieldInfo& field(FieldId id) const { return fields_[id]; }
  size_t num_fields() const { return fields_.size(); }

  /// Interns `text` under `field`, returning a dense id (existing on
  /// repeat calls).
  TermId Intern(FieldId field, const std::string& text);

  /// Id of an already-interned term, or nullopt.
  std::optional<TermId> Find(FieldId field, const std::string& text) const;

  /// All term ids whose text matches, across every field. Used when a user
  /// query keyword carries no field label.
  std::vector<TermId> FindAllFields(const std::string& text) const;

  const std::string& text(TermId id) const { return terms_[id].text; }
  FieldId field_of(TermId id) const { return terms_[id].field; }

  /// "text@table.column" — unambiguous rendering for output.
  std::string Describe(TermId id) const;

  size_t size() const { return terms_.size(); }

 private:
  struct TermRecord {
    FieldId field;
    std::string text;
  };

  static std::string Key(FieldId field, const std::string& text) {
    return std::to_string(field) + '\x1f' + text;
  }

  std::vector<FieldInfo> fields_;
  std::unordered_map<std::string, FieldId> field_lookup_;
  std::vector<TermRecord> terms_;
  std::unordered_map<std::string, TermId> term_lookup_;
  std::unordered_map<std::string, std::vector<TermId>> by_text_;
};

}  // namespace kqr

