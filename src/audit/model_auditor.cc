#include "audit/model_auditor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/candidates.h"
#include "core/serving_model.h"

namespace kqr {

namespace {

/// Incremental builder for one AuditCheck: counts units, keeps the first
/// violation as the worst offender.
class CheckRecorder {
 public:
  explicit CheckRecorder(std::string name) { check_.name = std::move(name); }

  void CountUnit() { ++check_.checked; }
  void CountUnits(size_t n) { check_.checked += n; }

  /// Records a violation. `severity` picks the worst offender kept in
  /// the report: the highest-severity violation wins, first-come on ties.
  void Violation(const std::string& what, double severity = 0.0) {
    ++check_.violations;
    check_.passed = false;
    if (check_.worst.empty() || severity > worst_severity_) {
      check_.worst = what;
      worst_severity_ = severity;
    }
  }

  AuditCheck Take() { return std::move(check_); }

 private:
  AuditCheck check_;
  double worst_severity_ = 0.0;
};

bool NearOne(double mass, double epsilon) {
  return std::isfinite(mass) && std::abs(mass - 1.0) <= epsilon;
}

std::string Str(double v) {
  std::ostringstream out;
  out.precision(12);
  out << v;
  return out.str();
}

/// Validates the CSR frame (offset monotonicity and bounds) so the other
/// checks can walk rows without risking out-of-range reads on corrupted
/// input. Returns false when the frame itself is broken.
bool FrameIsSound(const CsrGraph& graph, CheckRecorder* rec) {
  const auto offsets = graph.offsets();
  const auto arcs = graph.arcs();
  if (offsets.empty()) {
    if (!arcs.empty()) rec->Violation("arcs present but offsets empty");
    return arcs.empty();
  }
  if (offsets.front() != 0) {
    rec->Violation("offsets[0] = " + std::to_string(offsets.front()) +
                   ", want 0");
    return false;
  }
  if (offsets.back() != arcs.size()) {
    rec->Violation("offsets.back() = " + std::to_string(offsets.back()) +
                   " does not frame " + std::to_string(arcs.size()) +
                   " arcs");
    return false;
  }
  for (size_t u = 0; u + 1 < offsets.size(); ++u) {
    if (offsets[u] > offsets[u + 1]) {
      rec->Violation("offsets not monotone at node " + std::to_string(u));
      return false;
    }
  }
  return true;
}

}  // namespace

std::string AuditCheck::ToString() const {
  std::ostringstream out;
  out << name << ": ";
  if (passed) {
    out << "OK (" << checked << " checked)";
  } else {
    out << "FAIL (" << violations << " violation"
        << (violations == 1 ? "" : "s") << " over " << checked
        << " checked): " << worst;
  }
  return out.str();
}

bool AuditReport::ok() const {
  return std::all_of(checks.begin(), checks.end(),
                     [](const AuditCheck& c) { return c.passed; });
}

size_t AuditReport::total_violations() const {
  size_t n = 0;
  for (const AuditCheck& c : checks) n += c.violations;
  return n;
}

const AuditCheck* AuditReport::Find(std::string_view name) const {
  for (const AuditCheck& c : checks) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::string AuditReport::ToString() const {
  std::string out;
  for (const AuditCheck& c : checks) {
    out += c.ToString();
    out += '\n';
  }
  return out;
}

std::string AuditReport::Summary() const {
  if (ok()) {
    return "audit OK (" + std::to_string(checks.size()) + " checks)";
  }
  std::string out = "audit FAILED:";
  for (const AuditCheck& c : checks) {
    if (!c.passed) {
      out += ' ';
      out += c.name;
    }
  }
  return out;
}

AuditCheck ModelAuditor::CheckAdjacency(const CsrGraph& graph) const {
  CheckRecorder rec("csr-adjacency");
  const size_t num_nodes = graph.num_nodes();
  const auto offsets = graph.offsets();
  const auto arcs = graph.arcs();

  if (graph.weighted_degrees().size() != num_nodes) {
    rec.Violation("weighted-degree table has " +
                  std::to_string(graph.weighted_degrees().size()) +
                  " entries for " + std::to_string(num_nodes) + " nodes");
  }
  if (!FrameIsSound(graph, &rec)) return rec.Take();

  for (size_t u = 0; u < num_nodes; ++u) {
    rec.CountUnit();
    uint32_t prev_target = 0;
    bool first = true;
    for (uint64_t i = offsets[u]; i < offsets[u + 1]; ++i) {
      const Arc& arc = arcs[i];
      if (arc.target >= num_nodes) {
        // Worst possible defect: walking this arc is out-of-bounds UB, so
        // it outranks the sort/symmetry violations it also causes.
        rec.Violation("node " + std::to_string(u) + " has arc to " +
                          std::to_string(arc.target) + " outside " +
                          std::to_string(num_nodes) + " nodes",
                      INFINITY);
        continue;
      }
      if (!first && arc.target <= prev_target) {
        rec.Violation("node " + std::to_string(u) +
                      " adjacency not strictly sorted at target " +
                      std::to_string(arc.target));
      }
      prev_target = arc.target;
      first = false;
      if (!std::isfinite(arc.weight) || arc.weight <= 0.0f) {
        rec.Violation("arc " + std::to_string(u) + "→" +
                      std::to_string(arc.target) +
                      " has non-positive or non-finite weight " +
                      Str(arc.weight));
        continue;
      }
      // Undirected symmetry: the reverse arc exists with equal weight.
      const auto row = arcs.subspan(
          offsets[arc.target], offsets[arc.target + 1] - offsets[arc.target]);
      const auto it = std::lower_bound(
          row.begin(), row.end(), static_cast<uint32_t>(u),
          [](const Arc& a, uint32_t t) { return a.target < t; });
      if (it == row.end() || it->target != u) {
        rec.Violation("arc " + std::to_string(u) + "→" +
                      std::to_string(arc.target) + " has no reverse arc");
      } else if (it->weight != arc.weight) {
        rec.Violation("arc " + std::to_string(u) + "→" +
                      std::to_string(arc.target) +
                      " weight mismatch with reverse: " + Str(arc.weight) +
                      " vs " + Str(it->weight));
      }
    }
  }
  return rec.Take();
}

AuditCheck ModelAuditor::CheckWalkRows(const CsrGraph& graph) const {
  CheckRecorder rec("walk-row-mass");
  if (!FrameIsSound(graph, &rec)) return rec.Take();
  const auto offsets = graph.offsets();
  const auto arcs = graph.arcs();
  const auto degrees = graph.weighted_degrees();
  const size_t num_nodes = graph.num_nodes();
  if (degrees.size() != num_nodes) {
    rec.Violation("weighted-degree table has " +
                  std::to_string(degrees.size()) + " entries for " +
                  std::to_string(num_nodes) + " nodes");
    return rec.Take();
  }
  for (size_t u = 0; u < num_nodes; ++u) {
    rec.CountUnit();
    double sum = 0.0;
    for (uint64_t i = offsets[u]; i < offsets[u + 1]; ++i) {
      sum += arcs[i].weight;
    }
    const double normalizer = degrees[u];
    if (!std::isfinite(normalizer)) {
      rec.Violation(
          "node " + std::to_string(u) + " has non-finite weighted degree",
          INFINITY);
      continue;
    }
    // The walk's transition row is weight/normalizer: row mass is
    // sum/normalizer and must be 1 within tolerance (0/0 for dangling
    // nodes is fine — the walk restarts there).
    if (normalizer == 0.0 && sum == 0.0) continue;
    const double mass = normalizer > 0.0 ? sum / normalizer : INFINITY;
    if (!NearOne(mass, options_.epsilon)) {
      rec.Violation("node " + std::to_string(u) +
                        " transition row mass " + Str(mass),
                    std::abs(mass - 1.0));
    }
  }
  return rec.Take();
}

AuditCheck ModelAuditor::CheckPreferenceMass(
    const TatGraph& graph, const GraphStats& stats,
    const ContextualPreferenceOptions& pref_options) const {
  CheckRecorder rec("preference-mass");
  const size_t num_terms = graph.space().num_term_nodes();
  if (options_.preference_samples == 0 || num_terms == 0) return rec.Take();
  const size_t step =
      std::max<size_t>(1, num_terms / options_.preference_samples);
  for (size_t t = 0; t < num_terms; t += step) {
    rec.CountUnit();
    const NodeId start = graph.NodeOfTerm(static_cast<TermId>(t));
    const PreferenceVector pref =
        MakeContextualPreference(graph, stats, start, pref_options);
    double mass = 0.0;
    for (const auto& [node, weight] : pref.entries) {
      if (node >= graph.num_nodes()) {
        rec.Violation("preference of term " + std::to_string(t) +
                      " names node " + std::to_string(node) +
                      " outside the graph");
      }
      if (!std::isfinite(weight) || weight <= 0.0) {
        rec.Violation("preference of term " + std::to_string(t) +
                      " has non-positive weight " + Str(weight));
      }
      mass += weight;
    }
    if (!NearOne(mass, options_.epsilon)) {
      rec.Violation("preference of term " + std::to_string(t) +
                    " has mass " + Str(mass));
    }
  }
  return rec.Take();
}

AuditCheck ModelAuditor::CheckNodeMapping(const TatGraph& graph) const {
  CheckRecorder rec("vocab-node-mapping");
  const NodeSpace& space = graph.space();
  if (space.num_tuple_nodes() + space.num_term_nodes() !=
      space.num_nodes()) {
    rec.Violation("node space partitions to " +
                  std::to_string(space.num_tuple_nodes()) + "+" +
                  std::to_string(space.num_term_nodes()) +
                  " nodes but claims " + std::to_string(space.num_nodes()));
  }
  if (graph.vocab().size() != space.num_term_nodes()) {
    rec.Violation("vocabulary has " + std::to_string(graph.vocab().size()) +
                  " terms but the node space has " +
                  std::to_string(space.num_term_nodes()) + " term nodes");
  }
  if (graph.adjacency().num_nodes() != space.num_nodes()) {
    rec.Violation("adjacency covers " +
                  std::to_string(graph.adjacency().num_nodes()) +
                  " nodes but the node space has " +
                  std::to_string(space.num_nodes()));
  }
  for (size_t t = 0; t < space.num_term_nodes(); ++t) {
    rec.CountUnit();
    const TermId term = static_cast<TermId>(t);
    const NodeId id = graph.NodeOfTerm(term);
    if (id >= space.num_nodes()) {
      rec.Violation("term " + std::to_string(t) + " maps to node " +
                    std::to_string(id) + " outside the node space");
      continue;
    }
    if (graph.KindOf(id) != NodeKind::kTerm) {
      rec.Violation("term " + std::to_string(t) + " maps to node " +
                    std::to_string(id) + " of tuple kind");
      continue;
    }
    if (graph.TermOfNode(id) != term) {
      rec.Violation("term " + std::to_string(t) +
                    " does not round-trip through node " +
                    std::to_string(id));
    }
  }
  for (size_t n = 0; n < space.num_tuple_nodes(); ++n) {
    rec.CountUnit();
    const NodeId id = static_cast<NodeId>(n);
    if (graph.KindOf(id) != NodeKind::kTuple) {
      rec.Violation("node " + std::to_string(n) +
                    " in the tuple range reports term kind");
      continue;
    }
    const TupleRef ref = graph.TupleOfNode(id);
    if (graph.NodeOfTuple(ref) != id) {
      rec.Violation("tuple node " + std::to_string(n) +
                    " does not round-trip through its TupleRef");
    }
  }
  return rec.Take();
}

AuditCheck ModelAuditor::CheckSimilarityLists(
    const SimilarityIndex& index, const std::vector<TermId>& terms,
    size_t vocab_size, size_t max_list_size) const {
  CheckRecorder rec("similarity-lists");
  for (TermId term : terms) {
    rec.CountUnit();
    const auto& list = index.Lookup(term);
    if (max_list_size > 0 && list.size() > max_list_size) {
      rec.Violation("term " + std::to_string(term) + " has " +
                    std::to_string(list.size()) +
                    " similar terms, cap is " +
                    std::to_string(max_list_size));
    }
    const Status st = ValidateSimilarList(term, list, vocab_size);
    if (!st.ok()) rec.Violation(st.message());
  }
  return rec.Take();
}

AuditCheck ModelAuditor::CheckClosenessLists(
    const ClosenessIndex& index, const std::vector<TermId>& terms,
    size_t vocab_size, size_t max_list_size, bool check_order) const {
  CheckRecorder rec("closeness-lists");
  for (TermId term : terms) {
    rec.CountUnit();
    const auto& list = index.Lookup(term);
    if (max_list_size > 0 && list.size() > max_list_size) {
      rec.Violation("term " + std::to_string(term) + " has " +
                    std::to_string(list.size()) + " close terms, cap is " +
                    std::to_string(max_list_size));
    }
    const Status st = ValidateCloseList(term, list, vocab_size);
    if (!st.ok()) rec.Violation(st.message());
    if (check_order) {
      for (size_t i = 1; i < list.size(); ++i) {
        if (list[i].closeness > list[i - 1].closeness) {
          rec.Violation("term " + std::to_string(term) +
                        " close list not sorted at rank " +
                        std::to_string(i) + ": " + Str(list[i].closeness) +
                        " after " + Str(list[i - 1].closeness));
          break;
        }
      }
    }
  }
  return rec.Take();
}

AuditCheck ModelAuditor::CheckHmm(const HmmModel& model) const {
  CheckRecorder rec("hmm-stochastic");
  const size_t m = model.num_positions();
  auto check_row = [&](const std::vector<double>& row,
                       const std::string& what, size_t want_size) {
    rec.CountUnit();
    if (row.size() != want_size) {
      rec.Violation(what + " has " + std::to_string(row.size()) +
                    " entries, want " + std::to_string(want_size));
      return;
    }
    if (row.empty()) return;
    double mass = 0.0;
    for (double p : row) {
      if (!std::isfinite(p) || p < 0.0) {
        rec.Violation(what + " has invalid probability " + Str(p));
        return;
      }
      mass += p;
    }
    if (!NearOne(mass, options_.epsilon)) {
      rec.Violation(what + " leaks mass: sums to " + Str(mass));
    }
  };

  if (m == 0) return rec.Take();
  check_row(model.pi, "pi", model.num_states(0));
  if (model.emission.size() != m) {
    rec.Violation("emission has " + std::to_string(model.emission.size()) +
                  " rows for " + std::to_string(m) + " positions");
    return rec.Take();
  }
  for (size_t c = 0; c < m; ++c) {
    check_row(model.emission[c], "emission row " + std::to_string(c),
              model.num_states(c));
  }
  if (model.trans.size() + 1 != m) {
    rec.Violation("transition tensor has " +
                  std::to_string(model.trans.size()) + " slices for " +
                  std::to_string(m) + " positions");
    return rec.Take();
  }
  for (size_t c = 0; c + 1 < m; ++c) {
    if (model.trans[c].size() != model.num_states(c)) {
      rec.Violation("transition slice " + std::to_string(c) + " has " +
                    std::to_string(model.trans[c].size()) +
                    " rows, want " + std::to_string(model.num_states(c)));
      continue;
    }
    for (size_t i = 0; i < model.trans[c].size(); ++i) {
      check_row(model.trans[c][i],
                "transition row " + std::to_string(c) + "/" +
                    std::to_string(i),
                model.num_states(c + 1));
    }
  }

  // Decode-pruning bounds: builder-produced models must carry bounds that
  // match the current matrices exactly (recomputing them is the same
  // arithmetic, so equality is bit-exact). Stale bounds would silently
  // void the pruned decoders' exactness argument.
  if (model.bounds_ready()) {
    for (size_t c = 0; c < m; ++c) {
      rec.CountUnit();
      double best = 0.0;
      for (double e : model.emission[c]) {
        if (e > best) best = e;
      }
      if (model.emission_max[c] != best) {
        rec.Violation("emission_max[" + std::to_string(c) + "] is " +
                      Str(model.emission_max[c]) + ", row max is " +
                      Str(best));
      }
    }
    for (size_t c = 0; c + 1 < m; ++c) {
      rec.CountUnit();
      double best = 0.0;
      for (const std::vector<double>& row : model.trans[c]) {
        for (double a : row) {
          if (a > best) best = a;
        }
      }
      if (model.trans_max[c] != best) {
        rec.Violation("trans_max[" + std::to_string(c) + "] is " +
                      Str(model.trans_max[c]) + ", slice max is " +
                      Str(best));
      }
    }
    if (model.suffix_bound[m - 1] != 1.0) {
      rec.Violation("suffix_bound at the last position is " +
                    Str(model.suffix_bound[m - 1]) + ", want 1");
    }
    for (size_t c = m - 1; c-- > 0;) {
      const double expect = model.trans_max[c] * model.emission_max[c + 1] *
                            model.suffix_bound[c + 1];
      if (model.suffix_bound[c] != expect) {
        rec.Violation("suffix_bound[" + std::to_string(c) +
                      "] breaks the backward recurrence: " +
                      Str(model.suffix_bound[c]) + " vs " + Str(expect));
      }
    }
  }
  return rec.Take();
}

AuditCheck ModelAuditor::CheckTermBounds(const TermBoundsTable& bounds,
                                         const SimilarityIndex& similarity,
                                         const ClosenessIndex& closeness,
                                         size_t vocab_size) const {
  CheckRecorder rec("term-bounds");
  if (bounds.size() != vocab_size) {
    rec.Violation("bounds table covers " + std::to_string(bounds.size()) +
                  " terms, vocabulary has " + std::to_string(vocab_size));
    return rec.Take();
  }
  for (TermId term = 0; term < vocab_size; ++term) {
    rec.CountUnit();
    const double emission = bounds.emission_cap(term);
    const double transition = bounds.transition_cap(term);
    if (!std::isfinite(emission) || emission < 0.0 ||
        !std::isfinite(transition) || transition < 0.0) {
      rec.Violation("term " + std::to_string(term) +
                    " has a non-finite or negative cap");
      continue;
    }
    double max_score = 0.0;
    for (const SimilarTerm& s : similarity.Lookup(term)) {
      max_score = std::max(max_score, s.score);
    }
    double max_closeness = 0.0;
    for (const CloseTerm& c : closeness.Lookup(term)) {
      max_closeness = std::max(max_closeness, c.closeness);
    }
    if (emission != max_score) {
      rec.Violation("term " + std::to_string(term) + " emission cap " +
                    std::to_string(emission) + " != list max " +
                    std::to_string(max_score));
    } else if (transition != max_closeness) {
      rec.Violation("term " + std::to_string(term) + " transition cap " +
                    std::to_string(transition) + " != list max " +
                    std::to_string(max_closeness));
    }
  }
  return rec.Take();
}

AuditReport ModelAuditor::Audit(const ServingModel& model) const {
  AuditReport report;
  const CsrGraph& adjacency = model.graph().adjacency();
  report.checks.push_back(CheckAdjacency(adjacency));
  report.checks.push_back(CheckWalkRows(adjacency));
  report.checks.push_back(CheckNodeMapping(model.graph()));
  report.checks.push_back(
      CheckPreferenceMass(model.graph(), model.stats(),
                          model.options().similarity.similarity.context));

  // The probe prepares a few terms on a lazy model so the list and HMM
  // checks never run against an empty cache.
  if (options_.hmm_probe_terms > 0) {
    const size_t probe_count =
        std::min<size_t>(options_.hmm_probe_terms, model.vocab().size());
    for (size_t t = 0; t < probe_count; ++t) {
      model.EnsureTerm(static_cast<TermId>(t));
    }
  }

  const std::vector<TermId> prepared = model.PreparedTerms();
  const size_t vocab_size = model.vocab().size();
  const EngineOptions& opts = model.options();
  const size_t similarity_cap = opts.use_cooccurrence_similarity
                                    ? opts.cooccurrence.list_size
                                    : opts.similarity.list_size;
  report.checks.push_back(CheckSimilarityLists(
      model.similarity_index(), prepared, vocab_size, similarity_cap));
  // Normalized-closeness ranking reorders lists by closeness/freq, so raw
  // closeness monotonicity only holds for the default ranking.
  const bool check_order = !opts.closeness.closeness.rank_normalized;
  report.checks.push_back(
      CheckClosenessLists(model.closeness_index(), prepared, vocab_size,
                          opts.closeness.list_size, check_order));

  if (!model.term_bounds().empty() && model.fully_prepared()) {
    report.checks.push_back(
        CheckTermBounds(model.term_bounds(), model.similarity_index(),
                        model.closeness_index(), vocab_size));
  }

  if (options_.hmm_probe_terms > 0 && !prepared.empty()) {
    std::vector<TermId> probe;
    for (TermId term : prepared) {
      probe.push_back(term);
      if (probe.size() >= options_.hmm_probe_terms) break;
    }
    const CandidateBuilder builder(model.similarity_index(),
                                   opts.reformulator.candidates);
    const HmmBuilder hmm_builder(model.closeness_index(), model.stats(),
                                 model.graph(), opts.reformulator.hmm);
    const HmmModel hmm = hmm_builder.Build(builder.Build(probe));
    report.checks.push_back(CheckHmm(hmm));
  }
  return report;
}

namespace {

/// True when `list[i].term` repeats an earlier entry. Lists are bounded
/// by the configured list size (dozens of entries), so a backward scan
/// over contiguous memory beats any hash set — these validators run over
/// every list of every term on the model-file open path, and a per-list
/// allocation there dominates an otherwise sub-millisecond pass.
template <typename Entry>
bool IsDuplicateEntry(std::span<const Entry> list, size_t i) {
  for (size_t j = 0; j < i; ++j) {
    if (list[j].term == list[i].term) return true;
  }
  return false;
}

}  // namespace

Status ValidateSimilarList(TermId term,
                           std::span<const SimilarTerm> list,
                           size_t vocab_size) {
  // The failure message is built lazily for the same reason: string
  // construction per entry is pure waste on the all-valid path.
  const auto at = [term](size_t i) {
    return "similar list of term " + std::to_string(term) + " rank " +
           std::to_string(i);
  };
  for (size_t i = 0; i < list.size(); ++i) {
    const SimilarTerm& entry = list[i];
    if (entry.term >= vocab_size) {
      return Status::Corruption(at(i) + ": term id " +
                                std::to_string(entry.term) +
                                " outside vocabulary of " +
                                std::to_string(vocab_size));
    }
    if (!std::isfinite(entry.score) || entry.score < 0.0 ||
        entry.score > 1.0) {
      return Status::Corruption(at(i) + ": score " + Str(entry.score) +
                                " outside [0,1]");
    }
    if (i > 0 && entry.score > list[i - 1].score) {
      return Status::Corruption(at(i) + ": not sorted, score " +
                                Str(entry.score) + " after " +
                                Str(list[i - 1].score));
    }
    if (IsDuplicateEntry(list, i)) {
      return Status::Corruption(at(i) + ": duplicate term id " +
                                std::to_string(entry.term));
    }
  }
  return Status::OK();
}

Status ValidateCloseList(TermId term, std::span<const CloseTerm> list,
                         size_t vocab_size) {
  const auto at = [term](size_t i) {
    return "close list of term " + std::to_string(term) + " rank " +
           std::to_string(i);
  };
  for (size_t i = 0; i < list.size(); ++i) {
    const CloseTerm& entry = list[i];
    if (entry.term >= vocab_size) {
      return Status::Corruption(at(i) + ": term id " +
                                std::to_string(entry.term) +
                                " outside vocabulary of " +
                                std::to_string(vocab_size));
    }
    if (!std::isfinite(entry.closeness) || entry.closeness < 0.0) {
      return Status::Corruption(at(i) + ": closeness " + Str(entry.closeness) +
                                " negative or non-finite");
    }
    if (entry.distance == 0) {
      return Status::Corruption(at(i) + ": zero distance to a distinct term");
    }
    if (IsDuplicateEntry(list, i)) {
      return Status::Corruption(at(i) + ": duplicate term id " +
                                std::to_string(entry.term));
    }
  }
  return Status::OK();
}

}  // namespace kqr
