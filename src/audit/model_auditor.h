// ModelAuditor: structural invariant verification for frozen serving
// artifacts. The paper's correctness rests on invariants the type system
// cannot see — random-walk transition rows must be stochastic (Sec. IV),
// similarity scores are probabilities, the HMM trellis (Sec. V) silently
// mis-ranks if an emission row leaks mass — and a model loaded from disk
// is one bit-flip away from violating all of them. The auditor walks a
// ServingModel and proves every frozen structure well-formed, returning a
// structured per-check report instead of aborting, so callers decide
// whether a violation is fatal (EngineBuilder in debug builds), a load
// error (snapshot import), or a diagnostic (kqr_cli --audit).
//
// Checks (stable names, used by tests and report consumers):
//   csr-adjacency      CSR framing: offsets monotone and arc-bounded,
//                      targets in-bounds and strictly sorted per row,
//                      weights finite/positive, undirected symmetry.
//   walk-row-mass      Per-node transition row of the random walk sums to
//                      1 (weighted degree equals the sum of arc weights).
//   preference-mass    Sampled contextual preference vectors are valid
//                      restart distributions (in-bounds, mass 1±ε).
//   vocab-node-mapping TermId↔NodeId↔TupleRef cross-references are
//                      bijective and kind-consistent.
//   similarity-lists   Similar-term lists: ids in-vocab, scores finite in
//                      [0,1], sorted non-increasing, no duplicates,
//                      within the configured list size.
//   closeness-lists    Close-term lists: ids in-vocab, closeness finite
//                      and non-negative, distances sane, sorted (when the
//                      ranking is raw closeness), no duplicates.
//   hmm-stochastic     A probe trellis built from the model's own indexes
//                      has stochastic π, emission and transition rows.

#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "closeness/closeness_index.h"
#include "common/status.h"
#include "core/hmm.h"
#include "graph/csr.h"
#include "graph/graph_stats.h"
#include "graph/tat_graph.h"
#include "walk/preference.h"
#include "walk/similarity_index.h"

namespace kqr {

class ServingModel;

struct AuditOptions {
  /// Tolerance for stochastic-row mass checks (|mass − 1| ≤ epsilon).
  double epsilon = 1e-6;
  /// Term nodes sampled for the preference-mass check (evenly spaced over
  /// the vocabulary). 0 disables the check.
  size_t preference_samples = 64;
  /// Query length of the HMM probe trellis (drawn from prepared terms).
  /// 0 disables the check.
  size_t hmm_probe_terms = 3;
};

/// \brief Outcome of one invariant check.
struct AuditCheck {
  std::string name;
  bool passed = true;
  /// Units examined (rows, entries, terms — per-check granularity).
  size_t checked = 0;
  size_t violations = 0;
  /// Description of the worst offender (first/largest violation).
  std::string worst;

  /// "name: OK (n checked)" or "name: FAIL (v/n): worst".
  std::string ToString() const;
};

/// \brief Aggregated audit outcome: one entry per check that ran.
struct AuditReport {
  std::vector<AuditCheck> checks;

  bool ok() const;
  size_t total_violations() const;
  const AuditCheck* Find(std::string_view name) const;
  /// Multi-line, one check per line.
  std::string ToString() const;
  /// One line: "audit OK (7 checks)" or the failing check names.
  std::string Summary() const;
};

/// \brief Walks a ServingModel and validates every frozen structure.
///
/// Stateless apart from options; safe to share. The structure-level
/// entry points are public so tests can aim a check at a hand-built
/// (deliberately corrupted) structure without a full model.
class ModelAuditor {
 public:
  explicit ModelAuditor(AuditOptions options = {}) : options_(options) {}

  /// \brief Runs every check against the model. For lazy models only the
  /// currently prepared terms' lists are audited (the HMM probe prepares
  /// a few terms on demand).
  AuditReport Audit(const ServingModel& model) const;

  // -- Structure-level checks ------------------------------------------

  /// CSR framing, bounds, per-row ordering, weight sanity, symmetry.
  AuditCheck CheckAdjacency(const CsrGraph& graph) const;

  /// Transition-row mass: WeightedDegree(u) == Σ weights(u) within ε.
  AuditCheck CheckWalkRows(const CsrGraph& graph) const;

  /// Contextual preference vectors for up to `preference_samples` term
  /// nodes are valid restart distributions, built under the model's own
  /// preference options.
  AuditCheck CheckPreferenceMass(
      const TatGraph& graph, const GraphStats& stats,
      const ContextualPreferenceOptions& pref_options = {}) const;

  /// Term↔node↔tuple id cross-references are bijective.
  AuditCheck CheckNodeMapping(const TatGraph& graph) const;

  /// Similar-term lists for `terms` hold sorted in-range probabilities.
  AuditCheck CheckSimilarityLists(const SimilarityIndex& index,
                                  const std::vector<TermId>& terms,
                                  size_t vocab_size,
                                  size_t max_list_size) const;

  /// Close-term lists for `terms` are well-formed. `check_order` is off
  /// when lists are ranked by normalized closeness (rank_normalized), in
  /// which case raw closeness need not be monotone.
  AuditCheck CheckClosenessLists(const ClosenessIndex& index,
                                 const std::vector<TermId>& terms,
                                 size_t vocab_size, size_t max_list_size,
                                 bool check_order) const;

  /// π, emission rows and transition rows of `model` are stochastic.
  AuditCheck CheckHmm(const HmmModel& model) const;

  /// Per-term decode-bound caps agree with the frozen lists: for every
  /// term, emission_cap == max similar score and transition_cap == max
  /// closeness (exact — both sides are the same max over the same list),
  /// and every cap is finite and non-negative. Only meaningful on fully
  /// prepared models (lazy preparation after a save legitimately
  /// outgrows a stored cap), so Audit gates on fully_prepared().
  AuditCheck CheckTermBounds(const TermBoundsTable& bounds,
                             const SimilarityIndex& similarity,
                             const ClosenessIndex& closeness,
                             size_t vocab_size) const;

  const AuditOptions& options() const { return options_; }

 private:
  AuditOptions options_;
};

// -- Record-level validators ------------------------------------------
// Shared with the snapshot loader so imports are audited before they are
// installed, not trusted and discovered corrupt at serving time.

/// \brief Validates one similar-term list (ids in [0, vocab_size), scores
/// finite in [0,1], non-increasing, no duplicate ids).
Status ValidateSimilarList(TermId term, std::span<const SimilarTerm> list,
                           size_t vocab_size);

/// \brief Validates one close-term list (ids in [0, vocab_size),
/// closeness finite and ≥ 0, no duplicate ids). Ordering is not required
/// here: ranking may be normalized (see ClosenessOptions).
Status ValidateCloseList(TermId term, std::span<const CloseTerm> list,
                         size_t vocab_size);

}  // namespace kqr

