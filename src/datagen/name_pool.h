// NamePool: deterministic person and venue name generation for the
// synthetic corpora.

#pragma once

#include <string>
#include <vector>

#include "common/rng.h"

namespace kqr {

/// \brief Draws unique author names and builds venue names.
class NamePool {
 public:
  NamePool();

  /// \brief `count` distinct full names ("First Last", with middle
  /// initials added on collision), deterministic for a given rng state.
  std::vector<std::string> MakeAuthorNames(size_t count, Rng* rng) const;

  /// \brief A venue name for a topic phrase, e.g. index 0 of "Database
  /// Systems" → "International Conference on Database Systems"; later
  /// indexes rotate through Symposium/Workshop/Journal variants.
  std::string MakeVenueName(const std::string& topic_phrase,
                            size_t index) const;

  /// \brief Brand names for the retail corpus.
  std::vector<std::string> MakeBrandNames(size_t count, Rng* rng) const;

 private:
  std::vector<std::string> first_names_;
  std::vector<std::string> last_names_;
  std::vector<std::string> brand_roots_;
};

}  // namespace kqr

