// TopicModel: the latent semantic structure of the synthetic corpus.
//
// The paper's phenomena ("probabilistic" and "uncertain" share venues and
// authors without co-occurring in titles; non-collaborating authors share
// research areas) require terms to be grouped into latent topics that
// drive venue and author behavior. The topic is the ground truth the
// evaluation judge uses in place of the paper's human assessors.

#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "text/porter_stemmer.h"

namespace kqr {

/// \brief One research area and its characteristic title terms.
struct Topic {
  std::string name;
  std::vector<std::string> terms;
  /// Venue-name phrase, e.g. "Database Systems".
  std::string venue_phrase;
};

/// \brief A fixed set of topics with term sampling and reverse lookup.
class TopicModel {
 public:
  /// Curated computer-science topics (databases, mining, ML, IR, ...)
  /// whose vocabularies include the paper's case-study terms ("xml",
  /// "probabilistic", "uncertain", "association", ...).
  static TopicModel Standard();

  /// Machine-generated topics for scaling tests: k topics of
  /// `words_per_topic` distinct pseudo-words each.
  static TopicModel Synthetic(size_t k, size_t words_per_topic);

  /// Curated retail product domains for the e-commerce example corpus.
  static TopicModel Retail();

  explicit TopicModel(std::vector<Topic> topics);

  size_t num_topics() const { return topics_.size(); }
  const Topic& topic(size_t i) const { return topics_[i]; }

  /// Zipf-weighted term draw from one topic (low ranks dominate, giving
  /// realistic frequency skew).
  const std::string& SampleTerm(size_t topic, Rng* rng) const;

  /// Zipf-weighted draw restricted to one *subtopic*: the terms whose
  /// index ≡ subtopic (mod num_subtopics). Subtopics model research
  /// sub-communities — quasi-synonyms (adjacent in the curated lists) land
  /// in different subtopics, so they share venues/authors but rarely
  /// co-occur in a title, the exact phenomenon of the paper's Sec. I
  /// examples.
  const std::string& SampleTermInSubtopic(size_t topic, size_t subtopic,
                                          size_t num_subtopics,
                                          Rng* rng) const;

  /// Subtopic of a term index under a num_subtopics partition.
  static size_t SubtopicOfIndex(size_t term_index, size_t num_subtopics) {
    return num_subtopics == 0 ? 0 : term_index % num_subtopics;
  }

  /// Topics that contain `word` (surface form).
  std::vector<size_t> TopicsOfWord(const std::string& word) const;

  /// Topics whose vocabulary contains a word stemming to `stem`. This is
  /// what the judge uses, because the corpus pipeline stems title terms.
  std::vector<size_t> TopicsOfStem(const std::string& stem) const;

 private:
  std::vector<Topic> topics_;
  std::unordered_map<std::string, std::vector<size_t>> word_topics_;
  std::unordered_map<std::string, std::vector<size_t>> stem_topics_;
};

}  // namespace kqr

