// EcommerceGenerator: a second, structurally different corpus proving the
// pipeline is schema-independent (the paper claims applicability to "other
// kinds of schema or even schemaless structured data").
//
// Schema:
//   categories(category_id, name)                     name: atomic
//   brands(brand_id, name)                            name: atomic
//   products(product_id, title, price,
//            brand_id → brands, category_id → categories)
//                                                     title: segmented
//   reviews(review_id, body, rating, product_id → products)
//                                                     body: segmented

#pragma once

#include <memory>
#include <vector>

#include "common/result.h"
#include "datagen/topic_model.h"
#include "storage/database.h"

namespace kqr {

struct EcommerceOptions {
  size_t num_brands = 24;
  size_t num_products = 1500;
  size_t num_reviews = 3000;
  size_t min_title_terms = 4;
  size_t max_title_terms = 8;
  double title_noise = 0.08;
  uint64_t seed = 7;
};

struct EcommerceCorpus {
  Database db{"shop"};
  std::shared_ptr<const TopicModel> topics;
  std::vector<size_t> brand_topic;    // dominant domain per brand
  std::vector<size_t> product_topic;  // domain per product
};

Result<EcommerceCorpus> GenerateEcommerce(
    const EcommerceOptions& options = {});

}  // namespace kqr

