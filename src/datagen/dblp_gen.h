// DblpGenerator: the synthetic bibliographic corpus substituting the
// paper's DBLP dump (see DESIGN.md §1 for the substitution argument).
//
// Schema (Fig. 1 of the paper):
//   venues(venue_id, name)                name: atomic term field
//   authors(author_id, name)              name: atomic term field
//   papers(paper_id, title, year, venue_id → venues)
//                                         title: segmented term field
//   writes(write_id, author_id → authors, paper_id → papers)
//
// Generative process: venues own one topic each; authors own a 1–3 topic
// mixture; a paper's topic is drawn from its first author's mixture, the
// venue from that topic's venues, co-authors preferentially from the same
// topic, and title terms from the topic's vocabulary (with a small noise
// rate) — so semantically related terms share venues/authors without
// necessarily co-occurring in any title.

#pragma once

#include <memory>
#include <vector>

#include "common/result.h"
#include "datagen/topic_model.h"
#include "storage/database.h"

namespace kqr {

struct DblpOptions {
  size_t num_authors = 1200;
  size_t num_papers = 4000;
  size_t num_venues = 36;
  size_t min_title_terms = 5;
  size_t max_title_terms = 9;
  size_t max_authors_per_paper = 4;
  /// Probability that a title term comes from a random other topic.
  double title_noise = 0.08;
  /// Probability that a title slot holds a *generic* filler word
  /// ("efficient", "novel", "system", ...). Real paper titles are roughly
  /// one-third such words; they belong to no topic, co-occur with
  /// everything, and are what raw co-occurrence similarity drowns in.
  double generic_rate = 0.30;
  /// Sub-communities per topic. Each paper belongs to one subtopic and
  /// draws title terms from it; quasi-synonyms in sibling subtopics then
  /// share venues/authors without co-occurring in titles (the paper's
  /// motivating phenomenon). 1 disables subtopics.
  size_t num_subtopics = 3;
  /// Probability that a title term leaks from the whole topic rather than
  /// the paper's subtopic.
  double subtopic_leak = 0.15;
  /// Probability that a paper lands in a venue outside its topic.
  double venue_noise = 0.05;
  /// Probability that a co-author comes from outside the paper's topic.
  double coauthor_noise = 0.10;
  uint64_t seed = 42;
  /// When set, overrides the Standard() topic model (e.g. Synthetic for
  /// scaling sweeps).
  std::shared_ptr<const TopicModel> topics;
};

/// \brief The generated database plus its generative ground truth.
struct DblpCorpus {
  Database db{"dblp"};
  std::shared_ptr<const TopicModel> topics;
  /// Per-author topic mixture (indices into topics). First entry is the
  /// primary topic.
  std::vector<std::vector<size_t>> author_topics;
  /// Per-venue topic.
  std::vector<size_t> venue_topic;
  /// Per-paper topic.
  std::vector<size_t> paper_topic;
  /// Per-paper subtopic within its topic.
  std::vector<size_t> paper_subtopic;
  /// Author display names (row order in `authors`).
  std::vector<std::string> author_names;
  /// Venue display names (row order in `venues`).
  std::vector<std::string> venue_names;

  /// Ground-truth topics of any surface string: title words map through
  /// the topic model (via stem), author/venue names through the
  /// generation record. Empty when unknown.
  std::vector<size_t> TopicsOf(const std::string& surface) const;
};

/// \brief The generic (topic-free) title vocabulary used by the
/// generator. Exposed so tests and the judge can recognize filler.
const std::vector<std::string>& GenericTitleWords();

/// \brief Generates a corpus. Deterministic in `options.seed`.
Result<DblpCorpus> GenerateDblp(const DblpOptions& options = {});

}  // namespace kqr

