#include "datagen/topic_model.h"

#include <algorithm>

#include "common/logging.h"

namespace kqr {

namespace {

Topic MakeTopic(std::string name, std::string venue_phrase,
                std::vector<std::string> terms) {
  Topic t;
  t.name = std::move(name);
  t.venue_phrase = std::move(venue_phrase);
  t.terms = std::move(terms);
  return t;
}

std::vector<Topic> StandardTopics() {
  std::vector<Topic> topics;
  topics.push_back(MakeTopic(
      "databases", "Database Systems",
      {"query",      "index",       "relational",  "transaction",
       "join",       "optimization", "storage",    "concurrency",
       "recovery",   "schema",      "view",        "materialized",
       "partition",  "parallel",    "distributed", "keyword",
       "ranking",    "skyline",     "provenance",  "workload",
       "buffer",     "logging",     "benchmark",   "tuning",
       "cardinality", "selectivity", "execution",  "plan"}));
  topics.push_back(MakeTopic(
      "semistructured", "Web Data Management",
      {"xml",       "semistructured", "tree",      "twig",
       "xpath",     "xquery",         "schema",    "document",
       "element",   "path",           "pattern",   "native",
       "html",      "web",            "json",      "hierarchical",
       "node",      "label",          "subtree",   "validation",
       "namespace", "transformation", "publishing", "wrapper",
       "extraction", "mapping",       "integration", "mediator"}));
  topics.push_back(MakeTopic(
      "uncertainty", "Probabilistic Data Management",
      {"probabilistic", "uncertain",   "probability", "uncertainty",
       "possible",      "world",       "confidence",  "lineage",
       "approximate",   "sampling",    "estimation",  "distribution",
       "bayesian",      "inference",   "noisy",       "incomplete",
       "imprecise",     "fuzzy",       "ranking",     "topk",
       "aggregation",   "correlation", "dependency",  "model",
       "generation",    "likelihood",  "stochastic",  "monte"}));
  topics.push_back(MakeTopic(
      "datamining", "Knowledge Discovery and Data Mining",
      {"mining",      "association", "rule",        "frequent",
       "itemset",     "sequential",  "pattern",     "clustering",
       "classification", "outlier",  "anomaly",     "discovery",
       "transaction", "support",     "confidence",  "lattice",
       "subgraph",    "motif",       "episode",     "correlation",
       "summarization", "compression", "stream",    "evolving",
       "drift",       "ensemble",    "boosting",    "apriori"}));
  topics.push_back(MakeTopic(
      "machinelearning", "Machine Learning",
      {"learning",   "neural",      "network",     "kernel",
       "regression", "supervised",  "unsupervised", "feature",
       "selection",  "dimensionality", "reduction", "embedding",
       "gradient",   "optimization", "convergence", "generalization",
       "overfitting", "regularization", "bayesian", "gaussian",
       "markov",     "latent",      "variable",    "matrix",
       "factorization", "deep",     "representation", "transfer"}));
  topics.push_back(MakeTopic(
      "retrieval", "Information Retrieval",
      {"retrieval",  "search",     "relevance",  "ranking",
       "document",   "term",       "weighting",  "vector",
       "language",   "model",      "feedback",   "expansion",
       "reformulation", "suggestion", "snippet", "crawling",
       "indexing",   "inverted",   "compression", "evaluation",
       "precision",  "recall",     "click",      "log",
       "personalization", "diversification", "faceted", "entity"}));
  topics.push_back(MakeTopic(
      "spatial", "Spatial and Temporal Databases",
      {"spatial",   "temporal",   "spatiotemporal", "moving",
       "object",    "trajectory", "nearest",        "neighbor",
       "knn",       "range",      "location",       "road",
       "network",   "gps",        "tracking",       "continuous",
       "monitoring", "rtree",     "grid",           "proximity",
       "geographic", "map",       "region",         "window",
       "interval",  "sequence",   "prediction",     "cluster"}));
  topics.push_back(MakeTopic(
      "streams", "Data Stream Systems",
      {"stream",     "continuous", "window",     "sliding",
       "approximation", "sketch",  "sampling",   "aggregate",
       "frequency",  "heavy",      "hitter",     "quantile",
       "load",       "shedding",   "adaptive",   "operator",
       "scheduling", "latency",    "throughput", "realtime",
       "sensor",     "event",      "complex",    "detection",
       "filtering",  "join",       "punctuation", "burst"}));
  topics.push_back(MakeTopic(
      "graphs", "Graph Data Management",
      {"graph",       "subgraph",   "isomorphism", "reachability",
       "shortest",    "path",       "random",      "walk",
       "pagerank",    "centrality", "community",   "partitioning",
       "social",      "network",    "link",        "prediction",
       "influence",   "propagation", "diffusion",  "triangle",
       "clique",      "dense",      "bipartite",   "matching",
       "traversal",   "labeling",   "summarize",   "homomorphism"}));
  topics.push_back(MakeTopic(
      "systems", "Distributed Computing Systems",
      {"distributed", "consensus",  "replication", "consistency",
       "availability", "fault",     "tolerance",   "partition",
       "scalability", "elastic",    "cloud",       "cluster",
       "mapreduce",   "shuffle",    "locality",    "caching",
       "coordination", "membership", "gossip",     "quorum",
       "leader",      "election",   "snapshot",    "checkpoint",
       "migration",   "virtualization", "container", "scheduler"}));
  topics.push_back(MakeTopic(
      "security", "Security and Privacy",
      {"security",    "privacy",    "anonymization", "encryption",
       "access",      "control",    "authentication", "integrity",
       "audit",       "disclosure", "differential",  "perturbation",
       "adversary",   "attack",     "defense",       "vulnerability",
       "trust",       "secure",     "computation",   "signature",
       "key",         "protocol",   "obfuscation",   "leakage",
       "inference",   "policy",     "compliance",    "watermarking"}));
  topics.push_back(MakeTopic(
      "similarity", "Similarity Search",
      {"similarity",  "distance",   "metric",      "edit",
       "string",      "matching",   "duplicate",   "deduplication",
       "entity",      "resolution", "record",      "linkage",
       "fingerprint", "hashing",    "lsh",         "embedding",
       "nearest",     "candidate",  "verification", "filter",
       "signature",   "gram",       "token",       "fuzzy",
       "alignment",   "overlap",    "jaccard",     "cosine"}));
  return topics;
}

std::vector<Topic> RetailTopics() {
  std::vector<Topic> topics;
  topics.push_back(MakeTopic(
      "electronics", "Consumer Electronics",
      {"wireless", "bluetooth", "headphone", "speaker", "battery",
       "charger",  "usb",       "cable",     "adapter", "portable",
       "stereo",   "noise",     "cancelling", "earbud", "microphone",
       "hdmi",     "monitor",   "keyboard",  "mouse",   "webcam"}));
  topics.push_back(MakeTopic(
      "kitchen", "Kitchen and Dining",
      {"stainless", "steel",    "cookware", "nonstick", "blender",
       "espresso",  "grinder",  "ceramic",  "dishwasher", "safe",
       "cutlery",   "knife",    "skillet",  "saucepan", "kettle",
       "toaster",   "whisk",    "spatula",  "baking",   "oven"}));
  topics.push_back(MakeTopic(
      "outdoors", "Outdoor Recreation",
      {"camping",  "tent",      "sleeping", "bag",      "hiking",
       "backpack", "waterproof", "thermal", "lantern",  "compass",
       "trekking", "pole",      "insulated", "bottle",  "stove",
       "hammock",  "tarp",      "carabiner", "headlamp", "trail"}));
  topics.push_back(MakeTopic(
      "fitness", "Sports and Fitness",
      {"yoga",      "mat",       "dumbbell", "resistance", "band",
       "treadmill", "exercise",  "workout",  "training",   "running",
       "cycling",   "jersey",    "compression", "fitness", "tracker",
       "protein",   "foam",      "roller",   "kettlebell", "jump"}));
  topics.push_back(MakeTopic(
      "clothing", "Apparel and Fashion",
      {"cotton",   "jacket",   "hooded",  "sweater", "denim",
       "slim",     "fit",      "casual",  "formal",  "sleeve",
       "collar",   "zipper",   "pocket",  "lined",   "breathable",
       "stretch",  "vintage",  "classic", "lightweight", "layered"}));
  topics.push_back(MakeTopic(
      "toys", "Toys and Games",
      {"puzzle",    "board",   "game",     "building", "block",
       "educational", "wooden", "plush",   "remote",   "controlled",
       "racing",    "strategy", "card",    "dice",     "miniature",
       "collectible", "craft", "creative", "interactive", "playset"}));
  return topics;
}

}  // namespace

TopicModel::TopicModel(std::vector<Topic> topics)
    : topics_(std::move(topics)) {
  PorterStemmer stemmer;
  for (size_t i = 0; i < topics_.size(); ++i) {
    for (const std::string& word : topics_[i].terms) {
      word_topics_[word].push_back(i);
      std::string stem = stemmer.Stem(word);
      std::vector<size_t>& list = stem_topics_[stem];
      if (std::find(list.begin(), list.end(), i) == list.end()) {
        list.push_back(i);
      }
    }
  }
}

TopicModel TopicModel::Standard() { return TopicModel(StandardTopics()); }

TopicModel TopicModel::Retail() { return TopicModel(RetailTopics()); }

TopicModel TopicModel::Synthetic(size_t k, size_t words_per_topic) {
  // Pseudo-words "t<i>w<j>" are distinct across topics, pronounceable
  // enough for debugging, and stable under stemming.
  std::vector<Topic> topics;
  topics.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    Topic t;
    t.name = "topic" + std::to_string(i);
    t.venue_phrase = "Synthetic Area " + std::to_string(i);
    t.terms.reserve(words_per_topic);
    for (size_t j = 0; j < words_per_topic; ++j) {
      t.terms.push_back("zq" + std::to_string(i) + "w" +
                        std::to_string(j));
    }
    topics.push_back(std::move(t));
  }
  return TopicModel(std::move(topics));
}

const std::string& TopicModel::SampleTerm(size_t topic, Rng* rng) const {
  KQR_DCHECK(topic < topics_.size());
  const std::vector<std::string>& terms = topics_[topic].terms;
  size_t rank = rng->NextZipf(terms.size(), 1.0);
  return terms[rank];
}

const std::string& TopicModel::SampleTermInSubtopic(size_t topic,
                                                    size_t subtopic,
                                                    size_t num_subtopics,
                                                    Rng* rng) const {
  KQR_DCHECK(topic < topics_.size());
  const std::vector<std::string>& terms = topics_[topic].terms;
  if (num_subtopics <= 1) return SampleTerm(topic, rng);
  // Collect indices in this subtopic; fall back to the whole topic when
  // the partition leaves it empty.
  std::vector<size_t> members;
  members.reserve(terms.size() / num_subtopics + 1);
  for (size_t i = 0; i < terms.size(); ++i) {
    if (SubtopicOfIndex(i, num_subtopics) == subtopic % num_subtopics) {
      members.push_back(i);
    }
  }
  if (members.empty()) return SampleTerm(topic, rng);
  size_t rank = rng->NextZipf(members.size(), 1.0);
  return terms[members[rank]];
}

std::vector<size_t> TopicModel::TopicsOfWord(const std::string& word)
    const {
  auto it = word_topics_.find(word);
  return it == word_topics_.end() ? std::vector<size_t>{} : it->second;
}

std::vector<size_t> TopicModel::TopicsOfStem(const std::string& stem)
    const {
  auto it = stem_topics_.find(stem);
  return it == stem_topics_.end() ? std::vector<size_t>{} : it->second;
}

}  // namespace kqr
