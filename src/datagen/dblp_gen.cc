#include "datagen/dblp_gen.h"

#include <algorithm>
#include <unordered_map>

#include "common/string_util.h"
#include "datagen/name_pool.h"
#include "text/porter_stemmer.h"

namespace kqr {

const std::vector<std::string>& GenericTitleWords() {
  static const std::vector<std::string> kWords = {
      "efficient", "effective", "novel",      "system",   "data",
      "analysis",  "framework", "evaluation", "scalable", "adaptive",
      "management", "processing"};
  return kWords;
}

std::vector<size_t> DblpCorpus::TopicsOf(const std::string& surface) const {
  // Author or venue name (case-insensitive exact match)?
  std::string lower = ToLowerAscii(surface);
  for (size_t i = 0; i < author_names.size(); ++i) {
    if (ToLowerAscii(author_names[i]) == lower) return author_topics[i];
  }
  for (size_t i = 0; i < venue_names.size(); ++i) {
    if (ToLowerAscii(venue_names[i]) == lower) return {venue_topic[i]};
  }
  // Title word: try surface, then stem.
  std::vector<size_t> t = topics->TopicsOfWord(lower);
  if (!t.empty()) return t;
  PorterStemmer stemmer;
  return topics->TopicsOfStem(stemmer.Stem(lower));
}

Result<DblpCorpus> GenerateDblp(const DblpOptions& options) {
  if (options.num_authors == 0 || options.num_papers == 0 ||
      options.num_venues == 0) {
    return Status::InvalidArgument("corpus sizes must be positive");
  }
  if (options.min_title_terms > options.max_title_terms) {
    return Status::InvalidArgument("min_title_terms > max_title_terms");
  }

  DblpCorpus corpus;
  corpus.topics = options.topics
                      ? options.topics
                      : std::make_shared<const TopicModel>(
                            TopicModel::Standard());
  const TopicModel& topics = *corpus.topics;
  const size_t num_topics = topics.num_topics();
  Rng rng(options.seed);
  NamePool names;

  // --- Tables ---------------------------------------------------------
  KQR_ASSIGN_OR_RETURN(
      Schema venues_schema,
      Schema::Make("venues",
                   {Column("venue_id", ValueType::kInt64),
                    Column("name", ValueType::kString, TextRole::kAtomic)},
                   "venue_id"));
  KQR_ASSIGN_OR_RETURN(
      Schema authors_schema,
      Schema::Make("authors",
                   {Column("author_id", ValueType::kInt64),
                    Column("name", ValueType::kString, TextRole::kAtomic)},
                   "author_id"));
  KQR_ASSIGN_OR_RETURN(
      Schema papers_schema,
      Schema::Make(
          "papers",
          {Column("paper_id", ValueType::kInt64),
           Column("title", ValueType::kString, TextRole::kSegmented),
           Column("year", ValueType::kInt64),
           Column("venue_id", ValueType::kInt64)},
          "paper_id", {ForeignKey{"venue_id", "venues"}}));
  KQR_ASSIGN_OR_RETURN(
      Schema writes_schema,
      Schema::Make("writes",
                   {Column("write_id", ValueType::kInt64),
                    Column("author_id", ValueType::kInt64),
                    Column("paper_id", ValueType::kInt64)},
                   "write_id",
                   {ForeignKey{"author_id", "authors"},
                    ForeignKey{"paper_id", "papers"}}));

  KQR_ASSIGN_OR_RETURN(Table * venues,
                       corpus.db.CreateTable(std::move(venues_schema)));
  KQR_ASSIGN_OR_RETURN(Table * authors,
                       corpus.db.CreateTable(std::move(authors_schema)));
  KQR_ASSIGN_OR_RETURN(Table * papers,
                       corpus.db.CreateTable(std::move(papers_schema)));
  KQR_ASSIGN_OR_RETURN(Table * writes,
                       corpus.db.CreateTable(std::move(writes_schema)));

  // --- Venues: round-robin topics so every topic has venues ------------
  corpus.venue_topic.reserve(options.num_venues);
  std::vector<std::vector<int64_t>> venues_of_topic(num_topics);
  for (size_t v = 0; v < options.num_venues; ++v) {
    size_t topic = v % num_topics;
    std::string name =
        names.MakeVenueName(topics.topic(topic).venue_phrase,
                            v / num_topics);
    corpus.venue_topic.push_back(topic);
    corpus.venue_names.push_back(name);
    venues_of_topic[topic].push_back(static_cast<int64_t>(v));
    auto row = venues->Insert(
        {Value(static_cast<int64_t>(v)), Value(std::move(name))});
    if (!row.ok()) return row.status();
  }

  // --- Authors: topic mixtures; Zipf over topics for community sizes ---
  corpus.author_names = names.MakeAuthorNames(options.num_authors, &rng);
  corpus.author_topics.reserve(options.num_authors);
  std::vector<std::vector<int64_t>> authors_of_topic(num_topics);
  for (size_t a = 0; a < options.num_authors; ++a) {
    size_t primary = rng.NextZipf(num_topics, 0.7);
    std::vector<size_t> mixture{primary};
    size_t extra = rng.NextBounded(3);  // 0–2 secondary interests
    for (size_t e = 0; e < extra; ++e) {
      size_t t = rng.NextBounded(num_topics);
      if (std::find(mixture.begin(), mixture.end(), t) == mixture.end()) {
        mixture.push_back(t);
      }
    }
    for (size_t t : mixture) {
      authors_of_topic[t].push_back(static_cast<int64_t>(a));
    }
    corpus.author_topics.push_back(std::move(mixture));
    auto row = authors->Insert({Value(static_cast<int64_t>(a)),
                                Value(corpus.author_names[a])});
    if (!row.ok()) return row.status();
  }

  // --- Papers + authorship ---------------------------------------------
  corpus.paper_topic.reserve(options.num_papers);
  int64_t write_id = 0;
  for (size_t p = 0; p < options.num_papers; ++p) {
    // First author: Zipf productivity skew.
    int64_t first_author =
        static_cast<int64_t>(rng.NextZipf(options.num_authors, 0.8));
    const std::vector<size_t>& mixture = corpus.author_topics[first_author];
    size_t topic = mixture[rng.NextBounded(mixture.size())];
    corpus.paper_topic.push_back(topic);
    size_t subtopic =
        options.num_subtopics > 1 ? rng.NextBounded(options.num_subtopics)
                                  : 0;
    corpus.paper_subtopic.push_back(subtopic);

    // Venue: mostly from the paper's topic.
    size_t venue;
    if (rng.NextDouble() < options.venue_noise ||
        venues_of_topic[topic].empty()) {
      venue = rng.NextBounded(options.num_venues);
    } else {
      const auto& pool = venues_of_topic[topic];
      venue = static_cast<size_t>(pool[rng.NextBounded(pool.size())]);
    }

    // Title.
    size_t title_len = static_cast<size_t>(rng.NextInt(
        static_cast<int64_t>(options.min_title_terms),
        static_cast<int64_t>(options.max_title_terms)));
    std::vector<std::string> title_terms;
    title_terms.reserve(title_len);
    const std::vector<std::string>& generics = GenericTitleWords();
    for (size_t w = 0; w < title_len; ++w) {
      if (rng.NextDouble() < options.generic_rate) {
        // Topic-free filler word (Zipf-skewed like real boilerplate).
        title_terms.push_back(
            generics[rng.NextZipf(generics.size(), 0.8)]);
      } else if (rng.NextDouble() < options.title_noise) {
        // Cross-topic noise word.
        title_terms.push_back(
            topics.SampleTerm(rng.NextBounded(num_topics), &rng));
      } else if (options.num_subtopics > 1 &&
                 rng.NextDouble() >= options.subtopic_leak) {
        title_terms.push_back(topics.SampleTermInSubtopic(
            topic, subtopic, options.num_subtopics, &rng));
      } else {
        title_terms.push_back(topics.SampleTerm(topic, &rng));
      }
    }
    std::string title = Join(title_terms, " ");

    int64_t year = rng.NextInt(1995, 2011);
    auto row = papers->Insert({Value(static_cast<int64_t>(p)),
                               Value(std::move(title)), Value(year),
                               Value(static_cast<int64_t>(venue))});
    if (!row.ok()) return row.status();

    // Authorship: first author plus same-topic co-authors.
    std::vector<int64_t> coauthors{first_author};
    size_t extra =
        rng.NextBounded(options.max_authors_per_paper);  // 0..max-1 extras
    const auto& topic_pool = authors_of_topic[topic];
    for (size_t e = 0; e < extra; ++e) {
      int64_t candidate;
      if (rng.NextDouble() < options.coauthor_noise || topic_pool.empty()) {
        candidate = static_cast<int64_t>(
            rng.NextBounded(options.num_authors));
      } else {
        candidate = topic_pool[rng.NextBounded(topic_pool.size())];
      }
      if (std::find(coauthors.begin(), coauthors.end(), candidate) ==
          coauthors.end()) {
        coauthors.push_back(candidate);
      }
    }
    for (int64_t author : coauthors) {
      auto wrow = writes->Insert({Value(write_id++), Value(author),
                                  Value(static_cast<int64_t>(p))});
      if (!wrow.ok()) return wrow.status();
    }
  }

  KQR_RETURN_NOT_OK(corpus.db.ValidateIntegrity());
  return corpus;
}

}  // namespace kqr
