#include "datagen/ecommerce_gen.h"

#include "common/string_util.h"
#include "datagen/name_pool.h"

namespace kqr {

Result<EcommerceCorpus> GenerateEcommerce(const EcommerceOptions& options) {
  if (options.num_brands == 0 || options.num_products == 0) {
    return Status::InvalidArgument("corpus sizes must be positive");
  }
  EcommerceCorpus corpus;
  corpus.topics =
      std::make_shared<const TopicModel>(TopicModel::Retail());
  const TopicModel& topics = *corpus.topics;
  const size_t num_topics = topics.num_topics();
  Rng rng(options.seed);
  NamePool names;

  KQR_ASSIGN_OR_RETURN(
      Schema categories_schema,
      Schema::Make("categories",
                   {Column("category_id", ValueType::kInt64),
                    Column("name", ValueType::kString, TextRole::kAtomic)},
                   "category_id"));
  KQR_ASSIGN_OR_RETURN(
      Schema brands_schema,
      Schema::Make("brands",
                   {Column("brand_id", ValueType::kInt64),
                    Column("name", ValueType::kString, TextRole::kAtomic)},
                   "brand_id"));
  KQR_ASSIGN_OR_RETURN(
      Schema products_schema,
      Schema::Make(
          "products",
          {Column("product_id", ValueType::kInt64),
           Column("title", ValueType::kString, TextRole::kSegmented),
           Column("price", ValueType::kDouble),
           Column("brand_id", ValueType::kInt64),
           Column("category_id", ValueType::kInt64)},
          "product_id",
          {ForeignKey{"brand_id", "brands"},
           ForeignKey{"category_id", "categories"}}));
  KQR_ASSIGN_OR_RETURN(
      Schema reviews_schema,
      Schema::Make(
          "reviews",
          {Column("review_id", ValueType::kInt64),
           Column("body", ValueType::kString, TextRole::kSegmented),
           Column("rating", ValueType::kInt64),
           Column("product_id", ValueType::kInt64)},
          "review_id", {ForeignKey{"product_id", "products"}}));

  KQR_ASSIGN_OR_RETURN(Table * categories,
                       corpus.db.CreateTable(std::move(categories_schema)));
  KQR_ASSIGN_OR_RETURN(Table * brands,
                       corpus.db.CreateTable(std::move(brands_schema)));
  KQR_ASSIGN_OR_RETURN(Table * products,
                       corpus.db.CreateTable(std::move(products_schema)));
  KQR_ASSIGN_OR_RETURN(Table * reviews,
                       corpus.db.CreateTable(std::move(reviews_schema)));

  // One category per domain.
  for (size_t c = 0; c < num_topics; ++c) {
    auto row = categories->Insert({Value(static_cast<int64_t>(c)),
                                   Value(topics.topic(c).venue_phrase)});
    if (!row.ok()) return row.status();
  }

  // Brands, each specialized in one domain.
  std::vector<std::string> brand_names =
      names.MakeBrandNames(options.num_brands, &rng);
  std::vector<std::vector<int64_t>> brands_of_topic(num_topics);
  for (size_t b = 0; b < options.num_brands; ++b) {
    size_t topic = b % num_topics;
    corpus.brand_topic.push_back(topic);
    brands_of_topic[topic].push_back(static_cast<int64_t>(b));
    auto row = brands->Insert(
        {Value(static_cast<int64_t>(b)), Value(brand_names[b])});
    if (!row.ok()) return row.status();
  }

  // Products.
  for (size_t p = 0; p < options.num_products; ++p) {
    size_t topic = rng.NextZipf(num_topics, 0.5);
    corpus.product_topic.push_back(topic);
    const auto& brand_pool = brands_of_topic[topic];
    int64_t brand = brand_pool.empty()
                        ? static_cast<int64_t>(
                              rng.NextBounded(options.num_brands))
                        : brand_pool[rng.NextBounded(brand_pool.size())];
    size_t len = static_cast<size_t>(
        rng.NextInt(static_cast<int64_t>(options.min_title_terms),
                    static_cast<int64_t>(options.max_title_terms)));
    std::vector<std::string> words;
    words.reserve(len);
    for (size_t w = 0; w < len; ++w) {
      size_t src = rng.NextDouble() < options.title_noise
                       ? rng.NextBounded(num_topics)
                       : topic;
      words.push_back(topics.SampleTerm(src, &rng));
    }
    double price = 5.0 + rng.NextDouble() * 495.0;
    auto row = products->Insert(
        {Value(static_cast<int64_t>(p)), Value(Join(words, " ")),
         Value(price), Value(brand), Value(static_cast<int64_t>(topic))});
    if (!row.ok()) return row.status();
  }

  // Reviews reuse domain vocabulary (short bodies).
  for (size_t r = 0; r < options.num_reviews; ++r) {
    int64_t product =
        static_cast<int64_t>(rng.NextBounded(options.num_products));
    size_t topic = corpus.product_topic[product];
    size_t len = 3 + rng.NextBounded(5);
    std::vector<std::string> words;
    words.reserve(len);
    for (size_t w = 0; w < len; ++w) {
      words.push_back(topics.SampleTerm(topic, &rng));
    }
    int64_t rating = rng.NextInt(1, 5);
    auto row = reviews->Insert({Value(static_cast<int64_t>(r)),
                                Value(Join(words, " ")), Value(rating),
                                Value(product)});
    if (!row.ok()) return row.status();
  }

  KQR_RETURN_NOT_OK(corpus.db.ValidateIntegrity());
  return corpus;
}

}  // namespace kqr
