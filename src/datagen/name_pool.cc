#include "datagen/name_pool.h"

#include <unordered_set>

namespace kqr {

NamePool::NamePool() {
  first_names_ = {
      "James",   "Mary",    "Wei",     "Ling",   "Robert",  "Elena",
      "Hiroshi", "Yuki",    "Ahmed",   "Fatima", "Carlos",  "Sofia",
      "Ivan",    "Olga",    "Pierre",  "Claire", "Rajesh",  "Priya",
      "Thomas",  "Anna",    "Michael", "Laura",  "David",   "Julia",
      "Stefan",  "Ingrid",  "Marco",   "Giulia", "Jin",     "Mei",
      "Andrei",  "Natasha", "Lars",    "Astrid", "Diego",   "Lucia",
      "Kenji",   "Sakura",  "Omar",    "Leila",  "Felix",   "Greta",
      "Victor",  "Irene",   "Pavel",   "Dana",   "Henrik",  "Maja",
      "Bruno",   "Alice",   "Samuel",  "Nora",   "Oscar",   "Vera",
      "Hugo",    "Clara",   "Leon",    "Ida",    "Max",     "Eva"};
  last_names_ = {
      "Smith",    "Chen",      "Wang",     "Johnson",  "Garcia",
      "Mueller",  "Tanaka",    "Kim",      "Singh",    "Kumar",
      "Ivanov",   "Petrov",    "Dubois",   "Martin",   "Rossi",
      "Ferrari",  "Yamamoto",  "Nakamura", "Ali",      "Hassan",
      "Lopez",    "Martinez",  "Andersson","Nilsson",  "Silva",
      "Santos",   "Novak",     "Horvat",   "Kowalski", "Nowak",
      "Papadopoulos", "Nikolaou", "Berg",  "Haugen",   "Virtanen",
      "Korhonen", "Jensen",    "Larsen",   "Visser",   "Bakker",
      "Weber",    "Fischer",   "Ricci",    "Greco",    "Suzuki",
      "Watanabe", "Park",      "Lee",      "Zhou",     "Liu",
      "Zhang",    "Huang",     "Gao",      "Lin",      "Mehta",
      "Patel",    "Rao",       "Iyer",     "Costa",    "Almeida",
      "Moreau",   "Lefevre",   "Keller",   "Braun",    "Sorensen",
      "Nielsen",  "OBrien",    "Murphy",   "Walsh",    "Byrne"};
  brand_roots_ = {
      "Apex",   "Nova",  "Zenith", "Summit", "Vertex", "Prime",
      "Aero",   "Terra", "Lumen",  "Quanta", "Strato", "Vela",
      "Orion",  "Atlas", "Boreal", "Cobalt", "Delta",  "Ember"};
}

std::vector<std::string> NamePool::MakeAuthorNames(size_t count,
                                                   Rng* rng) const {
  std::vector<std::string> names;
  names.reserve(count);
  std::unordered_set<std::string> used;
  const char* initials = "ABCDEFGHJKLMNPRSTVW";
  while (names.size() < count) {
    std::string name =
        first_names_[rng->NextBounded(first_names_.size())] + " " +
        last_names_[rng->NextBounded(last_names_.size())];
    if (used.count(name) > 0) {
      // Disambiguate with a middle initial; cycle until unique.
      std::string base = name;
      size_t space = base.find(' ');
      for (size_t i = 0; i < 19 && used.count(name) > 0; ++i) {
        name = base.substr(0, space) + " " + initials[i] + ". " +
               base.substr(space + 1);
      }
      if (used.count(name) > 0) continue;  // exhausted; redraw
    }
    used.insert(name);
    names.push_back(std::move(name));
  }
  return names;
}

std::string NamePool::MakeVenueName(const std::string& topic_phrase,
                                    size_t index) const {
  static const char* const kForms[] = {
      "International Conference on ", "Symposium on ", "Workshop on ",
      "Journal of ", "Transactions on ", "Annual Meeting on "};
  const size_t kNumForms = sizeof(kForms) / sizeof(kForms[0]);
  std::string name = std::string(kForms[index % kNumForms]) + topic_phrase;
  if (index >= kNumForms) {
    name += ' ';
    name += std::to_string(index / kNumForms + 1);
  }
  return name;
}

std::vector<std::string> NamePool::MakeBrandNames(size_t count,
                                                  Rng* rng) const {
  static const char* const kSuffixes[] = {"Works", "Labs", "Gear", "Co",
                                          "Industries", "Goods"};
  std::vector<std::string> names;
  names.reserve(count);
  std::unordered_set<std::string> used;
  while (names.size() < count) {
    std::string name =
        brand_roots_[rng->NextBounded(brand_roots_.size())] + " " +
        kSuffixes[rng->NextBounded(6)];
    if (!used.insert(name).second) {
      name += ' ';
      name += std::to_string(names.size());
      if (!used.insert(name).second) continue;
    }
    names.push_back(std::move(name));
  }
  return names;
}

}  // namespace kqr
