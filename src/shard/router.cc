#include "shard/router.h"

#include <algorithm>
#include <optional>
#include <utility>

namespace kqr {

namespace {

constexpr size_t kReadChunk = 64 * 1024;

double RemainingSeconds(std::chrono::steady_clock::time_point deadline) {
  return std::chrono::duration<double>(
             deadline - std::chrono::steady_clock::now())
      .count();
}

/// Folds transport-layer codes into the router's degradation contract:
/// local I/O trouble and corrupt streams both surface to callers as the
/// shard being unavailable (the caller cannot act on the difference; the
/// corrupt-frame counter preserves it for diagnosis).
Status MapTransportStatus(const Status& status) {
  if (status.code() == StatusCode::kCorruption ||
      status.code() == StatusCode::kIOError) {
    return Status::Unavailable(status.message());
  }
  return status;
}

}  // namespace

Status RouterOptions::Validate() const {
  if (connect_timeout_seconds <= 0.0) {
    return Status::InvalidArgument("connect_timeout_seconds must be > 0");
  }
  if (default_deadline_seconds <= 0.0) {
    return Status::InvalidArgument("default_deadline_seconds must be > 0");
  }
  if (max_frame_payload == 0 || max_frame_payload > kMaxFramePayload) {
    return Status::InvalidArgument(
        "max_frame_payload must be in (0, " +
        std::to_string(kMaxFramePayload) + "]");
  }
  return Status::OK();
}

struct ShardRouter::ShardConn {
  ShardAddress address;
  Socket sock;
  FrameBuffer in;
  bool ever_connected = false;

  ShardConn(ShardAddress addr, size_t max_payload)
      : address(std::move(addr)), in(max_payload) {}
};

struct ShardRouter::Metrics {
  Counter* batches;
  Counter* queries;
  Counter* scatters;
  Counter* ok;
  Counter* unavailable;
  Counter* deadline_exceeded;
  Counter* remote_errors;
  Counter* corrupt_frames;
  Counter* reconnects;

  explicit Metrics(MetricsRegistry* r)
      : batches(r->GetCounter("kqr_shard_router_batches_total")),
        queries(r->GetCounter("kqr_shard_router_queries_total")),
        scatters(r->GetCounter("kqr_shard_router_scatters_total")),
        ok(r->GetCounter("kqr_shard_router_ok_total")),
        unavailable(r->GetCounter("kqr_shard_router_unavailable_total")),
        deadline_exceeded(
            r->GetCounter("kqr_shard_router_deadline_exceeded_total")),
        remote_errors(
            r->GetCounter("kqr_shard_router_remote_errors_total")),
        corrupt_frames(
            r->GetCounter("kqr_shard_router_corrupt_frames_total")),
        reconnects(r->GetCounter("kqr_shard_router_reconnects_total")) {}
};

ShardRouter::ShardRouter(RouterOptions options)
    : options_(options), metrics_(std::make_unique<Metrics>(&registry_)) {}

ShardRouter::~ShardRouter() = default;

size_t ShardRouter::num_shards() const { return conns_.size(); }

Result<std::unique_ptr<ShardRouter>> ShardRouter::Connect(
    std::vector<ShardAddress> shards, RouterOptions options) {
  if (shards.empty()) {
    return Status::InvalidArgument("router needs at least one shard");
  }
  KQR_RETURN_NOT_OK(options.Validate());
  std::unique_ptr<ShardRouter> router(new ShardRouter(options));
  router->conns_.reserve(shards.size());
  for (ShardAddress& addr : shards) {
    router->conns_.emplace_back(std::move(addr), options.max_frame_payload);
  }
  // Eager best-effort dial: a shard that is down now degrades to
  // kUnavailable per batch and reconnects lazily when it returns.
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             options.connect_timeout_seconds));
  for (size_t shard = 0; shard < router->conns_.size(); ++shard) {
    (void)router->EnsureConnected(shard, deadline);
  }
  return router;
}

RouterStats ShardRouter::stats() const {
  RouterStats s;
  s.batches = metrics_->batches->Value();
  s.queries = metrics_->queries->Value();
  s.scatters = metrics_->scatters->Value();
  s.ok = metrics_->ok->Value();
  s.unavailable = metrics_->unavailable->Value();
  s.deadline_exceeded = metrics_->deadline_exceeded->Value();
  s.remote_errors = metrics_->remote_errors->Value();
  s.corrupt_frames = metrics_->corrupt_frames->Value();
  s.reconnects = metrics_->reconnects->Value();
  return s;
}

ShardRouter::Clock::time_point ShardRouter::DeadlineFor(
    double deadline_seconds) const {
  const double relative = deadline_seconds > 0.0
                              ? deadline_seconds
                              : options_.default_deadline_seconds;
  return Clock::now() + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(relative));
}

Status ShardRouter::EnsureConnected(size_t shard,
                                    Clock::time_point deadline) {
  ShardConn& conn = conns_[shard];
  if (conn.sock.valid()) return Status::OK();
  const double remaining = std::min(options_.connect_timeout_seconds,
                                    RemainingSeconds(deadline));
  if (remaining <= 0.0) {
    return Status::DeadlineExceeded("no time left to connect to shard " +
                                    std::to_string(shard));
  }
  Result<Socket> connected =
      Socket::ConnectTcp(conn.address.host, conn.address.port, remaining);
  if (!connected.ok()) return connected.status();
  conn.sock = std::move(*connected);
  conn.in = FrameBuffer(options_.max_frame_payload);
  if (conn.ever_connected) metrics_->reconnects->Increment();
  conn.ever_connected = true;
  return Status::OK();
}

void ShardRouter::Disconnect(size_t shard) {
  conns_[shard].sock.Close();
  conns_[shard].in = FrameBuffer(options_.max_frame_payload);
}

Status ShardRouter::WriteAll(size_t shard, const std::string& wire,
                             Clock::time_point deadline) {
  ShardConn& conn = conns_[shard];
  size_t pos = 0;
  while (pos < wire.size()) {
    Result<IoResult> io =
        conn.sock.Write(std::as_bytes(std::span(wire).subspan(pos)));
    if (!io.ok()) return io.status();
    if (io->would_block) {
      const double remaining = RemainingSeconds(deadline);
      if (remaining <= 0.0) {
        return Status::DeadlineExceeded(
            "deadline passed while writing to shard " +
            std::to_string(shard));
      }
      KQR_ASSIGN_OR_RETURN(const bool writable,
                           WaitWritable(conn.sock.fd(), remaining));
      if (!writable) {
        return Status::DeadlineExceeded(
            "deadline passed while writing to shard " +
            std::to_string(shard));
      }
      continue;
    }
    pos += io->bytes;
  }
  return Status::OK();
}

Result<Frame> ShardRouter::Call(size_t shard, FrameType request_type,
                                const std::string& payload,
                                FrameType response_type,
                                Clock::time_point deadline) {
  if (shard >= conns_.size()) {
    return Status::InvalidArgument("shard index out of range");
  }
  Status st = EnsureConnected(shard, deadline);
  if (!st.ok()) return MapTransportStatus(st);
  const std::string wire = EncodeFrameString(request_type, payload);
  st = WriteAll(shard, wire, deadline);
  if (!st.ok()) {
    Disconnect(shard);
    return MapTransportStatus(st);
  }

  ShardConn& conn = conns_[shard];
  std::byte buf[kReadChunk];
  for (;;) {
    Result<std::optional<Frame>> next = conn.in.Next();
    if (!next.ok()) {
      metrics_->corrupt_frames->Increment();
      Disconnect(shard);
      return MapTransportStatus(next.status());
    }
    if (next->has_value()) {
      Frame frame = std::move(**next);
      if (frame.type != response_type || conn.in.buffered() != 0) {
        metrics_->corrupt_frames->Increment();
        Disconnect(shard);
        return Status::Unavailable(
            "shard sent an unexpected frame (stream desynchronized)");
      }
      return frame;
    }
    const double remaining = RemainingSeconds(deadline);
    if (remaining <= 0.0) {
      Disconnect(shard);
      return Status::DeadlineExceeded("shard " + std::to_string(shard) +
                                      " did not respond in time");
    }
    KQR_ASSIGN_OR_RETURN(const bool readable,
                         WaitReadable(conn.sock.fd(), remaining));
    if (!readable) {
      Disconnect(shard);
      return Status::DeadlineExceeded("shard " + std::to_string(shard) +
                                      " did not respond in time");
    }
    Result<IoResult> io = conn.sock.Read(buf);
    if (!io.ok()) {
      Disconnect(shard);
      return MapTransportStatus(io.status());
    }
    if (io->eof) {
      // Whatever arrived may still frame a full response; loop once more
      // before declaring the shard gone.
      Result<std::optional<Frame>> last = conn.in.Next();
      if (last.ok() && last->has_value() &&
          (*last)->type == response_type && conn.in.buffered() == 0) {
        Frame frame = std::move(**last);
        Disconnect(shard);
        return frame;
      }
      Disconnect(shard);
      return Status::Unavailable("shard closed the connection");
    }
    if (!io->would_block) {
      conn.in.Append(std::span<const std::byte>(buf, io->bytes));
    }
  }
}

Result<HealthResponse> ShardRouter::Health(size_t shard,
                                           double deadline_seconds) {
  const uint64_t request_id = next_request_id_++;
  KQR_ASSIGN_OR_RETURN(
      const Frame frame,
      Call(shard, FrameType::kHealthRequest,
           EncodeRequestIdPayload(request_id), FrameType::kHealthResponse,
           DeadlineFor(deadline_seconds)));
  Result<HealthResponse> response =
      DecodeHealthResponse(std::as_bytes(std::span(frame.payload)));
  if (!response.ok() || response->request_id != request_id) {
    metrics_->corrupt_frames->Increment();
    Disconnect(shard);
    return Status::Unavailable("shard health response did not decode");
  }
  return response;
}

Result<std::string> ShardRouter::Stats(size_t shard,
                                       double deadline_seconds) {
  const uint64_t request_id = next_request_id_++;
  KQR_ASSIGN_OR_RETURN(
      const Frame frame,
      Call(shard, FrameType::kStatsRequest,
           EncodeRequestIdPayload(request_id), FrameType::kStatsResponse,
           DeadlineFor(deadline_seconds)));
  Result<StatsResponse> response =
      DecodeStatsResponse(std::as_bytes(std::span(frame.payload)));
  if (!response.ok() || response->request_id != request_id) {
    metrics_->corrupt_frames->Increment();
    Disconnect(shard);
    return Status::Unavailable("shard stats response did not decode");
  }
  return std::move(response->json);
}

Result<SwapResponse> ShardRouter::SwapModel(size_t shard,
                                            const std::string& model_path,
                                            double deadline_seconds) {
  SwapRequest request;
  request.request_id = next_request_id_++;
  request.model_path = model_path;
  KQR_ASSIGN_OR_RETURN(
      const Frame frame,
      Call(shard, FrameType::kSwapRequest, EncodeSwapRequest(request),
           FrameType::kSwapResponse, DeadlineFor(deadline_seconds)));
  Result<SwapResponse> response =
      DecodeSwapResponse(std::as_bytes(std::span(frame.payload)));
  if (!response.ok() || response->request_id != request.request_id) {
    metrics_->corrupt_frames->Increment();
    Disconnect(shard);
    return Status::Unavailable("shard swap response did not decode");
  }
  return response;
}

ServeResult ShardRouter::Reformulate(const std::vector<TermId>& terms,
                                     size_t k, double deadline_seconds) {
  std::vector<ServeResult> results =
      ReformulateBatch({terms}, k, deadline_seconds);
  return std::move(results[0]);
}

std::vector<ServeResult> ShardRouter::ReformulateBatch(
    const std::vector<std::vector<TermId>>& queries, size_t k,
    double deadline_seconds) {
  metrics_->batches->Increment();
  metrics_->queries->Increment(queries.size());
  const size_t n = queries.size();
  std::vector<std::optional<ServeResult>> slots(n);
  const Clock::time_point deadline = DeadlineFor(deadline_seconds);

  // Partition by ownership. The sub-batch a shard receives lists its
  // queries in input order, and the response carries one result per
  // sub-batch position, so scattering never loses the input index.
  std::vector<std::vector<size_t>> by_shard(conns_.size());
  for (size_t i = 0; i < n; ++i) {
    by_shard[OwnerShard(queries[i], conns_.size())].push_back(i);
  }

  const auto fail_shard = [&slots](const std::vector<size_t>& indices,
                                   const Status& status) {
    for (size_t i : indices) slots[i] = ServeResult(status);
  };

  // Scatter.
  struct PendingShard {
    size_t shard = 0;
    const std::vector<size_t>* indices = nullptr;
    uint64_t request_id = 0;
  };
  std::vector<PendingShard> pending;
  for (size_t shard = 0; shard < by_shard.size(); ++shard) {
    if (by_shard[shard].empty()) continue;
    metrics_->scatters->Increment();
    Status st = EnsureConnected(shard, deadline);
    if (!st.ok()) {
      fail_shard(by_shard[shard], MapTransportStatus(st));
      continue;
    }
    ReformulateRequest request;
    request.request_id = next_request_id_++;
    request.k = k;
    const double remaining = RemainingSeconds(deadline);
    request.deadline_micros =
        remaining > 0.0 ? static_cast<uint64_t>(remaining * 1e6) : 1;
    request.queries.reserve(by_shard[shard].size());
    for (size_t i : by_shard[shard]) request.queries.push_back(queries[i]);
    const std::string wire = EncodeFrameString(
        FrameType::kReformulateRequest, EncodeReformulateRequest(request));
    st = WriteAll(shard, wire, deadline);
    if (!st.ok()) {
      Disconnect(shard);
      fail_shard(by_shard[shard], MapTransportStatus(st));
      continue;
    }
    pending.push_back({shard, &by_shard[shard], request.request_id});
  }

  // Gather: one bounded multiplexed wait over every still-pending shard.
  std::byte buf[kReadChunk];
  while (!pending.empty()) {
    const double remaining = RemainingSeconds(deadline);
    if (remaining <= 0.0) {
      for (const PendingShard& p : pending) {
        Disconnect(p.shard);
        fail_shard(*p.indices,
                   Status::DeadlineExceeded(
                       "shard " + std::to_string(p.shard) +
                       " did not respond within the batch deadline"));
      }
      pending.clear();
      break;
    }
    std::vector<PollItem> items;
    items.reserve(pending.size());
    for (const PendingShard& p : pending) {
      items.push_back(PollItem{conns_[p.shard].sock.fd(), false});
    }
    Result<size_t> polled = PollReadable(items, remaining);
    if (!polled.ok()) {
      for (const PendingShard& p : pending) {
        Disconnect(p.shard);
        fail_shard(*p.indices, MapTransportStatus(polled.status()));
      }
      pending.clear();
      break;
    }
    if (*polled == 0) continue;  // timeout slice; loop re-checks deadline

    for (size_t pi = 0; pi < pending.size();) {
      if (!items[pi].readable) {
        ++pi;
        continue;
      }
      const PendingShard p = pending[pi];
      ShardConn& conn = conns_[p.shard];
      const auto drop_pending = [&]() {
        pending.erase(pending.begin() + static_cast<ptrdiff_t>(pi));
        items.erase(items.begin() + static_cast<ptrdiff_t>(pi));
      };

      bool transport_lost = false;
      Status transport_status = Status::OK();
      for (;;) {
        Result<IoResult> io = conn.sock.Read(buf);
        if (!io.ok()) {
          transport_lost = true;
          transport_status = MapTransportStatus(io.status());
          break;
        }
        if (io->would_block) break;
        if (io->eof) {
          transport_lost = true;
          transport_status = Status::Unavailable(
              "shard closed the connection mid-request");
          break;
        }
        conn.in.Append(std::span<const std::byte>(buf, io->bytes));
      }

      Result<std::optional<Frame>> next = conn.in.Next();
      if (!next.ok()) {
        metrics_->corrupt_frames->Increment();
        Disconnect(p.shard);
        fail_shard(*p.indices,
                   Status::Unavailable("corrupt frame from shard: " +
                                       next.status().message()));
        drop_pending();
        continue;
      }
      if (next->has_value()) {
        Frame frame = std::move(**next);
        Result<ReformulateResponse> response =
            frame.type == FrameType::kReformulateResponse
                ? DecodeReformulateResponse(
                      std::as_bytes(std::span(frame.payload)))
                : Result<ReformulateResponse>(Status::Corruption(
                      "unexpected frame type from shard"));
        if (!response.ok() || response->request_id != p.request_id ||
            response->results.size() != p.indices->size()) {
          metrics_->corrupt_frames->Increment();
          Disconnect(p.shard);
          fail_shard(*p.indices,
                     Status::Unavailable(
                         "shard response did not match the request"));
        } else {
          for (size_t j = 0; j < response->results.size(); ++j) {
            slots[(*p.indices)[j]] = std::move(response->results[j]);
          }
          if (conn.in.buffered() != 0) {
            // Unsolicited trailing bytes: the response itself passed its
            // checksum and stands; the stream does not.
            metrics_->corrupt_frames->Increment();
            Disconnect(p.shard);
          }
        }
        drop_pending();
        continue;
      }
      if (transport_lost) {
        Disconnect(p.shard);
        fail_shard(*p.indices, transport_status);
        drop_pending();
        continue;
      }
      ++pi;  // partial frame; keep waiting
    }
  }

  // Deterministic merge: input order, one result per slot.
  std::vector<ServeResult> results;
  results.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ServeResult result =
        slots[i].has_value()
            ? std::move(*slots[i])
            : ServeResult(
                  Status::Internal("query was never scattered"));
    if (result.ok()) {
      metrics_->ok->Increment();
    } else if (result.status().code() == StatusCode::kUnavailable) {
      metrics_->unavailable->Increment();
    } else if (result.status().code() == StatusCode::kDeadlineExceeded) {
      metrics_->deadline_exceeded->Increment();
    } else {
      metrics_->remote_errors->Increment();
    }
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace kqr
