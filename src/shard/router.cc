#include "shard/router.h"

#include <algorithm>
#include <deque>
#include <optional>
#include <unordered_map>
#include <utility>

namespace kqr {

namespace {

constexpr size_t kReadChunk = 64 * 1024;
constexpr size_t kNoConn = static_cast<size_t>(-1);

double RemainingSeconds(std::chrono::steady_clock::time_point deadline) {
  return std::chrono::duration<double>(
             deadline - std::chrono::steady_clock::now())
      .count();
}

/// Folds transport-layer codes into the router's degradation contract:
/// local I/O trouble and corrupt streams both surface to callers as the
/// replica being unavailable (the caller cannot act on the difference;
/// the corrupt-frame counter preserves it for diagnosis).
Status MapTransportStatus(const Status& status) {
  if (status.code() == StatusCode::kCorruption ||
      status.code() == StatusCode::kIOError) {
    return Status::Unavailable(status.message());
  }
  return status;
}

}  // namespace

Status RouterOptions::Validate() const {
  if (connect_timeout_seconds <= 0.0) {
    return Status::InvalidArgument("connect_timeout_seconds must be > 0");
  }
  if (default_deadline_seconds <= 0.0) {
    return Status::InvalidArgument("default_deadline_seconds must be > 0");
  }
  if (max_frame_payload == 0 || max_frame_payload > kMaxFramePayload) {
    return Status::InvalidArgument(
        "max_frame_payload must be in (0, " +
        std::to_string(kMaxFramePayload) + "]");
  }
  return Status::OK();
}

struct ShardRouter::ReplicaConn {
  ShardAddress address;
  size_t group = 0;
  size_t replica = 0;
  Socket sock;
  FrameBuffer in;
  bool ever_connected = false;

  ReplicaConn(ShardAddress addr, size_t g, size_t r, size_t max_payload)
      : address(std::move(addr)), group(g), replica(r), in(max_payload) {}

  std::string name() const {
    return "replica " + std::to_string(group) + "." + std::to_string(replica);
  }
};

/// One scattered sub-batch: a slice of one group's queries, riding one
/// replica connection at a time. `tried` remembers which replicas this
/// chunk has been offered to, so failover never revisits a replica that
/// already failed it within this batch.
struct ShardRouter::Chunk {
  size_t group = 0;
  std::vector<size_t> indices;  ///< input slots, in input order
  std::vector<char> tried;      ///< per replica of the group
  uint64_t request_id = 0;
  size_t conn = kNoConn;        ///< flat conn index while in flight
  bool done = false;
};

struct ShardRouter::Metrics {
  Counter* batches;
  Counter* queries;
  Counter* scatters;
  Counter* ok;
  Counter* unavailable;
  Counter* deadline_exceeded;
  Counter* remote_errors;
  Counter* corrupt_frames;
  Counter* reconnects;
  Counter* failovers;

  explicit Metrics(MetricsRegistry* r)
      : batches(r->GetCounter("kqr_shard_router_batches_total")),
        queries(r->GetCounter("kqr_shard_router_queries_total")),
        scatters(r->GetCounter("kqr_shard_router_scatters_total")),
        ok(r->GetCounter("kqr_shard_router_ok_total")),
        unavailable(r->GetCounter("kqr_shard_router_unavailable_total")),
        deadline_exceeded(
            r->GetCounter("kqr_shard_router_deadline_exceeded_total")),
        remote_errors(
            r->GetCounter("kqr_shard_router_remote_errors_total")),
        corrupt_frames(
            r->GetCounter("kqr_shard_router_corrupt_frames_total")),
        reconnects(r->GetCounter("kqr_shard_router_reconnects_total")),
        failovers(r->GetCounter("kqr_shard_router_failovers_total")) {}
};

ShardRouter::ShardRouter(FleetTopology topology, RouterOptions options)
    : topology_(std::move(topology)),
      options_(options),
      metrics_(std::make_unique<Metrics>(&registry_)) {
  group_base_.reserve(topology_.groups.size());
  rr_.assign(topology_.groups.size(), 0);
  for (size_t g = 0; g < topology_.groups.size(); ++g) {
    group_base_.push_back(conns_.size());
    for (size_t r = 0; r < topology_.groups[g].size(); ++r) {
      conns_.emplace_back(topology_.groups[g][r], g, r,
                          options_.max_frame_payload);
    }
  }
}

ShardRouter::~ShardRouter() = default;

Result<std::unique_ptr<ShardRouter>> ShardRouter::Connect(
    FleetTopology topology, RouterOptions options) {
  KQR_RETURN_NOT_OK(topology.Validate());
  KQR_RETURN_NOT_OK(options.Validate());
  std::unique_ptr<ShardRouter> router(
      new ShardRouter(std::move(topology), options));
  // Eager best-effort dial: a replica that is down now fails over (or
  // degrades to kUnavailable when its whole group is down) and
  // reconnects lazily when it returns.
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             options.connect_timeout_seconds));
  for (size_t conn = 0; conn < router->conns_.size(); ++conn) {
    (void)router->EnsureConnected(conn, deadline);
  }
  return router;
}

Result<std::unique_ptr<ShardRouter>> ShardRouter::Connect(
    std::vector<ShardAddress> shards, RouterOptions options) {
  return Connect(FleetTopology::SingleReplica(std::move(shards)), options);
}

RouterStats ShardRouter::stats() const {
  RouterStats s;
  s.batches = metrics_->batches->Value();
  s.queries = metrics_->queries->Value();
  s.scatters = metrics_->scatters->Value();
  s.ok = metrics_->ok->Value();
  s.unavailable = metrics_->unavailable->Value();
  s.deadline_exceeded = metrics_->deadline_exceeded->Value();
  s.remote_errors = metrics_->remote_errors->Value();
  s.corrupt_frames = metrics_->corrupt_frames->Value();
  s.reconnects = metrics_->reconnects->Value();
  s.failovers = metrics_->failovers->Value();
  return s;
}

ShardRouter::Clock::time_point ShardRouter::DeadlineFor(
    Deadline deadline) const {
  return deadline.ResolveOr(options_.default_deadline_seconds);
}

Result<size_t> ShardRouter::FlatIndex(ReplicaRef target) const {
  if (target.group >= topology_.groups.size()) {
    return Status::InvalidArgument("group index out of range");
  }
  if (target.replica >= topology_.groups[target.group].size()) {
    return Status::InvalidArgument("replica index out of range");
  }
  return group_base_[target.group] + target.replica;
}

Status ShardRouter::EnsureConnected(size_t conn_index,
                                    Clock::time_point deadline) {
  ReplicaConn& conn = conns_[conn_index];
  if (conn.sock.valid()) return Status::OK();
  const double remaining = std::min(options_.connect_timeout_seconds,
                                    RemainingSeconds(deadline));
  if (remaining <= 0.0) {
    return Status::DeadlineExceeded("no time left to connect to " +
                                    conn.name());
  }
  Result<Socket> connected =
      Socket::ConnectTcp(conn.address.host, conn.address.port, remaining);
  if (!connected.ok()) return connected.status();
  conn.sock = std::move(*connected);
  conn.in = FrameBuffer(options_.max_frame_payload);
  if (conn.ever_connected) metrics_->reconnects->Increment();
  conn.ever_connected = true;
  return Status::OK();
}

void ShardRouter::Disconnect(size_t conn_index) {
  conns_[conn_index].sock.Close();
  conns_[conn_index].in = FrameBuffer(options_.max_frame_payload);
}

Status ShardRouter::WriteAll(size_t conn_index, const std::string& wire,
                             Clock::time_point deadline) {
  ReplicaConn& conn = conns_[conn_index];
  size_t pos = 0;
  while (pos < wire.size()) {
    Result<IoResult> io =
        conn.sock.Write(std::as_bytes(std::span(wire).subspan(pos)));
    if (!io.ok()) return io.status();
    if (io->would_block) {
      const double remaining = RemainingSeconds(deadline);
      if (remaining <= 0.0) {
        return Status::DeadlineExceeded(
            "deadline passed while writing to " + conn.name());
      }
      KQR_ASSIGN_OR_RETURN(const bool writable,
                           WaitWritable(conn.sock.fd(), remaining));
      if (!writable) {
        return Status::DeadlineExceeded(
            "deadline passed while writing to " + conn.name());
      }
      continue;
    }
    pos += io->bytes;
  }
  return Status::OK();
}

Result<Frame> ShardRouter::Call(size_t conn_index, FrameType request_type,
                                const std::string& payload,
                                FrameType response_type,
                                Clock::time_point deadline) {
  Status st = EnsureConnected(conn_index, deadline);
  if (!st.ok()) return MapTransportStatus(st);
  const std::string wire = EncodeFrameString(request_type, payload);
  st = WriteAll(conn_index, wire, deadline);
  if (!st.ok()) {
    Disconnect(conn_index);
    return MapTransportStatus(st);
  }

  ReplicaConn& conn = conns_[conn_index];
  std::byte buf[kReadChunk];
  for (;;) {
    Result<std::optional<Frame>> next = conn.in.Next();
    if (!next.ok()) {
      metrics_->corrupt_frames->Increment();
      Disconnect(conn_index);
      return MapTransportStatus(next.status());
    }
    if (next->has_value()) {
      Frame frame = std::move(**next);
      // Control-plane calls are single-in-flight per connection by
      // construction (the reformulation path never shares a batch with
      // them), so trailing bytes here mean a desynchronized stream.
      if (frame.type != response_type || conn.in.buffered() != 0) {
        metrics_->corrupt_frames->Increment();
        Disconnect(conn_index);
        return Status::Unavailable(
            "shard sent an unexpected frame (stream desynchronized)");
      }
      return frame;
    }
    const double remaining = RemainingSeconds(deadline);
    if (remaining <= 0.0) {
      Disconnect(conn_index);
      return Status::DeadlineExceeded(conn.name() +
                                      " did not respond in time");
    }
    KQR_ASSIGN_OR_RETURN(const bool readable,
                         WaitReadable(conn.sock.fd(), remaining));
    if (!readable) {
      Disconnect(conn_index);
      return Status::DeadlineExceeded(conn.name() +
                                      " did not respond in time");
    }
    Result<IoResult> io = conn.sock.Read(buf);
    if (!io.ok()) {
      Disconnect(conn_index);
      return MapTransportStatus(io.status());
    }
    if (io->eof) {
      // Whatever arrived may still frame a full response; loop once more
      // before declaring the replica gone.
      Result<std::optional<Frame>> last = conn.in.Next();
      if (last.ok() && last->has_value() &&
          (*last)->type == response_type && conn.in.buffered() == 0) {
        Frame frame = std::move(**last);
        Disconnect(conn_index);
        return frame;
      }
      Disconnect(conn_index);
      return Status::Unavailable("shard closed the connection");
    }
    if (!io->would_block) {
      conn.in.Append(std::span<const std::byte>(buf, io->bytes));
    }
  }
}

Result<HealthResponse> ShardRouter::Health(ReplicaRef target,
                                           Deadline deadline) {
  KQR_ASSIGN_OR_RETURN(const size_t conn, FlatIndex(target));
  const uint64_t request_id = next_request_id_++;
  KQR_ASSIGN_OR_RETURN(
      const Frame frame,
      Call(conn, FrameType::kHealthRequest,
           EncodeRequestIdPayload(request_id), FrameType::kHealthResponse,
           DeadlineFor(deadline)));
  Result<HealthResponse> response =
      DecodeHealthResponse(std::as_bytes(std::span(frame.payload)));
  if (!response.ok() || response->request_id != request_id) {
    metrics_->corrupt_frames->Increment();
    Disconnect(conn);
    return Status::Unavailable("shard health response did not decode");
  }
  return response;
}

Result<std::string> ShardRouter::Stats(ReplicaRef target,
                                       Deadline deadline) {
  KQR_ASSIGN_OR_RETURN(const size_t conn, FlatIndex(target));
  const uint64_t request_id = next_request_id_++;
  KQR_ASSIGN_OR_RETURN(
      const Frame frame,
      Call(conn, FrameType::kStatsRequest,
           EncodeRequestIdPayload(request_id), FrameType::kStatsResponse,
           DeadlineFor(deadline)));
  Result<StatsResponse> response =
      DecodeStatsResponse(std::as_bytes(std::span(frame.payload)));
  if (!response.ok() || response->request_id != request_id) {
    metrics_->corrupt_frames->Increment();
    Disconnect(conn);
    return Status::Unavailable("shard stats response did not decode");
  }
  return std::move(response->json);
}

Result<SwapResponse> ShardRouter::SwapModel(ReplicaRef target,
                                            const std::string& model_path,
                                            Deadline deadline) {
  KQR_ASSIGN_OR_RETURN(const size_t conn, FlatIndex(target));
  SwapRequest request;
  request.request_id = next_request_id_++;
  request.model_path = model_path;
  KQR_ASSIGN_OR_RETURN(
      const Frame frame,
      Call(conn, FrameType::kSwapRequest, EncodeSwapRequest(request),
           FrameType::kSwapResponse, DeadlineFor(deadline)));
  Result<SwapResponse> response =
      DecodeSwapResponse(std::as_bytes(std::span(frame.payload)));
  if (!response.ok() || response->request_id != request.request_id) {
    metrics_->corrupt_frames->Increment();
    Disconnect(conn);
    return Status::Unavailable("shard swap response did not decode");
  }
  return response;
}

Result<HealthResponse> ShardRouter::Health(size_t shard,
                                           double deadline_seconds) {
  return Health(ReplicaRef{shard, 0},
                deadline_seconds > 0.0 ? Deadline::After(deadline_seconds)
                                       : Deadline::Default());
}

Result<std::string> ShardRouter::Stats(size_t shard,
                                       double deadline_seconds) {
  return Stats(ReplicaRef{shard, 0},
               deadline_seconds > 0.0 ? Deadline::After(deadline_seconds)
                                      : Deadline::Default());
}

Result<SwapResponse> ShardRouter::SwapModel(size_t shard,
                                            const std::string& model_path,
                                            double deadline_seconds) {
  return SwapModel(ReplicaRef{shard, 0}, model_path,
                   deadline_seconds > 0.0
                       ? Deadline::After(deadline_seconds)
                       : Deadline::Default());
}

ServeResult ShardRouter::Reformulate(const std::vector<TermId>& terms,
                                     size_t k, Deadline deadline) {
  std::vector<ServeResult> results = ReformulateBatch({terms}, k, deadline);
  return std::move(results[0]);
}

ServeResult ShardRouter::Reformulate(const std::vector<TermId>& terms,
                                     size_t k, double deadline_seconds) {
  return Reformulate(terms, k,
                     deadline_seconds > 0.0
                         ? Deadline::After(deadline_seconds)
                         : Deadline::Default());
}

std::vector<ServeResult> ShardRouter::ReformulateBatch(
    const std::vector<std::vector<TermId>>& queries, size_t k,
    double deadline_seconds) {
  return ReformulateBatch(queries, k,
                          deadline_seconds > 0.0
                              ? Deadline::After(deadline_seconds)
                              : Deadline::Default());
}

std::vector<ServeResult> ShardRouter::ReformulateBatch(
    const std::vector<std::vector<TermId>>& queries, size_t k,
    Deadline batch_deadline) {
  metrics_->batches->Increment();
  metrics_->queries->Increment(queries.size());
  const size_t n = queries.size();
  std::vector<std::optional<ServeResult>> slots(n);
  const Clock::time_point deadline = DeadlineFor(batch_deadline);

  // Partition by group ownership, then split each group's share into
  // sub-batches. A chunk lists its queries in input order and the
  // response carries one result per chunk position, so scattering never
  // loses the input index — for any chunk size and any replica choice.
  const size_t num_groups = topology_.groups.size();
  std::vector<std::vector<size_t>> by_group(num_groups);
  for (size_t i = 0; i < n; ++i) {
    by_group[OwnerShard(queries[i], num_groups)].push_back(i);
  }
  std::vector<Chunk> chunks;
  for (size_t g = 0; g < num_groups; ++g) {
    const std::vector<size_t>& owned = by_group[g];
    if (owned.empty()) continue;
    const size_t chunk_size =
        options_.subbatch_queries == 0 ? owned.size()
                                       : options_.subbatch_queries;
    for (size_t pos = 0; pos < owned.size(); pos += chunk_size) {
      Chunk chunk;
      chunk.group = g;
      const size_t end = std::min(pos + chunk_size, owned.size());
      chunk.indices.assign(owned.begin() + static_cast<ptrdiff_t>(pos),
                           owned.begin() + static_cast<ptrdiff_t>(end));
      chunk.tried.assign(topology_.groups[g].size(), 0);
      chunks.push_back(std::move(chunk));
    }
  }

  // request_id -> chunk index, for every chunk currently on the wire.
  std::unordered_map<uint64_t, size_t> inflight;

  const auto fail_chunk = [&](Chunk& chunk, Status status) {
    for (size_t i : chunk.indices) slots[i] = ServeResult(status);
    chunk.done = true;
    chunk.conn = kNoConn;
  };

  // Drops `conn_index` and pulls every chunk riding it off the wire into
  // `work` for failover (the stream is gone; their responses can never
  // arrive).
  const auto abandon_conn = [&](size_t conn_index,
                                std::deque<size_t>& work) {
    Disconnect(conn_index);
    for (auto it = inflight.begin(); it != inflight.end();) {
      if (chunks[it->second].conn == conn_index) {
        chunks[it->second].conn = kNoConn;
        work.push_back(it->second);
        it = inflight.erase(it);
      } else {
        ++it;
      }
    }
  };

  // Sends (or re-sends) every chunk in `work`. Transport-class send
  // failures mark the replica tried and move to the next untried one;
  // a chunk whose group has no untried replica left fails kUnavailable;
  // the deadline fails a chunk kDeadlineExceeded with no retry (the
  // budget is spent). A write failure abandons the connection, so other
  // chunks riding it re-enter `work` (failover within the same
  // deadline).
  const auto send_chunks = [&](std::deque<size_t>& work) {
    while (!work.empty()) {
      const size_t ci = work.front();
      work.pop_front();
      Chunk& chunk = chunks[ci];
      if (chunk.done) continue;
      for (;;) {
        if (RemainingSeconds(deadline) <= 0.0) {
          fail_chunk(chunk, Status::DeadlineExceeded(
                                "group " + std::to_string(chunk.group) +
                                " did not respond within the batch "
                                "deadline"));
          break;
        }
        const size_t num_replicas = topology_.groups[chunk.group].size();
        bool is_retry = false;
        size_t chosen = kNoConn;
        for (size_t r = 0; r < num_replicas; ++r) {
          if (chunk.tried[r]) is_retry = true;
        }
        for (size_t probe = 0; probe < num_replicas; ++probe) {
          const size_t r = (rr_[chunk.group] + probe) % num_replicas;
          if (!chunk.tried[r]) {
            chosen = r;
            break;
          }
        }
        if (chosen == kNoConn) {
          fail_chunk(chunk,
                     Status::Unavailable(
                         "every replica of group " +
                         std::to_string(chunk.group) + " failed"));
          break;
        }
        rr_[chunk.group] = (chosen + 1) % num_replicas;
        chunk.tried[chosen] = 1;
        const size_t conn_index = group_base_[chunk.group] + chosen;
        metrics_->scatters->Increment();
        if (is_retry) metrics_->failovers->Increment();
        Status st = EnsureConnected(conn_index, deadline);
        if (!st.ok()) {
          if (st.code() == StatusCode::kDeadlineExceeded) {
            fail_chunk(chunk, st);
            break;
          }
          continue;  // next untried replica
        }
        ReformulateRequest request;
        request.request_id = next_request_id_++;
        request.k = k;
        const double remaining = RemainingSeconds(deadline);
        request.deadline_micros =
            remaining > 0.0 ? static_cast<uint64_t>(remaining * 1e6) : 1;
        request.queries.reserve(chunk.indices.size());
        for (size_t i : chunk.indices) request.queries.push_back(queries[i]);
        const std::string wire =
            EncodeFrameString(FrameType::kReformulateRequest,
                              EncodeReformulateRequest(request));
        st = WriteAll(conn_index, wire, deadline);
        if (!st.ok()) {
          abandon_conn(conn_index, work);
          if (st.code() == StatusCode::kDeadlineExceeded) {
            fail_chunk(chunk, st);
            break;
          }
          continue;  // next untried replica
        }
        chunk.request_id = request.request_id;
        chunk.conn = conn_index;
        inflight.emplace(request.request_id, ci);
        break;
      }
    }
  };

  // Initial scatter: chunks spread round-robin across each group's
  // replicas, pipelined (a connection may carry several chunks).
  std::deque<size_t> work;
  for (size_t ci = 0; ci < chunks.size(); ++ci) work.push_back(ci);
  send_chunks(work);

  // Gather: one bounded multiplexed wait over every connection with
  // chunks on the wire. Responses are matched by request id, so they
  // may arrive in any order across and within connections.
  std::byte buf[kReadChunk];
  while (!inflight.empty()) {
    const double remaining = RemainingSeconds(deadline);
    if (remaining <= 0.0) {
      for (const auto& entry : inflight) {
        Chunk& chunk = chunks[entry.second];
        Disconnect(chunk.conn);
        fail_chunk(chunk, Status::DeadlineExceeded(
                              "group " + std::to_string(chunk.group) +
                              " did not respond within the batch "
                              "deadline"));
      }
      inflight.clear();
      break;
    }
    std::vector<size_t> poll_conns;
    for (const auto& entry : inflight) {
      const size_t conn_index = chunks[entry.second].conn;
      if (std::find(poll_conns.begin(), poll_conns.end(), conn_index) ==
          poll_conns.end()) {
        poll_conns.push_back(conn_index);
      }
    }
    std::vector<PollItem> items;
    items.reserve(poll_conns.size());
    for (size_t conn_index : poll_conns) {
      items.push_back(PollItem{conns_[conn_index].sock.fd(), false});
    }
    Result<size_t> polled = PollReadable(items, remaining);
    if (!polled.ok()) {
      // Local poll failure: nothing on the wire can be trusted to
      // arrive; fail everything still in flight.
      for (const auto& entry : inflight) {
        Disconnect(chunks[entry.second].conn);
        fail_chunk(chunks[entry.second],
                   MapTransportStatus(polled.status()));
      }
      inflight.clear();
      break;
    }
    if (*polled == 0) continue;  // timeout slice; loop re-checks deadline

    for (size_t pi = 0; pi < poll_conns.size(); ++pi) {
      if (!items[pi].readable) continue;
      const size_t conn_index = poll_conns[pi];
      ReplicaConn& conn = conns_[conn_index];

      // Drain everything the socket has, then decode every complete
      // frame it buffered. Any transport loss or stream corruption
      // abandons the connection; its surviving chunks fail over.
      bool lost = false;
      for (;;) {
        Result<IoResult> io = conn.sock.Read(buf);
        if (!io.ok()) {
          lost = true;
          break;
        }
        if (io->would_block) break;
        if (io->eof) {
          lost = true;
          break;
        }
        conn.in.Append(std::span<const std::byte>(buf, io->bytes));
      }
      for (;;) {
        Result<std::optional<Frame>> next = conn.in.Next();
        if (!next.ok()) {
          metrics_->corrupt_frames->Increment();
          lost = true;
          break;
        }
        if (!next->has_value()) break;
        Frame frame = std::move(**next);
        if (frame.type != FrameType::kReformulateResponse) {
          metrics_->corrupt_frames->Increment();
          lost = true;
          break;
        }
        Result<ReformulateResponse> response = DecodeReformulateResponse(
            std::as_bytes(std::span(frame.payload)));
        if (!response.ok()) {
          metrics_->corrupt_frames->Increment();
          lost = true;
          break;
        }
        const auto it = inflight.find(response->request_id);
        if (it == inflight.end() ||
            chunks[it->second].conn != conn_index ||
            response->results.size() != chunks[it->second].indices.size()) {
          // A well-formed frame we are not waiting for on this stream
          // (unknown or foreign request id, or a result count that does
          // not match the request) is still a protocol violation: the
          // stream cannot be trusted past it.
          metrics_->corrupt_frames->Increment();
          lost = true;
          break;
        }
        Chunk& chunk = chunks[it->second];
        for (size_t j = 0; j < response->results.size(); ++j) {
          slots[chunk.indices[j]] = std::move(response->results[j]);
        }
        chunk.done = true;
        chunk.conn = kNoConn;
        inflight.erase(it);
      }
      if (lost) {
        std::deque<size_t> resend;
        abandon_conn(conn_index, resend);
        send_chunks(resend);  // failover within the same deadline
      }
    }
  }

  // Deterministic merge: input order, one result per slot. Each query's
  // outcome is counted exactly once here, no matter how many replicas
  // its chunk visited.
  std::vector<ServeResult> results;
  results.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ServeResult result =
        slots[i].has_value()
            ? std::move(*slots[i])
            : ServeResult(
                  Status::Internal("query was never scattered"));
    if (result.ok()) {
      metrics_->ok->Increment();
    } else if (result.status().code() == StatusCode::kUnavailable) {
      metrics_->unavailable->Increment();
    } else if (result.status().code() == StatusCode::kDeadlineExceeded) {
      metrics_->deadline_exceeded->Increment();
    } else {
      metrics_->remote_errors->Increment();
    }
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace kqr
