#include "shard/shard_server.h"

#include <algorithm>
#include <utility>

#include "net/protocol.h"
#include "obs/export.h"

namespace kqr {

namespace {

constexpr uint64_t kListenerTag = 0;
constexpr uint64_t kWakeTag = 1;
constexpr size_t kReadChunk = 64 * 1024;
/// Compact a partially written outbox once the consumed prefix passes
/// this bound (keeps slow-reader connections from pinning old bytes).
constexpr size_t kOutboxCompactBytes = 64 * 1024;

}  // namespace

Status ShardServerOptions::Validate() const {
  KQR_RETURN_NOT_OK(server.Validate());
  if (max_connections == 0) {
    return Status::InvalidArgument("max_connections must be positive");
  }
  if (max_frame_payload == 0 || max_frame_payload > kMaxFramePayload) {
    return Status::InvalidArgument(
        "max_frame_payload must be in (0, " +
        std::to_string(kMaxFramePayload) + "]");
  }
  return Status::OK();
}

/// Resolved handles into the shard's own registry; the registry outlives
/// every model swap, so fleet dashboards see one continuous series.
struct ShardServer::Metrics {
  Counter* connections_accepted;
  Counter* connections_rejected;
  Counter* connections_closed;
  Counter* frames_received;
  Counter* frames_sent;
  Counter* corrupt_frames;
  Counter* requests;
  Counter* queries;
  Counter* swaps;
  Gauge* open_connections;
  Gauge* model_generation;

  explicit Metrics(MetricsRegistry* r)
      : connections_accepted(
            r->GetCounter("kqr_shard_connections_accepted_total")),
        connections_rejected(
            r->GetCounter("kqr_shard_connections_rejected_total")),
        connections_closed(
            r->GetCounter("kqr_shard_connections_closed_total")),
        frames_received(r->GetCounter("kqr_shard_frames_received_total")),
        frames_sent(r->GetCounter("kqr_shard_frames_sent_total")),
        corrupt_frames(r->GetCounter("kqr_shard_corrupt_frames_total")),
        requests(r->GetCounter("kqr_shard_requests_total")),
        queries(r->GetCounter("kqr_shard_queries_total")),
        swaps(r->GetCounter("kqr_shard_swaps_total")),
        open_connections(r->GetGauge("kqr_shard_open_connections")),
        model_generation(r->GetGauge("kqr_shard_model_generation")) {}
};

/// All connection state is loop-thread-only; worker threads reach a
/// connection solely through the done-queue (by tag, never by pointer),
/// so a connection that dies with requests in flight simply absorbs the
/// loss — the responses are dropped at DrainDone when the tag no longer
/// resolves.
struct ShardServer::Connection {
  uint64_t tag = 0;
  Socket sock;
  FrameBuffer in;
  std::string out;
  size_t out_pos = 0;
  bool want_write = false;

  explicit Connection(size_t max_payload) : in(max_payload) {}
};

/// One in-flight reformulate request: disjoint result slots, one atomic
/// countdown. Each query's completion writes only its own slot; the
/// fetch_sub(acq_rel) makes every slot write visible to the final
/// completer, which owns the batch from that point on.
struct ShardServer::PendingBatch {
  ShardServer* owner = nullptr;
  uint64_t conn_tag = 0;
  uint64_t request_id = 0;
  std::vector<ServeResult> results;
  std::atomic<size_t> remaining{0};
};

Result<std::unique_ptr<ShardServer>> ShardServer::Start(
    std::shared_ptr<const ServingModel> model, ModelLoader loader,
    ShardServerOptions options) {
  if (model == nullptr) {
    return Status::InvalidArgument("shard server needs a model to serve");
  }
  KQR_RETURN_NOT_OK(options.Validate());
  std::unique_ptr<ShardServer> server(
      new ShardServer(std::move(model), std::move(loader), options));
  KQR_RETURN_NOT_OK(server->Init());
  return server;
}

ShardServer::ShardServer(std::shared_ptr<const ServingModel> model,
                         ModelLoader loader, ShardServerOptions options)
    : options_(std::move(options)),
      loader_(std::move(loader)),
      metrics_(std::make_unique<Metrics>(&registry_)) {
  model_.store(std::move(model), std::memory_order_release);
  metrics_->model_generation->Set(1.0);
}

ShardServer::~ShardServer() { Shutdown(); }

Status ShardServer::Init() {
  KQR_ASSIGN_OR_RETURN(inner_,
                       Server::Create(model(), options_.server));
  KQR_ASSIGN_OR_RETURN(
      listener_, Socket::ListenTcp(options_.host, options_.port));
  KQR_ASSIGN_OR_RETURN(port_, listener_.local_port());
  KQR_ASSIGN_OR_RETURN(poller_, Poller::Create());
  KQR_ASSIGN_OR_RETURN(wake_, WakeFd::Create());
  KQR_RETURN_NOT_OK(poller_.Add(listener_.fd(), kListenerTag,
                                /*want_read=*/true, /*want_write=*/false));
  KQR_RETURN_NOT_OK(poller_.Add(wake_.fd(), kWakeTag, /*want_read=*/true,
                                /*want_write=*/false));
  loop_ = std::thread([this]() { Loop(); });
  return Status::OK();
}

void ShardServer::Shutdown() {
  stop_.store(true, std::memory_order_release);
  if (wake_.valid()) wake_.Notify();
  if (loop_.joinable()) loop_.join();
  // Drain after the loop exits: no new submissions can arrive, and every
  // admitted request completes into the (now unread) done-queue before
  // any member it references is destroyed.
  if (inner_ != nullptr) inner_->Drain();
  conns_.clear();
}

ShardStats ShardServer::stats() const {
  ShardStats s;
  s.connections_accepted = metrics_->connections_accepted->Value();
  s.connections_rejected = metrics_->connections_rejected->Value();
  s.connections_closed = metrics_->connections_closed->Value();
  s.frames_received = metrics_->frames_received->Value();
  s.frames_sent = metrics_->frames_sent->Value();
  s.corrupt_frames = metrics_->corrupt_frames->Value();
  s.requests = metrics_->requests->Value();
  s.queries = metrics_->queries->Value();
  s.swaps = metrics_->swaps->Value();
  s.model_generation = generation();
  return s;
}

void ShardServer::Loop() {
  std::vector<PollerEvent> events;
  while (!stop_.load(std::memory_order_acquire)) {
    // The 100ms ceiling bounds how stale the stop flag can get if a
    // wake-notify races the poller setup; all real work is event-driven.
    if (!poller_.Wait(100, &events).ok()) continue;
    DrainDone();
    for (const PollerEvent& event : events) {
      if (event.tag == kWakeTag) {
        wake_.Consume();
        continue;
      }
      if (event.tag == kListenerTag) {
        AcceptPending();
        continue;
      }
      if (event.writable) FlushWrites(event.tag);
      if (event.readable || event.hangup) ServiceReadable(event.tag);
    }
    DrainDone();
  }
}

void ShardServer::AcceptPending() {
  for (;;) {
    Result<Socket> accepted = listener_.Accept();
    if (!accepted.ok()) return;
    if (!accepted->valid()) return;  // nothing pending
    if (conns_.size() >= options_.max_connections) {
      // Over capacity: the RAII close is the rejection (a peer sees an
      // immediate EOF, which the router maps to kUnavailable).
      metrics_->connections_rejected->Increment();
      continue;
    }
    auto conn = std::make_unique<Connection>(options_.max_frame_payload);
    conn->tag = next_conn_tag_++;
    conn->sock = std::move(*accepted);
    if (!poller_
             .Add(conn->sock.fd(), conn->tag, /*want_read=*/true,
                  /*want_write=*/false)
             .ok()) {
      continue;
    }
    metrics_->connections_accepted->Increment();
    conns_.push_back(std::move(conn));
    metrics_->open_connections->Set(static_cast<double>(conns_.size()));
  }
}

ShardServer::Connection* ShardServer::FindConnection(uint64_t id) {
  for (const std::unique_ptr<Connection>& conn : conns_) {
    if (conn->tag == id) return conn.get();
  }
  return nullptr;
}

void ShardServer::CloseConnection(uint64_t id) {
  for (size_t i = 0; i < conns_.size(); ++i) {
    if (conns_[i]->tag != id) continue;
    (void)poller_.Remove(conns_[i]->sock.fd());
    conns_.erase(conns_.begin() + static_cast<ptrdiff_t>(i));
    metrics_->connections_closed->Increment();
    metrics_->open_connections->Set(static_cast<double>(conns_.size()));
    return;
  }
}

void ShardServer::ServiceReadable(uint64_t id) {
  Connection* conn = FindConnection(id);
  if (conn == nullptr) return;
  std::byte buf[kReadChunk];
  bool peer_closed = false;
  for (;;) {
    Result<IoResult> io = conn->sock.Read(buf);
    if (!io.ok()) {
      CloseConnection(id);
      return;
    }
    if (io->would_block) break;
    if (io->eof) {
      peer_closed = true;
      break;
    }
    conn->in.Append(std::span<const std::byte>(buf, io->bytes));
  }
  for (;;) {
    Result<std::optional<Frame>> next = conn->in.Next();
    if (!next.ok()) {
      metrics_->corrupt_frames->Increment();
      CloseConnection(id);
      return;
    }
    if (!next->has_value()) break;
    metrics_->frames_received->Increment();
    if (!HandleFrame(id, std::move(**next))) {
      metrics_->corrupt_frames->Increment();
      CloseConnection(id);
      return;
    }
    if (FindConnection(id) == nullptr) return;  // closed while handling
  }
  if (peer_closed) CloseConnection(id);
}

bool ShardServer::HandleFrame(uint64_t id, Frame frame) {
  switch (frame.type) {
    case FrameType::kReformulateRequest:
      HandleReformulate(id, std::move(frame));
      return true;
    case FrameType::kHealthRequest: {
      Result<uint64_t> request_id = DecodeRequestIdPayload(
          std::as_bytes(std::span(frame.payload)));
      if (!request_id.ok()) return false;
      const std::shared_ptr<const ServingModel> current = model();
      HealthResponse response;
      response.request_id = *request_id;
      response.model_generation = generation();
      response.vocab_terms = current->vocab().size();
      response.prepared_terms = current->PreparedTerms().size();
      SendFrame(id, FrameType::kHealthResponse,
                EncodeHealthResponse(response));
      return true;
    }
    case FrameType::kStatsRequest: {
      Result<uint64_t> request_id = DecodeRequestIdPayload(
          std::as_bytes(std::span(frame.payload)));
      if (!request_id.ok()) return false;
      StatsResponse response;
      response.request_id = *request_id;
      response.json = StatsJson();
      SendFrame(id, FrameType::kStatsResponse,
                EncodeStatsResponse(response));
      return true;
    }
    case FrameType::kSwapRequest:
      HandleSwap(id, frame);
      return true;
    default:
      // Response types arriving at a server are a protocol violation.
      return false;
  }
}

void ShardServer::HandleReformulate(uint64_t id, Frame frame) {
  Result<ReformulateRequest> decoded = DecodeReformulateRequest(
      std::as_bytes(std::span(frame.payload)));
  if (!decoded.ok()) {
    metrics_->corrupt_frames->Increment();
    CloseConnection(id);
    return;
  }
  ReformulateRequest request = std::move(*decoded);
  metrics_->requests->Increment();
  metrics_->queries->Increment(request.queries.size());

  auto batch = std::make_shared<PendingBatch>();
  batch->owner = this;
  batch->conn_tag = id;
  batch->request_id = request.request_id;
  batch->results.reserve(request.queries.size());
  for (size_t i = 0; i < request.queries.size(); ++i) {
    batch->results.emplace_back(Status::Internal("pending"));
  }
  if (request.queries.empty()) {
    CompleteBatch(batch.get());
    return;
  }
  batch->remaining.store(request.queries.size(),
                         std::memory_order_relaxed);

  const double deadline_seconds =
      static_cast<double>(request.deadline_micros) / 1e6;
  for (size_t i = 0; i < request.queries.size(); ++i) {
    ServerRequest server_request;
    server_request.terms = std::move(request.queries[i]);
    server_request.k = static_cast<size_t>(request.k);
    server_request.deadline_seconds = deadline_seconds;
    inner_->Submit(std::move(server_request),
                   [batch, i](ServeResult result) {
                     batch->results[i] = std::move(result);
                     if (batch->remaining.fetch_sub(
                             1, std::memory_order_acq_rel) == 1) {
                       batch->owner->CompleteBatch(batch.get());
                     }
                   });
  }
}

void ShardServer::HandleSwap(uint64_t id, const Frame& frame) {
  Result<SwapRequest> decoded =
      DecodeSwapRequest(std::as_bytes(std::span(frame.payload)));
  if (!decoded.ok()) {
    metrics_->corrupt_frames->Increment();
    CloseConnection(id);
    return;
  }
  SwapResponse response;
  response.request_id = decoded->request_id;
  response.model_generation = generation();
  response.status = Status::OK();
  if (loader_ == nullptr) {
    response.status =
        Status::NotImplemented("this shard has no model loader");
  } else {
    Result<std::shared_ptr<const ServingModel>> loaded =
        loader_(decoded->model_path);
    if (!loaded.ok()) {
      response.status = loaded.status();
    } else {
      Result<std::unique_ptr<Server>> replacement =
          Server::Create(*loaded, options_.server);
      if (!replacement.ok()) {
        response.status = replacement.status();
      } else {
        // Zero-shed rollover: this thread is the only submitter, so while
        // it runs the swap no request can reach (and be shed by) either
        // server — inbound bytes wait in kernel buffers. Install the new
        // generation first, then drain the old one so its in-flight
        // requests complete against the model they were admitted under.
        std::unique_ptr<Server> retired = std::move(inner_);
        inner_ = std::move(*replacement);
        model_.store(*loaded, std::memory_order_release);
        const uint64_t gen =
            generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
        retired->Drain();
        retired.reset();
        DrainDone();  // flush completions the retired server produced
        metrics_->swaps->Increment();
        metrics_->model_generation->Set(static_cast<double>(gen));
        response.status = Status::OK();
        response.model_generation = gen;
      }
    }
  }
  SendFrame(id, FrameType::kSwapResponse, EncodeSwapResponse(response));
}

void ShardServer::CompleteBatch(PendingBatch* batch) {
  ReformulateResponse response;
  response.request_id = batch->request_id;
  response.results = std::move(batch->results);
  std::string wire =
      EncodeFrameString(FrameType::kReformulateResponse,
                        EncodeReformulateResponse(response));
  {
    MutexLock lock(&done_mu_);
    done_.emplace_back(batch->conn_tag, std::move(wire));
  }
  wake_.Notify();
}

void ShardServer::DrainDone() {
  std::vector<std::pair<uint64_t, std::string>> done;
  {
    MutexLock lock(&done_mu_);
    done.swap(done_);
  }
  for (std::pair<uint64_t, std::string>& item : done) {
    Connection* conn = FindConnection(item.first);
    if (conn == nullptr) continue;  // peer vanished mid-request
    metrics_->frames_sent->Increment();
    conn->out.append(item.second);
    FlushWrites(item.first);
  }
}

void ShardServer::SendFrame(uint64_t id, FrameType type,
                            const std::string& payload) {
  Connection* conn = FindConnection(id);
  if (conn == nullptr) return;
  metrics_->frames_sent->Increment();
  EncodeFrame(type, payload, &conn->out);
  FlushWrites(id);
}

void ShardServer::FlushWrites(uint64_t id) {
  Connection* conn = FindConnection(id);
  if (conn == nullptr) return;
  while (conn->out_pos < conn->out.size()) {
    Result<IoResult> io = conn->sock.Write(std::as_bytes(
        std::span(conn->out).subspan(conn->out_pos)));
    if (!io.ok()) {
      CloseConnection(id);
      return;
    }
    if (io->would_block) break;
    conn->out_pos += io->bytes;
  }
  if (conn->out_pos == conn->out.size()) {
    conn->out.clear();
    conn->out_pos = 0;
  } else if (conn->out_pos > kOutboxCompactBytes) {
    conn->out.erase(0, conn->out_pos);
    conn->out_pos = 0;
  }
  const bool want_write = conn->out_pos < conn->out.size();
  if (want_write != conn->want_write) {
    conn->want_write = want_write;
    (void)poller_.Update(conn->sock.fd(), id, /*want_read=*/true,
                         want_write);
  }
}

std::string ShardServer::StatsJson() {
  const std::shared_ptr<const ServingModel> current = model();
  std::string json = "{\"shard\":";
  json += MetricsToJson(registry_.Snapshot());
  json += ",\"model\":";
  json += MetricsToJson(current->MetricsNow());
  json += "}";
  return json;
}

}  // namespace kqr
