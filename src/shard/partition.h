// Term-space partition for sharded serving (DESIGN.md §8).
//
// Reformulation is a joint decode over all of a query's positions — one
// query cannot be split across processes without changing its answer. So
// the shard fleet partitions *ownership*, not computation: a stable hash
// maps every vocabulary term to a shard, and a whole query is owned by
// the shard of its anchor term (the term whose (hash, id) pair is
// smallest). Every shard opens the same v3 model file, so any shard
// *could* serve any query; routing by ownership is what makes each
// shard's lazy term cache warm only its slice of the vocabulary, which
// is the scaling property the fleet exists for. The anchor rule is a
// pure function of the query's term multiset and the shard count, so
// router and tests agree on placement without any shared state.

#pragma once

#include <cstdint>
#include <span>

#include "common/io/codec.h"
#include "text/vocabulary.h"

namespace kqr {

/// \brief Stable 64-bit hash of a term id (FNV-1a over its LE bytes).
/// Never reordered: routing, tests, and any future persisted placement
/// all assume this exact function.
inline uint64_t TermShardHash(TermId term) {
  return Fnv1aU64(kFnv64Basis, static_cast<uint64_t>(term));
}

/// \brief The shard that owns `term` in a fleet of `num_shards`.
inline size_t ShardOfTerm(TermId term, size_t num_shards) {
  return static_cast<size_t>(TermShardHash(term) % num_shards);
}

/// \brief The shard that owns a whole query: the shard of its anchor
/// term, the term minimizing (hash, id). Ties on hash break by id, so
/// the anchor — and therefore placement — is deterministic for any term
/// order and any duplicate structure. Empty queries anchor at shard 0
/// (they fail validation downstream anyway; the router still needs a
/// total function).
inline size_t OwnerShard(std::span<const TermId> query_terms,
                         size_t num_shards) {
  if (query_terms.empty()) return 0;
  TermId anchor = query_terms[0];
  uint64_t anchor_hash = TermShardHash(anchor);
  for (size_t i = 1; i < query_terms.size(); ++i) {
    const uint64_t h = TermShardHash(query_terms[i]);
    if (h < anchor_hash ||
        (h == anchor_hash && query_terms[i] < anchor)) {
      anchor = query_terms[i];
      anchor_hash = h;
    }
  }
  return static_cast<size_t>(anchor_hash % num_shards);
}

}  // namespace kqr
