// Term-space partition and fleet topology for sharded serving
// (DESIGN.md §8).
//
// Reformulation is a joint decode over all of a query's positions — one
// query cannot be split across processes without changing its answer. So
// the shard fleet partitions *ownership*, not computation: a stable hash
// maps every vocabulary term to a shard group, and a whole query is
// owned by the group of its anchor term (the term whose (hash, id) pair
// is smallest). Every shard opens the same v3 model file, so any shard
// *could* serve any query; routing by ownership is what makes each
// group's lazy term cache warm only its slice of the vocabulary, which
// is the scaling property the fleet exists for. The anchor rule is a
// pure function of the query's term multiset and the group count, so
// router and tests agree on placement without any shared state.
//
// A `FleetTopology` describes the fleet as N shard groups × R replicas:
// partition hashing selects the *group*; any replica within a group is
// interchangeable (same model file, same answers), so the router is free
// to load-balance sub-batches across a group's live replicas and to
// retry a failed sub-batch on another replica without changing results.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/io/codec.h"
#include "common/status.h"
#include "text/vocabulary.h"

namespace kqr {

/// \brief Stable 64-bit hash of a term id (FNV-1a over its LE bytes).
/// Never reordered: routing, tests, and any future persisted placement
/// all assume this exact function.
inline uint64_t TermShardHash(TermId term) {
  return Fnv1aU64(kFnv64Basis, static_cast<uint64_t>(term));
}

/// \brief The shard that owns `term` in a fleet of `num_shards`.
inline size_t ShardOfTerm(TermId term, size_t num_shards) {
  return static_cast<size_t>(TermShardHash(term) % num_shards);
}

/// \brief The shard that owns a whole query: the shard of its anchor
/// term, the term minimizing (hash, id). Ties on hash break by id, so
/// the anchor — and therefore placement — is deterministic for any term
/// order and any duplicate structure. Empty queries anchor at shard 0
/// (they fail validation downstream anyway; the router still needs a
/// total function).
inline size_t OwnerShard(std::span<const TermId> query_terms,
                         size_t num_shards) {
  if (query_terms.empty()) return 0;
  TermId anchor = query_terms[0];
  uint64_t anchor_hash = TermShardHash(anchor);
  for (size_t i = 1; i < query_terms.size(); ++i) {
    const uint64_t h = TermShardHash(query_terms[i]);
    if (h < anchor_hash ||
        (h == anchor_hash && query_terms[i] < anchor)) {
      anchor = query_terms[i];
      anchor_hash = h;
    }
  }
  return static_cast<size_t>(anchor_hash % num_shards);
}

/// \brief TCP endpoint of one shard replica process.
struct ShardAddress {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

inline bool operator==(const ShardAddress& a, const ShardAddress& b) {
  return a.host == b.host && a.port == b.port;
}
inline bool operator!=(const ShardAddress& a, const ShardAddress& b) {
  return !(a == b);
}

/// \brief The shape of a serving fleet: `groups[g]` lists the replica
/// endpoints of shard group `g`. Partition hashing (OwnerShard with
/// num_groups()) picks the group; every replica within a group serves
/// the same model and may answer any of the group's queries.
///
/// A topology is plain data; build one with the factories below (or
/// aggregate-initialize `groups` directly) and let ShardRouter::Connect
/// run Validate(). Validation rejects fleets the router cannot serve
/// deterministically: no groups, a group with zero replicas, a replica
/// with an empty host or port 0, and the same host:port appearing twice
/// anywhere in the fleet (two "replicas" backed by one process would
/// silently halve the redundancy the topology claims).
struct FleetTopology {
  std::vector<std::vector<ShardAddress>> groups;

  /// \brief One replica per group: the PR 9 flat-fleet shape.
  static FleetTopology SingleReplica(std::vector<ShardAddress> shards) {
    FleetTopology topology;
    topology.groups.reserve(shards.size());
    for (auto& shard : shards) topology.groups.push_back({std::move(shard)});
    return topology;
  }

  /// \brief Explicit groups-of-replicas form.
  static FleetTopology Replicated(
      std::vector<std::vector<ShardAddress>> groups) {
    FleetTopology topology;
    topology.groups = std::move(groups);
    return topology;
  }

  size_t num_groups() const { return groups.size(); }

  size_t num_replicas() const {
    size_t total = 0;
    for (const auto& group : groups) total += group.size();
    return total;
  }

  Status Validate() const {
    if (groups.empty()) {
      return Status::InvalidArgument("FleetTopology: no shard groups");
    }
    std::vector<ShardAddress> seen;
    for (size_t g = 0; g < groups.size(); ++g) {
      if (groups[g].empty()) {
        return Status::InvalidArgument("FleetTopology: group " +
                                       std::to_string(g) +
                                       " has zero replicas");
      }
      for (const ShardAddress& address : groups[g]) {
        if (address.host.empty()) {
          return Status::InvalidArgument(
              "FleetTopology: empty host in group " + std::to_string(g));
        }
        if (address.port == 0) {
          return Status::InvalidArgument(
              "FleetTopology: port 0 in group " + std::to_string(g));
        }
        for (const ShardAddress& other : seen) {
          if (other == address) {
            return Status::InvalidArgument(
                "FleetTopology: duplicate address " + address.host + ":" +
                std::to_string(address.port));
          }
        }
        seen.push_back(address);
      }
    }
    return Status::OK();
  }
};

}  // namespace kqr
