// ShardServer: one shard process's network front-end (DESIGN.md §8).
//
// Wraps a kqr::Server behind the length-prefixed frame protocol
// (net/frame.h, net/protocol.h): a single epoll event-loop thread owns
// the listener, every connection, and all protocol state; the inner
// Server's worker pool does the actual reformulation. The loop thread is
// the *sole* submitter to the inner server, which is the invariant the
// zero-shed model swap rests on: a swap runs inline on the loop thread
// (load new model → start new inner server → install → drain old), so
// while it runs no request can be shed — arriving bytes simply wait in
// kernel socket buffers and are served by the new generation.
//
// Completions flow back without blocking workers: the last finished
// query of a batch encodes the response and hands the bytes to the event
// loop through a mutex-guarded done-queue plus an eventfd wakeup; only
// the loop thread ever touches a socket.
//
// Multiplexed connections: the loop decodes every complete frame a read
// produces and dispatches each immediately, so one connection may carry
// any number of in-flight requests; responses are written in completion
// order, not arrival order, and carry the request id that correlates
// them (net/protocol.h). The router's out-of-order gather depends on
// exactly this behavior — a shard never owes responses in request
// order.
//
// Fault posture (shard side): any malformed byte on a connection —
// corrupt frame, unknown type, undecodable payload — counts one
// kqr_shard_corrupt_frames_total and closes that connection. There is no
// resync: after framing is lost, every subsequent byte is suspect.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "core/serving_model.h"
#include "net/frame.h"
#include "net/poller.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "server/server.h"

namespace kqr {

struct ShardServerOptions {
  /// Listen address. Port 0 binds a kernel-assigned ephemeral port; read
  /// it back with ShardServer::port().
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Inner batching server (workers, queue bound, micro-batch size).
  ServerOptions server;
  /// Connections beyond this are accepted and immediately closed
  /// (counted in kqr_shard_conn_rejected_total).
  size_t max_connections = 64;
  /// Per-frame payload bound enforced on inbound traffic.
  size_t max_frame_payload = kMaxFramePayload;

  Status Validate() const;
};

/// \brief Loads a serving model for SwapModel requests. Runs on the
/// event-loop thread (deliberately: blocking the loop is what makes the
/// swap shed-free). Null loader = swap requests fail kNotImplemented.
using ModelLoader =
    std::function<Result<std::shared_ptr<const ServingModel>>(
        const std::string& path)>;

/// \brief Point-in-time shard accounting, read from the shard's own
/// metrics registry (names: kqr_shard_*).
struct ShardStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;
  uint64_t connections_closed = 0;
  uint64_t frames_received = 0;
  uint64_t frames_sent = 0;
  uint64_t corrupt_frames = 0;
  uint64_t requests = 0;  ///< reformulate request frames decoded
  uint64_t queries = 0;   ///< individual queries inside those requests
  uint64_t swaps = 0;     ///< successful model swaps
  uint64_t model_generation = 0;
};

/// \brief Network shard process core: listener + event loop + inner
/// batching server over one ServingModel.
///
/// Thread-safety: Start/Shutdown/destructor must be driven from one
/// controlling thread. port(), stats(), generation(), and model() are
/// safe from any thread concurrently with the loop.
class ShardServer {
 public:
  /// \brief Binds the listener, starts the inner server and the event
  /// loop. `loader` handles SwapModel requests (may be null).
  static Result<std::unique_ptr<ShardServer>> Start(
      std::shared_ptr<const ServingModel> model, ModelLoader loader,
      ShardServerOptions options = {});

  ~ShardServer();  // Shutdown()
  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// The bound listen port (resolves port 0 to the actual port).
  uint16_t port() const { return port_; }

  /// Model generation: 1 for the model served at Start, +1 per
  /// successful swap.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// \brief The currently installed model. RCU-flavored: readers get a
  /// snapshot shared_ptr; a concurrent swap atomically publishes the new
  /// model while in-flight requests keep the old one alive through their
  /// own references until the old inner server drains.
  std::shared_ptr<const ServingModel> model() const {
    return model_.load(std::memory_order_acquire);
  }

  ShardStats stats() const;
  /// The shard's own registry (kqr_shard_* metrics); never null.
  MetricsRegistry* metrics_registry() { return &registry_; }

  /// \brief Stops accepting, joins the event loop, drains the inner
  /// server (every admitted request completes), closes all connections.
  /// Idempotent from the controlling thread.
  void Shutdown();

  const ShardServerOptions& options() const { return options_; }

 private:
  struct Connection;
  struct PendingBatch;
  struct Metrics;

  ShardServer(std::shared_ptr<const ServingModel> model, ModelLoader loader,
              ShardServerOptions options);

  Status Init();
  void Loop();
  void AcceptPending();
  /// Reads everything available on `conn`, decodes frames, dispatches.
  void ServiceReadable(uint64_t id);
  /// Handles one decoded frame; returns false when the connection must
  /// close (protocol violation).
  bool HandleFrame(uint64_t id, Frame frame);
  void HandleReformulate(uint64_t id, Frame frame);
  void HandleSwap(uint64_t id, const Frame& frame);
  /// Called by the last completing query of a batch (worker thread or
  /// loop thread): encodes the response and rings the loop.
  void CompleteBatch(PendingBatch* batch);
  /// Moves completed responses from the done-queue into their
  /// connections' write buffers.
  void DrainDone();
  /// Appends an encoded frame to `conn`'s outbox and flushes.
  void SendFrame(uint64_t id, FrameType type, const std::string& payload);
  /// Writes as much buffered output as the socket accepts; adjusts the
  /// poller's write interest; closes on write error.
  void FlushWrites(uint64_t id);
  void CloseConnection(uint64_t id);
  Connection* FindConnection(uint64_t id);
  std::string StatsJson();

  ShardServerOptions options_;
  ModelLoader loader_;

  /// Own registry: shard metrics survive model swaps (the per-model
  /// registries rotate with their models).
  MetricsRegistry registry_;
  std::unique_ptr<Metrics> metrics_;

  std::atomic<std::shared_ptr<const ServingModel>> model_;
  std::unique_ptr<Server> inner_;  // loop-thread-only after Start
  std::atomic<uint64_t> generation_{1};

  Socket listener_;
  uint16_t port_ = 0;
  Poller poller_;
  WakeFd wake_;

  /// Loop-thread-only connection table, keyed by poller tag.
  std::vector<std::unique_ptr<Connection>> conns_;
  uint64_t next_conn_tag_ = 2;  // 0 = listener, 1 = wake fd

  Mutex done_mu_;
  /// Encoded response frames awaiting hand-off to their connections:
  /// (connection tag, wire bytes). Written by worker threads, drained by
  /// the loop.
  std::vector<std::pair<uint64_t, std::string>> done_ GUARDED_BY(done_mu_);

  std::atomic<bool> stop_{false};
  std::thread loop_;
};

}  // namespace kqr
