// ShardRouter: the client half of sharded serving (DESIGN.md §8).
//
// Connects to a FleetTopology (N shard groups × R replicas), hash-
// partitions a batch of queries by group ownership (shard/partition.h),
// splits each group's queries into sub-batches, scatters the sub-batches
// across the group's live replicas, gathers under one absolute deadline,
// and reassembles results in input order — which makes the merge
// deterministic by construction: slot i of the output is always query
// i's result, computed by the same model code a single-process
// ReformulateTerms call would run, so the merged batch is bit-identical
// to the unsharded one for any topology and any sub-batch size
// (sharded_e2e_test.cc fingerprints it).
//
// Multiplexing: every request frame carries a router-unique request id
// in its payload, and responses are matched by that id — so one
// connection carries any number of in-flight sub-batches, and replies
// may arrive in any order across (and within) connections without
// mis-slotting the merge. There is no wire-format change; the id was
// always there (net/protocol.h), PR 9's router just never had more than
// one request outstanding per connection.
//
// Failover: replicas within a group are interchangeable (same model
// file), so a sub-batch whose transport fails — dead replica, refused,
// reset, EOF, or a stream that stops framing — is retried on the next
// untried replica of the same group, within the *same* absolute batch
// deadline. Only transport-class (kUnavailable) failures fail over;
// kDeadlineExceeded is never retried (the budget is spent), and typed
// remote errors are real answers, not transport loss. Each query's
// outcome is counted exactly once, at the final merge, no matter how
// many replicas its sub-batch visited.
//
// Typed degradation, never a hang: every wait is bounded by the batch
// deadline. A replica that stalls costs kDeadlineExceeded for exactly
// the queries still riding on it; a group whose every replica is dead
// costs kUnavailable; a replica that sends bytes that do not frame, do
// not decode, or carry an unknown request id costs one corrupt-frame
// count, its connection is closed without resync (the stream position
// is lost, so every later byte is suspect), and its in-flight
// sub-batches fail over like any transport loss. Healthy groups'
// queries are unaffected. Closed connections reconnect lazily on the
// next call that needs them.
//
// Thread-safety: none — a router is a single-threaded client by
// contract. Use one router per thread.

#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/result.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "server/server.h"
#include "shard/partition.h"

namespace kqr {

struct RouterOptions {
  /// Bound on each TCP connect attempt (also clipped by the caller's
  /// batch deadline when reconnecting lazily).
  double connect_timeout_seconds = 2.0;
  /// Applied when a call passes Deadline::Default().
  double default_deadline_seconds = 5.0;
  size_t max_frame_payload = kMaxFramePayload;
  /// Queries per scattered sub-batch. A group's queries are split into
  /// chunks of this size and the chunks spread round-robin across the
  /// group's replicas, pipelined (multiple chunks may be in flight on
  /// one connection). 0 sends each group's whole share as a single
  /// sub-batch — the PR 9 one-request-per-group wire shape, kept as the
  /// bench comparison arm. Results are bit-identical either way.
  size_t subbatch_queries = 8;

  Status Validate() const;
};

/// \brief Names one replica of one group, for control-plane calls
/// (health / stats / swap) that address a specific process.
struct ReplicaRef {
  size_t group = 0;
  size_t replica = 0;
};

/// \brief Point-in-time router accounting (kqr_shard_router_* metrics).
/// Query outcome counters (ok/unavailable/deadline_exceeded/
/// remote_errors) partition kqr_shard_router_queries_total: each query
/// is counted once at the final merge, never per attempt.
struct RouterStats {
  uint64_t batches = 0;
  uint64_t queries = 0;
  uint64_t scatters = 0;  ///< sub-batch send attempts (incl. retries)
  uint64_t ok = 0;
  uint64_t unavailable = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t remote_errors = 0;  ///< typed non-transport errors from shards
  uint64_t corrupt_frames = 0;
  uint64_t reconnects = 0;  ///< successful re-establishments after a loss
  uint64_t failovers = 0;   ///< sub-batches re-sent to another replica
};

/// \brief Scatter/gather client over a fleet of ShardServer processes.
class ShardRouter {
 public:
  /// \brief Builds a router over `topology` (validated; fixed shape —
  /// the partition function depends on the group count). Connections
  /// are attempted eagerly but a down replica does not fail
  /// construction — its traffic fails over to its group's other
  /// replicas (or degrades to kUnavailable when the whole group is
  /// down) until it comes back (lazy reconnect).
  static Result<std::unique_ptr<ShardRouter>> Connect(
      FleetTopology topology, RouterOptions options = {});

  /// \brief Deprecated flat-fleet form: builds a 1-replica-per-group
  /// topology. Migrate to Connect(FleetTopology, RouterOptions).
  [[deprecated(
      "build a FleetTopology (e.g. FleetTopology::SingleReplica) and "
      "call Connect(FleetTopology, RouterOptions)")]]
  static Result<std::unique_ptr<ShardRouter>> Connect(
      std::vector<ShardAddress> shards, RouterOptions options = {});

  ~ShardRouter();  // out-of-line: ReplicaConn/Metrics are .cc-private
  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// \brief Scatter/gather reformulation. Returns one Result per input
  /// query, in input order. Deadline::Default() uses the router's
  /// default_deadline_seconds.
  std::vector<ServeResult> ReformulateBatch(
      const std::vector<std::vector<TermId>>& queries, size_t k,
      Deadline deadline = Deadline::Default());

  [[deprecated("pass a kqr::Deadline")]]
  std::vector<ServeResult> ReformulateBatch(
      const std::vector<std::vector<TermId>>& queries, size_t k,
      double deadline_seconds);

  /// \brief Single-query convenience (a batch of one).
  ServeResult Reformulate(const std::vector<TermId>& terms, size_t k,
                          Deadline deadline = Deadline::Default());

  [[deprecated("pass a kqr::Deadline")]]
  ServeResult Reformulate(const std::vector<TermId>& terms, size_t k,
                          double deadline_seconds);

  Result<HealthResponse> Health(ReplicaRef target,
                                Deadline deadline = Deadline::Default());
  /// Stats JSON scraped from one replica.
  Result<std::string> Stats(ReplicaRef target,
                            Deadline deadline = Deadline::Default());
  /// \brief Asks one replica to swap to the model at `model_path`.
  Result<SwapResponse> SwapModel(ReplicaRef target,
                                 const std::string& model_path,
                                 Deadline deadline = Deadline::Default());

  [[deprecated("address replicas with a ReplicaRef{group, replica}")]]
  Result<HealthResponse> Health(size_t shard, double deadline_seconds);
  [[deprecated("address replicas with a ReplicaRef{group, replica}")]]
  Result<std::string> Stats(size_t shard, double deadline_seconds);
  [[deprecated("address replicas with a ReplicaRef{group, replica}")]]
  Result<SwapResponse> SwapModel(size_t shard,
                                 const std::string& model_path,
                                 double deadline_seconds);

  const FleetTopology& topology() const { return topology_; }
  size_t num_groups() const { return topology_.groups.size(); }
  size_t num_replicas() const { return topology_.num_replicas(); }
  size_t num_replicas(size_t group) const {
    return topology_.groups[group].size();
  }
  RouterStats stats() const;
  MetricsRegistry* metrics_registry() { return &registry_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct ReplicaConn;
  struct Metrics;
  struct Chunk;

  explicit ShardRouter(FleetTopology topology, RouterOptions options);

  /// Connects flat replica `conn` if it is not connected; counts
  /// re-establishments.
  Status EnsureConnected(size_t conn, Clock::time_point deadline);
  /// Closes `conn` (stream desync or transport loss).
  void Disconnect(size_t conn);
  /// Writes all of `wire`, bounded by `deadline`.
  Status WriteAll(size_t conn, const std::string& wire,
                  Clock::time_point deadline);
  /// One blocking request/response exchange on `conn` (health / stats /
  /// swap — reformulation uses the multiplexed gather path instead).
  Result<Frame> Call(size_t conn, FrameType request_type,
                     const std::string& payload, FrameType response_type,
                     Clock::time_point deadline);

  Result<size_t> FlatIndex(ReplicaRef target) const;
  Clock::time_point DeadlineFor(Deadline deadline) const;

  FleetTopology topology_;
  RouterOptions options_;
  MetricsRegistry registry_;
  std::unique_ptr<Metrics> metrics_;
  std::vector<ReplicaConn> conns_;  ///< flattened, group-major
  std::vector<size_t> group_base_;  ///< group -> first flat index
  std::vector<size_t> rr_;          ///< group -> round-robin cursor
  uint64_t next_request_id_ = 1;
};

}  // namespace kqr
