// ShardRouter: the client half of sharded serving (DESIGN.md §8).
//
// Holds one connection per shard, hash-partitions a batch of queries by
// ownership (shard/partition.h), scatters per-shard sub-requests,
// gathers under one absolute deadline, and reassembles results in input
// order — which makes the merge deterministic by construction: slot i of
// the output is always query i's result, computed by the same model code
// a single-process ReformulateTerms call would run, so the merged batch
// is bit-identical to the unsharded one (sharded_e2e_test.cc fingerprints
// it).
//
// Typed degradation, never a hang: every wait is bounded by the batch
// deadline. A shard that stalls costs kDeadlineExceeded for exactly its
// queries; a shard that is dead, refuses, resets, or EOFs costs
// kUnavailable; a shard that sends bytes that do not frame or do not
// decode costs kUnavailable plus one corrupt-frame count, and its
// connection is closed without resync (the stream position is lost, so
// every later byte is suspect). Healthy shards' queries are unaffected.
// Closed connections reconnect lazily on the next call that needs them.
//
// Thread-safety: none — a router is a single-threaded client by
// contract (one outstanding request per shard connection is what makes
// request/response matching trivial). Use one router per thread.

#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "server/server.h"
#include "shard/partition.h"

namespace kqr {

struct ShardAddress {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

struct RouterOptions {
  /// Bound on each TCP connect attempt (also clipped by the caller's
  /// batch deadline when reconnecting lazily).
  double connect_timeout_seconds = 2.0;
  /// Applied when a call passes deadline_seconds = 0.
  double default_deadline_seconds = 5.0;
  size_t max_frame_payload = kMaxFramePayload;

  Status Validate() const;
};

/// \brief Point-in-time router accounting (kqr_shard_router_* metrics).
/// Query outcome counters partition kqr_shard_router_queries_total.
struct RouterStats {
  uint64_t batches = 0;
  uint64_t queries = 0;
  uint64_t scatters = 0;  ///< per-shard sub-requests sent (or attempted)
  uint64_t ok = 0;
  uint64_t unavailable = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t remote_errors = 0;  ///< typed non-transport errors from shards
  uint64_t corrupt_frames = 0;
  uint64_t reconnects = 0;  ///< successful re-establishments after a loss
};

/// \brief Scatter/gather client over a fleet of ShardServer processes.
class ShardRouter {
 public:
  /// \brief Builds a router over `shards` (fixed fleet size; the
  /// partition function depends on it). Connections are attempted
  /// eagerly but a down shard does not fail construction — its queries
  /// degrade to kUnavailable until it comes back (lazy reconnect).
  static Result<std::unique_ptr<ShardRouter>> Connect(
      std::vector<ShardAddress> shards, RouterOptions options = {});

  ~ShardRouter();  // out-of-line: ShardConn/Metrics are .cc-private
  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// \brief Scatter/gather reformulation. Returns one Result per input
  /// query, in input order. deadline_seconds = 0 uses the router default.
  std::vector<ServeResult> ReformulateBatch(
      const std::vector<std::vector<TermId>>& queries, size_t k,
      double deadline_seconds = 0.0);

  /// \brief Single-query convenience (a batch of one).
  ServeResult Reformulate(const std::vector<TermId>& terms, size_t k,
                          double deadline_seconds = 0.0);

  Result<HealthResponse> Health(size_t shard,
                                double deadline_seconds = 0.0);
  /// Stats JSON scraped from one shard.
  Result<std::string> Stats(size_t shard, double deadline_seconds = 0.0);
  /// \brief Asks one shard to swap to the model at `model_path`.
  Result<SwapResponse> SwapModel(size_t shard,
                                 const std::string& model_path,
                                 double deadline_seconds = 0.0);

  size_t num_shards() const;
  RouterStats stats() const;
  MetricsRegistry* metrics_registry() { return &registry_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct ShardConn;
  struct Metrics;

  explicit ShardRouter(RouterOptions options);

  /// Connects `shard` if it is not connected; counts re-establishments.
  Status EnsureConnected(size_t shard, Clock::time_point deadline);
  /// Closes `shard`'s connection (stream desync or transport loss).
  void Disconnect(size_t shard);
  /// Writes all of `wire`, bounded by `deadline`.
  Status WriteAll(size_t shard, const std::string& wire,
                  Clock::time_point deadline);
  /// One blocking request/response exchange on `shard` (health / stats /
  /// swap — reformulation uses the multiplexed gather path instead).
  Result<Frame> Call(size_t shard, FrameType request_type,
                     const std::string& payload, FrameType response_type,
                     Clock::time_point deadline);

  Clock::time_point DeadlineFor(double deadline_seconds) const;

  RouterOptions options_;
  MetricsRegistry registry_;
  std::unique_ptr<Metrics> metrics_;
  std::vector<ShardConn> conns_;
  uint64_t next_request_id_ = 1;
};

}  // namespace kqr
