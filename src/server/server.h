// kqr::Server — the asynchronous, batching serving front-end over an
// immutable ServingModel (DESIGN.md §7 "Serving front-end").
//
// Systems serving keyword search over structured data at scale put an
// admission-controlled query front-end between clients and the engine;
// this is ours. Clients Submit requests; a bounded MPMC queue applies
// admission control (reject with kUnavailable when full — load shedding,
// never unbounded buffering); a worker pool dequeues micro-batches,
// dedups lazy term-cache preparation across each batch
// (ServingModel::PrepareTermsBatch), serves every request with a warm
// per-worker RequestContext, and completes the caller's future or
// callback. Per-request deadlines propagate into the online pipeline
// through RequestContext and are checked between stages — an expired
// request fails with kDeadlineExceeded, never a partial result.
//
// Results are bit-identical to direct Reformulator/ServingModel calls:
// batching changes scheduling, never answers (server_test.cc proves it).

#pragma once

#include <chrono>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/mutex.h"
#include "common/result.h"
#include "core/serving_model.h"
#include "obs/metrics.h"

namespace kqr {

struct ServerOptions {
  /// Worker threads serving dequeued requests.
  size_t num_workers = 4;
  /// Admission bound: requests beyond this many queued are shed with
  /// kUnavailable instead of buffered (bounded memory, bounded latency).
  size_t queue_capacity = 256;
  /// Micro-batch bound: a worker dequeues up to this many requests at
  /// once and shares one term-preparation pass across them.
  size_t max_batch = 8;
  /// Relative deadline applied to requests that do not carry their own;
  /// 0 disables the default deadline.
  double default_deadline_seconds = 0.0;

  /// \brief Rejects configurations that cannot serve: zero workers, zero
  /// queue capacity, zero batch size, negative deadline.
  Status Validate() const;
};

/// \brief One unit of admission: pre-resolved query terms plus ranking
/// depth and an optional deadline.
struct ServerRequest {
  std::vector<TermId> terms;
  size_t k = 10;
  /// Deadline for this request. Deadline::Default() defers to
  /// `deadline_seconds` below (and through it to the server default);
  /// anything else wins over both.
  Deadline deadline{};
  /// Legacy relative form, consulted only when `deadline` is default.
  /// Seconds from Submit time; 0 = use the server default; negative is
  /// rejected with kInvalidArgument. Prefer `deadline`.
  double deadline_seconds = 0.0;
};

using ServeResult = Result<std::vector<ReformulatedQuery>>;
/// Completion callback; runs on a worker thread (or inline on the
/// submitting thread when the request is shed at admission).
using ServeCallback = std::function<void(ServeResult)>;

/// Pre-resolved handles for the server's metric surface, registered in
/// the model's MetricsRegistry (same names-in-registry convention as
/// ServingMetrics; all-null when metrics are disabled).
struct ServerMetrics {
  Counter* submitted = nullptr;  ///< kqr_server_submitted_total
  Counter* shed = nullptr;       ///< kqr_server_shed_total
  Counter* deadline_exceeded =
      nullptr;                   ///< kqr_server_deadline_exceeded_total
  Counter* completed = nullptr;  ///< kqr_server_completed_total (ok only)
  Counter* errors = nullptr;     ///< kqr_server_errors_total (other errors)
  Counter* batch_terms_prepared =
      nullptr;  ///< kqr_server_batch_terms_prepared_total
  Gauge* queue_depth = nullptr;  ///< kqr_server_queue_depth
  LatencyHistogram* batch_size = nullptr;  ///< kqr_server_batch_size
  LatencyHistogram* queue_wait_seconds =
      nullptr;  ///< kqr_server_queue_wait_seconds

  static ServerMetrics ResolveIn(MetricsRegistry* registry);
};

/// \brief Batched async front-end over one shared ServingModel.
///
/// Thread-safety: Submit/Reformulate are safe from any number of threads
/// concurrently with each other and with Drain. Every admitted request
/// is completed (served, or failed with a typed Status) before Drain
/// returns, and the destructor drains — no future is ever abandoned.
class Server {
 public:
  /// \brief Validates `options`, claims the model's single front-end
  /// slot, registers the server metrics in the model's registry, and
  /// starts the worker pool. Fails kAlreadyExists while another
  /// (undrained) Server fronts the same model — two front-ends would
  /// double-count into one set of kqr_server_* metrics. Drain the old
  /// server first; Create-after-Drain on the same model succeeds.
  static Result<std::unique_ptr<Server>> Create(
      std::shared_ptr<const ServingModel> model, ServerOptions options = {});

  ~Server();  // drains
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// \brief Asynchronous submission. The returned future completes with
  /// the ranking or a typed error:
  ///   kUnavailable       queue full (load shed) or server draining
  ///   kDeadlineExceeded  deadline passed while queued or mid-pipeline
  ///   kInvalidArgument   negative deadline, bad terms/k
  ///   kNotFound          a position has no candidate states
  /// Shed requests complete immediately; nothing is partially served.
  std::future<ServeResult> Submit(ServerRequest request);

  /// \brief Callback form of Submit. `callback` runs exactly once: on a
  /// worker thread after serving, or inline when shed at admission.
  void Submit(ServerRequest request, ServeCallback callback);

  /// \brief Blocking convenience wrapper: Submit + wait. Do not call
  /// from inside a ServeCallback (it would deadlock a worker on itself).
  /// Deadline::Default() uses the server's default deadline.
  ServeResult Reformulate(const std::vector<TermId>& terms, size_t k,
                          Deadline deadline = Deadline::Default());

  [[deprecated("pass a kqr::Deadline")]]
  ServeResult Reformulate(const std::vector<TermId>& terms, size_t k,
                          double deadline_seconds);

  /// \brief Graceful shutdown: stop admitting (new Submits are shed with
  /// kUnavailable), serve everything already queued, complete every
  /// outstanding future, join the workers. Idempotent.
  void Drain();

  bool draining() const;
  /// Requests currently queued (not yet dequeued into a batch).
  size_t queue_depth() const;
  const ServerOptions& options() const { return options_; }
  const ServingModel& model() const { return *model_; }

 private:
  Server(std::shared_ptr<const ServingModel> model, ServerOptions options);

  struct Pending {
    ServerRequest request;
    /// Absolute deadline (epoch = none), fixed at admission.
    std::chrono::steady_clock::time_point deadline{};
    std::chrono::steady_clock::time_point enqueued{};
    ServeCallback done;
  };

  void WorkerLoop();
  /// Serves one dequeued batch on the calling worker thread.
  void ServeBatch(std::vector<Pending>* batch, RequestContext* ctx,
                  std::vector<TermId>* term_scratch);

  std::shared_ptr<const ServingModel> model_;
  ServerOptions options_;
  ServerMetrics metrics_;

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<Pending> queue_ GUARDED_BY(mu_);
  bool draining_ GUARDED_BY(mu_) = false;
  /// Joined exactly once: the first Drain swaps the vector out under mu_
  /// and joins outside the lock, so concurrent Drains never race on the
  /// same std::thread objects.
  std::vector<std::thread> workers_ GUARDED_BY(mu_);
};

}  // namespace kqr
