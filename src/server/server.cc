#include "server/server.h"

#include <algorithm>
#include <utility>

namespace kqr {

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point DeadlineFor(double relative_seconds,
                              Clock::time_point now) {
  if (relative_seconds <= 0.0) return Clock::time_point{};
  return now + std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double>(relative_seconds));
}

}  // namespace

Status ServerOptions::Validate() const {
  if (num_workers == 0) {
    return Status::InvalidArgument("num_workers must be positive");
  }
  if (queue_capacity == 0) {
    return Status::InvalidArgument(
        "queue_capacity must be positive (a zero-capacity queue sheds "
        "everything)");
  }
  if (max_batch == 0) {
    return Status::InvalidArgument("max_batch must be positive");
  }
  if (default_deadline_seconds < 0.0) {
    return Status::InvalidArgument(
        "default_deadline_seconds must be >= 0 (0 disables)");
  }
  return Status::OK();
}

ServerMetrics ServerMetrics::ResolveIn(MetricsRegistry* registry) {
  ServerMetrics m;
  if (registry == nullptr) return m;
  m.submitted = registry->GetCounter("kqr_server_submitted_total");
  m.shed = registry->GetCounter("kqr_server_shed_total");
  m.deadline_exceeded =
      registry->GetCounter("kqr_server_deadline_exceeded_total");
  m.completed = registry->GetCounter("kqr_server_completed_total");
  m.errors = registry->GetCounter("kqr_server_errors_total");
  m.batch_terms_prepared =
      registry->GetCounter("kqr_server_batch_terms_prepared_total");
  m.queue_depth = registry->GetGauge("kqr_server_queue_depth");
  m.batch_size =
      registry->GetHistogram("kqr_server_batch_size", DefaultCountBounds());
  m.queue_wait_seconds =
      registry->GetHistogram("kqr_server_queue_wait_seconds");
  return m;
}

Result<std::unique_ptr<Server>> Server::Create(
    std::shared_ptr<const ServingModel> model, ServerOptions options) {
  if (model == nullptr) {
    return Status::InvalidArgument("server needs a model to serve");
  }
  KQR_RETURN_NOT_OK(options.Validate());
  // Claim last: everything before this point is side-effect-free, so a
  // rejected Create never leaks a held claim.
  if (!model->TryAcquireServerClaim()) {
    return Status::AlreadyExists(
        "a Server already fronts this ServingModel; Drain it before "
        "creating another");
  }
  return std::unique_ptr<Server>(new Server(std::move(model), options));
}

Server::Server(std::shared_ptr<const ServingModel> model,
               ServerOptions options)
    : model_(std::move(model)),
      options_(options),
      metrics_(ServerMetrics::ResolveIn(model_->metrics_registry())) {
  workers_.reserve(options_.num_workers);
  for (size_t w = 0; w < options_.num_workers; ++w) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

Server::~Server() { Drain(); }

void Server::Submit(ServerRequest request, ServeCallback callback) {
  if (metrics_.submitted != nullptr) metrics_.submitted->Increment();

  if (request.deadline_seconds < 0.0) {
    callback(Status::InvalidArgument("deadline_seconds must be >= 0"));
    return;
  }
  // Shed decisions are made under the lock but the callback runs outside
  // it: user callbacks may re-enter the server (Submit from a completion)
  // and must never run while mu_ is held.
  const char* shed_reason = nullptr;
  {
    MutexLock lock(&mu_);
    if (draining_) {
      shed_reason = "server is draining";
    } else if (queue_.size() >= options_.queue_capacity) {
      // Admission control: shed instead of buffering without bound. The
      // caller sees a typed kUnavailable immediately and can back off.
      // Rejecting must be cheaper than serving — the shed path does no
      // clock reads, no allocation, no queue-entry work.
      shed_reason = "request queue is full (load shed)";
    } else {
      const Clock::time_point now = Clock::now();
      Pending pending;
      if (!request.deadline.is_default()) {
        // An explicit Deadline wins over the legacy relative field and
        // the server default alike.
        pending.deadline = request.deadline.when();
      } else {
        pending.deadline = DeadlineFor(
            request.deadline_seconds > 0.0
                ? request.deadline_seconds
                : options_.default_deadline_seconds,
            now);
      }
      pending.enqueued = now;
      pending.request = std::move(request);
      pending.done = std::move(callback);
      queue_.push_back(std::move(pending));
      if (metrics_.queue_depth != nullptr) {
        metrics_.queue_depth->Set(static_cast<double>(queue_.size()));
      }
    }
  }
  if (shed_reason != nullptr) {
    if (metrics_.shed != nullptr) metrics_.shed->Increment();
    callback(Status::Unavailable(shed_reason));
    return;
  }
  cv_.NotifyOne();
}

std::future<ServeResult> Server::Submit(ServerRequest request) {
  auto promise = std::make_shared<std::promise<ServeResult>>();
  std::future<ServeResult> future = promise->get_future();
  Submit(std::move(request),
         [promise](ServeResult result) {
           promise->set_value(std::move(result));
         });
  return future;
}

ServeResult Server::Reformulate(const std::vector<TermId>& terms, size_t k,
                                Deadline deadline) {
  ServerRequest request;
  request.terms = terms;
  request.k = k;
  request.deadline = deadline;
  return Submit(std::move(request)).get();
}

ServeResult Server::Reformulate(const std::vector<TermId>& terms, size_t k,
                                double deadline_seconds) {
  ServerRequest request;
  request.terms = terms;
  request.k = k;
  request.deadline_seconds = deadline_seconds;
  return Submit(std::move(request)).get();
}

void Server::Drain() {
  // Claim the workers under the lock, join outside it. The swap makes
  // Drain safe to call concurrently (and idempotent): exactly one caller
  // takes a non-empty vector and joins; every other caller — including
  // the destructor racing an explicit Drain — sees an empty vector and
  // returns once the flag is set. Joining under mu_ would also deadlock:
  // workers need the lock to drain the queue.
  std::vector<std::thread> workers;
  {
    MutexLock lock(&mu_);
    draining_ = true;
    workers.swap(workers_);
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers) {
    if (worker.joinable()) worker.join();
  }
  // The joining caller — the one that took the non-empty vector — is the
  // only one that releases the model's front-end claim, and it does so
  // after the workers are gone, so a successor Server never overlaps
  // this one's worker pool.
  if (!workers.empty()) model_->ReleaseServerClaim();
}

bool Server::draining() const {
  MutexLock lock(&mu_);
  return draining_;
}

size_t Server::queue_depth() const {
  MutexLock lock(&mu_);
  return queue_.size();
}

void Server::WorkerLoop() {
  // Per-worker warm scratch: the whole point of a worker pool is that
  // trellis/HMM/decoder buffers stay warm across every request the
  // worker serves (identical results either way). Metric flushes are
  // deferred so one batch costs one registry flush, not one per request.
  RequestContext ctx;
  ctx.defer_metrics_flush = true;
  std::vector<TermId> term_scratch;
  std::vector<Pending> batch;

  for (;;) {
    batch.clear();
    {
      MutexLock lock(&mu_);
      // Hand-rolled wait loop (not the predicate overload): the capability
      // analysis checks lambda bodies without the enclosing lock context,
      // so the predicate form would flag draining_/queue_ as unguarded.
      while (!draining_ && queue_.empty()) cv_.Wait(&mu_);
      if (queue_.empty()) return;  // draining and nothing left to serve
      // Micro-batch: take up to max_batch requests in one queue
      // round-trip. FIFO order; admission order is completion order
      // within one worker.
      const size_t take = std::min(options_.max_batch, queue_.size());
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      if (metrics_.queue_depth != nullptr) {
        metrics_.queue_depth->Set(static_cast<double>(queue_.size()));
      }
    }
    ServeBatch(&batch, &ctx, &term_scratch);
  }
}

void Server::ServeBatch(std::vector<Pending>* batch, RequestContext* ctx,
                        std::vector<TermId>* term_scratch) {
  if (metrics_.batch_size != nullptr) {
    metrics_.batch_size->Observe(static_cast<double>(batch->size()));
  }

  // Every per-request metric event below stages into the worker context's
  // block or these locals; the registry is touched once per batch at the
  // bottom, not once per event.
  RequestMetricsBlock& mb = ctx->metrics_block;
  uint64_t completed = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t errors = 0;

  // One shared preparation pass across the batch: terms (and candidate
  // expansions) shared by several requests are prepared once, instead of
  // each request paying its own double-checked misses. Skipped entirely
  // for eager (fully prepared) models.
  if (!model_->fully_prepared()) {
    term_scratch->clear();
    for (const Pending& p : *batch) {
      // Respect the cheapest deadline rule: a request already past its
      // deadline contributes no preparation work.
      if (p.deadline != Clock::time_point{} &&
          Clock::now() >= p.deadline) {
        continue;
      }
      term_scratch->insert(term_scratch->end(), p.request.terms.begin(),
                           p.request.terms.end());
    }
    const size_t prepared = model_->PrepareTermsBatch(*term_scratch, &mb);
    if (prepared > 0 && metrics_.batch_terms_prepared != nullptr) {
      metrics_.batch_terms_prepared->Increment(prepared);
    }
  }

  for (Pending& p : *batch) {
    const Clock::time_point start = Clock::now();
    mb.Observe(metrics_.queue_wait_seconds,
               std::chrono::duration<double>(start - p.enqueued).count());
    // Dequeue-time deadline gate: a request that expired while queued is
    // failed without touching the pipeline at all.
    if (p.deadline != Clock::time_point{} && start >= p.deadline) {
      ++deadline_exceeded;
      p.done(Status::DeadlineExceeded("deadline passed while queued"));
      continue;
    }

    ctx->deadline = p.deadline;  // propagates into the stage gates
    ServeResult result =
        model_->ReformulateTerms(p.request.terms, p.request.k, ctx);
    ctx->deadline = {};

    if (result.ok()) {
      ++completed;
    } else if (result.status().IsDeadlineExceeded()) {
      ++deadline_exceeded;
    } else {
      ++errors;
    }
    p.done(std::move(result));
  }

  // One registry flush for the whole batch (the pipeline deferred its
  // per-request flushes because defer_metrics_flush is set).
  model_->FlushRequestMetrics(ctx);
  if (completed != 0 && metrics_.completed != nullptr) {
    metrics_.completed->Increment(completed);
  }
  if (deadline_exceeded != 0 && metrics_.deadline_exceeded != nullptr) {
    metrics_.deadline_exceeded->Increment(deadline_exceeded);
  }
  if (errors != 0 && metrics_.errors != nullptr) {
    metrics_.errors->Increment(errors);
  }
}

}  // namespace kqr
