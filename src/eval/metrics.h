// Evaluation metrics: Precision@N (Fig. 5), result size and query distance
// (Table III).

#pragma once

#include <vector>

#include "closeness/closeness.h"
#include "core/serving_model.h"
#include "core/reformulator.h"

namespace kqr {

/// \brief Precision at cutoff N for one ranked judgment list: the fraction
/// of the first N slots holding a relevant result. Rankings shorter than N
/// count the missing slots as irrelevant (an algorithm that returns fewer
/// suggestions earns less).
double PrecisionAtN(const std::vector<bool>& judgments, size_t n);

/// \brief Mean of PrecisionAtN over many queries' judgment lists.
double MeanPrecisionAtN(const std::vector<std::vector<bool>>& per_query,
                        size_t n);

/// \brief Table III "Result size": mean keyword-search result-tree count
/// (Def. 3 trees, via ServingModel::CountTrees) over every
/// reformulated query of every input query.
double MeanResultSize(
    const ServingModel& model,
    const std::vector<std::vector<ReformulatedQuery>>& per_query);

/// \brief Table III "Query distance": mean over reformulated queries of
/// the mean shortest TAT-graph distance between corresponding term pairs
/// (original[i], reformulated[i]). Identical terms contribute 0; deleted
/// or unreachable positions are skipped.
double MeanQueryDistance(
    const TatGraph& graph,
    const std::vector<std::vector<TermId>>& originals,
    const std::vector<std::vector<ReformulatedQuery>>& per_query,
    size_t max_distance = 8);

}  // namespace kqr

