#include "eval/metrics.h"

#include "closeness/path_search.h"
#include "common/logging.h"

namespace kqr {

double PrecisionAtN(const std::vector<bool>& judgments, size_t n) {
  if (n == 0) return 0.0;
  size_t relevant = 0;
  for (size_t i = 0; i < n && i < judgments.size(); ++i) {
    if (judgments[i]) ++relevant;
  }
  return static_cast<double>(relevant) / static_cast<double>(n);
}

double MeanPrecisionAtN(const std::vector<std::vector<bool>>& per_query,
                        size_t n) {
  if (per_query.empty()) return 0.0;
  double sum = 0;
  for (const auto& judgments : per_query) {
    sum += PrecisionAtN(judgments, n);
  }
  return sum / static_cast<double>(per_query.size());
}

double MeanResultSize(
    const ServingModel& model,
    const std::vector<std::vector<ReformulatedQuery>>& per_query) {
  size_t queries = 0;
  double sum = 0;
  for (const auto& ranking : per_query) {
    for (const ReformulatedQuery& q : ranking) {
      std::vector<TermId> kept;
      for (TermId t : q.terms) {
        if (t != kInvalidTermId) kept.push_back(t);
      }
      sum += static_cast<double>(model.CountTrees(kept));
      ++queries;
    }
  }
  return queries == 0 ? 0.0 : sum / static_cast<double>(queries);
}

double MeanQueryDistance(
    const TatGraph& graph,
    const std::vector<std::vector<TermId>>& originals,
    const std::vector<std::vector<ReformulatedQuery>>& per_query,
    size_t max_distance) {
  KQR_CHECK(originals.size() == per_query.size());
  double query_sum = 0;
  size_t query_count = 0;
  for (size_t qi = 0; qi < per_query.size(); ++qi) {
    const std::vector<TermId>& original = originals[qi];
    for (const ReformulatedQuery& q : per_query[qi]) {
      if (q.terms.size() != original.size()) continue;
      double pair_sum = 0;
      size_t pair_count = 0;
      for (size_t i = 0; i < original.size(); ++i) {
        TermId t = q.terms[i];
        if (t == kInvalidTermId) continue;
        if (t == original[i]) {
          ++pair_count;  // distance 0
          continue;
        }
        int d = ShortestDistance(graph, graph.NodeOfTerm(original[i]),
                                 graph.NodeOfTerm(t), max_distance);
        if (d < 0) continue;  // unreachable: skip the pair
        pair_sum += static_cast<double>(d);
        ++pair_count;
      }
      if (pair_count == 0) continue;
      query_sum += pair_sum / static_cast<double>(pair_count);
      ++query_count;
    }
  }
  return query_count == 0 ? 0.0
                          : query_sum / static_cast<double>(query_count);
}

}  // namespace kqr
