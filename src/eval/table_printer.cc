#include "eval/table_printer.h"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace kqr {

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& out) const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : "";
      out << " " << std::left << std::setw(static_cast<int>(widths[i]))
          << cell << " |";
    }
    out << "\n";
  };
  auto print_sep = [&]() {
    out << "+";
    for (size_t w : widths) {
      out << std::string(w + 2, '-') << "+";
    }
    out << "\n";
  };
  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

std::string FormatDouble(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string FormatSeconds(double seconds) {
  std::ostringstream os;
  os << std::fixed;
  if (seconds >= 1.0) {
    os << std::setprecision(2) << seconds << " s";
  } else if (seconds >= 1e-3) {
    os << std::setprecision(2) << seconds * 1e3 << " ms";
  } else {
    os << std::setprecision(1) << seconds * 1e6 << " us";
  }
  return os.str();
}

}  // namespace kqr
