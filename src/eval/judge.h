// TopicJudge: the mechanized stand-in for the paper's three human
// assessors (Sec. VI-B). Relevance of a reformulated query w.r.t. the
// input — "the similarity and semantic closeness of reformulated ones with
// respect to the input query" — is judged against the corpus's generative
// ground truth: each position's substitute must share a latent topic with
// the original term, and the query as a whole must be cohesive (non-zero
// keyword-search result coverage). See DESIGN.md §1 for the substitution
// argument.

#pragma once

#include <vector>

#include "core/serving_model.h"
#include "core/reformulator.h"
#include "datagen/dblp_gen.h"
#include "search/keyword_search.h"

namespace kqr {

struct JudgeOptions {
  /// Fraction of kept positions that must be topically aligned.
  double min_aligned_fraction = 1.0;
  /// Require the reformulated query to return at least one search result.
  bool require_cohesion = true;
  /// Search configuration for the cohesion check: tighter than the
  /// engine's user-facing search. Radius 2 with a root-degree cap demands
  /// a *specific* connection (a shared paper or author), not mere
  /// co-location at a hub venue — a reformulated query whose terms only
  /// ever co-appear at a conference is not a meaningful joint query.
  SearchOptions cohesion_search{.max_radius = 2,
                                .top_k = 0,
                                .max_root_degree = 64,
                                .max_expand_degree = 64};
  /// Judge positions against the *query intent* (the majority topic(s) of
  /// the whole original query) rather than per-position term topics. This
  /// matches how the paper's human assessors judged whole queries: a
  /// reformulation that coherently shifts inside the user's topic is
  /// relevant even if one substitute is not a synonym of its own slot.
  bool use_query_intent = true;
};

/// \brief Ground-truth relevance judgments over one corpus/engine pair.
class TopicJudge {
 public:
  TopicJudge(const DblpCorpus& corpus, const ServingModel& model,
             JudgeOptions options = {})
      : corpus_(corpus), model_(model), options_(options) {}

  /// \brief Latent topics of a term node (by surface text + generation
  /// record). Empty for pure-noise terms.
  std::vector<size_t> TopicsOfTerm(TermId term) const;

  /// \brief Do two terms share at least one latent topic?
  bool TopicallyAligned(TermId a, TermId b) const;

  /// \brief The intent topics of a query: the latent topics shared by the
  /// largest number of its terms (majority vote; ties keep all winners).
  std::vector<size_t> QueryIntent(const std::vector<TermId>& query) const;

  /// \brief Relevance of a reformulated query w.r.t. the resolved input.
  bool IsRelevant(const std::vector<TermId>& original,
                  const ReformulatedQuery& reformulated) const;

  /// \brief Per-result judgments for a ranked list, in rank order.
  std::vector<bool> JudgeRanking(
      const std::vector<TermId>& original,
      const std::vector<ReformulatedQuery>& ranking) const;

 private:
  const DblpCorpus& corpus_;
  const ServingModel& model_;
  JudgeOptions options_;
};

}  // namespace kqr

