// TablePrinter: fixed-width ASCII tables shared by every bench binary, so
// the harness output visually matches the paper's tables/series.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace kqr {

/// \brief Column-aligned table with a header row and separators.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells);
  void Print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// \brief Fixed-precision double rendering for table cells.
std::string FormatDouble(double value, int precision = 3);

/// \brief "12.3 ms" / "456 µs" style duration rendering.
std::string FormatSeconds(double seconds);

}  // namespace kqr

