// Shared experiment scaffolding for the bench binaries: corpus + model
// construction and query-set sampling matching the paper's workloads
// (Sec. VI: 10 mixed-format queries; 400 sampled queries of lengths 1–8
// from author/title/venue fields; 19 title-derived queries).

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/engine_builder.h"
#include "datagen/dblp_gen.h"

namespace kqr {

/// \brief A corpus and the serving model built over it. The model owns
/// the database; `corpus.db` is moved-from and must not be touched, but
/// the corpus's ground-truth vectors stay valid for the judge.
struct ExperimentContext {
  DblpCorpus corpus;
  std::shared_ptr<const ServingModel> model;
};

/// \brief Builds the default experiment context (deterministic).
Result<ExperimentContext> MakeDblpContext(DblpOptions dblp = {},
                                          EngineOptions engine = {});

/// \brief Kinds of keywords a sampled query may draw, matching the paper's
/// "author name, paper title and conference name" fields.
enum class KeywordSource { kTitleTerm, kAuthorName, kVenueName };

struct QuerySamplerOptions {
  /// Title terms must appear in at least this many tuples to be sampled
  /// (rare typo-like terms make degenerate queries).
  size_t min_title_docfreq = 3;
  /// Relative draw weights for title/author/venue keywords.
  double title_weight = 0.7;
  double author_weight = 0.2;
  double venue_weight = 0.1;
};

/// \brief Samples resolvable keyword queries from the corpus fields.
///
/// When constructed with the corpus's ground truth, mixed-set queries are
/// *coherent*: all keywords of one query share an intent topic, like the
/// paper's real user queries ("Christian S. Jensen spatio-temporal").
class QuerySampler {
 public:
  QuerySampler(const ServingModel& model, uint64_t seed,
               QuerySamplerOptions options = {},
               const DblpCorpus* corpus = nullptr);

  /// \brief One query of exactly `length` distinct terms (fields mixed,
  /// topics unconstrained — used by the timing sweeps).
  std::vector<TermId> SampleQuery(size_t length);

  /// \brief `count` queries of the given length.
  std::vector<std::vector<TermId>> SampleQueries(size_t count,
                                                 size_t length);

  /// \brief The Fig. 5-style mixed test set: `count` queries of lengths
  /// 2–3 mixing topical words with author/venue names. Coherent (single
  /// intent topic per query) when the sampler has corpus ground truth.
  std::vector<std::vector<TermId>> SampleMixedSet(size_t count);

  /// \brief The Table III-style set: `count` queries, each the informative
  /// terms (2–4) of one sampled paper title.
  std::vector<std::vector<TermId>> SampleTitleQueries(size_t count);

 private:
  TermId SampleTerm(KeywordSource source);
  /// Term of `source` kind belonging to latent topic `topic`; falls back
  /// to an unconstrained draw when the topic has no such terms.
  TermId SampleTopicTerm(KeywordSource source, size_t topic);

  const ServingModel& model_;
  const DblpCorpus* corpus_;
  Rng rng_;
  QuerySamplerOptions options_;
  std::vector<TermId> title_terms_;
  std::vector<TermId> author_terms_;
  std::vector<TermId> venue_terms_;
  std::vector<std::vector<TermId>> paper_title_terms_;  // per paper row
  // Per-topic pools (populated only when corpus ground truth is given).
  std::vector<std::vector<TermId>> topic_title_terms_;
  std::vector<std::vector<TermId>> topic_author_terms_;
  std::vector<std::vector<TermId>> topic_venue_terms_;
};

}  // namespace kqr

