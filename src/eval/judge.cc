#include "eval/judge.h"

#include <algorithm>
#include <unordered_map>

namespace kqr {

std::vector<size_t> TopicJudge::TopicsOfTerm(TermId term) const {
  return corpus_.TopicsOf(std::string(model_.vocab().text(term)));
}

bool TopicJudge::TopicallyAligned(TermId a, TermId b) const {
  if (a == b) return true;
  std::vector<size_t> ta = TopicsOfTerm(a);
  std::vector<size_t> tb = TopicsOfTerm(b);
  for (size_t t : ta) {
    if (std::find(tb.begin(), tb.end(), t) != tb.end()) return true;
  }
  return false;
}

std::vector<size_t> TopicJudge::QueryIntent(
    const std::vector<TermId>& query) const {
  std::unordered_map<size_t, size_t> votes;
  for (TermId t : query) {
    if (t == kInvalidTermId) continue;
    for (size_t topic : TopicsOfTerm(t)) ++votes[topic];
  }
  size_t best = 0;
  for (const auto& [topic, count] : votes) best = std::max(best, count);
  std::vector<size_t> intent;
  for (const auto& [topic, count] : votes) {
    if (count == best) intent.push_back(topic);
  }
  std::sort(intent.begin(), intent.end());
  return intent;
}

bool TopicJudge::IsRelevant(const std::vector<TermId>& original,
                            const ReformulatedQuery& reformulated) const {
  if (reformulated.terms.size() != original.size()) return false;
  if (reformulated.is_identity) return false;  // not a *new* query

  std::vector<size_t> intent;
  if (options_.use_query_intent) intent = QueryIntent(original);

  auto matches_intent = [&](TermId t) {
    std::vector<size_t> topics = TopicsOfTerm(t);
    for (size_t topic : topics) {
      if (std::find(intent.begin(), intent.end(), topic) != intent.end()) {
        return true;
      }
    }
    return false;
  };

  size_t kept = 0;
  size_t aligned = 0;
  for (size_t i = 0; i < original.size(); ++i) {
    TermId t = reformulated.terms[i];
    if (t == kInvalidTermId) continue;  // deleted position
    ++kept;
    if (options_.use_query_intent) {
      // Keeping the original term is always acceptable; substitutes must
      // stay inside the query's intent topics.
      if (t == original[i] || matches_intent(t)) ++aligned;
    } else if (TopicallyAligned(original[i], t)) {
      ++aligned;
    }
  }
  if (kept == 0) return false;
  if (static_cast<double>(aligned) / static_cast<double>(kept) <
      options_.min_aligned_fraction) {
    return false;
  }

  if (options_.require_cohesion) {
    std::vector<TermId> kept_terms;
    for (TermId t : reformulated.terms) {
      if (t != kInvalidTermId) kept_terms.push_back(t);
    }
    KeywordSearch strict(model_.graph(), model_.index(),
                         options_.cohesion_search);
    if (strict.CountResults(model_.QueryFromTerms(kept_terms)) == 0) {
      return false;
    }
  }
  return true;
}

std::vector<bool> TopicJudge::JudgeRanking(
    const std::vector<TermId>& original,
    const std::vector<ReformulatedQuery>& ranking) const {
  std::vector<bool> out;
  out.reserve(ranking.size());
  for (const ReformulatedQuery& q : ranking) {
    out.push_back(IsRelevant(original, q));
  }
  return out;
}

}  // namespace kqr
