#include "eval/experiment.h"

#include <algorithm>

#include "common/logging.h"

namespace kqr {

Result<ExperimentContext> MakeDblpContext(DblpOptions dblp,
                                          EngineOptions engine_options) {
  ExperimentContext ctx;
  KQR_ASSIGN_OR_RETURN(ctx.corpus, GenerateDblp(dblp));
  KQR_ASSIGN_OR_RETURN(
      ctx.model,
      EngineBuilder(engine_options).Build(std::move(ctx.corpus.db)));
  return ctx;
}

QuerySampler::QuerySampler(const ServingModel& model, uint64_t seed,
                           QuerySamplerOptions options,
                           const DblpCorpus* corpus)
    : model_(model), corpus_(corpus), rng_(seed), options_(options) {
  const Vocabulary& vocab = model.vocab();
  const InvertedIndex& index = model.index();

  // Classify vocabulary terms by the role/table of their field.
  for (TermId t = 0; t < vocab.size(); ++t) {
    const FieldInfo& field = vocab.field(vocab.field_of(t));
    if (field.role == TextRole::kSegmented) {
      if (index.DocFreq(t) >= options_.min_title_docfreq) {
        title_terms_.push_back(t);
      }
    } else if (field.table == "authors") {
      author_terms_.push_back(t);
    } else if (field.table == "venues") {
      venue_terms_.push_back(t);
    }
  }
  KQR_CHECK(!title_terms_.empty()) << "corpus has no sampleable title terms";

  // Per-topic pools from the generative ground truth.
  if (corpus_ != nullptr) {
    const size_t num_topics = corpus_->topics->num_topics();
    topic_title_terms_.resize(num_topics);
    topic_author_terms_.resize(num_topics);
    topic_venue_terms_.resize(num_topics);
    for (TermId t : title_terms_) {
      for (size_t topic : corpus_->TopicsOf(std::string(vocab.text(t)))) {
        topic_title_terms_[topic].push_back(t);
      }
    }
    auto author_field = vocab.FindField("authors", "name");
    auto venue_field = vocab.FindField("venues", "name");
    for (TermId t : author_terms_) {
      if (!author_field.has_value()) break;
      for (size_t topic : corpus_->TopicsOf(std::string(vocab.text(t)))) {
        topic_author_terms_[topic].push_back(t);
      }
    }
    for (TermId t : venue_terms_) {
      if (!venue_field.has_value()) break;
      for (size_t topic : corpus_->TopicsOf(std::string(vocab.text(t)))) {
        topic_venue_terms_[topic].push_back(t);
      }
    }
  }

  // Per-paper informative title terms, for the Table III workload.
  const Table* papers = model.db().FindTable("papers");
  if (papers != nullptr) {
    auto title_col = papers->schema().FindColumn("title");
    if (title_col.has_value()) {
      auto field = vocab.FindField("papers", "title");
      paper_title_terms_.reserve(papers->num_rows());
      for (size_t r = 0; r < papers->num_rows(); ++r) {
        std::vector<TermId> terms;
        const Value& cell =
            papers->row(static_cast<RowIndex>(r)).at(*title_col);
        if (!cell.is_null() && field.has_value()) {
          for (const std::string& w :
               model.analyzer().AnalyzeSegmented(cell.AsString())) {
            auto id = vocab.Find(*field, w);
            if (id.has_value() &&
                index.DocFreq(*id) >= options_.min_title_docfreq &&
                std::find(terms.begin(), terms.end(), *id) == terms.end()) {
              terms.push_back(*id);
            }
          }
        }
        paper_title_terms_.push_back(std::move(terms));
      }
    }
  }
}

TermId QuerySampler::SampleTerm(KeywordSource source) {
  switch (source) {
    case KeywordSource::kTitleTerm:
      return title_terms_[rng_.NextBounded(title_terms_.size())];
    case KeywordSource::kAuthorName:
      if (author_terms_.empty()) return SampleTerm(KeywordSource::kTitleTerm);
      return author_terms_[rng_.NextBounded(author_terms_.size())];
    case KeywordSource::kVenueName:
      if (venue_terms_.empty()) return SampleTerm(KeywordSource::kTitleTerm);
      return venue_terms_[rng_.NextBounded(venue_terms_.size())];
  }
  return title_terms_[0];
}

std::vector<TermId> QuerySampler::SampleQuery(size_t length) {
  std::vector<TermId> query;
  query.reserve(length);
  const std::vector<double> weights = {options_.title_weight,
                                       options_.author_weight,
                                       options_.venue_weight};
  size_t attempts = 0;
  while (query.size() < length && attempts < length * 50) {
    ++attempts;
    auto source = static_cast<KeywordSource>(rng_.SampleWeighted(weights));
    TermId t = SampleTerm(source);
    if (std::find(query.begin(), query.end(), t) == query.end()) {
      query.push_back(t);
    }
  }
  KQR_CHECK(query.size() == length) << "could not sample a length-"
                                    << length << " query";
  return query;
}

std::vector<std::vector<TermId>> QuerySampler::SampleQueries(
    size_t count, size_t length) {
  std::vector<std::vector<TermId>> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(SampleQuery(length));
  return out;
}

TermId QuerySampler::SampleTopicTerm(KeywordSource source, size_t topic) {
  const std::vector<std::vector<TermId>>* pools = nullptr;
  switch (source) {
    case KeywordSource::kTitleTerm:
      pools = &topic_title_terms_;
      break;
    case KeywordSource::kAuthorName:
      pools = &topic_author_terms_;
      break;
    case KeywordSource::kVenueName:
      pools = &topic_venue_terms_;
      break;
  }
  if (pools == nullptr || topic >= pools->size() ||
      (*pools)[topic].empty()) {
    return SampleTerm(source);
  }
  const std::vector<TermId>& pool = (*pools)[topic];
  return pool[rng_.NextBounded(pool.size())];
}

std::vector<std::vector<TermId>> QuerySampler::SampleMixedSet(
    size_t count) {
  const bool coherent = corpus_ != nullptr && !topic_title_terms_.empty();
  const size_t num_topics =
      coherent ? corpus_->topics->num_topics() : 1;
  std::vector<std::vector<TermId>> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    // One intent topic per query (like a real information need), cycling
    // so the test set covers many areas.
    size_t topic = coherent ? i % num_topics : 0;
    auto draw = [&](KeywordSource source) {
      return coherent ? SampleTopicTerm(source, topic)
                      : SampleTerm(source);
    };
    // Alternate the paper's query shapes: topical pairs ("knn uncertain"),
    // name + topic ("Christian S. Jensen spatio-temporal"), venue + topic.
    std::vector<TermId> q;
    switch (i % 3) {
      case 0:
        q.push_back(draw(KeywordSource::kTitleTerm));
        q.push_back(draw(KeywordSource::kTitleTerm));
        break;
      case 1:
        q.push_back(draw(KeywordSource::kAuthorName));
        q.push_back(draw(KeywordSource::kTitleTerm));
        break;
      default:
        q.push_back(draw(KeywordSource::kVenueName));
        q.push_back(draw(KeywordSource::kTitleTerm));
        q.push_back(draw(KeywordSource::kTitleTerm));
        break;
    }
    // Drop accidental duplicates by resampling a few times.
    for (int attempt = 0; attempt < 8; ++attempt) {
      bool dup = false;
      for (size_t a = 0; a < q.size() && !dup; ++a) {
        for (size_t b = a + 1; b < q.size(); ++b) {
          if (q[a] == q[b]) {
            q[b] = draw(KeywordSource::kTitleTerm);
            dup = true;
            break;
          }
        }
      }
      if (!dup) break;
    }
    out.push_back(std::move(q));
  }
  return out;
}

std::vector<std::vector<TermId>> QuerySampler::SampleTitleQueries(
    size_t count) {
  std::vector<std::vector<TermId>> out;
  out.reserve(count);
  size_t attempts = 0;
  while (out.size() < count && attempts < count * 200) {
    ++attempts;
    if (paper_title_terms_.empty()) break;
    const std::vector<TermId>& terms =
        paper_title_terms_[rng_.NextBounded(paper_title_terms_.size())];
    if (terms.size() < 2) continue;
    size_t take = std::min<size_t>(2 + rng_.NextBounded(3), terms.size());
    std::vector<TermId> q(terms.begin(),
                          terms.begin() + static_cast<long>(take));
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace kqr
