// Deadline: one value type for "how long may this call take".
//
// The serving stack used to sprawl `double deadline_seconds = 0.0`
// parameters across Server and ShardRouter, with 0 meaning "use the
// callee's default" — a silent footgun: a computed timeout that
// underflows to 0 quietly becomes *no* (or the default) deadline
// instead of an immediate timeout. `Deadline` makes the three cases
// explicit and non-interchangeable:
//
//   Deadline::Default()        defer to the callee's configured default
//                              (also what a default-constructed Deadline
//                              means, so `Deadline d = {}` is safe);
//   Deadline::After(seconds)   an absolute point fixed *now*, at call
//                              time — After(0) means "already expired",
//                              not "no deadline";
//   Deadline::At(time_point)   an explicit absolute steady-clock point,
//                              for propagating one budget across retries
//                              and fan-out (the router's failover path
//                              retries on the next replica within the
//                              *same* absolute deadline).
//
// A Deadline is immutable once built and is always interpreted against
// std::chrono::steady_clock; wall-clock time never enters timeout
// decisions.

#pragma once

#include <chrono>

namespace kqr {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// \brief Default-constructed Deadline defers to the callee's default
  /// budget. Identical to Deadline::Default().
  constexpr Deadline() = default;

  /// \brief Defer to the callee's configured default budget.
  static constexpr Deadline Default() { return Deadline(); }

  /// \brief Absolute deadline `seconds` from now, fixed at this call.
  /// Negative values clamp to "already expired" (not to "default").
  static Deadline After(double seconds) {
    if (seconds < 0.0) seconds = 0.0;
    return Deadline(Clock::now() + ToDuration(seconds));
  }

  /// \brief Explicit absolute steady-clock deadline.
  static constexpr Deadline At(Clock::time_point when) {
    return Deadline(when);
  }

  /// \brief True if this Deadline defers to the callee's default.
  constexpr bool is_default() const { return !has_deadline_; }

  /// \brief The absolute point. Only meaningful when !is_default().
  constexpr Clock::time_point when() const { return when_; }

  /// \brief Resolve to an absolute point: this deadline if set, else
  /// `default_seconds` from now. This is the one place the 0-means-
  /// something convention survives: callers that keep a legacy
  /// `default_seconds` knob decide for themselves what 0 means there.
  Clock::time_point ResolveOr(double default_seconds) const {
    if (!is_default()) return when_;
    if (default_seconds < 0.0) default_seconds = 0.0;
    return Clock::now() + ToDuration(default_seconds);
  }

  /// \brief Seconds until expiry (possibly negative). Only meaningful
  /// when !is_default().
  double RemainingSeconds() const {
    return std::chrono::duration<double>(when_ - Clock::now()).count();
  }

  /// \brief True if a non-default deadline has already passed.
  bool expired() const { return !is_default() && Clock::now() >= when_; }

  friend constexpr bool operator==(const Deadline& a, const Deadline& b) {
    return a.has_deadline_ == b.has_deadline_ &&
           (!a.has_deadline_ || a.when_ == b.when_);
  }
  friend constexpr bool operator!=(const Deadline& a, const Deadline& b) {
    return !(a == b);
  }

 private:
  static Clock::duration ToDuration(double seconds) {
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(seconds));
  }

  constexpr explicit Deadline(Clock::time_point when)
      : when_(when), has_deadline_(true) {}

  Clock::time_point when_{};
  bool has_deadline_ = false;
};

}  // namespace kqr
