#include "common/status.h"

namespace kqr {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace kqr
