// Wall-clock stopwatch used by the bench harness and online-stage timing.

#pragma once

#include <chrono>

namespace kqr {

/// \brief Monotonic stopwatch; starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace kqr

