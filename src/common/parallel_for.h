// ParallelFor: minimal worker-pool fan-out used by the offline stage.
// Workers claim items off a shared atomic counter, so load balances even
// when per-item cost varies (walks on hub terms run longer). Callers that
// want deterministic output write per-item results into disjoint,
// pre-sized slots and merge them in item order afterwards — then the
// output is independent of how items were scheduled across workers.
//
// Lock-free by design: the only shared mutable state is the claim
// counter (one fetch_add per item), so there is nothing here for the
// thread-safety capability analysis to guard — no Mutex, no GUARDED_BY.
// Thread start/join provide the happens-before edges for the per-item
// result slots.

#pragma once

#include <cstddef>
#include <functional>

namespace kqr {

/// \brief Resolves a requested worker count to the count actually used.
///
/// `requested` > 0 is taken as-is. 0 means auto: the `KQR_THREADS`
/// environment variable when set to a positive integer, otherwise the
/// hardware concurrency (never less than 1).
size_t ResolveThreadCount(size_t requested);

/// \brief Runs `fn(worker, item)` exactly once for every item in
/// [0, num_items), sharded across `num_workers` threads.
///
/// `worker` is a dense index in [0, num_workers) identifying the calling
/// thread — use it to address per-worker scratch state. `num_workers` is
/// resolved via ResolveThreadCount and clamped to `num_items`; with one
/// worker the loop runs inline on the calling thread. `fn` must be safe
/// to call concurrently for distinct items and must not throw.
void ParallelFor(size_t num_items, size_t num_workers,
                 const std::function<void(size_t worker, size_t item)>& fn);

}  // namespace kqr

