// Deterministic pseudo-random generator used by data generation and
// randomized tests. A fixed seed reproduces a corpus bit-for-bit, which the
// benchmark harness relies on.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace kqr {

/// \brief splitmix64-seeded xoshiro256**; fast, no global state.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Samples an index from an (unnormalized) non-negative weight vector.
  /// Returns weights.size()-1 on degenerate all-zero input.
  size_t SampleWeighted(const std::vector<double>& weights);

  /// Zipf-distributed rank in [0, n) with exponent `s` (>0).
  /// Lower ranks are more likely — classic power-law sizes.
  size_t NextZipf(size_t n, double s);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace kqr

