// Result<T>: value-or-Status, the return type of fallible factories.

#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace kqr {

/// \brief Holds either a value of type T or an error Status.
///
/// Mirrors arrow::Result. Construct from a T (success) or from a non-OK
/// Status (failure). Constructing from an OK status is a programming error.
template <typename T>
class Result {
 public:
  /// Success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Failure. `status` must be non-OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// OK if a value is held, the error otherwise.
  const Status& status() const& { return status_; }

  /// The held value; requires ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  /// The held value without the death contract spelled out — used by the
  /// KQR_ASSIGN_OR_RETURN macro after it checked ok().
  T&& ValueUnsafe() && { return std::move(*value_); }

  /// Value if ok, `alternative` otherwise.
  T ValueOr(T alternative) const& {
    return ok() ? *value_ : std::move(alternative);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace kqr

