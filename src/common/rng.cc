#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace kqr {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  KQR_DCHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0ULL - bound) % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  KQR_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

size_t Rng::SampleWeighted(const std::vector<double>& weights) {
  KQR_DCHECK(!weights.empty());
  double total = 0;
  for (double w : weights) total += w;
  if (total <= 0) return weights.size() - 1;
  double r = NextDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

size_t Rng::NextZipf(size_t n, double s) {
  KQR_DCHECK(n > 0);
  // Inverse-CDF on the harmonic partial sums. O(n) per call is fine for the
  // corpus sizes the generator targets; callers that need many draws with
  // the same (n, s) hold their own CDF.
  double h = 0;
  for (size_t i = 1; i <= n; ++i) h += 1.0 / std::pow(double(i), s);
  double r = NextDouble() * h;
  double acc = 0;
  for (size_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(double(i), s);
    if (r < acc) return i - 1;
  }
  return n - 1;
}

}  // namespace kqr
