// Bounded top-k accumulator, used everywhere a ranked prefix of a large
// candidate set is needed (similar-term lists, closeness lists, path lists).

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace kqr {

/// \brief Keeps the k largest items by score with O(log k) insertion.
///
/// Ties are broken by preferring the item inserted first (stable for
/// deterministic output ordering).
template <typename T>
class TopK {
 public:
  struct Entry {
    double score;
    uint64_t seq;  // insertion order, for stable tie-breaks
    T item;
  };

  explicit TopK(size_t k) : k_(k) {}

  size_t capacity() const { return k_; }
  size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }

  /// Smallest score currently retained; only meaningful when full().
  double MinScore() const { return heap_.front().score; }
  bool full() const { return heap_.size() >= k_; }

  /// \brief Offers an item; keeps it only if it beats the current floor.
  /// Returns true if retained.
  bool Add(double score, T item) {
    if (k_ == 0) return false;
    if (heap_.size() < k_) {
      heap_.push_back(Entry{score, seq_++, std::move(item)});
      std::push_heap(heap_.begin(), heap_.end(), MinFirst);
      return true;
    }
    // On a tie with the current floor, keep the earlier item.
    if (score <= heap_.front().score) return false;
    std::pop_heap(heap_.begin(), heap_.end(), MinFirst);
    heap_.back() = Entry{score, seq_++, std::move(item)};
    std::push_heap(heap_.begin(), heap_.end(), MinFirst);
    return true;
  }

  /// \brief Extracts items ordered by descending score (stable on ties).
  /// The accumulator is left empty.
  std::vector<std::pair<T, double>> TakeSorted() {
    std::vector<Entry> entries = std::move(heap_);
    heap_.clear();
    std::sort(entries.begin(), entries.end(), [](const Entry& a,
                                                 const Entry& b) {
      if (a.score != b.score) return a.score > b.score;
      return a.seq < b.seq;
    });
    std::vector<std::pair<T, double>> out;
    out.reserve(entries.size());
    for (auto& e : entries) out.emplace_back(std::move(e.item), e.score);
    return out;
  }

 private:
  static bool MinFirst(const Entry& a, const Entry& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.seq < b.seq;  // newer items sit closer to the top (evicted last)
  }

  size_t k_;
  uint64_t seq_ = 0;
  std::vector<Entry> heap_;
};

}  // namespace kqr

