// File I/O for model artifacts. All reads and writes of kqr model files go
// through this layer (tools/lint.py io-discipline rule); the only other
// sanctioned file readers are the v2 snapshot code and the CSV loader.
//
// MappedFile prefers POSIX mmap(2) so a model opens in O(pages touched) and
// clean pages are shared across processes; when mmap is unavailable (or
// `prefer_mmap` is off) it falls back to reading the file into owned heap
// memory with identical observable behaviour. Either way the bytes are
// immutable for the lifetime of the object, so zero-copy views handed out
// by the v3 container stay valid as long as the MappedFile is alive.

#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace kqr {

/// \brief Immutable byte buffer backed by an mmap'd file or owned memory.
///
/// Move-only handle; ServingModel keeps it in a shared_ptr so every view
/// into the mapping shares one lifetime.
class MappedFile {
 public:
  /// Opens `path` read-only. With `prefer_mmap` (default) the file is
  /// memory-mapped; otherwise (or if mapping fails) it is read into heap
  /// memory. Missing/unreadable files fail with kIOError.
  static Result<std::shared_ptr<const MappedFile>> Open(
      const std::string& path, bool prefer_mmap = true);

  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  std::span<const std::byte> bytes() const {
    return {static_cast<const std::byte*>(data_), size_};
  }
  size_t size() const { return size_; }
  /// True when the bytes come from mmap (pages faulted on demand) rather
  /// than an eager heap read.
  bool is_mapped() const { return mapped_; }
  const std::string& path() const { return path_; }

 private:
  MappedFile() = default;

  std::string path_;
  const void* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  std::unique_ptr<std::byte[]> owned_;  // fallback storage when !mapped_
};

/// \brief Writes `bytes` to `path` atomically enough for our purposes:
/// write to `path.tmp`, flush, then rename over `path`. Fails with
/// kIOError; never leaves a half-written file at the final path.
Status WriteFileBytes(const std::string& path, std::span<const std::byte> bytes);

/// \brief Reads the whole file into a string (small files: snapshots in
/// tests, section probes). Fails with kIOError when unreadable.
Result<std::string> ReadFileString(const std::string& path);

}  // namespace kqr
