#include "common/io/container.h"

#include <atomic>
#include <cstring>

#include "common/io/codec.h"
#include "common/logging.h"
#include "common/parallel_for.h"

namespace kqr {

namespace {

constexpr size_t kHeaderSize = 40;  // magic(8) + version(4) + nsec(4) +
                                    // file_size(8) + table_offset(8) + fnv(8)

/// Workers for parallel section-checksum verification. 0 = auto: the
/// hardware concurrency — which also means the loop runs inline on a
/// single-core host instead of paying thread-spawn cost for nothing.
constexpr size_t kChecksumWorkers = 0;

size_t AlignUp8(size_t n) { return (n + 7) & ~size_t{7}; }

}  // namespace

void ContainerWriter::AddSection(std::string name, SectionCodec codec,
                                 uint64_t items, std::string payload) {
  for (const Pending& p : sections_) {
    KQR_CHECK(p.info.name != name) << "duplicate container section " << name;
  }
  Pending pending;
  pending.info.name = std::move(name);
  pending.info.codec = codec;
  pending.info.items = items;
  pending.info.length = payload.size();
  // Payload checksums use the word-at-a-time FNV variant: sections are
  // the megabytes-sized part of the file, and their verification sits on
  // the model-open critical path. Header and table keep byte-serial FNV
  // (they are tens of bytes).
  pending.info.checksum = Fnv1aWords(
      std::span<const std::byte>(reinterpret_cast<const std::byte*>(payload.data()),
                                 payload.size()));
  pending.payload = std::move(payload);
  sections_.push_back(std::move(pending));
}

std::string ContainerWriter::Finish() {
  // Lay out payloads first to learn offsets, then prepend the header.
  std::string body;
  size_t cursor = kHeaderSize;
  for (Pending& p : sections_) {
    const size_t aligned = AlignUp8(cursor);
    body.append(aligned - cursor, '\0');
    p.info.offset = aligned;
    body += p.payload;
    cursor = aligned + p.payload.size();
  }
  const uint64_t table_offset = AlignUp8(cursor);
  body.append(table_offset - cursor, '\0');

  std::string table;
  PutVarint64(&table, sections_.size());
  for (const Pending& p : sections_) {
    PutVarint64(&table, p.info.name.size());
    table += p.info.name;
    PutU32Le(&table, static_cast<uint32_t>(p.info.codec));
    PutU64Le(&table, p.info.offset);
    PutU64Le(&table, p.info.length);
    PutU64Le(&table, p.info.items);
    PutU64Le(&table, p.info.checksum);
  }
  const uint64_t table_fnv = Fnv1aBytes(kFnv64Basis, table.data(), table.size());
  PutU64Le(&table, table_fnv);

  const uint64_t file_size = table_offset + table.size();

  std::string header;
  header.append(kContainerMagic, sizeof(kContainerMagic));
  PutU32Le(&header, kContainerVersion);
  PutU32Le(&header, static_cast<uint32_t>(sections_.size()));
  PutU64Le(&header, file_size);
  PutU64Le(&header, table_offset);
  const uint64_t header_fnv =
      Fnv1aBytes(kFnv64Basis, header.data(), header.size());
  PutU64Le(&header, header_fnv);
  KQR_CHECK(header.size() == kHeaderSize);

  sections_.clear();
  return header + body + table;
}

Result<ContainerReader> ContainerReader::Open(std::span<const std::byte> bytes,
                                              bool verify_checksums) {
  if (bytes.size() < kHeaderSize) {
    return Status::Corruption("container smaller than header (" +
                              std::to_string(bytes.size()) + " bytes)");
  }
  if (std::memcmp(bytes.data(), kContainerMagic, sizeof(kContainerMagic)) !=
      0) {
    return Status::Corruption("bad container magic (not a kqr v3 model)");
  }
  ByteReader header(bytes.subspan(0, kHeaderSize));
  KQR_RETURN_NOT_OK(header.Bytes(sizeof(kContainerMagic)).status());
  KQR_ASSIGN_OR_RETURN(uint32_t version, header.U32Le());
  if (version != kContainerVersion) {
    return Status::Corruption("unsupported container version " +
                              std::to_string(version));
  }
  KQR_ASSIGN_OR_RETURN(uint32_t num_sections, header.U32Le());
  KQR_ASSIGN_OR_RETURN(uint64_t file_size, header.U64Le());
  KQR_ASSIGN_OR_RETURN(uint64_t table_offset, header.U64Le());
  const uint64_t want_header_fnv =
      Fnv1aBytes(kFnv64Basis, bytes.data(), kHeaderSize - 8);
  KQR_ASSIGN_OR_RETURN(uint64_t got_header_fnv, header.U64Le());
  if (want_header_fnv != got_header_fnv) {
    return Status::Corruption("container header checksum mismatch");
  }
  if (file_size != bytes.size()) {
    return Status::Corruption(
        "container file size mismatch: header says " +
        std::to_string(file_size) + ", file has " +
        std::to_string(bytes.size()));
  }
  if (table_offset < kHeaderSize || table_offset + 8 > bytes.size()) {
    return Status::Corruption("section table offset out of bounds");
  }

  // The table's own checksum is its trailing 8 bytes.
  const size_t table_bytes = bytes.size() - table_offset - 8;
  auto table_span = bytes.subspan(table_offset, table_bytes);
  const uint64_t want_table_fnv = Fnv1a64(table_span);
  const uint64_t got_table_fnv = GetU64Le(bytes.data() + table_offset + table_bytes);
  if (want_table_fnv != got_table_fnv) {
    return Status::Corruption("section table checksum mismatch");
  }

  ContainerReader reader;
  reader.bytes_ = bytes;
  ByteReader table(table_span);
  KQR_ASSIGN_OR_RETURN(uint64_t count, table.Varint64());
  if (count != num_sections) {
    return Status::Corruption("section count mismatch between header and table");
  }
  reader.sections_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    SectionInfo info;
    KQR_ASSIGN_OR_RETURN(uint64_t name_len, table.Varint64());
    if (name_len == 0 || name_len > 256) {
      return Status::Corruption("section name length out of range");
    }
    KQR_ASSIGN_OR_RETURN(auto name_bytes, table.Bytes(name_len));
    info.name.assign(reinterpret_cast<const char*>(name_bytes.data()),
                     name_bytes.size());
    KQR_ASSIGN_OR_RETURN(uint32_t codec, table.U32Le());
    if (codec > static_cast<uint32_t>(SectionCodec::kBitPacked)) {
      return Status::Corruption("unknown section codec " +
                                std::to_string(codec) + " for '" + info.name +
                                "'");
    }
    info.codec = static_cast<SectionCodec>(codec);
    KQR_ASSIGN_OR_RETURN(info.offset, table.U64Le());
    KQR_ASSIGN_OR_RETURN(info.length, table.U64Le());
    KQR_ASSIGN_OR_RETURN(info.items, table.U64Le());
    KQR_ASSIGN_OR_RETURN(info.checksum, table.U64Le());
    if (info.offset < kHeaderSize || info.offset > table_offset ||
        info.length > table_offset - info.offset) {
      return Status::Corruption("section '" + info.name +
                                "' payload out of bounds");
    }
    if ((info.offset & 7) != 0) {
      return Status::Corruption("section '" + info.name +
                                "' payload misaligned");
    }
    for (const SectionInfo& prev : reader.sections_) {
      if (prev.name == info.name) {
        return Status::Corruption("duplicate section '" + info.name + "'");
      }
    }
    reader.sections_.push_back(std::move(info));
  }
  if (!table.done()) {
    return Status::Corruption("section table has trailing bytes");
  }

  if (verify_checksums) {
    // FNV is byte-serial, but sections checksum independently — fan the
    // verification out so a multi-megabyte model does not serialize its
    // whole open behind one hash loop. First failing section (by index)
    // wins so the error is deterministic.
    const size_t count_sections = reader.sections_.size();
    std::atomic<size_t> first_bad{count_sections};
    ParallelFor(count_sections, kChecksumWorkers, [&](size_t, size_t i) {
      const SectionInfo& info = reader.sections_[i];
      const uint64_t fnv = Fnv1aWords(bytes.subspan(info.offset, info.length));
      if (fnv != info.checksum) {
        size_t cur = first_bad.load(std::memory_order_relaxed);
        while (i < cur && !first_bad.compare_exchange_weak(
                              cur, i, std::memory_order_relaxed)) {
        }
      }
    });
    if (first_bad.load(std::memory_order_relaxed) < count_sections) {
      return Status::Corruption(
          "section '" + reader.sections_[first_bad.load()].name +
          "' payload checksum mismatch");
    }
  }
  return reader;
}

bool ContainerReader::Has(std::string_view name) const {
  for (const SectionInfo& s : sections_) {
    if (s.name == name) return true;
  }
  return false;
}

Result<const SectionInfo*> ContainerReader::Find(std::string_view name) const {
  for (const SectionInfo& s : sections_) {
    if (s.name == name) return &s;
  }
  return Status::NotFound("container has no section '" + std::string(name) +
                          "'");
}

Result<std::span<const std::byte>> ContainerReader::Payload(
    std::string_view name) const {
  KQR_ASSIGN_OR_RETURN(const SectionInfo* info, Find(name));
  return bytes_.subspan(info->offset, info->length);
}

Result<std::vector<uint64_t>> ContainerReader::ReadU64s(
    std::string_view name) const {
  KQR_ASSIGN_OR_RETURN(const SectionInfo* info, Find(name));
  auto payload = bytes_.subspan(info->offset, info->length);
  std::vector<uint64_t> out;
  switch (info->codec) {
    case SectionCodec::kVarint:
      KQR_RETURN_NOT_OK(DecodeVarints(payload, info->items, &out));
      return out;
    case SectionCodec::kVarintDelta:
      KQR_RETURN_NOT_OK(DecodeDeltaVarints(payload, info->items, &out));
      return out;
    default:
      return Status::Corruption("section '" + info->name +
                                "' is not a u64 codec");
  }
}

Result<std::vector<uint32_t>> ContainerReader::ReadU32s(
    std::string_view name) const {
  KQR_ASSIGN_OR_RETURN(const SectionInfo* info, Find(name));
  if (info->codec != SectionCodec::kBitPacked) {
    return Status::Corruption("section '" + info->name + "' is not bit-packed");
  }
  std::vector<uint32_t> out;
  KQR_RETURN_NOT_OK(DecodeBitPacked(bytes_.subspan(info->offset, info->length),
                                    info->items, &out));
  return out;
}

namespace {

template <typename T>
Result<std::span<const T>> RawScalars(std::span<const std::byte> bytes,
                                      const SectionInfo& info) {
  if (info.codec != SectionCodec::kRaw) {
    return Status::Corruption("section '" + info.name + "' is not raw");
  }
  if (info.length != info.items * sizeof(T)) {
    return Status::Corruption("section '" + info.name +
                              "' length does not match item count");
  }
  auto payload = bytes.subspan(info.offset, info.length);
  const auto addr = reinterpret_cast<uintptr_t>(payload.data());
  if (addr % alignof(T) != 0) {
    return Status::Corruption("section '" + info.name + "' misaligned for " +
                              std::to_string(sizeof(T)) + "-byte scalars");
  }
  return std::span<const T>(reinterpret_cast<const T*>(payload.data()),
                            info.items);
}

}  // namespace

Result<std::span<const float>> ContainerReader::RawF32(
    std::string_view name) const {
  KQR_ASSIGN_OR_RETURN(const SectionInfo* info, Find(name));
  return RawScalars<float>(bytes_, *info);
}

Result<std::span<const double>> ContainerReader::RawF64(
    std::string_view name) const {
  KQR_ASSIGN_OR_RETURN(const SectionInfo* info, Find(name));
  return RawScalars<double>(bytes_, *info);
}

Result<std::string_view> ContainerReader::RawText(std::string_view name) const {
  KQR_ASSIGN_OR_RETURN(const SectionInfo* info, Find(name));
  if (info->codec != SectionCodec::kRaw) {
    return Status::Corruption("section '" + info->name + "' is not raw");
  }
  auto payload = bytes_.subspan(info->offset, info->length);
  return std::string_view(reinterpret_cast<const char*>(payload.data()),
                          payload.size());
}

}  // namespace kqr
