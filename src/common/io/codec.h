// Byte-level codecs for the v3 model container (common/io/container.h):
// LEB128 varints, delta-coded varints for sorted sequences (CSR offsets,
// string-table offsets), fixed-width bit-packed blocks for u32 id lists
// (PISA-style: 128 values per block, per-block width = widest value), and
// FNV-1a checksums shared with the snapshot trailer.
//
// Every decode entry point is bounds-checked and returns a typed Status —
// a truncated or bit-flipped payload must surface as kCorruption, never as
// an out-of-bounds read. Encoders append to a std::string so section
// payloads compose without intermediate copies.

#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace kqr {

// -- FNV-1a 64-bit -----------------------------------------------------

inline constexpr uint64_t kFnv64Basis = 0xcbf29ce484222325ULL;
inline constexpr uint64_t kFnv64Prime = 0x100000001b3ULL;

inline uint64_t Fnv1aByte(uint64_t h, uint8_t b) {
  h ^= b;
  h *= kFnv64Prime;
  return h;
}

inline uint64_t Fnv1aBytes(uint64_t h, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) h = Fnv1aByte(h, p[i]);
  return h;
}

inline uint64_t Fnv1a64(std::span<const std::byte> bytes) {
  return Fnv1aBytes(kFnv64Basis, bytes.data(), bytes.size());
}

/// Folds a 64-bit value into the hash one byte at a time (little-endian),
/// so fingerprints are architecture-independent.
inline uint64_t Fnv1aU64(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = Fnv1aByte(h, static_cast<uint8_t>((v >> (i * 8)) & 0xff));
  }
  return h;
}

/// Word-at-a-time FNV-1a: folds 8 little-endian bytes per multiply, with
/// a byte-wise tail. NOT the same value as Fnv1a64 over the same bytes —
/// it is the checksum the v3 container uses for section payloads, where
/// byte-serial FNV (one data-dependent multiply per byte) would put the
/// hash loop on the model-open critical path. Any single-bit change still
/// flips the hash; endianness is pinned by decoding words little-endian.
inline uint64_t Fnv1aWords(std::span<const std::byte> bytes) {
  const auto* p = reinterpret_cast<const uint8_t*>(bytes.data());
  const size_t n = bytes.size();
  uint64_t h = kFnv64Basis;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t w = 0;
    std::memcpy(&w, p + i, 8);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    w = __builtin_bswap64(w);
#endif
    h ^= w;
    h *= kFnv64Prime;
  }
  for (; i < n; ++i) h = Fnv1aByte(h, p[i]);
  return h;
}

// -- Little-endian fixed-width primitives ------------------------------

void PutU32Le(std::string* out, uint32_t v);
void PutU64Le(std::string* out, uint64_t v);

/// Reads a little-endian value from `p` (caller guarantees the bytes).
uint32_t GetU32Le(const std::byte* p);
uint64_t GetU64Le(const std::byte* p);

// -- Varints -----------------------------------------------------------

/// Appends `v` as an LEB128 varint (1–10 bytes).
void PutVarint64(std::string* out, uint64_t v);

/// \brief Bounds-checked forward cursor over a byte span. All reads fail
/// with kCorruption once the remaining bytes cannot satisfy the request;
/// the cursor never advances past the end.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  size_t position() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

  Result<uint64_t> Varint64();
  Result<uint32_t> U32Le();
  Result<uint64_t> U64Le();
  Result<std::span<const std::byte>> Bytes(size_t n);

 private:
  std::span<const std::byte> data_;
  size_t pos_ = 0;
};

// -- Sequence codecs ---------------------------------------------------
// Each encoder appends `values.size()` logical elements to `out`; the
// element count is NOT part of the payload — the container's section
// table carries it, so decoders know exactly how many elements to expect
// and reject payloads with trailing or missing bytes.

/// Plain varint stream (unsorted id lists, small counters).
void EncodeVarints(std::span<const uint64_t> values, std::string* out);
Status DecodeVarints(std::span<const std::byte> bytes, size_t count,
                     std::vector<uint64_t>* out);

/// Delta-coded varint stream for non-decreasing sequences (CSR offsets,
/// string-table offsets). Encoding a decreasing sequence is a programming
/// error (checked); decode rejects accumulator overflow.
void EncodeDeltaVarints(std::span<const uint64_t> sorted, std::string* out);
Status DecodeDeltaVarints(std::span<const std::byte> bytes, size_t count,
                          std::vector<uint64_t>* out);

/// Fixed-width bit-packed blocks of kBitPackBlock u32 values: one width
/// byte (0–32) then ceil(block·width/8) packed bytes, little-endian bit
/// order. Width 0 encodes an all-zero block with no payload bytes.
inline constexpr size_t kBitPackBlock = 128;
void EncodeBitPacked(std::span<const uint32_t> values, std::string* out);
Status DecodeBitPacked(std::span<const std::byte> bytes, size_t count,
                       std::vector<uint32_t>* out);

}  // namespace kqr
