#include "common/io/io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define KQR_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace kqr {

namespace {

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

/// Reads the whole file into `out` via stdio; works everywhere.
Status ReadWholeFile(const std::string& path, std::unique_ptr<std::byte[]>* out,
                     size_t* out_size) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError(ErrnoMessage("cannot open", path));
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::IOError(ErrnoMessage("cannot seek", path));
  }
  const long end = std::ftell(f);
  if (end < 0) {
    std::fclose(f);
    return Status::IOError(ErrnoMessage("cannot tell", path));
  }
  std::rewind(f);
  const size_t size = static_cast<size_t>(end);
  auto buf = std::make_unique<std::byte[]>(size == 0 ? 1 : size);
  if (size > 0 && std::fread(buf.get(), 1, size, f) != size) {
    std::fclose(f);
    return Status::IOError(ErrnoMessage("short read of", path));
  }
  std::fclose(f);
  *out = std::move(buf);
  *out_size = size;
  return Status::OK();
}

}  // namespace

Result<std::shared_ptr<const MappedFile>> MappedFile::Open(
    const std::string& path, bool prefer_mmap) {
  auto file = std::shared_ptr<MappedFile>(new MappedFile());
  file->path_ = path;

#if KQR_HAVE_MMAP
  if (prefer_mmap) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Status::IOError(ErrnoMessage("cannot open", path));
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return Status::IOError(ErrnoMessage("cannot stat", path));
    }
    const size_t size = static_cast<size_t>(st.st_size);
    if (size == 0) {
      // mmap of length 0 is EINVAL; an empty file is a valid (if corrupt)
      // model and must still open so the container layer can reject it.
      ::close(fd);
      file->size_ = 0;
      file->mapped_ = false;
      return std::shared_ptr<const MappedFile>(std::move(file));
    }
    void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping keeps its own reference to the file
    if (addr != MAP_FAILED) {
      file->data_ = addr;
      file->size_ = size;
      file->mapped_ = true;
      return std::shared_ptr<const MappedFile>(std::move(file));
    }
    // Fall through to the heap path on exotic filesystems.
  }
#else
  (void)prefer_mmap;
#endif

  KQR_RETURN_NOT_OK(ReadWholeFile(path, &file->owned_, &file->size_));
  file->data_ = file->owned_.get();
  file->mapped_ = false;
  return std::shared_ptr<const MappedFile>(std::move(file));
}

MappedFile::~MappedFile() {
#if KQR_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    // munmap takes void* though the mapping is logically const — no
    // mutation happens here.
    ::munmap(const_cast<void*>(data_), size_);  // lint:allow options-mutation
  }
#endif
}

Status WriteFileBytes(const std::string& path,
                      std::span<const std::byte> bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IOError(ErrnoMessage("cannot create", tmp));
  if (!bytes.empty() &&
      std::fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return Status::IOError(ErrnoMessage("short write to", tmp));
  }
  if (std::fflush(f) != 0) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return Status::IOError(ErrnoMessage("cannot flush", tmp));
  }
  std::fclose(f);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError(ErrnoMessage("cannot rename into", path));
  }
  return Status::OK();
}

Result<std::string> ReadFileString(const std::string& path) {
  std::unique_ptr<std::byte[]> buf;
  size_t size = 0;
  KQR_RETURN_NOT_OK(ReadWholeFile(path, &buf, &size));
  return std::string(reinterpret_cast<const char*>(buf.get()), size);
}

}  // namespace kqr
