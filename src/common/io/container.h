// Sectioned, checksummed binary container — the carrier for model format
// v3 ("kqr-model3"). Layout:
//
//   [0..40)   header: 8-byte magic, u32 version, u32 num_sections,
//             u64 file_size, u64 table_offset, u64 FNV-1a of the first
//             32 header bytes
//   [40..)    section payloads, each padded to 8-byte alignment so raw
//             little-endian score arrays can be referenced in place from
//             an mmap (mmap bases are page-aligned, so file-offset
//             alignment == memory alignment)
//   [table_offset..) section table: per section a varint-length name,
//             u32 codec, u64 offset/length/items, u64 payload FNV-1a;
//             then a u64 FNV-1a of the serialized table itself
//
// Readers validate the header and table eagerly (cheap, O(sections)) and
// payload checksums either eagerly (verify_checksums) or not at all —
// payload bytes are only faulted in when a section is actually decoded.
// Every malformed input fails with kCorruption and yields no views.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace kqr {

inline constexpr char kContainerMagic[8] = {'k', 'q', 'r', 'm',
                                            'd', 'l', '3', '\0'};
inline constexpr uint32_t kContainerVersion = 3;

/// How a section's payload bytes were produced from its logical elements.
enum class SectionCodec : uint32_t {
  kRaw = 0,          // verbatim bytes (little-endian scalars, text blobs)
  kVarint = 1,       // LEB128 varint per u64 element
  kVarintDelta = 2,  // delta-coded varints, non-decreasing u64 sequence
  kBitPacked = 3,    // fixed-width bit-packed u32 blocks (codec.h)
};

struct SectionInfo {
  std::string name;
  SectionCodec codec = SectionCodec::kRaw;
  uint64_t offset = 0;    // payload start, absolute file offset
  uint64_t length = 0;    // payload bytes
  uint64_t items = 0;     // logical element count (decoder contract)
  uint64_t checksum = 0;  // Fnv1aWords (word-at-a-time FNV-1a) of the payload
};

/// \brief Accumulates named sections and serializes the container.
class ContainerWriter {
 public:
  /// Payload is the already-encoded bytes; `items` is the logical element
  /// count the matching decoder will be asked for. Names must be unique.
  void AddSection(std::string name, SectionCodec codec, uint64_t items,
                  std::string payload);

  /// Serializes header + aligned payloads + table. The writer is spent
  /// afterwards.
  std::string Finish();

 private:
  struct Pending {
    SectionInfo info;
    std::string payload;
  };
  std::vector<Pending> sections_;
};

/// \brief Validated view over a serialized container. Holds no ownership:
/// the backing bytes (typically a MappedFile) must outlive the reader and
/// every span it hands out.
class ContainerReader {
 public:
  /// Validates magic, version, header checksum, table checksum, and that
  /// every section lies within the file. With `verify_checksums`, also
  /// checks every payload FNV eagerly (touches all pages).
  static Result<ContainerReader> Open(std::span<const std::byte> bytes,
                                      bool verify_checksums);

  const std::vector<SectionInfo>& sections() const { return sections_; }
  bool Has(std::string_view name) const;

  /// Section metadata + payload span. kNotFound for unknown names.
  Result<const SectionInfo*> Find(std::string_view name) const;
  Result<std::span<const std::byte>> Payload(std::string_view name) const;

  // -- Typed decode helpers (dispatch on the section's codec) ----------

  /// Decodes a kVarint/kVarintDelta section into u64s.
  Result<std::vector<uint64_t>> ReadU64s(std::string_view name) const;
  /// Decodes a kBitPacked section into u32s.
  Result<std::vector<uint32_t>> ReadU32s(std::string_view name) const;
  /// Raw section payload reinterpreted as a scalar array, zero-copy.
  /// Fails with kCorruption when length/alignment don't match sizeof(T).
  Result<std::span<const float>> RawF32(std::string_view name) const;
  Result<std::span<const double>> RawF64(std::string_view name) const;
  Result<std::string_view> RawText(std::string_view name) const;

 private:
  ContainerReader() = default;

  std::span<const std::byte> bytes_;
  std::vector<SectionInfo> sections_;
};

}  // namespace kqr
