#include "common/io/codec.h"

#include <cstring>

#include "common/logging.h"

namespace kqr {

void PutU32Le(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (i * 8)) & 0xff));
  }
}

void PutU64Le(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (i * 8)) & 0xff));
  }
}

uint32_t GetU32Le(const std::byte* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(std::to_integer<uint8_t>(p[i])) << (i * 8);
  }
  return v;
}

uint64_t GetU64Le(const std::byte* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(std::to_integer<uint8_t>(p[i])) << (i * 8);
  }
  return v;
}

void PutVarint64(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

Result<uint64_t> ByteReader::Varint64() {
  uint64_t v = 0;
  int shift = 0;
  while (pos_ < data_.size()) {
    const uint8_t b = std::to_integer<uint8_t>(data_[pos_++]);
    if (shift == 63 && (b & 0x7e) != 0) {
      return Status::Corruption("varint overflows 64 bits");
    }
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
    if (shift > 63) return Status::Corruption("varint longer than 10 bytes");
  }
  return Status::Corruption("varint truncated");
}

Result<uint32_t> ByteReader::U32Le() {
  if (remaining() < 4) return Status::Corruption("u32 truncated");
  const uint32_t v = GetU32Le(data_.data() + pos_);
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::U64Le() {
  if (remaining() < 8) return Status::Corruption("u64 truncated");
  const uint64_t v = GetU64Le(data_.data() + pos_);
  pos_ += 8;
  return v;
}

Result<std::span<const std::byte>> ByteReader::Bytes(size_t n) {
  if (remaining() < n) {
    return Status::Corruption("byte run of " + std::to_string(n) +
                              " truncated (" + std::to_string(remaining()) +
                              " left)");
  }
  auto span = data_.subspan(pos_, n);
  pos_ += n;
  return span;
}

void EncodeVarints(std::span<const uint64_t> values, std::string* out) {
  for (uint64_t v : values) PutVarint64(out, v);
}

Status DecodeVarints(std::span<const std::byte> bytes, size_t count,
                     std::vector<uint64_t>* out) {
  out->clear();
  out->reserve(count);
  ByteReader reader(bytes);
  for (size_t i = 0; i < count; ++i) {
    KQR_ASSIGN_OR_RETURN(uint64_t v, reader.Varint64());
    out->push_back(v);
  }
  if (!reader.done()) {
    return Status::Corruption("varint payload has trailing bytes");
  }
  return Status::OK();
}

void EncodeDeltaVarints(std::span<const uint64_t> sorted, std::string* out) {
  uint64_t prev = 0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i == 0) {
      PutVarint64(out, sorted[i]);
    } else {
      KQR_CHECK(sorted[i] >= prev)
          << "EncodeDeltaVarints requires a non-decreasing sequence";
      PutVarint64(out, sorted[i] - prev);
    }
    prev = sorted[i];
  }
}

Status DecodeDeltaVarints(std::span<const std::byte> bytes, size_t count,
                          std::vector<uint64_t>* out) {
  out->clear();
  out->reserve(count);
  ByteReader reader(bytes);
  uint64_t prev = 0;
  for (size_t i = 0; i < count; ++i) {
    KQR_ASSIGN_OR_RETURN(uint64_t d, reader.Varint64());
    const uint64_t v = i == 0 ? d : prev + d;
    if (i != 0 && v < prev) {
      return Status::Corruption("delta sequence overflows 64 bits");
    }
    out->push_back(v);
    prev = v;
  }
  if (!reader.done()) {
    return Status::Corruption("delta payload has trailing bytes");
  }
  return Status::OK();
}

namespace {

int BitWidth(uint32_t v) {
  int w = 0;
  while (v != 0) {
    ++w;
    v >>= 1;
  }
  return w;
}

/// Packs `block` values at `width` bits each, little-endian bit order.
void PackBlock(std::span<const uint32_t> block, int width, std::string* out) {
  uint64_t acc = 0;
  int filled = 0;
  for (uint32_t v : block) {
    acc |= static_cast<uint64_t>(v) << filled;
    filled += width;
    while (filled >= 8) {
      out->push_back(static_cast<char>(acc & 0xff));
      acc >>= 8;
      filled -= 8;
    }
  }
  if (filled > 0) out->push_back(static_cast<char>(acc & 0xff));
}

}  // namespace

void EncodeBitPacked(std::span<const uint32_t> values, std::string* out) {
  for (size_t start = 0; start < values.size(); start += kBitPackBlock) {
    const size_t n = std::min(kBitPackBlock, values.size() - start);
    auto block = values.subspan(start, n);
    int width = 0;
    for (uint32_t v : block) width = std::max(width, BitWidth(v));
    out->push_back(static_cast<char>(width));
    if (width > 0) PackBlock(block, width, out);
  }
}

Status DecodeBitPacked(std::span<const std::byte> bytes, size_t count,
                       std::vector<uint32_t>* out) {
  out->clear();
  out->reserve(count);
  ByteReader reader(bytes);
  size_t decoded = 0;
  while (decoded < count) {
    const size_t n = std::min(kBitPackBlock, count - decoded);
    KQR_ASSIGN_OR_RETURN(auto width_byte, reader.Bytes(1));
    const int width = std::to_integer<uint8_t>(width_byte[0]);
    if (width > 32) {
      return Status::Corruption("bit-packed block width " +
                                std::to_string(width) + " exceeds 32");
    }
    if (width == 0) {
      out->insert(out->end(), n, 0u);
      decoded += n;
      continue;
    }
    const size_t packed_bytes = (n * static_cast<size_t>(width) + 7) / 8;
    KQR_ASSIGN_OR_RETURN(auto packed, reader.Bytes(packed_bytes));
    uint64_t acc = 0;
    int filled = 0;
    size_t next = 0;
    const uint64_t mask =
        width == 32 ? 0xffffffffULL : ((1ULL << width) - 1);
    for (size_t i = 0; i < n; ++i) {
      while (filled < width) {
        acc |= static_cast<uint64_t>(std::to_integer<uint8_t>(packed[next++]))
               << filled;
        filled += 8;
      }
      out->push_back(static_cast<uint32_t>(acc & mask));
      acc >>= width;
      filled -= width;
    }
    // Residual bits in a partial final byte must be zero padding — a flip
    // there would otherwise survive undetected by the decoder itself.
    if (acc != 0) {
      return Status::Corruption("bit-packed block has nonzero padding bits");
    }
    decoded += n;
  }
  if (!reader.done()) {
    return Status::Corruption("bit-packed payload has trailing bytes");
  }
  return Status::OK();
}

}  // namespace kqr
