// Minimal leveled logging plus CHECK macros (Arrow DCHECK idiom).

#pragma once

#include <sstream>
#include <string>

namespace kqr {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits on destruction. `fatal` aborts the process
/// after emitting — used by KQR_CHECK.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
  LogLevel level_;
  bool fatal_;
  bool enabled_;
};

}  // namespace internal
}  // namespace kqr

#define KQR_LOG(level)                                                    \
  ::kqr::internal::LogMessage(::kqr::LogLevel::k##level, __FILE__, __LINE__)

/// Unconditional invariant check; aborts with a message when violated.
#define KQR_CHECK(cond)                                                 \
  if (!(cond))                                                          \
  ::kqr::internal::LogMessage(::kqr::LogLevel::kError, __FILE__,        \
                              __LINE__, /*fatal=*/true)                 \
      << "Check failed: " #cond " "

#define KQR_CHECK_OK(expr)                                              \
  do {                                                                  \
    ::kqr::Status _st = (expr);                                         \
    KQR_CHECK(_st.ok()) << _st.ToString();                              \
  } while (false)

#ifdef NDEBUG
#define KQR_DCHECK(cond) \
  while (false) KQR_CHECK(cond)
#else
#define KQR_DCHECK(cond) KQR_CHECK(cond)
#endif

