// Latency aggregation for serving benches: collect per-request wall times
// on each thread, merge, and report percentiles.

#pragma once

#include <cstddef>
#include <vector>

namespace kqr {

/// \brief Accumulates request latencies; percentiles on demand.
/// Not thread-safe: use one recorder per thread and Merge.
class LatencyRecorder {
 public:
  void Add(double seconds) { samples_.push_back(seconds); }
  void Merge(const LatencyRecorder& other);

  size_t count() const { return samples_.size(); }
  double TotalSeconds() const;
  double MeanSeconds() const;

  /// \brief Percentile in [0, 100] by nearest-rank over a sorted copy;
  /// 0 when no samples.
  double Percentile(double p) const;

 private:
  std::vector<double> samples_;
};

}  // namespace kqr

