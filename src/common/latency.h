// Latency aggregation for serving benches: collect per-request wall times
// on each thread, merge, and report percentiles.

#pragma once

#include <cstddef>
#include <vector>

namespace kqr {

/// \brief Accumulates request latencies; percentiles on demand.
/// Not thread-safe: use one recorder per thread and Merge.
class LatencyRecorder {
 public:
  void Add(double seconds) { samples_.push_back(seconds); }
  void Merge(const LatencyRecorder& other);

  size_t count() const { return samples_.size(); }
  double TotalSeconds() const;
  double MeanSeconds() const;

  /// \brief Percentile by nearest-rank over a sorted copy; 0 when no
  /// samples. `p` is clamped to [0, 100] (NaN reads as 100), so
  /// Percentile(0) is the minimum and Percentile(100) the maximum.
  double Percentile(double p) const;

 private:
  std::vector<double> samples_;
};

}  // namespace kqr

