// OfflineBuildStats: per-stage counters surfaced by the offline index
// builders (SimilarityIndex, ClosenessIndex) so benches and operators can
// report threads-vs-throughput without instrumenting the builders.

#pragma once

#include <cstddef>

namespace kqr {

/// \brief Counters for one offline batch-build pass.
struct OfflineBuildStats {
  size_t terms_total = 0;      ///< terms requested
  size_t terms_built = 0;      ///< lists actually built
  size_t terms_skipped = 0;    ///< dropped by the degree floor
  size_t walks_run = 0;        ///< personalized walks executed
  size_t walk_iterations = 0;  ///< power-iteration steps summed over walks
  size_t threads = 0;          ///< worker threads used
  double wall_ms = 0.0;        ///< wall-clock build time
};

}  // namespace kqr

