#include "common/parallel_for.h"

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

namespace kqr {

size_t ResolveThreadCount(size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("KQR_THREADS")) {
    char* end = nullptr;
    long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<size_t>(parsed);
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void ParallelFor(size_t num_items, size_t num_workers,
                 const std::function<void(size_t, size_t)>& fn) {
  if (num_items == 0) return;
  size_t workers = ResolveThreadCount(num_workers);
  if (workers > num_items) workers = num_items;
  if (workers == 1) {
    for (size_t item = 0; item < num_items; ++item) fn(0, item);
    return;
  }

  // Item-at-a-time claiming: per-item work here is a whole random walk or
  // path search (milliseconds), so counter contention is negligible and
  // fine-grained claiming gives the best balance.
  std::atomic<size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t worker = 0; worker < workers; ++worker) {
    pool.emplace_back([worker, num_items, &next, &fn] {
      for (size_t item = next.fetch_add(1, std::memory_order_relaxed);
           item < num_items;
           item = next.fetch_add(1, std::memory_order_relaxed)) {
        fn(worker, item);
      }
    });
  }
  for (std::thread& t : pool) t.join();
}

}  // namespace kqr
