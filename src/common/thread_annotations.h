// Clang thread-safety capability annotations (DESIGN.md §5d "Lock
// discipline & fuzzing"). Under Clang with -Wthread-safety these macros
// let the compiler prove, at compile time, that every access to a
// GUARDED_BY field happens with its capability held, that ACQUIRE/RELEASE
// pairs balance on every path (including early returns), and that scoped
// locks are not double-acquired. Under GCC (and any compiler without the
// attribute) every macro expands to nothing, so the annotated code is the
// same code everywhere — the proof just only runs where Clang is the
// compiler (CI job "thread-safety" builds all of src/ with
// -Wthread-safety -Wthread-safety-beta -Werror).
//
// The macro set mirrors the names in Clang's documentation so the
// annotations read like the upstream examples. Use the kqr::Mutex /
// kqr::SharedMutex / kqr::MutexLock wrappers from common/mutex.h rather
// than annotating std primitives directly — the lock-discipline lint rule
// (tools/lint.py) enforces this outside common/.
//
// This header is the ONLY place thread-safety analysis may be weakened:
// any NO_THREAD_SAFETY_ANALYSIS escape hatch or analysis-shaping type
// (e.g. OptionalReaderLock in common/mutex.h builds on these macros)
// must be defined here or justified against this header's contract.

#pragma once

#if defined(__clang__) && !defined(SWIG)
#define KQR_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define KQR_THREAD_ANNOTATION(x)  // no-op: analysis is Clang-only
#endif

/// Marks a class as a capability (a lock). The string names the
/// capability kind in diagnostics ("mutex", "shared_mutex").
#define CAPABILITY(x) KQR_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases
/// a capability.
#define SCOPED_CAPABILITY KQR_THREAD_ANNOTATION(scoped_lockable)

/// Field/variable may only be read or written with `x` held.
#define GUARDED_BY(x) KQR_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field: the *pointee* may only be accessed with `x` held.
#define PT_GUARDED_BY(x) KQR_THREAD_ANNOTATION(pt_guarded_by(x))

/// Lock-ordering declarations (deadlock prevention).
#define ACQUIRED_BEFORE(...) KQR_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) KQR_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Caller must hold the capability exclusively / shared.
#define REQUIRES(...) \
  KQR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  KQR_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (and does not release it).
#define ACQUIRE(...) KQR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  KQR_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability. The argument-free form on a
/// SCOPED_CAPABILITY destructor releases whatever the constructor
/// acquired, exclusive or shared.
#define RELEASE(...) KQR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  KQR_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function tries to acquire; first argument is the success return value.
#define TRY_ACQUIRE(...) \
  KQR_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  KQR_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (non-reentrant lock protection).
#define EXCLUDES(...) KQR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (tells the analysis to
/// assume it from here on).
#define ASSERT_CAPABILITY(x) KQR_THREAD_ANNOTATION(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  KQR_THREAD_ANNOTATION(assert_shared_capability(x))

/// Function returns a reference to the capability guarding its result.
#define RETURN_CAPABILITY(x) KQR_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables analysis for one function. Zero uses outside
/// this header are permitted in src/ (enforced by review + the CI
/// thread-safety gate's suppression budget); prefer restructuring or an
/// analysis-shaping type like OptionalReaderLock instead.
#define NO_THREAD_SAFETY_ANALYSIS \
  KQR_THREAD_ANNOTATION(no_thread_safety_analysis)
