// Status: lightweight error signalling used across all kqr public APIs.
//
// Follows the Arrow/RocksDB idiom: functions that can fail return a Status
// (or a Result<T>, see result.h) instead of throwing. Exceptions are not
// used across module boundaries.

#pragma once

#include <memory>
#include <string>
#include <utility>

namespace kqr {

/// \brief Error category carried by a non-OK Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kIOError = 5,
  kCorruption = 6,
  kNotImplemented = 7,
  kInternal = 8,
  /// The serving front-end refused admission (queue full / draining).
  kUnavailable = 9,
  /// The request's deadline passed before the pipeline finished.
  kDeadlineExceeded = 10,
};

/// \brief Human-readable name of a status code, e.g. "Invalid argument".
const char* StatusCodeName(StatusCode code);

/// \brief Outcome of an operation: OK, or an error code plus message.
///
/// Status is cheap to copy in the OK case (a null pointer); error state is
/// heap-allocated since errors are the rare path.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_shared<Rep>(Rep{code, std::move(msg)});
    }
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->msg : kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }

  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<Rep> rep_;
};

}  // namespace kqr

/// Propagates a non-OK Status to the caller.
#define KQR_RETURN_NOT_OK(expr)              \
  do {                                       \
    ::kqr::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (false)

/// Assigns the value of a Result<T> expression to `lhs`, or propagates its
/// error Status. Usage: KQR_ASSIGN_OR_RETURN(auto x, MakeX());
#define KQR_ASSIGN_OR_RETURN(lhs, rexpr)                   \
  KQR_ASSIGN_OR_RETURN_IMPL(                               \
      KQR_CONCAT_NAME(_kqr_result_, __COUNTER__), lhs, rexpr)

#define KQR_CONCAT_NAME(x, y) KQR_CONCAT_NAME_IMPL(x, y)
#define KQR_CONCAT_NAME_IMPL(x, y) x##y

#define KQR_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                              \
  if (!result_name.ok()) return result_name.status();      \
  lhs = std::move(result_name).ValueUnsafe();

