// Small string helpers shared across modules.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace kqr {

/// \brief Lowercases ASCII letters; other bytes pass through.
std::string ToLowerAscii(std::string_view s);

/// \brief Splits on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// \brief Splits on any run of ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// \brief Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// \brief Strips leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// \brief True iff every byte is an ASCII letter or digit.
bool IsAlnumAscii(std::string_view s);

}  // namespace kqr

