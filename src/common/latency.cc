#include "common/latency.h"

#include <algorithm>
#include <cmath>

namespace kqr {

void LatencyRecorder::Merge(const LatencyRecorder& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
}

double LatencyRecorder::TotalSeconds() const {
  double total = 0.0;
  for (double s : samples_) total += s;
  return total;
}

double LatencyRecorder::MeanSeconds() const {
  return samples_.empty() ? 0.0 : TotalSeconds() / samples_.size();
}

double LatencyRecorder::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  // Clamp before the size_t cast: a negative or NaN p would otherwise
  // hit undefined behavior converting to an unsigned rank.
  if (std::isnan(p)) p = 100.0;
  p = std::min(100.0, std::max(0.0, p));
  std::vector<double> sorted = samples_;
  size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  if (rank > 0) --rank;  // nearest-rank, 1-based → index
  if (rank >= sorted.size()) rank = sorted.size() - 1;
  std::nth_element(sorted.begin(), sorted.begin() + rank, sorted.end());
  return sorted[rank];
}

}  // namespace kqr
