// Annotated synchronization primitives: thin wrappers over the std
// primitives carrying the thread-safety capability annotations from
// common/thread_annotations.h, so Clang's -Wthread-safety analysis can
// prove the lock discipline of every concurrent structure in src/ at
// compile time (DESIGN.md §5d).
//
// All concurrent code outside common/ must use these types instead of raw
// std::mutex / std::shared_mutex / std::lock_guard / std::unique_lock /
// std::condition_variable — the lock-discipline rule in tools/lint.py
// enforces it. The wrappers add no state and no behavior beyond the
// annotations; every method is a single inlined forward to the std
// primitive, so the generated code is identical to what the raw types
// produced.

#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace kqr {

class CondVar;

/// \brief Exclusive mutex (std::mutex) as a capability. Non-reentrant.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;  // Wait() parks on the wrapped std::mutex
  std::mutex mu_;
};

/// \brief Reader-writer mutex (std::shared_mutex) as a capability.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void ReaderLock() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// \brief Scoped exclusive lock on a Mutex (std::lock_guard equivalent).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// \brief Scoped exclusive (writer) lock on a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_->Unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// \brief Scoped shared (reader) lock on a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->ReaderLock();
  }
  ~ReaderMutexLock() RELEASE() { mu_->ReaderUnlock(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// \brief Conditionally-taken reader lock for frozen-fast-path reads.
///
/// The sharded indexes stop taking locks once Freeze() publishes the
/// structure as complete: after the release/acquire pair on the frozen
/// flag, no writer can exist, so unlocked reads are race-free. The
/// capability analysis cannot see that argument — it is a happens-before
/// proof, not a lock-discipline proof — so this scope declares the shared
/// capability held either way (SCOPED_CAPABILITY), while at runtime the
/// reader lock is skipped when `take` is false. This is the safe
/// direction to shade the analysis: every guarded read still requires
/// *some* justification in scope, and the only way to skip the RMW is the
/// documented frozen contract. Callers must pass `take = !frozen()`
/// (acquire-loaded) — nothing else.
class SCOPED_CAPABILITY OptionalReaderLock {
 public:
  OptionalReaderLock(SharedMutex* mu, bool take) ACQUIRE_SHARED(mu)
      : mu_(take ? mu : nullptr) {
    if (mu_ != nullptr) mu_->ReaderLock();
  }
  ~OptionalReaderLock() RELEASE() {
    if (mu_ != nullptr) mu_->ReaderUnlock();
  }
  OptionalReaderLock(const OptionalReaderLock&) = delete;
  OptionalReaderLock& operator=(const OptionalReaderLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// \brief Condition variable bound to kqr::Mutex. Wait() must run with
/// the mutex held (checked by the analysis via REQUIRES); notification
/// never requires the lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, parks, and reacquires before returning.
  /// Spurious wakeups happen; callers loop on their predicate:
  ///   MutexLock lock(&mu_);
  ///   while (!ready_) cv_.Wait(&mu_);
  void Wait(Mutex* mu) REQUIRES(mu) {
    // Adopt the already-held std::mutex for the duration of the wait,
    // then release the unique_lock's ownership claim so the scoped
    // MutexLock in the caller remains the one true owner.
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace kqr
