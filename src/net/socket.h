// POSIX TCP sockets behind RAII, Result-typed wrappers. This file (with
// net/poller.h) is the only place in src/ allowed to make raw socket and
// poll syscalls — tools/lint.py rule `net-discipline` — so every byte
// that crosses a process boundary flows through code with one error
// model: would-block and EOF are ordinary IoResult states, everything
// else is a typed Status, and no kqr code path can raise SIGPIPE (all
// writes are MSG_NOSIGNAL sends).
//
// Servers run sockets non-blocking under an epoll Poller; clients keep
// them non-blocking too and bound every wait with WaitReadable /
// WaitWritable, so a dead or stalled peer costs a deadline, never a hang
// (the router's typed-degradation contract, DESIGN.md §8).

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace kqr {

/// \brief Outcome of one non-blocking read or write.
struct IoResult {
  size_t bytes = 0;        ///< bytes transferred (0 with a flag below)
  bool would_block = false;  ///< retry after the fd is ready again
  bool eof = false;          ///< orderly peer shutdown (reads only)
};

/// \brief Move-only owner of one socket fd.
class Socket {
 public:
  Socket() = default;
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// \brief Listening socket on `host:port` (port 0 = kernel-assigned
  /// ephemeral port; read it back with local_port). SO_REUSEADDR is set
  /// so tests and restarts never trip over TIME_WAIT.
  static Result<Socket> ListenTcp(const std::string& host, uint16_t port,
                                  int backlog = 128);

  /// \brief Connected socket to `host:port`, or kUnavailable when the
  /// peer refuses / the timeout passes. The returned socket is
  /// non-blocking with TCP_NODELAY set (request/response frames are
  /// small; Nagle would serialize them behind delayed ACKs).
  static Result<Socket> ConnectTcp(const std::string& host, uint16_t port,
                                   double timeout_seconds);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Port the socket is bound to (listening sockets after ListenTcp).
  Result<uint16_t> local_port() const;

  Status SetNonBlocking(bool non_blocking);
  Status SetNoDelay(bool no_delay);

  /// \brief Accepts one pending connection (non-blocking, NODELAY). An
  /// invalid Socket (valid() == false) with OK status means no
  /// connection is pending on a non-blocking listener.
  Result<Socket> Accept();

  /// Non-blocking read into `buf` (recv). would_block / eof via IoResult.
  Result<IoResult> Read(std::span<std::byte> buf);

  /// Non-blocking write of `buf` (send, MSG_NOSIGNAL — a vanished peer
  /// yields a typed error, never SIGPIPE).
  Result<IoResult> Write(std::span<const std::byte> buf);

  void Close();

 private:
  explicit Socket(int fd) : fd_(fd) {}

  int fd_ = -1;
};

/// \brief Blocks until `fd` is readable (true), the timeout passes
/// (false), or a poll error occurs. timeout <= 0 polls without waiting.
Result<bool> WaitReadable(int fd, double timeout_seconds);
Result<bool> WaitWritable(int fd, double timeout_seconds);

/// \brief One fd in a multi-connection gather wait.
struct PollItem {
  int fd = -1;
  bool readable = false;  ///< out: data (or EOF/error) pending
};

/// \brief Waits until any item is readable or the timeout passes; sets
/// the readable flags. Returns the number of ready items (0 = timeout).
Result<size_t> PollReadable(std::span<PollItem> items,
                            double timeout_seconds);

}  // namespace kqr
