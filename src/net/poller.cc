#include "net/poller.h"

#include <cerrno>
#include <cstring>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <utility>

namespace kqr {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

epoll_event MakeEvent(uint64_t tag, bool want_read, bool want_write) {
  epoll_event ev{};
  ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u) |
              EPOLLRDHUP;
  ev.data.u64 = tag;
  return ev;
}

}  // namespace

Result<Poller> Poller::Create() {
  const int epfd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epfd < 0) return Errno("epoll_create1");
  return Poller(epfd);
}

Poller::~Poller() {
  if (epfd_ >= 0) ::close(epfd_);
}

Poller::Poller(Poller&& other) noexcept : epfd_(other.epfd_) {
  other.epfd_ = -1;
}

Poller& Poller::operator=(Poller&& other) noexcept {
  if (this != &other) {
    if (epfd_ >= 0) ::close(epfd_);
    epfd_ = other.epfd_;
    other.epfd_ = -1;
  }
  return *this;
}

Status Poller::Add(int fd, uint64_t tag, bool want_read, bool want_write) {
  epoll_event ev = MakeEvent(tag, want_read, want_write);
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Errno("epoll_ctl(ADD)");
  }
  return Status::OK();
}

Status Poller::Update(int fd, uint64_t tag, bool want_read,
                      bool want_write) {
  epoll_event ev = MakeEvent(tag, want_read, want_write);
  if (::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Errno("epoll_ctl(MOD)");
  }
  return Status::OK();
}

Status Poller::Remove(int fd) {
  epoll_event ev{};
  if (::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, &ev) != 0) {
    return Errno("epoll_ctl(DEL)");
  }
  return Status::OK();
}

Status Poller::Wait(int timeout_ms, std::vector<PollerEvent>* events) {
  events->clear();
  epoll_event ready[64];
  const int n = ::epoll_wait(epfd_, ready, 64, timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return Status::OK();
    return Errno("epoll_wait");
  }
  events->reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    PollerEvent event;
    event.tag = ready[i].data.u64;
    event.readable = (ready[i].events & (EPOLLIN | EPOLLRDHUP)) != 0;
    event.writable = (ready[i].events & EPOLLOUT) != 0;
    event.hangup = (ready[i].events & (EPOLLHUP | EPOLLERR)) != 0;
    events->push_back(event);
  }
  return Status::OK();
}

Result<WakeFd> WakeFd::Create() {
  const int fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (fd < 0) return Errno("eventfd");
  return WakeFd(fd);
}

WakeFd::~WakeFd() {
  if (fd_ >= 0) ::close(fd_);
}

WakeFd::WakeFd(WakeFd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

WakeFd& WakeFd::operator=(WakeFd&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void WakeFd::Notify() {
  const uint64_t one = 1;
  // A full eventfd counter (EAGAIN) already guarantees a pending wakeup;
  // any other failure is unrecoverable-by-retry and intentionally
  // ignored — the loop also wakes on its next timeout.
  [[maybe_unused]] const ssize_t n = ::write(fd_, &one, sizeof(one));
}

void WakeFd::Consume() {
  uint64_t value = 0;
  [[maybe_unused]] const ssize_t n = ::read(fd_, &value, sizeof(value));
}

}  // namespace kqr
