#include "net/frame.h"

#include "common/io/codec.h"

namespace kqr {

bool IsKnownFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kReformulateRequest) &&
         type <= static_cast<uint8_t>(FrameType::kSwapResponse);
}

void EncodeFrame(FrameType type, std::string_view payload, std::string* out) {
  PutU32Le(out, kFrameMagic);
  out->push_back(static_cast<char>(kFrameVersion));
  out->push_back(static_cast<char>(type));
  out->push_back('\0');
  out->push_back('\0');
  PutU32Le(out, static_cast<uint32_t>(payload.size()));
  PutU64Le(out, Fnv1aWords(std::span<const std::byte>(
                    reinterpret_cast<const std::byte*>(payload.data()),
                    payload.size())));
  out->append(payload);
}

std::string EncodeFrameString(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  EncodeFrame(type, payload, &out);
  return out;
}

void FrameBuffer::Append(std::span<const std::byte> bytes) {
  buffer_.append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

void FrameBuffer::Append(std::string_view bytes) {
  buffer_.append(bytes);
}

Result<std::optional<Frame>> FrameBuffer::Next() {
  if (corrupt_) {
    return Status::Corruption("frame stream already failed validation");
  }
  // Reclaim consumed prefix once it dominates the buffer, so a long-lived
  // connection doesn't accumulate every frame it ever parsed.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  const size_t avail = buffer_.size() - consumed_;
  if (avail < kFrameHeaderBytes) return std::optional<Frame>{};

  const auto* head =
      reinterpret_cast<const std::byte*>(buffer_.data() + consumed_);
  const uint32_t magic = GetU32Le(head);
  if (magic != kFrameMagic) {
    corrupt_ = true;
    return Status::Corruption("bad frame magic");
  }
  const uint8_t version = static_cast<uint8_t>(head[4]);
  if (version != kFrameVersion) {
    corrupt_ = true;
    return Status::Corruption("unsupported frame version " +
                              std::to_string(version));
  }
  const uint8_t type = static_cast<uint8_t>(head[5]);
  if (!IsKnownFrameType(type)) {
    corrupt_ = true;
    return Status::Corruption("unknown frame type " + std::to_string(type));
  }
  const uint16_t reserved = static_cast<uint16_t>(
      static_cast<uint8_t>(head[6]) |
      (static_cast<uint32_t>(static_cast<uint8_t>(head[7])) << 8));
  if (reserved != 0) {
    corrupt_ = true;
    return Status::Corruption("nonzero reserved frame bytes");
  }
  const uint32_t payload_len = GetU32Le(head + 8);
  if (payload_len > max_payload_) {
    corrupt_ = true;
    return Status::Corruption("frame payload of " +
                              std::to_string(payload_len) +
                              " bytes exceeds the frame bound");
  }
  if (avail < kFrameHeaderBytes + payload_len) return std::optional<Frame>{};

  const uint64_t want_checksum = GetU64Le(head + 12);
  const std::span<const std::byte> payload(head + kFrameHeaderBytes,
                                           payload_len);
  if (Fnv1aWords(payload) != want_checksum) {
    corrupt_ = true;
    return Status::Corruption("frame payload checksum mismatch");
  }

  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload.assign(reinterpret_cast<const char*>(payload.data()),
                       payload.size());
  consumed_ += kFrameHeaderBytes + payload_len;
  return std::optional<Frame>(std::move(frame));
}

}  // namespace kqr
