// Wire framing for the sharded serving protocol (DESIGN.md §8
// "Distributed serving"). A connection is a byte stream of frames:
//
//   [0..4)    u32 magic 'KQRF' (little-endian 0x4652514b)
//   [4]       u8  version (kFrameVersion)
//   [5]       u8  type (FrameType)
//   [6..8)    u16 reserved, must be zero
//   [8..12)   u32 payload length (bounded by kMaxFramePayload)
//   [12..20)  u64 Fnv1aWords checksum of the payload bytes
//   [20..)    payload (message encoding: net/protocol.h)
//
// The decoder is incremental — feed it whatever the socket produced and
// pull complete frames out — and corruption-first in the `common/io`
// style: a truncated stream is simply "need more bytes", but a bad
// magic, version, reserved word, oversized length, unknown type, or
// checksum mismatch is a typed kCorruption, never a crash, an
// out-of-bounds read, or a silently mis-framed stream. Peers drop the
// connection on the first corrupt frame; there is no resynchronization.
//
// Frames carry no ordering guarantee beyond the byte stream itself:
// request/response correlation lives in the payload's leading
// request-id varint (net/protocol.h), so a connection may have any
// number of requests in flight and responses may arrive out of order.

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace kqr {

inline constexpr uint32_t kFrameMagic = 0x4652514bu;  // "KQRF" little-endian
inline constexpr uint8_t kFrameVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 20;
/// Hard payload bound: a garbage length field must never drive a
/// multi-gigabyte allocation. Large enough for any realistic response
/// batch (terms + score bits for thousands of rankings).
inline constexpr size_t kMaxFramePayload = size_t{16} << 20;

/// \brief Message kind carried by a frame. Request/response pairing is by
/// kind plus the request_id inside the payload (net/protocol.h).
enum class FrameType : uint8_t {
  kReformulateRequest = 1,
  kReformulateResponse = 2,
  kHealthRequest = 3,
  kHealthResponse = 4,
  kStatsRequest = 5,
  kStatsResponse = 6,
  kSwapRequest = 7,
  kSwapResponse = 8,
};

/// True for the FrameType values a conforming peer may send.
bool IsKnownFrameType(uint8_t type);

/// \brief One decoded frame: kind plus owned payload bytes.
struct Frame {
  FrameType type = FrameType::kReformulateRequest;
  std::string payload;
};

/// \brief Appends one encoded frame (header + payload) to `out`.
void EncodeFrame(FrameType type, std::string_view payload, std::string* out);

/// Convenience: the encoded frame as its own string.
std::string EncodeFrameString(FrameType type, std::string_view payload);

/// \brief Incremental frame decoder over a received byte stream.
///
/// Append() whatever arrived; Next() yields complete frames in order,
/// std::nullopt when the buffered bytes are a (possibly empty) frame
/// prefix, or kCorruption when the stream can never parse. Consumed
/// bytes are reclaimed lazily so long streams don't grow the buffer.
/// Not thread-safe; each connection owns one.
class FrameBuffer {
 public:
  explicit FrameBuffer(size_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  void Append(std::span<const std::byte> bytes);
  void Append(std::string_view bytes);

  /// Next complete frame, nullopt when more bytes are needed, or
  /// kCorruption (sticky: once the stream is corrupt every further Next
  /// fails — a mis-framed stream has no trustworthy continuation).
  Result<std::optional<Frame>> Next();

  /// Bytes buffered but not yet consumed by Next().
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  size_t max_payload_;
  std::string buffer_;
  size_t consumed_ = 0;
  bool corrupt_ = false;
};

}  // namespace kqr
