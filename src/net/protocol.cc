#include "net/protocol.h"

#include <cstring>
#include <utility>

#include "common/io/codec.h"

namespace kqr {

namespace {

/// Upper bound accepted for any decoded string (status messages, stats
/// JSON, model paths). Generous for real traffic, small enough that a
/// hostile length field cannot drive a large allocation past the frame
/// bound.
constexpr uint64_t kMaxWireString = uint64_t{8} << 20;

void PutString(std::string_view s, std::string* out) {
  PutVarint64(out, s.size());
  out->append(s);
}

Result<std::string> ReadString(ByteReader* reader) {
  KQR_ASSIGN_OR_RETURN(const uint64_t len, reader->Varint64());
  if (len > kMaxWireString || len > reader->remaining()) {
    return Status::Corruption("wire string length " + std::to_string(len) +
                              " exceeds the payload");
  }
  KQR_ASSIGN_OR_RETURN(const std::span<const std::byte> bytes,
                       reader->Bytes(static_cast<size_t>(len)));
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

/// Validates a decoded element count against the bytes that remain: every
/// element costs at least `min_bytes` on the wire, so a count the payload
/// cannot possibly hold is rejected before any reserve().
Status CheckCount(uint64_t count, size_t min_bytes, const ByteReader& reader,
                  const char* what) {
  if (count > reader.remaining() / min_bytes) {
    return Status::Corruption(std::string("wire ") + what + " count " +
                              std::to_string(count) +
                              " exceeds the payload");
  }
  return Status::OK();
}

/// Result<Status> would be ill-formed (value and error constructors
/// collide), so the decoded status travels through an out-parameter and
/// the return value reports the decode itself.
Status ReadStatus(ByteReader* reader, Status* out) {
  KQR_ASSIGN_OR_RETURN(const uint64_t code, reader->Varint64());
  if (code > static_cast<uint64_t>(StatusCode::kDeadlineExceeded)) {
    return Status::Corruption("unknown wire status code " +
                              std::to_string(code));
  }
  KQR_ASSIGN_OR_RETURN(std::string message, ReadString(reader));
  if (code == 0 && !message.empty()) {
    return Status::Corruption("OK wire status carries a message");
  }
  *out = Status(static_cast<StatusCode>(code), std::move(message));
  return Status::OK();
}

void EncodeRanking(const std::vector<ReformulatedQuery>& ranking,
                   std::string* out) {
  PutVarint64(out, ranking.size());
  for (const ReformulatedQuery& q : ranking) {
    PutVarint64(out, q.terms.size());
    for (TermId t : q.terms) PutVarint64(out, t);
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(q.score));
    std::memcpy(&bits, &q.score, sizeof(bits));
    PutU64Le(out, bits);
    out->push_back(q.is_identity ? '\1' : '\0');
  }
}

Result<std::vector<ReformulatedQuery>> ReadRanking(ByteReader* reader) {
  KQR_ASSIGN_OR_RETURN(const uint64_t count, reader->Varint64());
  KQR_RETURN_NOT_OK(CheckCount(count, 1, *reader, "ranking"));
  std::vector<ReformulatedQuery> ranking;
  ranking.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    ReformulatedQuery q;
    KQR_ASSIGN_OR_RETURN(const uint64_t num_terms, reader->Varint64());
    KQR_RETURN_NOT_OK(CheckCount(num_terms, 1, *reader, "ranking term"));
    q.terms.reserve(static_cast<size_t>(num_terms));
    for (uint64_t j = 0; j < num_terms; ++j) {
      KQR_ASSIGN_OR_RETURN(const uint64_t term, reader->Varint64());
      if (term > kInvalidTermId) {
        return Status::Corruption("wire term id out of range");
      }
      q.terms.push_back(static_cast<TermId>(term));
    }
    KQR_ASSIGN_OR_RETURN(const uint64_t bits, reader->U64Le());
    std::memcpy(&q.score, &bits, sizeof(q.score));
    KQR_ASSIGN_OR_RETURN(const std::span<const std::byte> flag,
                         reader->Bytes(1));
    const uint8_t identity = static_cast<uint8_t>(flag[0]);
    if (identity > 1) {
      return Status::Corruption("wire identity flag out of range");
    }
    q.is_identity = identity == 1;
    ranking.push_back(std::move(q));
  }
  return ranking;
}

Status ExpectDone(const ByteReader& reader) {
  if (!reader.done()) {
    return Status::Corruption("trailing bytes after wire message");
  }
  return Status::OK();
}

}  // namespace

void EncodeStatus(const Status& status, std::string* out) {
  PutVarint64(out, static_cast<uint64_t>(status.code()));
  PutString(status.ok() ? std::string_view{} : status.message(), out);
}

std::string EncodeReformulateRequest(const ReformulateRequest& request) {
  std::string out;
  PutVarint64(&out, request.request_id);
  PutVarint64(&out, request.k);
  PutVarint64(&out, request.deadline_micros);
  PutVarint64(&out, request.queries.size());
  for (const std::vector<TermId>& query : request.queries) {
    PutVarint64(&out, query.size());
    for (TermId t : query) PutVarint64(&out, t);
  }
  return out;
}

Result<ReformulateRequest> DecodeReformulateRequest(
    std::span<const std::byte> payload) {
  ByteReader reader(payload);
  ReformulateRequest request;
  KQR_ASSIGN_OR_RETURN(request.request_id, reader.Varint64());
  KQR_ASSIGN_OR_RETURN(request.k, reader.Varint64());
  KQR_ASSIGN_OR_RETURN(request.deadline_micros, reader.Varint64());
  KQR_ASSIGN_OR_RETURN(const uint64_t num_queries, reader.Varint64());
  KQR_RETURN_NOT_OK(CheckCount(num_queries, 1, reader, "query"));
  request.queries.reserve(static_cast<size_t>(num_queries));
  for (uint64_t i = 0; i < num_queries; ++i) {
    KQR_ASSIGN_OR_RETURN(const uint64_t num_terms, reader.Varint64());
    KQR_RETURN_NOT_OK(CheckCount(num_terms, 1, reader, "query term"));
    std::vector<TermId> terms;
    terms.reserve(static_cast<size_t>(num_terms));
    for (uint64_t j = 0; j < num_terms; ++j) {
      KQR_ASSIGN_OR_RETURN(const uint64_t term, reader.Varint64());
      if (term > kInvalidTermId) {
        return Status::Corruption("wire term id out of range");
      }
      terms.push_back(static_cast<TermId>(term));
    }
    request.queries.push_back(std::move(terms));
  }
  KQR_RETURN_NOT_OK(ExpectDone(reader));
  return request;
}

std::string EncodeReformulateResponse(const ReformulateResponse& response) {
  std::string out;
  PutVarint64(&out, response.request_id);
  PutVarint64(&out, response.results.size());
  for (const Result<std::vector<ReformulatedQuery>>& result :
       response.results) {
    EncodeStatus(result.status(), &out);
    if (result.ok()) EncodeRanking(*result, &out);
  }
  return out;
}

Result<ReformulateResponse> DecodeReformulateResponse(
    std::span<const std::byte> payload) {
  ByteReader reader(payload);
  ReformulateResponse response;
  KQR_ASSIGN_OR_RETURN(response.request_id, reader.Varint64());
  KQR_ASSIGN_OR_RETURN(const uint64_t num_results, reader.Varint64());
  KQR_RETURN_NOT_OK(CheckCount(num_results, 2, reader, "result"));
  response.results.reserve(static_cast<size_t>(num_results));
  for (uint64_t i = 0; i < num_results; ++i) {
    Status status;
    KQR_RETURN_NOT_OK(ReadStatus(&reader, &status));
    if (status.ok()) {
      KQR_ASSIGN_OR_RETURN(std::vector<ReformulatedQuery> ranking,
                           ReadRanking(&reader));
      response.results.emplace_back(std::move(ranking));
    } else {
      response.results.emplace_back(std::move(status));
    }
  }
  KQR_RETURN_NOT_OK(ExpectDone(reader));
  return response;
}

std::string EncodeRequestIdPayload(uint64_t request_id) {
  std::string out;
  PutVarint64(&out, request_id);
  return out;
}

Result<uint64_t> DecodeRequestIdPayload(std::span<const std::byte> payload) {
  ByteReader reader(payload);
  KQR_ASSIGN_OR_RETURN(const uint64_t request_id, reader.Varint64());
  KQR_RETURN_NOT_OK(ExpectDone(reader));
  return request_id;
}

std::string EncodeHealthResponse(const HealthResponse& response) {
  std::string out;
  PutVarint64(&out, response.request_id);
  PutVarint64(&out, response.model_generation);
  PutVarint64(&out, response.vocab_terms);
  PutVarint64(&out, response.prepared_terms);
  return out;
}

Result<HealthResponse> DecodeHealthResponse(
    std::span<const std::byte> payload) {
  ByteReader reader(payload);
  HealthResponse response;
  KQR_ASSIGN_OR_RETURN(response.request_id, reader.Varint64());
  KQR_ASSIGN_OR_RETURN(response.model_generation, reader.Varint64());
  KQR_ASSIGN_OR_RETURN(response.vocab_terms, reader.Varint64());
  KQR_ASSIGN_OR_RETURN(response.prepared_terms, reader.Varint64());
  KQR_RETURN_NOT_OK(ExpectDone(reader));
  return response;
}

std::string EncodeStatsResponse(const StatsResponse& response) {
  std::string out;
  PutVarint64(&out, response.request_id);
  PutString(response.json, &out);
  return out;
}

Result<StatsResponse> DecodeStatsResponse(
    std::span<const std::byte> payload) {
  ByteReader reader(payload);
  StatsResponse response;
  KQR_ASSIGN_OR_RETURN(response.request_id, reader.Varint64());
  KQR_ASSIGN_OR_RETURN(response.json, ReadString(&reader));
  KQR_RETURN_NOT_OK(ExpectDone(reader));
  return response;
}

std::string EncodeSwapRequest(const SwapRequest& request) {
  std::string out;
  PutVarint64(&out, request.request_id);
  PutString(request.model_path, &out);
  return out;
}

Result<SwapRequest> DecodeSwapRequest(std::span<const std::byte> payload) {
  ByteReader reader(payload);
  SwapRequest request;
  KQR_ASSIGN_OR_RETURN(request.request_id, reader.Varint64());
  KQR_ASSIGN_OR_RETURN(request.model_path, ReadString(&reader));
  KQR_RETURN_NOT_OK(ExpectDone(reader));
  return request;
}

std::string EncodeSwapResponse(const SwapResponse& response) {
  std::string out;
  PutVarint64(&out, response.request_id);
  EncodeStatus(response.status, &out);
  PutVarint64(&out, response.model_generation);
  return out;
}

Result<SwapResponse> DecodeSwapResponse(std::span<const std::byte> payload) {
  ByteReader reader(payload);
  SwapResponse response;
  KQR_ASSIGN_OR_RETURN(response.request_id, reader.Varint64());
  KQR_RETURN_NOT_OK(ReadStatus(&reader, &response.status));
  KQR_ASSIGN_OR_RETURN(response.model_generation, reader.Varint64());
  KQR_RETURN_NOT_OK(ExpectDone(reader));
  return response;
}

}  // namespace kqr
