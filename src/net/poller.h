// epoll and eventfd behind RAII wrappers — with net/socket.h, the only
// sanctioned home for raw socket/poll syscalls in src/ (tools/lint.py
// rule `net-discipline`). The shard event loop (shard/shard_server.cc)
// multiplexes its listener, its connections, and a wake fd through one
// Poller; worker-thread completion callbacks ring the WakeFd so the loop
// never spins and never misses a response.

#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace kqr {

/// \brief One readiness event; `tag` is the caller's registration tag.
struct PollerEvent {
  uint64_t tag = 0;
  bool readable = false;
  bool writable = false;
  /// Peer hung up or the fd errored; the owner should read (to observe
  /// the typed EOF/reset) and close.
  bool hangup = false;
};

/// \brief Move-only epoll instance. Level-triggered — the loop re-sees
/// unfinished work on the next Wait, so partial reads/writes need no
/// state machine beyond the connection buffers.
class Poller {
 public:
  static Result<Poller> Create();

  Poller() = default;
  ~Poller();
  Poller(Poller&& other) noexcept;
  Poller& operator=(Poller&& other) noexcept;
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  bool valid() const { return epfd_ >= 0; }

  Status Add(int fd, uint64_t tag, bool want_read, bool want_write);
  Status Update(int fd, uint64_t tag, bool want_read, bool want_write);
  Status Remove(int fd);

  /// \brief Waits up to `timeout_ms` (-1 = forever) and appends ready
  /// events to `events` (cleared first). Zero events = timeout.
  Status Wait(int timeout_ms, std::vector<PollerEvent>* events);

 private:
  explicit Poller(int epfd) : epfd_(epfd) {}

  int epfd_ = -1;
};

/// \brief Cross-thread wakeup (eventfd): any thread Notify()s, the event
/// loop sees its Poller tag readable and Consume()s. Notifications
/// coalesce; one Consume acknowledges any number of Notifies.
class WakeFd {
 public:
  static Result<WakeFd> Create();

  WakeFd() = default;
  ~WakeFd();
  WakeFd(WakeFd&& other) noexcept;
  WakeFd& operator=(WakeFd&& other) noexcept;
  WakeFd(const WakeFd&) = delete;
  WakeFd& operator=(const WakeFd&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  void Notify();
  void Consume();

 private:
  explicit WakeFd(int fd) : fd_(fd) {}

  int fd_ = -1;
};

}  // namespace kqr
