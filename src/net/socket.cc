#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>
#include <vector>

namespace kqr {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

Result<sockaddr_in> ResolveV4(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  // Numeric IPv4 only: shard fleets are addressed by explicit IPs (tests
  // and benches use loopback). Name resolution would drag blocking DNS
  // into deadline-bounded code paths.
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: '" + host +
                                   "'");
  }
  return addr;
}

int PollTimeoutMs(double timeout_seconds) {
  if (timeout_seconds <= 0.0) return 0;
  const double ms = timeout_seconds * 1e3;
  constexpr double kMaxMs = 1e9;
  return static_cast<int>(std::min(ms < 1.0 ? 1.0 : ms, kMaxMs));
}

}  // namespace

Socket::~Socket() { Close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> Socket::ListenTcp(const std::string& host, uint16_t port,
                                 int backlog) {
  KQR_ASSIGN_OR_RETURN(const sockaddr_in addr, ResolveV4(host, port));
  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) return Errno("socket");
  const int one = 1;
  if (::setsockopt(sock.fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }
  if (::bind(sock.fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(sock.fd_, backlog) != 0) return Errno("listen");
  KQR_RETURN_NOT_OK(sock.SetNonBlocking(true));
  return sock;
}

Result<Socket> Socket::ConnectTcp(const std::string& host, uint16_t port,
                                  double timeout_seconds) {
  KQR_ASSIGN_OR_RETURN(const sockaddr_in addr, ResolveV4(host, port));
  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) return Errno("socket");
  KQR_RETURN_NOT_OK(sock.SetNonBlocking(true));
  const int rc = ::connect(sock.fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr));
  if (rc != 0) {
    if (errno != EINPROGRESS) {
      return Status::Unavailable("connect " + host + ":" +
                                 std::to_string(port) + ": " +
                                 std::strerror(errno));
    }
    KQR_ASSIGN_OR_RETURN(const bool writable,
                         WaitWritable(sock.fd_, timeout_seconds));
    if (!writable) {
      return Status::Unavailable("connect " + host + ":" +
                                 std::to_string(port) + ": timed out");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(sock.fd_, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      return Errno("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      return Status::Unavailable("connect " + host + ":" +
                                 std::to_string(port) + ": " +
                                 std::strerror(err));
    }
  }
  KQR_RETURN_NOT_OK(sock.SetNoDelay(true));
  return sock;
}

Result<uint16_t> Socket::local_port() const {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

Status Socket::SetNonBlocking(bool non_blocking) {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  const int want =
      non_blocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_, F_SETFL, want) != 0) return Errno("fcntl(F_SETFL)");
  return Status::OK();
}

Status Socket::SetNoDelay(bool no_delay) {
  const int v = no_delay ? 1 : 0;
  if (::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &v, sizeof(v)) != 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return Status::OK();
}

Result<Socket> Socket::Accept() {
  const int fd = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Socket();
    // A connection that reset between arrival and accept is not a
    // listener failure; report "nothing pending" and let epoll re-arm.
    if (errno == ECONNABORTED) return Socket();
    return Errno("accept");
  }
  Socket sock(fd);
  KQR_RETURN_NOT_OK(sock.SetNonBlocking(true));
  KQR_RETURN_NOT_OK(sock.SetNoDelay(true));
  return sock;
}

Result<IoResult> Socket::Read(std::span<std::byte> buf) {
  IoResult io;
  const ssize_t n = ::recv(fd_, buf.data(), buf.size(), 0);
  if (n > 0) {
    io.bytes = static_cast<size_t>(n);
    return io;
  }
  if (n == 0) {
    io.eof = true;
    return io;
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
    io.would_block = true;
    return io;
  }
  // A peer that vanished mid-stream (reset) reads as typed unavailability
  // so the caller can degrade instead of treating it as local I/O error.
  if (errno == ECONNRESET || errno == EPIPE) {
    return Status::Unavailable(std::string("peer reset: ") +
                               std::strerror(errno));
  }
  return Errno("recv");
}

Result<IoResult> Socket::Write(std::span<const std::byte> buf) {
  IoResult io;
  const ssize_t n = ::send(fd_, buf.data(), buf.size(), MSG_NOSIGNAL);
  if (n >= 0) {
    io.bytes = static_cast<size_t>(n);
    return io;
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
    io.would_block = true;
    return io;
  }
  if (errno == ECONNRESET || errno == EPIPE) {
    return Status::Unavailable(std::string("peer reset: ") +
                               std::strerror(errno));
  }
  return Errno("send");
}

Result<bool> WaitReadable(int fd, double timeout_seconds) {
  pollfd p{};
  p.fd = fd;
  p.events = POLLIN;
  const int rc = ::poll(&p, 1, PollTimeoutMs(timeout_seconds));
  if (rc < 0) {
    if (errno == EINTR) return false;
    return Errno("poll");
  }
  return rc > 0;
}

Result<bool> WaitWritable(int fd, double timeout_seconds) {
  pollfd p{};
  p.fd = fd;
  p.events = POLLOUT;
  const int rc = ::poll(&p, 1, PollTimeoutMs(timeout_seconds));
  if (rc < 0) {
    if (errno == EINTR) return false;
    return Errno("poll");
  }
  return rc > 0;
}

Result<size_t> PollReadable(std::span<PollItem> items,
                            double timeout_seconds) {
  std::vector<pollfd> fds;
  fds.reserve(items.size());
  for (const PollItem& item : items) {
    pollfd p{};
    p.fd = item.fd;
    p.events = POLLIN;
    fds.push_back(p);
  }
  const int rc =
      ::poll(fds.data(), fds.size(), PollTimeoutMs(timeout_seconds));
  if (rc < 0) {
    if (errno == EINTR) {
      for (PollItem& item : items) item.readable = false;
      return size_t{0};
    }
    return Errno("poll");
  }
  size_t ready = 0;
  for (size_t i = 0; i < items.size(); ++i) {
    // Hangup/error states count as readable: the next Read reports the
    // EOF or reset as a typed outcome.
    items[i].readable =
        (fds[i].revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL)) != 0;
    if (items[i].readable) ++ready;
  }
  return ready;
}

}  // namespace kqr
