// Message schemas for the sharded serving protocol, one per FrameType
// (net/frame.h). Encodings ride the common/io codec primitives: varints
// for ids/counts, length-prefixed UTF-8 for strings, and raw
// little-endian u64 bit patterns for scores — a ranking decoded from the
// wire is bit-identical to the ranking the shard computed, which is what
// lets the router's merged answers fingerprint-match a single-process
// ReformulateTerms (DESIGN.md §8).
//
// Every decoder is corruption-first: element counts are sanity-bounded
// against the remaining payload before any allocation, enum values are
// range-checked, and any malformed payload fails with a typed
// kCorruption — the frame checksum catches transport damage, these
// checks catch a malicious or buggy peer.
//
// Multiplexing contract: every payload (request and response alike)
// begins with a caller-chosen `request_id` varint, and a response
// always echoes the id of the request it answers. That is the whole
// mechanism that lets one connection carry any number of in-flight
// requests: the server may interleave responses in any order (it
// completes batches as they finish — shard/shard_server.h), and the
// client matches each response to its request by id, never by arrival
// order. Ids need only be unique among a connection's in-flight
// requests; the router uses a per-router monotonic counter. A response
// carrying an id the client is not waiting for is a protocol violation
// and is treated like any corrupt frame (close, no resync).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/reformulator.h"

namespace kqr {

/// \brief Reformulate a batch of term queries. `deadline_micros` is the
/// caller's remaining budget, relative to receipt (0 = no deadline); the
/// shard applies it per query through the inner server's admission path.
struct ReformulateRequest {
  uint64_t request_id = 0;
  uint64_t k = 10;
  uint64_t deadline_micros = 0;
  std::vector<std::vector<TermId>> queries;
};

/// \brief Per-query outcomes, parallel to the request's `queries`. Each
/// entry is a full ranking or a typed error — never a partial ranking.
struct ReformulateResponse {
  uint64_t request_id = 0;
  std::vector<Result<std::vector<ReformulatedQuery>>> results;
};

/// \brief Liveness + identity probe answered inline by the shard's event
/// loop (it never queues behind reformulation work).
struct HealthResponse {
  uint64_t request_id = 0;
  /// Monotonic model generation: bumped by every hot swap.
  uint64_t model_generation = 0;
  uint64_t vocab_terms = 0;
  uint64_t prepared_terms = 0;
};

/// \brief Metrics scrape: the shard's own counters plus the active
/// model's registry, as one JSON document.
struct StatsResponse {
  uint64_t request_id = 0;
  std::string json;
};

/// \brief Hot model swap: load the v3 model file at `model_path` and roll
/// the shard over to it with zero shed requests (DESIGN.md §8).
struct SwapRequest {
  uint64_t request_id = 0;
  std::string model_path;
};

struct SwapResponse {
  uint64_t request_id = 0;
  Status status;
  /// Generation after the swap (unchanged when `status` is an error).
  uint64_t model_generation = 0;
};

// -- Status over the wire ----------------------------------------------

/// Appends a Status as varint code + length-prefixed message.
void EncodeStatus(const Status& status, std::string* out);

// -- Encoders ----------------------------------------------------------

std::string EncodeReformulateRequest(const ReformulateRequest& request);
std::string EncodeReformulateResponse(const ReformulateResponse& response);
/// Health and stats requests carry only the request id.
std::string EncodeRequestIdPayload(uint64_t request_id);
std::string EncodeHealthResponse(const HealthResponse& response);
std::string EncodeStatsResponse(const StatsResponse& response);
std::string EncodeSwapRequest(const SwapRequest& request);
std::string EncodeSwapResponse(const SwapResponse& response);

// -- Decoders (typed kCorruption on any malformed payload) -------------

Result<ReformulateRequest> DecodeReformulateRequest(
    std::span<const std::byte> payload);
Result<ReformulateResponse> DecodeReformulateResponse(
    std::span<const std::byte> payload);
Result<uint64_t> DecodeRequestIdPayload(std::span<const std::byte> payload);
Result<HealthResponse> DecodeHealthResponse(
    std::span<const std::byte> payload);
Result<StatsResponse> DecodeStatsResponse(std::span<const std::byte> payload);
Result<SwapRequest> DecodeSwapRequest(std::span<const std::byte> payload);
Result<SwapResponse> DecodeSwapResponse(std::span<const std::byte> payload);

}  // namespace kqr
