#include "search/query.h"

#include "common/string_util.h"

namespace kqr {

std::string KeywordQuery::ToString() const {
  std::string out;
  for (size_t i = 0; i < keywords.size(); ++i) {
    if (i > 0) out += " ";
    out += "[" + keywords[i].surface + "]";
  }
  return out;
}

KeywordQuery QueryParser::Parse(const std::string& text) const {
  std::vector<std::string> words = SplitWhitespace(text);
  KeywordQuery query;

  size_t i = 0;
  while (i < words.size()) {
    // Greedy longest multi-word atomic match first.
    size_t max_span = std::min(options_.max_atom_words,
                               words.size() - i);
    bool matched = false;
    for (size_t span = max_span; span >= 2; --span) {
      std::string candidate;
      for (size_t j = 0; j < span; ++j) {
        if (j > 0) candidate += ' ';
        candidate += words[i + j];
      }
      std::string atom = analyzer_.AnalyzeAtomic(candidate);
      std::vector<TermId> terms = vocab_.FindAllFields(atom);
      if (!terms.empty()) {
        query.keywords.push_back(QueryKeyword{candidate, std::move(terms)});
        i += span;
        matched = true;
        break;
      }
    }
    if (matched) continue;

    // Single word: try the segmented normalization (stemmed), then the
    // atomic one.
    const std::string& word = words[i];
    std::vector<std::string> normalized =
        analyzer_.AnalyzeSegmented(word);
    std::vector<TermId> terms;
    if (!normalized.empty()) {
      terms = vocab_.FindAllFields(normalized.front());
    }
    if (terms.empty()) {
      std::string atom = analyzer_.AnalyzeAtomic(word);
      terms = vocab_.FindAllFields(atom);
    }
    query.keywords.push_back(QueryKeyword{word, std::move(terms)});
    ++i;
  }
  return query;
}

}  // namespace kqr
