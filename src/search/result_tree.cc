#include "search/result_tree.h"

#include <unordered_set>

namespace kqr {

size_t ResultTree::NumNodes() const {
  std::unordered_set<NodeId> nodes;
  for (const auto& path : paths) {
    for (NodeId n : path) nodes.insert(n);
  }
  return nodes.size();
}

size_t ResultTree::TotalLength() const {
  size_t total = 0;
  for (const auto& path : paths) {
    if (!path.empty()) total += path.size() - 1;
  }
  return total;
}

std::string ResultTree::ToString(const TatGraph& graph) const {
  std::string out = "root=" + graph.DescribeNode(root);
  for (size_t i = 0; i < paths.size(); ++i) {
    out += " | k" + std::to_string(i) + ":";
    for (size_t j = 0; j < paths[i].size(); ++j) {
      if (j > 0) out += "->";
      out += graph.DescribeNode(paths[i][j]);
    }
  }
  return out;
}

}  // namespace kqr
