// Query results (Def. 3): a result is a minimal subtree of the tuple graph
// connecting tuples that jointly match all query keywords.

#pragma once

#include <string>
#include <vector>

#include "graph/tat_graph.h"

namespace kqr {

/// \brief One keyword-search result: the connecting root tuple plus, per
/// query keyword, the shortest path from the root to a tuple matching that
/// keyword. (BANKS-style answer; the union of the paths is the subtree.)
struct ResultTree {
  NodeId root = kInvalidNodeId;
  /// paths[i] = root ... matching-tuple for keyword i (node ids; the first
  /// element is `root`).
  std::vector<std::vector<NodeId>> paths;
  /// 1 / (1 + total path length) — larger is better.
  double score = 0.0;

  /// Distinct tuples in the subtree.
  size_t NumNodes() const;
  /// Total edges across the paths (the tree weight used in the score).
  size_t TotalLength() const;

  std::string ToString(const TatGraph& graph) const;
};

}  // namespace kqr

