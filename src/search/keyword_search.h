// KeywordSearch: BANKS-style backward expansion over the tuple graph.
//
// For each query keyword, the tuples containing it (via the inverted
// index) form an origin set; multi-source BFS over foreign-key edges
// computes shortest distances; tuples reached from every origin set are
// result roots, ranked by 1/(1 + Σ distances). This realizes Def. 3's
// "subtree connecting the matching nodes" and supplies the result-size
// statistics of Table III.

#pragma once

#include <vector>

#include "graph/tat_graph.h"
#include "search/query.h"
#include "search/result_tree.h"
#include "text/inverted_index.h"

namespace kqr {

struct SearchOptions {
  /// Maximum BFS radius from each keyword's origin set.
  size_t max_radius = 3;
  /// Result trees materialized by Search(); counting is unaffected.
  size_t top_k = 10;
  /// When non-zero, tuples with more than this many graph neighbors
  /// cannot serve as result roots. A hub root (a venue with hundreds of
  /// papers) connects everything to everything and carries no specific
  /// relationship; capping root degree restricts results to meaningful
  /// joins, the same role as BANKS-style root-degree normalization.
  size_t max_root_degree = 0;
  /// When non-zero, the backward-expansion BFS does not traverse
  /// *through* tuples with more than this many neighbors (it may still
  /// reach them as endpoints). Stronger than max_root_degree: paths
  /// themselves must be specific.
  size_t max_expand_degree = 0;
};

/// \brief Aggregate of a search run.
struct SearchOutcome {
  std::vector<ResultTree> results;  // top-k by score
  size_t total_results = 0;         // all connecting roots found
};

/// \brief Keyword search over one database/graph pair.
class KeywordSearch {
 public:
  KeywordSearch(const TatGraph& graph, const InvertedIndex& index,
                SearchOptions options = {})
      : graph_(graph), index_(index), options_(options) {}

  /// \brief Full search: top-k result trees plus the total result count.
  /// Queries with an unresolvable keyword produce zero results.
  SearchOutcome Search(const KeywordQuery& query) const;

  /// \brief Count of distinct connecting *roots* (skips tree
  /// materialization). Fast coarse cohesion signal.
  size_t CountResults(const KeywordQuery& query) const;

  /// \brief Count of distinct result *trees* per Def. 3: each combination
  /// of (root, one matching tuple per keyword reachable from the root) is
  /// a separate result — Σ_root Π_i |origins of keyword i within radius
  /// of root|. This is what a BANKS-style enumerator would return and the
  /// Table III "result size" metric.
  size_t CountTrees(const KeywordQuery& query) const;

 private:
  SearchOutcome Run(const KeywordQuery& query, bool materialize) const;

  const TatGraph& graph_;
  const InvertedIndex& index_;
  SearchOptions options_;
};

}  // namespace kqr

