#include "search/keyword_search.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "common/top_k.h"

namespace kqr {

namespace {

/// Per-keyword BFS layer: distance and BFS parent for path reconstruction.
struct Reach {
  uint32_t dist;
  NodeId parent;  // kInvalidNodeId at origins
};

/// Multi-source BFS from `origins` over tuple—tuple edges only.
std::unordered_map<NodeId, Reach> TupleBfs(const TatGraph& graph,
                                           const std::vector<NodeId>& origins,
                                           const SearchOptions& options) {
  std::unordered_map<NodeId, Reach> reach;
  std::deque<NodeId> queue;
  for (NodeId o : origins) {
    if (reach.emplace(o, Reach{0, kInvalidNodeId}).second) {
      queue.push_back(o);
    }
  }
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    uint32_t d = reach[u].dist;
    if (d >= options.max_radius) continue;
    if (options.max_expand_degree > 0 && d > 0 &&
        graph.Degree(u) > options.max_expand_degree) {
      continue;  // hub reached as endpoint; do not tunnel through it
    }
    for (const Arc& arc : graph.Neighbors(u)) {
      NodeId v = arc.target;
      if (graph.KindOf(v) != NodeKind::kTuple) continue;
      if (reach.emplace(v, Reach{d + 1, u}).second) {
        queue.push_back(v);
      }
    }
  }
  return reach;
}

/// Root-to-origin path via BFS parents (parents point toward the origin).
std::vector<NodeId> ReconstructPath(
    const std::unordered_map<NodeId, Reach>& reach, NodeId root) {
  std::vector<NodeId> path;
  NodeId cur = root;
  path.push_back(cur);
  while (true) {
    auto it = reach.find(cur);
    if (it == reach.end() || it->second.parent == kInvalidNodeId) break;
    cur = it->second.parent;
    path.push_back(cur);
  }
  return path;
}

}  // namespace

SearchOutcome KeywordSearch::Run(const KeywordQuery& query,
                                 bool materialize) const {
  SearchOutcome outcome;
  if (query.keywords.empty()) return outcome;

  // Origin tuple sets per keyword.
  std::vector<std::vector<NodeId>> origins(query.keywords.size());
  for (size_t i = 0; i < query.keywords.size(); ++i) {
    for (TermId term : query.keywords[i].terms) {
      for (const Posting& p : index_.Lookup(term)) {
        origins[i].push_back(graph_.NodeOfTuple(p.tuple));
      }
    }
    std::sort(origins[i].begin(), origins[i].end());
    origins[i].erase(std::unique(origins[i].begin(), origins[i].end()),
                     origins[i].end());
    if (origins[i].empty()) return outcome;  // unmatched keyword: no result
  }

  // BFS per keyword; iterate roots over the smallest reach set.
  std::vector<std::unordered_map<NodeId, Reach>> reaches;
  reaches.reserve(origins.size());
  for (const auto& o : origins) {
    reaches.push_back(TupleBfs(graph_, o, options_));
  }
  size_t smallest = 0;
  for (size_t i = 1; i < reaches.size(); ++i) {
    if (reaches[i].size() < reaches[smallest].size()) smallest = i;
  }

  TopK<NodeId> top(materialize ? options_.top_k : 0);
  for (const auto& [root, reach0] : reaches[smallest]) {
    if (options_.max_root_degree > 0 &&
        graph_.Degree(root) > options_.max_root_degree) {
      continue;
    }
    uint32_t total = reach0.dist;
    bool connects = true;
    for (size_t i = 0; i < reaches.size() && connects; ++i) {
      if (i == smallest) continue;
      auto it = reaches[i].find(root);
      if (it == reaches[i].end()) {
        connects = false;
      } else {
        total += it->second.dist;
      }
    }
    if (!connects) continue;
    ++outcome.total_results;
    if (materialize) {
      top.Add(1.0 / (1.0 + double(total)), root);
    }
  }

  if (materialize) {
    for (auto& [root, score] : top.TakeSorted()) {
      ResultTree tree;
      tree.root = root;
      tree.score = score;
      tree.paths.reserve(reaches.size());
      for (const auto& reach : reaches) {
        tree.paths.push_back(ReconstructPath(reach, root));
      }
      outcome.results.push_back(std::move(tree));
    }
  }
  return outcome;
}

SearchOutcome KeywordSearch::Search(const KeywordQuery& query) const {
  return Run(query, /*materialize=*/true);
}

size_t KeywordSearch::CountTrees(const KeywordQuery& query) const {
  if (query.keywords.empty()) return 0;

  // Per-keyword: how many origin tuples lie within the radius of each
  // node. One bounded BFS per origin, accumulating counts.
  std::vector<std::unordered_map<NodeId, uint32_t>> counts(
      query.keywords.size());
  for (size_t i = 0; i < query.keywords.size(); ++i) {
    std::vector<NodeId> origins;
    for (TermId term : query.keywords[i].terms) {
      for (const Posting& p : index_.Lookup(term)) {
        origins.push_back(graph_.NodeOfTuple(p.tuple));
      }
    }
    std::sort(origins.begin(), origins.end());
    origins.erase(std::unique(origins.begin(), origins.end()),
                  origins.end());
    if (origins.empty()) return 0;
    for (NodeId o : origins) {
      auto reach = TupleBfs(graph_, {o}, options_);
      for (const auto& [node, r] : reach) ++counts[i][node];
    }
  }

  // Roots: iterate the smallest map; multiply per-keyword leaf counts.
  size_t smallest = 0;
  for (size_t i = 1; i < counts.size(); ++i) {
    if (counts[i].size() < counts[smallest].size()) smallest = i;
  }
  double total = 0;
  for (const auto& [root, count0] : counts[smallest]) {
    if (options_.max_root_degree > 0 &&
        graph_.Degree(root) > options_.max_root_degree) {
      continue;
    }
    double trees = count0;
    bool connects = true;
    for (size_t i = 0; i < counts.size() && connects; ++i) {
      if (i == smallest) continue;
      auto it = counts[i].find(root);
      if (it == counts[i].end()) {
        connects = false;
      } else {
        trees *= static_cast<double>(it->second);
      }
    }
    if (connects) total += trees;
  }
  constexpr double kCap = 1e15;
  return static_cast<size_t>(std::min(total, kCap));
}

size_t KeywordSearch::CountResults(const KeywordQuery& query) const {
  return Run(query, /*materialize=*/false).total_results;
}

}  // namespace kqr
