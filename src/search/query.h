// Keyword query parsing (Def. 2): free text → keywords, each resolved to
// the term nodes it matches. Multi-word atomic terms (author or venue
// names) are recognized by greedy longest match, so "christian s. jensen
// spatio temporal" parses as [author-name][word][word].

#pragma once

#include <string>
#include <vector>

#include "text/analyzer.h"
#include "text/vocabulary.h"

namespace kqr {

/// \brief One query keyword: the raw surface text and every term node it
/// resolves to (the same text may exist in several fields, Def. 5).
struct QueryKeyword {
  std::string surface;
  std::vector<TermId> terms;

  bool resolved() const { return !terms.empty(); }
};

/// \brief A parsed keyword query Q = [q1, ..., qm].
struct KeywordQuery {
  std::vector<QueryKeyword> keywords;

  size_t size() const { return keywords.size(); }
  bool FullyResolved() const {
    for (const QueryKeyword& k : keywords) {
      if (!k.resolved()) return false;
    }
    return !keywords.empty();
  }
  std::string ToString() const;
};

struct QueryParserOptions {
  /// Longest multi-word atomic term attempted (author names etc.).
  size_t max_atom_words = 6;
};

/// \brief Parses raw text against the vocabulary.
class QueryParser {
 public:
  QueryParser(const Analyzer& analyzer, const Vocabulary& vocab,
              QueryParserOptions options = {})
      : analyzer_(analyzer), vocab_(vocab), options_(options) {}

  KeywordQuery Parse(const std::string& text) const;

 private:
  const Analyzer& analyzer_;
  const Vocabulary& vocab_;
  QueryParserOptions options_;
};

}  // namespace kqr

