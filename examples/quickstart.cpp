// Quickstart: build a tiny bibliographic database by hand, stand up the
// reformulation engine, and reformulate a query — the 60-second tour of
// the public API.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "core/engine.h"

using namespace kqr;

int main() {
  // 1. Define a schema: venues <- papers, with text roles marking which
  //    columns produce term nodes.
  Database db("demo");

  auto venues_schema = Schema::Make(
      "venues",
      {Column("venue_id", ValueType::kInt64),
       Column("name", ValueType::kString, TextRole::kAtomic)},
      "venue_id");
  auto papers_schema = Schema::Make(
      "papers",
      {Column("paper_id", ValueType::kInt64),
       Column("title", ValueType::kString, TextRole::kSegmented),
       Column("venue_id", ValueType::kInt64)},
      "paper_id", {ForeignKey{"venue_id", "venues"}});
  if (!venues_schema.ok() || !papers_schema.ok()) {
    std::fprintf(stderr, "schema error\n");
    return 1;
  }

  Table* venues = *db.CreateTable(std::move(*venues_schema));
  Table* papers = *db.CreateTable(std::move(*papers_schema));

  // 2. Load a few rows.
  (void)venues->Insert({Value(int64_t{0}), Value("VLDB")});
  (void)venues->Insert({Value(int64_t{1}), Value("ICDE")});
  struct Row {
    const char* title;
    int64_t venue;
  };
  const Row rows[] = {
      {"uncertain data management", 0},
      {"probabilistic query answering", 0},
      {"probabilistic ranking on uncertain streams", 1},
      {"keyword query processing", 1},
      {"keyword search result ranking", 0},
      {"indexing uncertain spatial data", 1},
  };
  int64_t id = 0;
  for (const Row& r : rows) {
    (void)papers->Insert({Value(id++), Value(r.title), Value(r.venue)});
  }

  // 3. Build the engine: analyzer -> inverted index -> TAT graph ->
  //    offline term-relation extraction (lazy by default).
  auto engine = ReformulationEngine::Build(std::move(db));
  if (!engine.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  std::printf("graph: %zu nodes, %zu edges, %zu terms\n",
              (*engine)->graph().num_nodes(),
              (*engine)->graph().num_edges(), (*engine)->vocab().size());

  // 4. Reformulate a keyword query.
  const char* query = "uncertain ranking";
  auto suggestions = (*engine)->Reformulate(query, 5);
  if (!suggestions.ok()) {
    std::fprintf(stderr, "reformulation failed: %s\n",
                 suggestions.status().ToString().c_str());
    return 1;
  }
  std::printf("query: \"%s\"\nsuggestions:\n", query);
  for (const ReformulatedQuery& q : *suggestions) {
    std::printf("  %-40s (score %.3g)\n",
                q.ToString((*engine)->vocab()).c_str(), q.score);
  }

  // 5. Keyword search still works on the same engine (Def. 3 results).
  auto outcome = (*engine)->Search(query);
  if (outcome.ok()) {
    std::printf("keyword search: %zu results, best: %s\n",
                outcome->total_results,
                outcome->results.empty()
                    ? "(none)"
                    : outcome->results[0]
                          .ToString((*engine)->graph())
                          .c_str());
  }
  return 0;
}
