// Quickstart: build a tiny bibliographic database by hand, run the
// offline build with EngineBuilder, and serve reformulations from the
// immutable ServingModel — the 60-second tour of the public API.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "kqr.h"

using namespace kqr;

int main() {
  // 1. Define a schema: venues <- papers, with text roles marking which
  //    columns produce term nodes.
  Database db("demo");

  auto venues_schema = Schema::Make(
      "venues",
      {Column("venue_id", ValueType::kInt64),
       Column("name", ValueType::kString, TextRole::kAtomic)},
      "venue_id");
  auto papers_schema = Schema::Make(
      "papers",
      {Column("paper_id", ValueType::kInt64),
       Column("title", ValueType::kString, TextRole::kSegmented),
       Column("venue_id", ValueType::kInt64)},
      "paper_id", {ForeignKey{"venue_id", "venues"}});
  if (!venues_schema.ok() || !papers_schema.ok()) {
    std::fprintf(stderr, "schema error\n");
    return 1;
  }

  Table* venues = *db.CreateTable(std::move(*venues_schema));
  Table* papers = *db.CreateTable(std::move(*papers_schema));

  // 2. Load a few rows.
  (void)venues->Insert({Value(int64_t{0}), Value("VLDB")});
  (void)venues->Insert({Value(int64_t{1}), Value("ICDE")});
  struct Row {
    const char* title;
    int64_t venue;
  };
  const Row rows[] = {
      {"uncertain data management", 0},
      {"probabilistic query answering", 0},
      {"probabilistic ranking on uncertain streams", 1},
      {"keyword query processing", 1},
      {"keyword search result ranking", 0},
      {"indexing uncertain spatial data", 1},
  };
  int64_t id = 0;
  for (const Row& r : rows) {
    (void)papers->Insert({Value(id++), Value(r.title), Value(r.venue)});
  }

  // 3. Offline stage: EngineBuilder runs analyzer -> inverted index ->
  //    TAT graph -> term-relation extraction and returns an immutable
  //    ServingModel (shared_ptr<const>). Every method on the model is
  //    const and safe to call from any number of threads.
  auto built = EngineBuilder().Build(std::move(db));
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  std::shared_ptr<const ServingModel> model = std::move(*built);

  std::printf("graph: %zu nodes, %zu edges, %zu terms\n",
              model->graph().num_nodes(), model->graph().num_edges(),
              model->vocab().size());

  // 4. Online stage: reformulate a keyword query. The RequestContext is
  //    optional per-thread scratch — reusing one across requests skips
  //    reallocating the candidate trellis and decoder buffers.
  RequestContext ctx;
  const char* query = "uncertain ranking";
  auto suggestions = model->Reformulate(query, 5, &ctx);
  if (!suggestions.ok()) {
    std::fprintf(stderr, "reformulation failed: %s\n",
                 suggestions.status().ToString().c_str());
    return 1;
  }
  std::printf("query: \"%s\"\nsuggestions:\n", query);
  for (const ReformulatedQuery& q : *suggestions) {
    std::printf("  %-40s (score %.3g)\n",
                q.ToString(model->vocab()).c_str(), q.score);
  }

  // 5. Keyword search works on the same model (Def. 3 results).
  auto outcome = model->Search(query);
  if (outcome.ok()) {
    std::printf("keyword search: %zu results, best: %s\n",
                outcome->total_results,
                outcome->results.empty()
                    ? "(none)"
                    : outcome->results[0]
                          .ToString(model->graph())
                          .c_str());
  }
  return 0;
}
