// server_demo: the batched async serving front-end in ~80 lines.
//
// Builds a model over the synthetic DBLP corpus, starts a kqr::Server,
// and demonstrates the three submission styles (future, callback,
// blocking) plus the two failure modes a production caller must handle:
// deadline-exceeded and load-shed. Ends with a graceful drain.
//
//   $ ./build/examples/server_demo

#include <cstdio>
#include <future>
#include <vector>

#include "datagen/dblp_gen.h"
#include "kqr.h"

using namespace kqr;

int main() {
  auto corpus = GenerateDblp({});
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 1;
  }
  auto built = EngineBuilder().Build(std::move(corpus->db));
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 1;
  }
  std::shared_ptr<const ServingModel> model = std::move(*built);

  ServerOptions options;
  options.num_workers = 2;
  options.max_batch = 4;
  auto server = Server::Create(model, options);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }

  auto terms = model->ResolveQuery("probabilistic query");
  if (!terms.ok()) {
    std::fprintf(stderr, "%s\n", terms.status().ToString().c_str());
    return 1;
  }

  // 1. Future-based submission: fire, do other work, then wait.
  ServerRequest request;
  request.terms = *terms;
  request.k = 5;
  std::future<ServeResult> pending = (*server)->Submit(std::move(request));
  ServeResult result = pending.get();
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("future submit: %zu suggestions\n", result->size());
  for (const ReformulatedQuery& q : *result) {
    std::printf("  %-40s %.4g\n", q.ToString(model->vocab()).c_str(),
                q.score);
  }

  // 2. Callback-based submission: completion runs on a worker thread.
  std::promise<size_t> count;
  ServerRequest cb_request;
  cb_request.terms = *terms;
  cb_request.k = 3;
  (*server)->Submit(std::move(cb_request), [&count](ServeResult r) {
    count.set_value(r.ok() ? r->size() : 0);
  });
  std::printf("callback submit: %zu suggestions\n",
              count.get_future().get());

  // 3. Blocking wrapper with a per-request deadline. An impossible
  // deadline fails with a typed status — never a partial ranking.
  ServeResult tight =
      (*server)->Reformulate(*terms, 5, Deadline::After(1e-9));
  std::printf("impossible deadline -> %s\n",
              tight.status().ToString().c_str());
  ServeResult relaxed =
      (*server)->Reformulate(*terms, 5, Deadline::After(10.0));
  std::printf("relaxed deadline   -> %s (%zu suggestions)\n",
              relaxed.ok() ? "OK" : relaxed.status().ToString().c_str(),
              relaxed.ok() ? relaxed->size() : 0);

  // Graceful shutdown: everything admitted completes, then workers join.
  (*server)->Drain();

  // Post-drain submissions are refused with kUnavailable (load-shed
  // path — the same status a full queue returns under overload).
  ServeResult refused = (*server)->Reformulate(*terms, 5);
  std::printf("after drain        -> %s\n",
              refused.status().ToString().c_str());
  return 0;
}
