// DBLP explorer: the paper's own scenario end to end on the synthetic
// bibliographic corpus — offline term-relation extraction, then an
// interactive-style session reproducing the Sec. VI demo (Fig. 6): for
// each query, traditional keyword-search results in the "main column" and
// ranked reformulated queries in the "right panel".
//
//   $ ./build/examples/dblp_explorer            # canned session
//   $ ./build/examples/dblp_explorer "xml query"  # your own queries

#include <cstdio>

#include "kqr.h"
#include "datagen/dblp_gen.h"

using namespace kqr;

namespace {

void RunQuery(const ServingModel& model, const std::string& query) {
  std::printf("\n=== query: \"%s\" ===\n", query.c_str());

  auto outcome = model.Search(query);
  if (!outcome.ok()) {
    std::printf("  [search] %s\n", outcome.status().ToString().c_str());
  } else {
    std::printf("  [search] %zu results\n", outcome->total_results);
    size_t shown = 0;
    for (const ResultTree& tree : outcome->results) {
      if (shown++ >= 3) break;
      std::printf("    %.2f  %s\n", tree.score,
                  tree.ToString(model.graph()).c_str());
    }
  }

  auto suggestions = model.Reformulate(query, 8);
  if (!suggestions.ok()) {
    std::printf("  [reformulate] %s\n",
                suggestions.status().ToString().c_str());
    return;
  }
  std::printf("  [reformulated queries]\n");
  for (const ReformulatedQuery& q : *suggestions) {
    std::printf("    %-48s %.3g\n",
                q.ToString(model.vocab()).c_str(), q.score);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("generating synthetic DBLP corpus...\n");
  DblpOptions options;
  options.num_authors = 1200;
  options.num_papers = 4000;
  options.num_venues = 36;
  auto corpus = GenerateDblp(options);
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 1;
  }

  auto built = EngineBuilder().Build(std::move(corpus->db));
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 1;
  }
  std::shared_ptr<const ServingModel> model = std::move(*built);
  std::printf("model ready: %zu tuples, %zu graph nodes, %zu terms\n",
              model->db().TotalRows(), model->graph().num_nodes(),
              model->vocab().size());

  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      RunQuery(*model, argv[i]);
    }
    return 0;
  }

  // Canned session mirroring the paper's motivating queries: a quasi-
  // synonym topical pair, an author + topic, a venue + topic.
  for (const char* query :
       {"uncertain query", "probabilistic ranking", "xml tree",
        "association rule mining"}) {
    RunQuery(*model, query);
  }

  // Author + topic: pick a real author name from the corpus.
  const Table* authors = model->db().FindTable("authors");
  if (authors != nullptr && authors->num_rows() > 0) {
    std::string name = authors->row(0).at(1).AsString();
    RunQuery(*model, name + " mining");
  }
  return 0;
}
