// Offline pipeline walkthrough: runs each stage of Figure 2 explicitly —
// analyzer, inverted index, TAT graph, contextual random walk, closeness
// extraction — and prints what each stage produces. Use this to
// understand the internals or to adapt single stages to your own data.
//
//   $ ./build/examples/offline_pipeline

#include <cstdio>

#include "closeness/closeness.h"
#include "datagen/dblp_gen.h"
#include "graph/graph_stats.h"
#include "graph/tat_builder.h"
#include "text/inverted_index.h"
#include "text/porter_stemmer.h"
#include "walk/cooccurrence.h"
#include "walk/similarity.h"

using namespace kqr;

int main() {
  // Stage 0: structured data source.
  DblpOptions options;
  options.num_authors = 600;
  options.num_papers = 2000;
  options.num_venues = 24;
  auto corpus = GenerateDblp(options);
  if (!corpus.ok()) return 1;
  std::printf("[0] database: %zu tuples in %zu tables\n",
              corpus->db.TotalRows(),
              corpus->db.catalog().num_tables());

  // Stage 1: text analysis + inverted index (the Lucene substitute).
  Analyzer analyzer;
  Vocabulary vocab;
  auto index = InvertedIndex::Build(corpus->db, analyzer, &vocab);
  if (!index.ok()) return 1;
  std::printf("[1] inverted index: %zu terms over %zu fields, "
              "%zu indexed tuples\n",
              vocab.size(), vocab.num_fields(),
              index->num_indexed_tuples());

  // Stage 2: term augmented tuple graph (Def. 5).
  auto graph = BuildTatGraph(corpus->db, vocab, *index);
  if (!graph.ok()) return 1;
  std::printf("[2] TAT graph: %zu nodes (%zu tuple + %zu term), "
              "%zu edges\n",
              graph->num_nodes(), graph->space().num_tuple_nodes(),
              graph->space().num_term_nodes(), graph->num_edges());

  GraphStats stats(*graph);
  PorterStemmer stemmer;
  auto title_field = vocab.FindField("papers", "title");
  auto prob = vocab.Find(*title_field, stemmer.Stem("probabilistic"));
  if (!prob.has_value()) {
    std::printf("'probabilistic' not generated in this corpus; done.\n");
    return 0;
  }
  NodeId start = graph->NodeOfTerm(*prob);

  // Stage 3a: contextual preference vector (Algorithm 1, lines 1-6).
  PreferenceVector preference =
      MakeContextualPreference(*graph, stats, start);
  std::printf("[3a] contextual preference: %zu context entries\n",
              preference.entries.size());

  // Stage 3b: random walk to convergence (Algorithm 1, lines 7-9).
  preference.Normalize();
  RandomWalkEngine walker(*graph);
  RandomWalkResult walk = walker.Run(preference);
  std::printf("[3b] walk converged=%d after %zu iterations\n",
              walk.converged, walk.iterations);

  // Stage 3c: same-class extraction = similar terms.
  SimilarityExtractor extractor(*graph, stats);
  std::printf("[3c] similar to 'probabilistic':");
  for (const ScoredNode& s : extractor.TopSimilar(start, 8)) {
    std::printf(" %s", std::string(vocab.text(graph->TermOfNode(s.node))).c_str());
  }
  std::printf("\n");

  // Contrast: the co-occurrence baseline sees only local context.
  CooccurrenceSimilarity cooc(*graph);
  std::printf("[3d] co-occurring with 'probabilistic':");
  auto cooc_list = cooc.TopSimilar(*prob);
  for (size_t i = 0; i < cooc_list.size() && i < 8; ++i) {
    std::printf(" %s", std::string(vocab.text(cooc_list[i].term)).c_str());
  }
  std::printf("\n");

  // Stage 4: closeness extraction (Eq. 3).
  ClosenessExtractor closeness(*graph);
  std::printf("[4] close to 'probabilistic':");
  for (const CloseTerm& c : closeness.TopClose(*prob, 8, *title_field)) {
    std::printf(" %s(d%u)", std::string(vocab.text(c.term)).c_str(), c.distance);
  }
  std::printf("\n");
  return 0;
}
