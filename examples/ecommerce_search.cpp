// E-commerce search: the same pipeline on a completely different schema
// (categories/brands/products/reviews), demonstrating the paper's claim
// that the approach applies to any foreign-key-connected structured data —
// no DBLP-specific assumption anywhere in the library.
//
//   $ ./build/examples/ecommerce_search

#include <cstdio>

#include "kqr.h"
#include "datagen/ecommerce_gen.h"

using namespace kqr;

int main() {
  std::printf("generating synthetic product catalog...\n");
  auto corpus = GenerateEcommerce({});
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 1;
  }

  auto engine = EngineBuilder().Build(std::move(corpus->db));
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::printf("model ready: %zu tuples, %zu graph nodes, %zu terms\n\n",
              (*engine)->db().TotalRows(),
              (*engine)->graph().num_nodes(), (*engine)->vocab().size());

  for (const char* query :
       {"wireless headphone", "camping tent", "yoga mat",
        "stainless cookware"}) {
    std::printf("=== \"%s\" ===\n", query);
    auto outcome = (*engine)->Search(query);
    if (outcome.ok()) {
      std::printf("  products matching: %zu\n", outcome->total_results);
    }
    auto suggestions = (*engine)->Reformulate(query, 6);
    if (!suggestions.ok()) {
      std::printf("  (%s)\n\n", suggestions.status().ToString().c_str());
      continue;
    }
    std::printf("  shoppers also search:\n");
    for (const ReformulatedQuery& q : *suggestions) {
      std::printf("    %-36s %.3g\n",
                  q.ToString((*engine)->vocab()).c_str(), q.score);
    }
    std::printf("\n");
  }
  return 0;
}
