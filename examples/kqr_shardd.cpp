// kqr_shardd: one replica process of a term-sharded serving fleet
// (DESIGN.md §8). A fleet is N shard groups × R replicas; every replica
// of a group runs this same binary over the same model, so the router
// may load-balance and fail over between them freely. Each accepted
// connection is multiplexed: frames are decoded as they arrive and
// responses echo the request id, so replies may be pipelined and the
// router's out-of-order gather re-slots them. The process regenerates
// the deterministic demo corpus (cheap: seeded synthesis, no I/O),
// opens or builds a serving model over it,
// and serves the kqr wire protocol on a TCP port until stdin closes —
// the lifetime contract the multi-process tests and benches rely on:
// the parent holds the write end of a pipe on our stdin, so shard
// shutdown is "parent closes the pipe (or dies)", never a signal race.
//
// Usage:
//   $ kqr_shardd [--model <v3-path>] [--host H] [--port P]
//                [--workers N] [--queue N] [--batch N]
//                [--demo-authors N] [--demo-papers N] [--demo-venues N]
//                [--demo-seed N]
//
// With --model the v3 file is opened via the zero-copy mmap path (the
// cheap per-shard open that makes N shard processes affordable); the
// demo-corpus flags must describe the corpus the model was built from.
// Without --model the shard builds a lazy model in-process. Model swap
// requests reopen the requested v3 path over a freshly regenerated
// corpus.
//
// On success exactly one line is printed to stdout and flushed:
//   KQR_SHARDD LISTENING <port>
// so a parent that spawned us with port 0 can read the bound port back.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <sys/prctl.h>

#include "datagen/dblp_gen.h"
#include "kqr.h"

using namespace kqr;

namespace {

struct ShardArgs {
  std::string model_path;  // empty = build in-process
  DblpOptions demo;
  ShardServerOptions serve;
};

Result<std::shared_ptr<const ServingModel>> LoadModel(
    const DblpOptions& demo, const std::string& model_path) {
  auto corpus = GenerateDblp(demo);
  if (!corpus.ok()) return corpus.status();
  if (model_path.empty()) {
    return EngineBuilder(EngineOptions{}).Build(std::move(corpus->db));
  }
  return ServingModel::OpenMapped(std::move(corpus->db), model_path);
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--model <v3-path>] [--host H] [--port P]\n"
               "          [--workers N] [--queue N] [--batch N]\n"
               "          [--demo-authors N] [--demo-papers N]\n"
               "          [--demo-venues N] [--demo-seed N]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ShardArgs args;
  args.demo = DblpOptions{};
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (i + 1 >= argc) return Usage(argv[0]);
    const char* value = argv[++i];
    if (flag == "--model") {
      args.model_path = value;
    } else if (flag == "--host") {
      args.serve.host = value;
    } else if (flag == "--port") {
      args.serve.port = static_cast<uint16_t>(std::atoi(value));
    } else if (flag == "--workers") {
      args.serve.server.num_workers = static_cast<size_t>(std::atoi(value));
    } else if (flag == "--queue") {
      args.serve.server.queue_capacity =
          static_cast<size_t>(std::atoi(value));
    } else if (flag == "--batch") {
      args.serve.server.max_batch = static_cast<size_t>(std::atoi(value));
    } else if (flag == "--demo-authors") {
      args.demo.num_authors = static_cast<size_t>(std::atoi(value));
    } else if (flag == "--demo-papers") {
      args.demo.num_papers = static_cast<size_t>(std::atoi(value));
    } else if (flag == "--demo-venues") {
      args.demo.num_venues = static_cast<size_t>(std::atoi(value));
    } else if (flag == "--demo-seed") {
      args.demo.seed = static_cast<uint64_t>(std::atoll(value));
    } else {
      return Usage(argv[0]);
    }
  }

  // Die with the parent: a test or bench that crashes must not leave
  // orphan shard processes squatting on ports.
  (void)prctl(PR_SET_PDEATHSIG, SIGKILL);

  auto model = LoadModel(args.demo, args.model_path);
  if (!model.ok()) {
    std::fprintf(stderr, "kqr_shardd: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }

  const DblpOptions demo = args.demo;
  ModelLoader loader =
      [demo](const std::string& path)
      -> Result<std::shared_ptr<const ServingModel>> {
    return LoadModel(demo, path);
  };

  auto shard = ShardServer::Start(std::move(*model), std::move(loader),
                                  args.serve);
  if (!shard.ok()) {
    std::fprintf(stderr, "kqr_shardd: %s\n",
                 shard.status().ToString().c_str());
    return 1;
  }

  std::printf("KQR_SHARDD LISTENING %u\n",
              static_cast<unsigned>((*shard)->port()));
  std::fflush(stdout);

  // Serve until the parent closes our stdin.
  while (std::fgetc(stdin) != EOF) {
  }
  (*shard)->Shutdown();
  return 0;
}
