// kqr_cli: bring-your-own-data entry point. Loads a relational dataset
// from CSV files plus a small schema description, builds the engine, and
// answers queries from the command line — the path a downstream user of
// this library would take with their own structured data.
//
// Schema file format (one directive per line, '#' comments):
//   table <name> <pk-column>
//   column <table> <name> <int|double|string> [segmented|atomic]
//   fk <table> <column> <parent-table>
//   load <table> <csv-path>           # paths relative to the schema file
//
// Usage:
//   $ ./build/examples/kqr_cli <schema-file> "<query>" [k]
//   $ ./build/examples/kqr_cli --demo "<query>"    # built-in demo corpus
//   $ ./build/examples/kqr_cli --audit <schema-file>|--demo
//   $ ./build/examples/kqr_cli --stats <schema-file>|--demo "<query>" [k]
//   $ ./build/examples/kqr_cli --stats-prom <schema-file>|--demo "<query>"
//   $ ./build/examples/kqr_cli --serve-bench <schema-file>|--demo [sec] [qps]
//   $ ./build/examples/kqr_cli --save-model <schema-file>|--demo <model-path>
//   $ ./build/examples/kqr_cli --open-mapped <schema-file>|--demo
//         <model-path> "<query>" [k]
//   $ ./build/examples/kqr_cli --inspect <model-path>
//   $ ./build/examples/kqr_cli --shard-serve <schema-file>|--demo [port]
//   $ ./build/examples/kqr_cli --route <schema-file>|--demo
//         <group[,group...]> "<query>" [k]
//
// --shard-serve exposes the model over the sharded-serving wire protocol
// (port 0 = ephemeral; the bound port is printed) until stdin closes;
// --route resolves the query locally and serves it through a ShardRouter
// over a running fleet — see kqr_shardd for the full daemon. Each route
// group is host:port replicas joined by '+' (all serving the same model,
// load-balanced and failed over freely); ',' separates groups.
//
// With --demo the synthetic DBLP corpus is used, e.g.:
//   $ ./build/examples/kqr_cli --demo "probabilistic query" 5
//
// --audit builds the model eagerly (full offline precompute) and runs
// ModelAuditor over every frozen structure, printing the per-check report.
// Exit status 0 when every invariant holds, 1 otherwise.
//
// --stats serves the query, then dumps the engine's metrics registry —
// offline build-stage timings, per-stage online latency histograms,
// term-cache hit/miss, requests served — as JSON on stdout (the query
// results, per-stage trace spans and progress chatter go to stderr, so
// stdout pipes cleanly into jq or a collector). --stats-prom emits the
// same registry in Prometheus text exposition format instead.
//
// --save-model builds the model eagerly and writes it as a v3 binary
// model file; --open-mapped serves a query from such a file via the
// zero-copy mmap path (the schema/--demo corpus must be the one the model
// was built from — the stored fingerprint enforces this). --inspect dumps
// a model file's section table (name, codec, items, compressed bytes)
// without needing the corpus at all.
//
// --serve-bench runs an open-loop load test through the batched async
// kqr::Server front-end: sampled keyword queries are submitted at a fixed
// offered rate for a fixed window, then the server drains and the achieved
// QPS, shed rate and latency percentiles are printed.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "audit/model_auditor.h"
#include "common/io/container.h"
#include "common/io/io.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "datagen/dblp_gen.h"
#include "kqr.h"
#include "obs/export.h"
#include "storage/csv.h"

using namespace kqr;

namespace {

Result<Database> LoadFromSchemaFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open schema file '" + path + "'");
  std::string dir = ".";
  size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) dir = path.substr(0, slash);

  struct TableSpec {
    std::string name;
    std::string pk;
    std::vector<Column> columns;
    std::vector<ForeignKey> fks;
    std::vector<std::string> csv_paths;
  };
  std::vector<TableSpec> specs;
  auto find_spec = [&](const std::string& name) -> TableSpec* {
    for (TableSpec& s : specs) {
      if (s.name == name) return &s;
    }
    return nullptr;
  };

  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::vector<std::string> parts = SplitWhitespace(trimmed);
    const std::string& directive = parts[0];
    auto fail = [&](const std::string& msg) {
      return Status::InvalidArgument("schema line " +
                                     std::to_string(line_no) + ": " + msg);
    };
    if (directive == "table") {
      if (parts.size() != 3) return fail("table <name> <pk>");
      if (find_spec(parts[1]) != nullptr) return fail("duplicate table");
      specs.push_back(TableSpec{parts[1], parts[2], {}, {}, {}});
    } else if (directive == "column") {
      if (parts.size() < 4) {
        return fail("column <table> <name> <type> [role]");
      }
      TableSpec* spec = find_spec(parts[1]);
      if (spec == nullptr) return fail("unknown table " + parts[1]);
      ValueType type;
      if (parts[3] == "int") {
        type = ValueType::kInt64;
      } else if (parts[3] == "double") {
        type = ValueType::kDouble;
      } else if (parts[3] == "string") {
        type = ValueType::kString;
      } else {
        return fail("bad type " + parts[3]);
      }
      TextRole role = TextRole::kNone;
      if (parts.size() >= 5) {
        if (parts[4] == "segmented") {
          role = TextRole::kSegmented;
        } else if (parts[4] == "atomic") {
          role = TextRole::kAtomic;
        } else {
          return fail("bad role " + parts[4]);
        }
      }
      spec->columns.push_back(Column(parts[2], type, role));
    } else if (directive == "fk") {
      if (parts.size() != 4) return fail("fk <table> <column> <parent>");
      TableSpec* spec = find_spec(parts[1]);
      if (spec == nullptr) return fail("unknown table " + parts[1]);
      spec->fks.push_back(ForeignKey{parts[2], parts[3]});
    } else if (directive == "load") {
      if (parts.size() != 3) return fail("load <table> <csv>");
      TableSpec* spec = find_spec(parts[1]);
      if (spec == nullptr) return fail("unknown table " + parts[1]);
      spec->csv_paths.push_back(dir + "/" + parts[2]);
    } else {
      return fail("unknown directive " + directive);
    }
  }

  Database db("user");
  for (TableSpec& spec : specs) {
    KQR_ASSIGN_OR_RETURN(
        Schema schema, Schema::Make(spec.name, std::move(spec.columns),
                                    spec.pk, std::move(spec.fks)));
    KQR_ASSIGN_OR_RETURN(Table * table,
                         db.CreateTable(std::move(schema)));
    for (const std::string& csv : spec.csv_paths) {
      KQR_RETURN_NOT_OK(LoadCsvFileInto(csv, table));
    }
  }
  return db;
}

int RunQuery(const ServingModel& model, const std::string& query,
             size_t k) {
  auto resolved = model.ResolveQuery(query);
  if (!resolved.ok()) {
    std::fprintf(stderr, "cannot resolve query: %s\n",
                 resolved.status().ToString().c_str());
    return 1;
  }
  auto reformulated = model.ReformulateTerms(*resolved, k);
  if (!reformulated.ok()) {
    std::fprintf(stderr, "reformulation failed: %s\n",
                 reformulated.status().ToString().c_str());
    return 1;
  }
  const std::vector<ReformulatedQuery>& suggestions = *reformulated;
  std::printf("query: \"%s\" — %zu suggestions\n", query.c_str(),
              suggestions.size());
  auto facets = GroupByFacets(*resolved, suggestions, model.vocab());
  for (const SuggestionFacet& facet : facets) {
    std::printf("[facet: %s]\n", facet.label.c_str());
    for (size_t idx : facet.suggestions) {
      const ReformulatedQuery& q = suggestions[idx];
      std::printf("  %-44s %.3g\n",
                  q.ToString(model.vocab()).c_str(), q.score);
      for (const auto& e :
           ExplainReformulation(model, *resolved, q)) {
        if (!e.kept) {
          std::printf("      %s\n",
                      e.ToString(model.vocab()).c_str());
        }
      }
    }
  }
  auto outcome = model.Search(query);
  if (outcome.ok()) {
    std::printf("keyword search results: %zu\n", outcome->total_results);
  }
  return 0;
}

/// Serves the query with tracing on, prints the human-readable outcome
/// and span tree to stderr, and the scraped registry to stdout in the
/// requested format.
int RunStats(const ServingModel& model, const std::string& query, size_t k,
             bool prometheus) {
  auto resolved = model.ResolveQuery(query);
  if (!resolved.ok()) {
    std::fprintf(stderr, "cannot resolve query: %s\n",
                 resolved.status().ToString().c_str());
    return 1;
  }
  RequestContext ctx;
  ctx.trace.Enable();
  auto reformulated = model.ReformulateTerms(*resolved, k, &ctx);
  if (!reformulated.ok()) {
    std::fprintf(stderr, "reformulation failed: %s\n",
                 reformulated.status().ToString().c_str());
    return 1;
  }
  const std::vector<ReformulatedQuery>& suggestions = *reformulated;
  std::fprintf(stderr, "query: \"%s\" — %zu suggestions\n", query.c_str(),
               suggestions.size());
  for (const ReformulatedQuery& q : suggestions) {
    std::fprintf(stderr, "  %-44s %.3g\n",
                 q.ToString(model.vocab()).c_str(), q.score);
  }
  std::fprintf(stderr, "request trace:\n%s", ctx.trace.ToString().c_str());
  if (model.metrics_registry() == nullptr) {
    std::fprintf(stderr, "metrics disabled on this model\n");
    return 1;
  }
  const MetricsSnapshot snapshot = model.MetricsNow();
  const std::string text =
      prometheus ? MetricsToPrometheus(snapshot) : MetricsToJson(snapshot);
  std::fwrite(text.data(), 1, text.size(), stdout);
  return 0;
}

/// Open-loop serving benchmark through the batched async front-end:
/// submits sampled term queries at a fixed offered rate for a fixed
/// window (arrivals never wait for completions — overload sheds instead
/// of stalling the clock), drains, and reports achieved QPS, shed rate,
/// and latency percentiles from the engine's own metrics registry.
int RunServeBench(std::shared_ptr<const ServingModel> model,
                  double seconds, double offered_qps) {
  using Clock = std::chrono::steady_clock;

  // Workload: 64 queries of 2–3 terms drawn from the frequent vocabulary
  // (doc-freq >= 3 avoids degenerate one-document terms).
  Rng rng(7);
  std::vector<TermId> pool;
  for (TermId t = 0; t < model->vocab().size(); ++t) {
    if (model->index().DocFreq(t) >= 3) pool.push_back(t);
  }
  if (pool.size() < 4) {
    std::fprintf(stderr, "corpus too small for --serve-bench\n");
    return 1;
  }
  std::vector<std::vector<TermId>> queries;
  while (queries.size() < 64) {
    const size_t len = 2 + rng.NextBounded(2);
    std::vector<TermId> q;
    while (q.size() < len) {
      TermId t = pool[rng.NextBounded(pool.size())];
      if (std::find(q.begin(), q.end(), t) == q.end()) q.push_back(t);
    }
    queries.push_back(std::move(q));
  }

  ServerOptions sopts;
  sopts.num_workers = 4;
  sopts.queue_capacity = 256;
  sopts.max_batch = 8;
  auto server = Server::Create(model, sopts);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }

  const MetricsSnapshot before = model->MetricsNow();
  std::atomic<size_t> ok_count{0}, shed{0}, deadline{0}, errors{0};
  auto on_done = [&](ServeResult result) {
    if (result.ok()) {
      ok_count.fetch_add(1, std::memory_order_relaxed);
    } else if (result.status().IsUnavailable()) {
      shed.fetch_add(1, std::memory_order_relaxed);
    } else if (result.status().IsDeadlineExceeded()) {
      deadline.fetch_add(1, std::memory_order_relaxed);
    } else {
      errors.fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::fprintf(stderr,
               "serve-bench: %.0fs window at %.0f offered QPS "
               "(%zu workers, queue %zu, batch %zu)\n",
               seconds, offered_qps, sopts.num_workers,
               sopts.queue_capacity, sopts.max_batch);
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / offered_qps));
  const Clock::time_point start = Clock::now();
  const Clock::time_point stop =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(seconds));
  Clock::time_point next_arrival = start;
  size_t submitted = 0;
  while (next_arrival < stop) {
    std::this_thread::sleep_until(next_arrival);  // open loop: fixed rate
    ServerRequest request;
    request.terms = queries[submitted % queries.size()];
    request.k = 8;
    (*server)->Submit(std::move(request), on_done);
    ++submitted;
    next_arrival += interval;
  }
  (*server)->Drain();
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();

  const MetricsSnapshot after = model->MetricsNow();
  double p50_us = 0.0, p99_us = 0.0;
  const HistogramSnapshot* req_after =
      after.Histogram("kqr_request_seconds");
  const HistogramSnapshot* req_before =
      before.Histogram("kqr_request_seconds");
  if (req_after != nullptr && req_before != nullptr) {
    const HistogramSnapshot delta = HistogramDelta(*req_after, *req_before);
    p50_us = delta.Quantile(0.50) * 1e6;
    p99_us = delta.Quantile(0.99) * 1e6;
  }
  const double mean_batch =
      [&]() {
        const HistogramSnapshot* a = after.Histogram("kqr_server_batch_size");
        const HistogramSnapshot* b =
            before.Histogram("kqr_server_batch_size");
        if (a == nullptr) return 0.0;
        return b == nullptr ? a->Mean() : HistogramDelta(*a, *b).Mean();
      }();
  std::printf(
      "submitted %zu | served %zu (%.0f QPS) | shed %zu (%.1f%%) | "
      "deadline %zu | errors %zu | p50 %.0fus p99 %.0fus | mean batch "
      "%.2f | wall %.2fs\n",
      submitted, ok_count.load(), ok_count.load() / wall, shed.load(),
      submitted > 0 ? 100.0 * shed.load() / submitted : 0.0,
      deadline.load(), errors.load(), p50_us, p99_us, mean_batch, wall);
  return errors.load() == 0 ? 0 : 1;
}

/// Dumps a v3 model file's section table without building any model:
/// per-section name, codec, logical item count and stored (compressed)
/// bytes, plus the file totals. Works on any machine with the file alone.
int RunInspect(const std::string& path) {
  auto file = MappedFile::Open(path, /*prefer_mmap=*/true);
  if (!file.ok()) {
    std::fprintf(stderr, "%s\n", file.status().ToString().c_str());
    return 1;
  }
  auto reader = ContainerReader::Open((*file)->bytes(),
                                      /*verify_checksums=*/true);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s\n", reader.status().ToString().c_str());
    return 1;
  }
  static constexpr const char* kCodecNames[] = {"raw", "varint", "delta",
                                                "bitpack"};
  std::printf("%s: v3 model file, %zu bytes, %zu sections (%s)\n",
              path.c_str(), (*file)->size(), reader->sections().size(),
              (*file)->is_mapped() ? "mmap" : "heap");
  std::printf("%-18s %-8s %12s %12s %10s\n", "section", "codec", "items",
              "bytes", "offset");
  uint64_t payload_bytes = 0;
  for (const SectionInfo& s : reader->sections()) {
    payload_bytes += s.length;
    std::printf("%-18s %-8s %12llu %12llu %10llu\n", s.name.c_str(),
                kCodecNames[static_cast<size_t>(s.codec)],
                static_cast<unsigned long long>(s.items),
                static_cast<unsigned long long>(s.length),
                static_cast<unsigned long long>(s.offset));
  }
  std::printf("payload %llu bytes; container overhead %llu bytes\n",
              static_cast<unsigned long long>(payload_bytes),
              static_cast<unsigned long long>((*file)->size() -
                                              payload_bytes));
  return 0;
}

}  // namespace

int RunAudit(const ServingModel& model) {
  const AuditReport report = ModelAuditor().Audit(model);
  std::printf("%s", report.ToString().c_str());
  std::printf("%s\n", report.Summary().c_str());
  return report.ok() ? 0 : 1;
}

/// --shard-serve: expose the model over the sharded-serving wire
/// protocol until stdin closes. A minimal in-CLI kqr_shardd — the
/// standalone daemon adds v3 model files and live swap support.
int RunShardServe(std::shared_ptr<const ServingModel> model,
                  uint16_t port) {
  ShardServerOptions options;
  options.port = port;
  auto shard = ShardServer::Start(std::move(model), nullptr, options);
  if (!shard.ok()) {
    std::fprintf(stderr, "%s\n", shard.status().ToString().c_str());
    return 1;
  }
  std::printf("KQR_SHARDD LISTENING %u\n",
              static_cast<unsigned>((*shard)->port()));
  std::fflush(stdout);
  while (std::fgetc(stdin) != EOF) {
  }
  (*shard)->Shutdown();
  return 0;
}

/// --route: resolve the query against the local corpus, scatter it
/// through a ShardRouter over a running fleet, print the merged ranking.
/// The fleet is given as shard groups separated by ',' with replicas of
/// one group joined by '+', e.g. "h1:7001+h2:7001,h1:7002+h2:7002" is a
/// 2-group fleet with 2 interchangeable replicas per group.
int RunRoute(const ServingModel& model, const std::string& addr_list,
             const std::string& query, size_t k) {
  FleetTopology topology;
  for (const std::string& group : Split(addr_list, ',')) {
    topology.groups.emplace_back();
    for (const std::string& part : Split(group, '+')) {
      const size_t colon = part.rfind(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "bad replica address '%s' (want host:port)\n",
                     part.c_str());
        return 2;
      }
      ShardAddress addr;
      addr.host = part.substr(0, colon);
      addr.port = static_cast<uint16_t>(std::atoi(part.c_str() + colon + 1));
      topology.groups.back().push_back(std::move(addr));
    }
  }
  auto router = ShardRouter::Connect(std::move(topology));
  if (!router.ok()) {
    std::fprintf(stderr, "%s\n", router.status().ToString().c_str());
    return 1;
  }
  auto resolved = model.ResolveQuery(query);
  if (!resolved.ok()) {
    std::fprintf(stderr, "cannot resolve query: %s\n",
                 resolved.status().ToString().c_str());
    return 1;
  }
  auto served = (*router)->Reformulate(*resolved, k);
  if (!served.ok()) {
    std::fprintf(stderr, "routed reformulation failed: %s\n",
                 served.status().ToString().c_str());
    return 1;
  }
  std::printf("query: \"%s\" — %zu suggestions (via %zu shard groups, "
              "%zu replicas)\n",
              query.c_str(), served->size(), (*router)->num_groups(),
              (*router)->num_replicas());
  for (const ReformulatedQuery& q : *served) {
    std::printf("  %-44s %.3g\n", q.ToString(model.vocab()).c_str(),
                q.score);
  }
  const RouterStats rs = (*router)->stats();
  std::fprintf(stderr,
               "router: ok=%llu unavailable=%llu deadline=%llu "
               "remote_errors=%llu corrupt=%llu failovers=%llu\n",
               static_cast<unsigned long long>(rs.ok),
               static_cast<unsigned long long>(rs.unavailable),
               static_cast<unsigned long long>(rs.deadline_exceeded),
               static_cast<unsigned long long>(rs.remote_errors),
               static_cast<unsigned long long>(rs.corrupt_frames),
               static_cast<unsigned long long>(rs.failovers));
  return 0;
}

int main(int argc, char** argv) {
  const std::string mode = argc >= 2 ? argv[1] : "";
  const bool audit = mode == "--audit";
  const bool stats = mode == "--stats" || mode == "--stats-prom";
  const bool serve_bench = mode == "--serve-bench";
  const bool save_model = mode == "--save-model";
  const bool open_mapped = mode == "--open-mapped";
  const bool shard_serve = mode == "--shard-serve";
  const bool route = mode == "--route";
  if (mode == "--inspect") {
    if (argc != 3) {
      std::fprintf(stderr, "usage: %s --inspect <model-path>\n", argv[0]);
      return 2;
    }
    return RunInspect(argv[2]);
  }
  if (argc < 3 || (stats && argc < 4) || (save_model && argc < 4) ||
      (open_mapped && argc < 5) || (route && argc < 5)) {
    std::fprintf(stderr,
                 "usage: %s <schema-file>|--demo \"<query>\" [k]\n"
                 "       %s --audit <schema-file>|--demo\n"
                 "       %s --stats|--stats-prom <schema-file>|--demo "
                 "\"<query>\" [k]\n"
                 "       %s --serve-bench <schema-file>|--demo "
                 "[seconds] [offered-qps]\n"
                 "       %s --save-model <schema-file>|--demo "
                 "<model-path>\n"
                 "       %s --open-mapped <schema-file>|--demo "
                 "<model-path> \"<query>\" [k]\n"
                 "       %s --inspect <model-path>\n"
                 "       %s --shard-serve <schema-file>|--demo [port]\n"
                 "       %s --route <schema-file>|--demo "
                 "<host:port[+host:port...][,group...]> \"<query>\" [k]\n",
                 argv[0], argv[0], argv[0], argv[0], argv[0], argv[0],
                 argv[0], argv[0], argv[0]);
    return 2;
  }
  const bool has_mode_flag = audit || stats || serve_bench || save_model ||
                             open_mapped || shard_serve || route;
  std::string source = argv[has_mode_flag ? 2 : 1];
  const std::string model_path = save_model || open_mapped ? argv[3] : "";
  const std::string route_addrs = route ? argv[3] : "";
  std::string query =
      audit || serve_bench || save_model || shard_serve
          ? ""
          : argv[route       ? 4
                 : open_mapped ? 4
                 : (has_mode_flag ? 3 : 2)];
  const int k_index = (open_mapped || route) ? 5 : (has_mode_flag ? 4 : 3);
  size_t k = !audit && !serve_bench && !save_model && !shard_serve &&
                     argc > k_index
                 ? static_cast<size_t>(std::atoi(argv[k_index]))
                 : 8;
  const uint16_t shard_port =
      shard_serve && argc > 3 ? static_cast<uint16_t>(std::atoi(argv[3]))
                              : 0;
  const double bench_seconds =
      serve_bench && argc > 3 ? std::atof(argv[3]) : 2.0;
  const double bench_qps =
      serve_bench && argc > 4 ? std::atof(argv[4]) : 400.0;

  Database db("empty");
  if (source == "--demo") {
    auto corpus = GenerateDblp({});
    if (!corpus.ok()) {
      std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
      return 1;
    }
    db = std::move(corpus->db);
  } else {
    auto loaded = LoadFromSchemaFile(source);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    db = std::move(*loaded);
  }

  if (open_mapped) {
    // The cold-start path: no tokenization, no graph build — the frozen
    // structures are served straight out of the mapped file.
    auto mapped = ServingModel::OpenMapped(std::move(db), model_path);
    if (!mapped.ok()) {
      std::fprintf(stderr, "%s\n", mapped.status().ToString().c_str());
      return 1;
    }
    std::printf("model: %zu tuples, %zu terms, %zu graph nodes (mapped "
                "from %s)\n",
                (*mapped)->db().TotalRows(), (*mapped)->vocab().size(),
                (*mapped)->graph().num_nodes(), model_path.c_str());
    return RunQuery(**mapped, query, k);
  }

  EngineOptions options;
  // The audit and the model file cover the per-term offline lists, so
  // build them all.
  options.precompute_offline = audit || save_model;
  auto engine = EngineBuilder(options).Build(std::move(db));
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  // In stats mode stdout must stay pure JSON / Prometheus text.
  std::fprintf(stats ? stderr : stdout,
               "model: %zu tuples, %zu terms, %zu graph nodes\n",
               (*engine)->db().TotalRows(), (*engine)->vocab().size(),
               (*engine)->graph().num_nodes());
  if (audit) return RunAudit(**engine);
  if (save_model) {
    const Status saved = EngineBuilder::SaveModel(**engine, model_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "%s\n", saved.ToString().c_str());
      return 1;
    }
    auto written = MappedFile::Open(model_path, /*prefer_mmap=*/false);
    std::printf("saved v3 model to %s (%zu bytes)\n", model_path.c_str(),
                written.ok() ? (*written)->size() : size_t{0});
    return 0;
  }
  if (serve_bench) {
    if (bench_seconds <= 0.0 || bench_qps <= 0.0) {
      std::fprintf(stderr, "seconds and offered-qps must be positive\n");
      return 2;
    }
    return RunServeBench(*engine, bench_seconds, bench_qps);
  }
  if (shard_serve) return RunShardServe(*engine, shard_port);
  if (route) return RunRoute(**engine, route_addrs, query, k);
  if (stats) {
    return RunStats(**engine, query, k, mode == "--stats-prom");
  }
  return RunQuery(**engine, query, k);
}
