// Figure 8 — "Time Cost of new Top-k Query Generation Algorithm": the two
// stages of Algorithm 3 (Viterbi initialization vs A* backward search)
// broken out by query length. The paper observes both stages grow with
// length and Viterbi initialization dominates.

#include "bench_common.h"

namespace kqr {
namespace {

constexpr size_t kQueriesPerLength = 50;
constexpr size_t kMaxLength = 8;
constexpr size_t kTopK = 10;

void Run() {
  bench::PrintHeader(
      "Figure 8: Algorithm 3 stage breakdown (Viterbi init vs A* search)");
  ExperimentContext ctx = bench::MustMakeContext(bench::DefaultCorpus());
  const ServingModel& model = *ctx.model;

  QuerySampler sampler(model, /*seed=*/401);
  std::vector<std::vector<std::vector<TermId>>> by_length;
  std::vector<std::vector<TermId>> all;
  for (size_t len = 1; len <= kMaxLength; ++len) {
    by_length.push_back(sampler.SampleQueries(kQueriesPerLength, len));
    for (const auto& q : by_length.back()) all.push_back(q);
  }
  bench::WarmUp(model, all, kTopK);
  RequestContext rc;

  TablePrinter table({"query length", "Viterbi stage (us)",
                      "A* stage (us)", "whole call (us)"});
  for (size_t len = 1; len <= kMaxLength; ++len) {
    double viterbi_us = 0, astar_us = 0, total_us = 0;
    for (const auto& q : by_length[len - 1]) {
      ReformulationTimings timings;
      bench::MustReformulate(model.ReformulateTerms(q, kTopK, &rc, &timings));
      viterbi_us += timings.astar.viterbi_seconds * 1e6;
      astar_us += timings.astar.astar_seconds * 1e6;
      total_us += timings.TotalSeconds() * 1e6;
    }
    size_t n = by_length[len - 1].size();
    viterbi_us /= double(n);
    astar_us /= double(n);
    total_us /= double(n);
    table.AddRow({std::to_string(len), FormatDouble(viterbi_us, 1),
                  FormatDouble(astar_us, 1), FormatDouble(total_us, 1)});
  }
  table.Print(std::cout);
  std::printf("shape: both stages grow with query length; whole-call "
              "online time stays far below the paper's 0.2 s "
              "interactive bound.\n");
}

}  // namespace
}  // namespace kqr

int main() {
  kqr::Run();
  return 0;
}
