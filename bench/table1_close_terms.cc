// Table I — "Extracted close terms": for target terms, the ranked close
// title terms and ranked close venues, per the closeness measure of
// Sec. IV-C (Eq. 3).

#include "bench_common.h"
#include "closeness/closeness.h"
#include "common/string_util.h"
#include "text/porter_stemmer.h"

namespace kqr {
namespace {

void Run() {
  bench::PrintHeader(
      "Table I: close terms / close venues per target term");
  ExperimentContext ctx = bench::MustMakeContext(bench::DefaultCorpus());
  const ServingModel& model = *ctx.model;

  // Rank display lists by per-occurrence closeness so informative close
  // terms surface above generic corpus-wide filler (stored closeness
  // values are the raw Eq. 3 sums either way).
  ClosenessOptions display;
  display.rank_normalized = true;
  ClosenessExtractor extractor(model.graph(), display);
  const Vocabulary& vocab = model.vocab();
  auto title_field = vocab.FindField("papers", "title");
  auto venue_field = vocab.FindField("venues", "name");
  KQR_CHECK(title_field.has_value() && venue_field.has_value());
  PorterStemmer stemmer;

  TablePrinter table(
      {"target term", "ranked close terms", "ranked close venues"});
  for (const char* target : {"probabilistic", "uncertain", "xml",
                             "mining", "stream"}) {
    auto term = vocab.Find(*title_field, stemmer.Stem(target));
    if (!term.has_value()) {
      table.AddRow({target, "(not in corpus)", ""});
      continue;
    }
    std::vector<std::string> close_terms;
    for (const CloseTerm& c : extractor.TopClose(*term, 5, *title_field)) {
      close_terms.push_back(std::string(vocab.text(c.term)) + "(" +
                            FormatDouble(c.closeness, 0) + ")");
    }
    std::vector<std::string> close_venues;
    for (const CloseTerm& c : extractor.TopClose(*term, 3, *venue_field)) {
      // Venue names are long; print the distinguishing tail.
      std::string name{vocab.text(c.term)};
      close_venues.push_back(name);
    }
    table.AddRow({target, Join(close_terms, ", "),
                  Join(close_venues, " | ")});
  }
  table.Print(std::cout);

  // The paper validates closeness with a search-count sanity check
  // ("probabilistic"+VLDB vs "probabilistic"+ICDM on Google): close
  // venue pairs must have more joint keyword-search results than distant
  // ones.
  bench::PrintHeader("Closeness sanity check (paper Sec. IV-C)");
  auto prob = vocab.Find(*title_field, stemmer.Stem("probabilistic"));
  if (prob.has_value()) {
    auto close_venues = extractor.TopClose(*prob, 50, *venue_field);
    if (close_venues.size() >= 2) {
      TermId nearest = close_venues.front().term;
      TermId farthest = close_venues.back().term;
      size_t near_count = model.CountResults({*prob, nearest});
      size_t far_count = model.CountResults({*prob, farthest});
      std::printf("results(probabilistic + %s) = %zu\n",
                  std::string(vocab.text(nearest)).c_str(), near_count);
      std::printf("results(probabilistic + %s) = %zu\n",
                  std::string(vocab.text(farthest)).c_str(), far_count);
      std::printf("shape %s: closest venue yields >= joint results\n",
                  near_count >= far_count ? "HOLDS" : "VIOLATED");
    }
  }
}

}  // namespace
}  // namespace kqr

int main() {
  kqr::Run();
  return 0;
}
