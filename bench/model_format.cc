// Cold-start benchmark for the v3 model file: how fast does a process go
// from "file on disk" to "serving reformulations", and what does it pay
// in resident memory, compared against the two older paths?
//
//   build      eager EngineBuilder::Build from the raw corpus — what every
//              process paid before any persistence existed.
//   v2-parse   lazy build (graph + vocab from the corpus) followed by
//              LoadOfflineSnapshotFile parsing the v2 text snapshot — the
//              pre-v3 cold start.
//   v3-mmap    ServingModel::OpenMapped over the mmap'd container.
//   v3-heap    same loader with prefer_mmap off (portability fallback).
//
// Every arm must produce rankings bit-identical to the source model on a
// sampled workload; mismatches fail the run. Emits BENCH_model_format.json
// (open seconds, RSS delta, file sizes) next to the table output.
//
// --quick shrinks the corpus and relaxes the speedup floor so the gate
// fits a CI smoke slot: exactness and the v3-smaller-than-v2 size check
// always gate; the v3-mmap vs v2-parse speedup floor is 10x in the full
// run, 3x under --quick (absolute timings on shared CI runners are noisy,
// but mmap-open versus rebuild-everything is not a close race).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/io/io.h"
#include "datagen/dblp_gen.h"
#include "kqr.h"

namespace kqr {
namespace {

bool g_quick = false;
int g_exit_code = 0;

constexpr size_t kTopK = 8;
constexpr size_t kNumQueries = 24;

/// Timed opens per arm; each arm reports its best run. The gate compares
/// a ratio of arms, and single runs on a shared host can swing 2x from
/// scheduler noise alone.
constexpr int kOpenRepeats = 3;

DblpOptions BenchCorpus() {
  if (!g_quick) return bench::DefaultCorpus();
  DblpOptions options;
  options.num_authors = 300;
  options.num_papers = 1000;
  options.num_venues = 24;
  options.seed = 42;
  return options;
}

/// Resident set size from /proc/self/status (Linux); 0 when unavailable.
/// Good enough to show the mapped arm's paging behaviour relative to the
/// parse arms — absolute values depend on allocator reuse.
size_t CurrentRssBytes() {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  size_t rss_kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmRSS: %zu kB", &rss_kb) == 1) break;
  }
  std::fclose(f);
  return rss_kb * 1024;
}

size_t FileSizeBytes(const std::string& path) {
  auto file = MappedFile::Open(path, /*prefer_mmap=*/false);
  return file.ok() ? (*file)->size() : 0;
}

/// FNV-1a over every ranking's term ids and exact score bits: two models
/// agree on a workload iff their fingerprints match.
uint64_t WorkloadFingerprint(const ServingModel& model,
                             const std::vector<std::vector<TermId>>& queries) {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto fold = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  for (const auto& q : queries) {
    const auto rankings = bench::MustReformulate(
        model.ReformulateTerms(q, kTopK));
    fold(rankings.size());
    for (const ReformulatedQuery& r : rankings) {
      uint64_t bits;
      std::memcpy(&bits, &r.score, sizeof(bits));
      fold(bits);
      for (TermId t : r.terms) fold(t);
    }
  }
  return h;
}

struct ColdStartOutcome {
  const char* arm = "";
  double open_seconds = 0.0;
  size_t rss_delta_bytes = 0;
  bool fingerprint_match = false;
};

void PrintOutcome(const ColdStartOutcome& o) {
  std::printf("%-10s %10.4fs   rss +%8.2f MiB   %s\n", o.arm,
              o.open_seconds, o.rss_delta_bytes / (1024.0 * 1024.0),
              o.fingerprint_match ? "exact" : "MISMATCH");
}

void WriteJson(const std::vector<ColdStartOutcome>& outcomes,
               size_t v2_bytes, size_t v3_bytes, double speedup) {
  FILE* f = std::fopen("BENCH_model_format.json", "w");
  if (f == nullptr) {
    std::printf("# could not open BENCH_model_format.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"model_format\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", g_quick ? "true" : "false");
  std::fprintf(f, "  \"queries\": %zu,\n  \"k\": %zu,\n", kNumQueries,
               kTopK);
  std::fprintf(f, "  \"v2_snapshot_bytes\": %zu,\n", v2_bytes);
  std::fprintf(f, "  \"v3_model_bytes\": %zu,\n", v3_bytes);
  std::fprintf(f, "  \"v3_to_v2_size_ratio\": %.4f,\n",
               v2_bytes > 0 ? double(v3_bytes) / double(v2_bytes) : 0.0);
  std::fprintf(f, "  \"mmap_speedup_vs_v2_parse\": %.2f,\n", speedup);
  std::fprintf(f, "  \"cold_starts\": [\n");
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const ColdStartOutcome& o = outcomes[i];
    std::fprintf(f,
                 "    {\"arm\": \"%s\", \"open_seconds\": %.6f, "
                 "\"rss_delta_bytes\": %zu, \"exact\": %s}%s\n",
                 o.arm, o.open_seconds, o.rss_delta_bytes,
                 o.fingerprint_match ? "true" : "false",
                 i + 1 < outcomes.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("# wrote BENCH_model_format.json\n");
}

void Run() {
  bench::PrintHeader("Model format v3: cold start (open time + RSS)");
  const DblpOptions corpus_options = BenchCorpus();

  // Source model: one eager build, timed — this is the "no persistence"
  // cold start every other arm is trying to beat.
  Timer build_timer;
  const size_t rss_before_build = CurrentRssBytes();
  EngineOptions eager;
  eager.precompute_offline = true;
  ExperimentContext ctx = bench::MustMakeContext(corpus_options, eager);
  const double build_seconds = build_timer.ElapsedSeconds();
  const size_t build_rss = CurrentRssBytes() - rss_before_build;

  QuerySampler sampler(*ctx.model, /*seed=*/909);
  std::vector<std::vector<TermId>> queries;
  for (auto& q : sampler.SampleQueries(kNumQueries / 2, 2)) {
    queries.push_back(std::move(q));
  }
  for (auto& q : sampler.SampleQueries(kNumQueries / 2, 3)) {
    queries.push_back(std::move(q));
  }
  const uint64_t want_fingerprint = WorkloadFingerprint(*ctx.model, queries);

  // Persist both formats once.
  const std::string v3_path = "bench_model_format.kqrm";
  const std::string v2_path = "bench_model_format.snapshot";
  {
    const Status saved = EngineBuilder::SaveModel(*ctx.model, v3_path);
    KQR_CHECK(saved.ok()) << saved.ToString();
    const Status snap = SaveOfflineSnapshotFile(*ctx.model, v2_path);
    KQR_CHECK(snap.ok()) << snap.ToString();
  }
  const size_t v3_bytes = FileSizeBytes(v3_path);
  const size_t v2_bytes = FileSizeBytes(v2_path);
  std::printf("# v3 model file: %zu bytes; v2 snapshot: %zu bytes "
              "(lists only — v3 additionally carries vocab, index, "
              "graph, bounds)\n",
              v3_bytes, v2_bytes);

  std::vector<ColdStartOutcome> outcomes;
  outcomes.push_back({"build", build_seconds, build_rss, true});

  // v2 parse path: rebuild vocab/graph lazily, then parse the text lists.
  // RSS and exactness come from the first repeat; later repeats only
  // re-time the open (allocator reuse would understate RSS anyway).
  {
    ColdStartOutcome o{"v2-parse", 0.0, 0, false};
    for (int rep = 0; rep < kOpenRepeats; ++rep) {
      auto corpus = GenerateDblp(corpus_options);
      KQR_CHECK(corpus.ok());
      const size_t rss0 = CurrentRssBytes();
      Timer timer;
      auto model = EngineBuilder().Build(std::move(corpus->db));
      KQR_CHECK(model.ok()) << model.status().ToString();
      const Status loaded =
          LoadOfflineSnapshotFile((*model).get(), v2_path);
      KQR_CHECK(loaded.ok()) << loaded.ToString();
      const double seconds = timer.ElapsedSeconds();
      if (rep == 0) {
        o.open_seconds = seconds;
        o.rss_delta_bytes = CurrentRssBytes() - rss0;
        o.fingerprint_match =
            WorkloadFingerprint(**model, queries) == want_fingerprint;
      } else {
        o.open_seconds = std::min(o.open_seconds, seconds);
      }
    }
    outcomes.push_back(o);
  }

  // v3 arms: mmap and heap fallback.
  for (const bool prefer_mmap : {true, false}) {
    ColdStartOutcome o{prefer_mmap ? "v3-mmap" : "v3-heap", 0.0, 0, false};
    for (int rep = 0; rep < kOpenRepeats; ++rep) {
      auto corpus = GenerateDblp(corpus_options);
      KQR_CHECK(corpus.ok());
      const size_t rss0 = CurrentRssBytes();
      Timer timer;
      EngineOptions options;
      options.precompute_offline = true;
      ModelOpenOptions open;
      open.prefer_mmap = prefer_mmap;
      auto model = ServingModel::OpenMapped(std::move(corpus->db), v3_path,
                                            options, open);
      KQR_CHECK(model.ok()) << model.status().ToString();
      const double seconds = timer.ElapsedSeconds();
      if (rep == 0) {
        o.open_seconds = seconds;
        o.rss_delta_bytes = CurrentRssBytes() - rss0;
        o.fingerprint_match =
            WorkloadFingerprint(**model, queries) == want_fingerprint;
      } else {
        o.open_seconds = std::min(o.open_seconds, seconds);
      }
    }
    outcomes.push_back(o);
  }

  std::printf("%-10s %11s   %14s   %s\n", "arm", "open", "rss-delta",
              "exactness");
  for (const ColdStartOutcome& o : outcomes) PrintOutcome(o);

  double v2_seconds = 0.0, mmap_seconds = 0.0;
  for (const ColdStartOutcome& o : outcomes) {
    if (std::strcmp(o.arm, "v2-parse") == 0) v2_seconds = o.open_seconds;
    if (std::strcmp(o.arm, "v3-mmap") == 0) mmap_seconds = o.open_seconds;
  }
  const double speedup =
      mmap_seconds > 0.0 ? v2_seconds / mmap_seconds : 0.0;
  std::printf("# v3-mmap cold start is %.1fx the v2 parse path\n", speedup);

  WriteJson(outcomes, v2_bytes, v3_bytes, speedup);
  std::remove(v3_path.c_str());
  std::remove(v2_path.c_str());

  // Gates: exactness always; the v3 file must not be larger than the v2
  // snapshot it subsumes; and the mapped open must clear the speedup
  // floor (10x full, 3x quick — see the header comment).
  size_t mismatches = 0;
  for (const ColdStartOutcome& o : outcomes) {
    if (!o.fingerprint_match) ++mismatches;
  }
  const double speedup_floor = g_quick ? 3.0 : 10.0;
  if (mismatches != 0) {
    std::printf("GATE: FAIL — %zu arm(s) diverged from the source model\n",
                mismatches);
    g_exit_code = 1;
  }
  if (v3_bytes == 0 || v2_bytes == 0 || v3_bytes >= v2_bytes) {
    std::printf("GATE: FAIL — v3 file (%zu bytes) not smaller than v2 "
                "snapshot (%zu bytes)\n",
                v3_bytes, v2_bytes);
    g_exit_code = 1;
  }
  if (speedup < speedup_floor) {
    std::printf("GATE: FAIL — v3-mmap speedup %.1fx below %.1fx floor\n",
                speedup, speedup_floor);
    g_exit_code = 1;
  }
  if (g_exit_code == 0) {
    std::printf("GATE: PASS (all arms exact, v3 %.0f%% of v2 size, "
                "mmap %.1fx faster than v2 parse)\n",
                100.0 * v3_bytes / v2_bytes, speedup);
  }
}

}  // namespace
}  // namespace kqr

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      kqr::g_quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--quick]\n", argv[0]);
      return 2;
    }
  }
  kqr::Run();
  return kqr::g_exit_code;
}
