// Shared scaffolding for the paper-experiment bench binaries.
//
// Each bench binary regenerates one table or figure of the paper
// (see DESIGN.md §3). Binaries print the same rows/series the paper
// reports; absolute timings differ from the paper's 2012 Java/C# testbed,
// but the shapes are what the reproduction tracks (EXPERIMENTS.md).

#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/timer.h"
#include "eval/experiment.h"
#include "eval/table_printer.h"

namespace kqr {
namespace bench {

/// Default corpus for all paper experiments: the same shape as the
/// paper's DBLP snapshot (authors ≫ venues, papers ≈ 3×authors), at
/// laptop scale.
inline DblpOptions DefaultCorpus() {
  DblpOptions options;
  options.num_authors = 1200;
  options.num_papers = 4000;
  options.num_venues = 36;
  options.seed = 42;
  return options;
}

inline ExperimentContext MustMakeContext(DblpOptions dblp,
                                         EngineOptions engine = {}) {
  Timer timer;
  auto ctx = MakeDblpContext(dblp, engine);
  KQR_CHECK(ctx.ok()) << ctx.status().ToString();
  std::printf("# corpus: %zu tuples, %zu graph nodes, %zu edges, "
              "%zu terms (built in %.2fs)\n",
              ctx->model->db().TotalRows(),
              ctx->model->graph().num_nodes(),
              ctx->model->graph().num_edges(),
              ctx->model->vocab().size(), timer.ElapsedSeconds());
  // Per-stage offline breakdown from the model's build trace (empty when
  // the model was built with enable_metrics = false).
  for (const TraceSpan& span : ctx->model->build_trace().spans()) {
    std::printf("#   build stage %-20s %8.1fms\n", span.name,
                span.duration_seconds * 1e3);
  }
  return std::move(*ctx);
}

/// Unwraps a reformulation Result; benches run on curated corpora where
/// every query must serve, so an error is a bench bug worth dying on.
inline std::vector<ReformulatedQuery> MustReformulate(
    Result<std::vector<ReformulatedQuery>> result) {
  KQR_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).ValueUnsafe();
}

/// Runs each query once untimed so every lazily-computed offline product
/// (similar lists, closeness lists) is cached — timed passes then measure
/// only the online stage, as the paper does.
inline void WarmUp(const ServingModel& model,
                   const std::vector<std::vector<TermId>>& queries,
                   size_t k) {
  Timer timer;
  for (const auto& q : queries) {
    MustReformulate(model.ReformulateTerms(q, k));
  }
  std::printf("# offline warm-up for %zu queries: %.2fs\n", queries.size(),
              timer.ElapsedSeconds());
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================\n");
}

}  // namespace bench
}  // namespace kqr

