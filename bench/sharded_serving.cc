// Sharded-serving benchmark: QPS and batch latency of a ShardRouter over
// replicated fleets of real kqr_shardd processes on loopback. Each fleet
// shape (groups × replicas) is driven by two router arms:
//
//   one-in-flight  — subbatch_queries = 0: one sub-batch per group, at
//                    most one request in flight per connection (the old
//                    router's wire shape);
//   multiplexed    — subbatch_queries = 8: pipelined sub-batches, many
//                    request ids in flight per connection, out-of-order
//                    gather.
//
// The determinism gate that makes the numbers trustworthy never relaxes:
// every routed ranking, from every fleet shape and arm, must fingerprint
// bit-identically to a single-process ReformulateTerms over the same
// model file, with zero degraded outcomes. The multiplexed arm must
// additionally beat the one-in-flight arm by >= 1.3x QPS — gated only on
// multi-core full runs, since a one-core runner serialises the shard
// processes and measures protocol overhead, not overlap.
//
// Emits BENCH_sharded_serving.json. --quick shrinks the corpus, rounds
// and fleet list to fit a CI smoke slot; the exactness gate still runs.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "kqr.h"
#include "shardd_harness.h"

namespace kqr {
namespace {

bool g_quick = false;
int g_exit_code = 0;

constexpr size_t kTopK = 8;
constexpr size_t kNumQueries = 64;
constexpr size_t kMultiplexSubbatch = 8;
constexpr double kRequiredSpeedup = 1.3;

size_t Rounds() { return g_quick ? 5 : 40; }

struct FleetSpec {
  size_t groups = 1;
  size_t replicas = 1;
};

std::vector<FleetSpec> FleetSpecs() {
  if (g_quick) return {{1, 1}, {2, 2}};
  return {{1, 1}, {2, 1}, {4, 1}, {2, 2}};
}

DblpOptions BenchCorpus() {
  DblpOptions options;
  if (g_quick) {
    options.num_authors = 150;
    options.num_papers = 500;
    options.num_venues = 24;
  } else {
    options.num_authors = 600;
    options.num_papers = 2000;
    options.num_venues = 30;
  }
  options.seed = 4242;
  return options;
}

std::vector<std::string> ShardArgs(const DblpOptions& corpus,
                                   const std::string& model_path) {
  return {"--demo-authors", std::to_string(corpus.num_authors),
          "--demo-papers",  std::to_string(corpus.num_papers),
          "--demo-venues",  std::to_string(corpus.num_venues),
          "--demo-seed",    std::to_string(corpus.seed),
          "--model",        model_path,
          "--workers",      "2"};
}

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t Fingerprint(const std::vector<ReformulatedQuery>& ranking) {
  uint64_t h = 0xcbf29ce484222325ULL;
  h = Fnv1a(h, ranking.size());
  for (const ReformulatedQuery& q : ranking) {
    for (TermId t : q.terms) h = Fnv1a(h, t);
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(q.score));
    std::memcpy(&bits, &q.score, sizeof(bits));
    h = Fnv1a(h, bits);
  }
  return h;
}

struct ArmOutcome {
  const char* arm = "";
  size_t subbatch_queries = 0;
  size_t requests = 0;
  double wall_seconds = 0.0;
  double qps = 0.0;
  double p50_batch_ms = 0.0;
  double p99_batch_ms = 0.0;
  size_t mismatches = 0;
  size_t degraded = 0;  // kUnavailable + kDeadlineExceeded outcomes
  uint64_t failovers = 0;
};

struct FleetOutcome {
  FleetSpec spec;
  ArmOutcome one_in_flight;
  ArmOutcome multiplexed;
  double speedup = 0.0;  // multiplexed qps / one-in-flight qps
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t idx = std::min(values.size() - 1,
                              static_cast<size_t>(p * values.size()));
  return values[idx];
}

ArmOutcome RunArm(const char* arm, size_t subbatch_queries,
                  const FleetTopology& topology,
                  const std::vector<std::vector<TermId>>& queries,
                  const std::vector<uint64_t>& reference) {
  ArmOutcome outcome;
  outcome.arm = arm;
  outcome.subbatch_queries = subbatch_queries;

  RouterOptions options;
  options.subbatch_queries = subbatch_queries;
  auto router = ShardRouter::Connect(topology, options);
  KQR_CHECK(router.ok()) << router.status().ToString();

  // Warm-up: one full pass prepares every queried term on every shard,
  // so the timed rounds measure serving, not lazy offline computation.
  (void)(*router)->ReformulateBatch(queries, kTopK, Deadline::After(120.0));

  std::vector<double> batch_seconds;
  Timer wall;
  for (size_t round = 0; round < Rounds(); ++round) {
    Timer batch_timer;
    auto results =
        (*router)->ReformulateBatch(queries, kTopK, Deadline::After(120.0));
    batch_seconds.push_back(batch_timer.ElapsedSeconds());
    for (size_t i = 0; i < results.size(); ++i) {
      if (!results[i].ok()) {
        const StatusCode code = results[i].status().code();
        if (code == StatusCode::kUnavailable ||
            code == StatusCode::kDeadlineExceeded) {
          ++outcome.degraded;
        }
        ++outcome.mismatches;
        continue;
      }
      if (Fingerprint(*results[i]) != reference[i]) ++outcome.mismatches;
    }
    outcome.requests += results.size();
  }
  outcome.wall_seconds = wall.ElapsedSeconds();
  outcome.qps = outcome.requests / outcome.wall_seconds;
  outcome.p50_batch_ms = Percentile(batch_seconds, 0.50) * 1e3;
  outcome.p99_batch_ms = Percentile(batch_seconds, 0.99) * 1e3;
  outcome.failovers = (*router)->stats().failovers;
  return outcome;
}

FleetOutcome RunFleet(const FleetSpec& spec, const DblpOptions& corpus,
                      const std::string& model_path,
                      const std::vector<std::vector<TermId>>& queries,
                      const std::vector<uint64_t>& reference) {
  FleetOutcome outcome;
  outcome.spec = spec;

  // One set of shard processes serves both arms: same fleet, two wire
  // disciplines, so the QPS ratio isolates the multiplexing.
  std::vector<ShardProcess> fleet(spec.groups * spec.replicas);
  FleetTopology topology;
  topology.groups.resize(spec.groups);
  for (size_t g = 0; g < spec.groups; ++g) {
    for (size_t r = 0; r < spec.replicas; ++r) {
      ShardProcess& shard = fleet[g * spec.replicas + r];
      KQR_CHECK(shard.Start(ShardArgs(corpus, model_path)))
          << "failed to spawn replica " << g << "." << r;
      topology.groups[g].push_back({"127.0.0.1", shard.port()});
    }
  }

  outcome.one_in_flight =
      RunArm("one_in_flight", 0, topology, queries, reference);
  outcome.multiplexed =
      RunArm("multiplexed", kMultiplexSubbatch, topology, queries, reference);
  if (outcome.one_in_flight.qps > 0.0) {
    outcome.speedup = outcome.multiplexed.qps / outcome.one_in_flight.qps;
  }
  return outcome;
}

void PrintArm(const FleetSpec& spec, const ArmOutcome& o) {
  std::printf("%zux%zu %-13s %6zu requests in %6.2fs  %8.1f qps  "
              "batch p50 %7.2fms p99 %7.2fms  %s\n",
              spec.groups, spec.replicas, o.arm, o.requests, o.wall_seconds,
              o.qps, o.p50_batch_ms, o.p99_batch_ms,
              o.mismatches == 0 ? "exact" : "MISMATCH");
}

void WriteArmJson(FILE* f, const ArmOutcome& o, const char* trailer) {
  std::fprintf(f,
               "        {\"arm\": \"%s\", \"subbatch_queries\": %zu, "
               "\"requests\": %zu, \"wall_seconds\": %.4f, \"qps\": %.1f, "
               "\"p50_batch_ms\": %.3f, \"p99_batch_ms\": %.3f, "
               "\"exact\": %s, \"degraded\": %zu, \"failovers\": %llu}%s\n",
               o.arm, o.subbatch_queries, o.requests, o.wall_seconds, o.qps,
               o.p50_batch_ms, o.p99_batch_ms,
               o.mismatches == 0 ? "true" : "false", o.degraded,
               static_cast<unsigned long long>(o.failovers), trailer);
}

void WriteJson(const std::vector<FleetOutcome>& outcomes,
               unsigned hardware_threads, bool gate_speedup) {
  FILE* f = std::fopen("BENCH_sharded_serving.json", "w");
  if (f == nullptr) {
    std::printf("# could not open BENCH_sharded_serving.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"sharded_serving\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", g_quick ? "true" : "false");
  std::fprintf(f, "  \"hardware_threads\": %u,\n", hardware_threads);
  std::fprintf(f, "  \"speedup_gated\": %s,\n",
               gate_speedup ? "true" : "false");
  std::fprintf(f, "  \"required_speedup\": %.2f,\n", kRequiredSpeedup);
  std::fprintf(f, "  \"queries_per_batch\": %zu,\n  \"k\": %zu,\n",
               kNumQueries, kTopK);
  std::fprintf(f, "  \"rounds\": %zu,\n", Rounds());
  std::fprintf(f, "  \"fleets\": [\n");
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const FleetOutcome& o = outcomes[i];
    std::fprintf(f,
                 "    {\"groups\": %zu, \"replicas_per_group\": %zu, "
                 "\"multiplex_speedup\": %.3f,\n      \"arms\": [\n",
                 o.spec.groups, o.spec.replicas, o.speedup);
    WriteArmJson(f, o.one_in_flight, ",");
    WriteArmJson(f, o.multiplexed, "");
    std::fprintf(f, "      ]}%s\n", i + 1 < outcomes.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("# wrote BENCH_sharded_serving.json\n");
}

void Run() {
  bench::PrintHeader(
      "Sharded serving: multiplexed scatter/gather over replicated "
      "kqr_shardd fleets");
  const DblpOptions corpus_options = BenchCorpus();
  ExperimentContext ctx = bench::MustMakeContext(corpus_options);

  const std::string model_path = "bench_sharded_serving.kqrm";
  {
    const Status saved = EngineBuilder::SaveModel(*ctx.model, model_path);
    KQR_CHECK(saved.ok()) << saved.ToString();
  }

  QuerySampler sampler(*ctx.model, /*seed=*/1712);
  std::vector<std::vector<TermId>> queries;
  for (auto& q : sampler.SampleQueries(kNumQueries / 2, 2)) {
    queries.push_back(std::move(q));
  }
  for (auto& q : sampler.SampleQueries(kNumQueries / 2, 3)) {
    queries.push_back(std::move(q));
  }

  // Single-process reference fingerprints: what every fleet must match.
  std::vector<uint64_t> reference;
  for (const auto& q : queries) {
    reference.push_back(
        Fingerprint(bench::MustReformulate(ctx.model->ReformulateTerms(
            q, kTopK))));
  }

  const unsigned hardware_threads = std::thread::hardware_concurrency();
  const bool gate_speedup = !g_quick && hardware_threads > 1;

  std::vector<FleetOutcome> outcomes;
  for (const FleetSpec& spec : FleetSpecs()) {
    outcomes.push_back(
        RunFleet(spec, corpus_options, model_path, queries, reference));
    const FleetOutcome& o = outcomes.back();
    PrintArm(spec, o.one_in_flight);
    PrintArm(spec, o.multiplexed);
    std::printf("%zux%zu multiplex speedup: %.2fx\n", spec.groups,
                spec.replicas, o.speedup);
  }

  WriteJson(outcomes, hardware_threads, gate_speedup);
  std::remove(model_path.c_str());

  size_t mismatches = 0, degraded = 0;
  uint64_t failovers = 0;
  double worst_speedup = 1e9;
  for (const FleetOutcome& o : outcomes) {
    mismatches += o.one_in_flight.mismatches + o.multiplexed.mismatches;
    degraded += o.one_in_flight.degraded + o.multiplexed.degraded;
    failovers += o.one_in_flight.failovers + o.multiplexed.failovers;
    worst_speedup = std::min(worst_speedup, o.speedup);
  }
  if (mismatches != 0 || degraded != 0 || failovers != 0) {
    std::printf("GATE: FAIL — %zu mismatched / %zu degraded request(s), "
                "%llu failover(s); a healthy replicated fleet must answer "
                "bit-identically to single-process without failing over\n",
                mismatches, degraded,
                static_cast<unsigned long long>(failovers));
    g_exit_code = 1;
  } else if (gate_speedup && worst_speedup < kRequiredSpeedup) {
    std::printf("GATE: FAIL — multiplexed arm %.2fx over one-in-flight, "
                "need >= %.2fx on a %u-thread host\n",
                worst_speedup, kRequiredSpeedup, hardware_threads);
    g_exit_code = 1;
  } else {
    std::printf("GATE: PASS (every routed ranking bit-identical to "
                "single-process across all fleet shapes and arms%s)\n",
                gate_speedup ? "; multiplex speedup met"
                             : "; speedup informational on this host");
  }
}

}  // namespace
}  // namespace kqr

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      kqr::g_quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--quick]\n", argv[0]);
      return 2;
    }
  }
  kqr::Run();
  return kqr::g_exit_code;
}
