// Sharded-serving benchmark: QPS and batch latency of a ShardRouter over
// fleets of 1, 2 and 4 real kqr_shardd processes on loopback, with the
// determinism gate that makes the numbers trustworthy — every routed
// ranking must fingerprint bit-identically to a single-process
// ReformulateTerms over the same model file. On a one-core runner the
// shard counts mostly measure protocol overhead, not parallel speedup;
// the gate is the point, the throughput table is the context.
//
// Emits BENCH_sharded_serving.json. --quick shrinks the corpus and the
// round count to fit a CI smoke slot; the exactness gate never relaxes.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "kqr.h"
#include "shardd_harness.h"

namespace kqr {
namespace {

bool g_quick = false;
int g_exit_code = 0;

constexpr size_t kTopK = 8;
constexpr size_t kNumQueries = 64;

size_t Rounds() { return g_quick ? 5 : 40; }

DblpOptions BenchCorpus() {
  DblpOptions options;
  if (g_quick) {
    options.num_authors = 150;
    options.num_papers = 500;
    options.num_venues = 24;
  } else {
    options.num_authors = 600;
    options.num_papers = 2000;
    options.num_venues = 30;
  }
  options.seed = 4242;
  return options;
}

std::vector<std::string> ShardArgs(const DblpOptions& corpus,
                                   const std::string& model_path) {
  return {"--demo-authors", std::to_string(corpus.num_authors),
          "--demo-papers",  std::to_string(corpus.num_papers),
          "--demo-venues",  std::to_string(corpus.num_venues),
          "--demo-seed",    std::to_string(corpus.seed),
          "--model",        model_path,
          "--workers",      "2"};
}

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t Fingerprint(const std::vector<ReformulatedQuery>& ranking) {
  uint64_t h = 0xcbf29ce484222325ULL;
  h = Fnv1a(h, ranking.size());
  for (const ReformulatedQuery& q : ranking) {
    for (TermId t : q.terms) h = Fnv1a(h, t);
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(q.score));
    std::memcpy(&bits, &q.score, sizeof(bits));
    h = Fnv1a(h, bits);
  }
  return h;
}

struct FleetOutcome {
  size_t shards = 0;
  size_t requests = 0;
  double wall_seconds = 0.0;
  double qps = 0.0;
  double p50_batch_ms = 0.0;
  double p99_batch_ms = 0.0;
  size_t mismatches = 0;
  size_t degraded = 0;  // kUnavailable + kDeadlineExceeded outcomes
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t idx = std::min(values.size() - 1,
                              static_cast<size_t>(p * values.size()));
  return values[idx];
}

FleetOutcome RunFleet(size_t num_shards, const DblpOptions& corpus,
                      const std::string& model_path,
                      const std::vector<std::vector<TermId>>& queries,
                      const std::vector<uint64_t>& reference) {
  FleetOutcome outcome;
  outcome.shards = num_shards;

  std::vector<ShardProcess> fleet(num_shards);
  std::vector<ShardAddress> addresses;
  for (size_t i = 0; i < num_shards; ++i) {
    KQR_CHECK(fleet[i].Start(ShardArgs(corpus, model_path)))
        << "failed to spawn shard " << i;
    addresses.push_back({"127.0.0.1", fleet[i].port()});
  }
  auto router = ShardRouter::Connect(std::move(addresses));
  KQR_CHECK(router.ok()) << router.status().ToString();

  // Warm-up: one full pass prepares every queried term on every shard,
  // so the timed rounds measure serving, not lazy offline computation.
  (void)(*router)->ReformulateBatch(queries, kTopK, 120.0);

  std::vector<double> batch_seconds;
  Timer wall;
  for (size_t round = 0; round < Rounds(); ++round) {
    Timer batch_timer;
    auto results = (*router)->ReformulateBatch(queries, kTopK, 120.0);
    batch_seconds.push_back(batch_timer.ElapsedSeconds());
    for (size_t i = 0; i < results.size(); ++i) {
      if (!results[i].ok()) {
        const StatusCode code = results[i].status().code();
        if (code == StatusCode::kUnavailable ||
            code == StatusCode::kDeadlineExceeded) {
          ++outcome.degraded;
        }
        ++outcome.mismatches;
        continue;
      }
      if (Fingerprint(*results[i]) != reference[i]) ++outcome.mismatches;
    }
    outcome.requests += results.size();
  }
  outcome.wall_seconds = wall.ElapsedSeconds();
  outcome.qps = outcome.requests / outcome.wall_seconds;
  outcome.p50_batch_ms = Percentile(batch_seconds, 0.50) * 1e3;
  outcome.p99_batch_ms = Percentile(batch_seconds, 0.99) * 1e3;
  return outcome;
}

void WriteJson(const std::vector<FleetOutcome>& outcomes) {
  FILE* f = std::fopen("BENCH_sharded_serving.json", "w");
  if (f == nullptr) {
    std::printf("# could not open BENCH_sharded_serving.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"sharded_serving\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", g_quick ? "true" : "false");
  std::fprintf(f, "  \"queries_per_batch\": %zu,\n  \"k\": %zu,\n",
               kNumQueries, kTopK);
  std::fprintf(f, "  \"rounds\": %zu,\n", Rounds());
  std::fprintf(f, "  \"fleets\": [\n");
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const FleetOutcome& o = outcomes[i];
    std::fprintf(f,
                 "    {\"shards\": %zu, \"requests\": %zu, "
                 "\"wall_seconds\": %.4f, \"qps\": %.1f, "
                 "\"p50_batch_ms\": %.3f, \"p99_batch_ms\": %.3f, "
                 "\"exact\": %s, \"degraded\": %zu}%s\n",
                 o.shards, o.requests, o.wall_seconds, o.qps,
                 o.p50_batch_ms, o.p99_batch_ms,
                 o.mismatches == 0 ? "true" : "false", o.degraded,
                 i + 1 < outcomes.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("# wrote BENCH_sharded_serving.json\n");
}

void Run() {
  bench::PrintHeader("Sharded serving: scatter/gather over kqr_shardd fleets");
  const DblpOptions corpus_options = BenchCorpus();
  ExperimentContext ctx = bench::MustMakeContext(corpus_options);

  const std::string model_path = "bench_sharded_serving.kqrm";
  {
    const Status saved = EngineBuilder::SaveModel(*ctx.model, model_path);
    KQR_CHECK(saved.ok()) << saved.ToString();
  }

  QuerySampler sampler(*ctx.model, /*seed=*/1712);
  std::vector<std::vector<TermId>> queries;
  for (auto& q : sampler.SampleQueries(kNumQueries / 2, 2)) {
    queries.push_back(std::move(q));
  }
  for (auto& q : sampler.SampleQueries(kNumQueries / 2, 3)) {
    queries.push_back(std::move(q));
  }

  // Single-process reference fingerprints: what every fleet must match.
  std::vector<uint64_t> reference;
  for (const auto& q : queries) {
    reference.push_back(
        Fingerprint(bench::MustReformulate(ctx.model->ReformulateTerms(
            q, kTopK))));
  }

  std::vector<FleetOutcome> outcomes;
  for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    outcomes.push_back(
        RunFleet(shards, corpus_options, model_path, queries, reference));
    const FleetOutcome& o = outcomes.back();
    std::printf("%zu shard(s): %6zu requests in %6.2fs  %8.1f qps  "
                "batch p50 %7.2fms p99 %7.2fms  %s\n",
                o.shards, o.requests, o.wall_seconds, o.qps, o.p50_batch_ms,
                o.p99_batch_ms, o.mismatches == 0 ? "exact" : "MISMATCH");
  }

  WriteJson(outcomes);
  std::remove(model_path.c_str());

  size_t mismatches = 0, degraded = 0;
  for (const FleetOutcome& o : outcomes) {
    mismatches += o.mismatches;
    degraded += o.degraded;
  }
  if (mismatches != 0 || degraded != 0) {
    std::printf("GATE: FAIL — %zu mismatched / %zu degraded request(s); "
                "sharded answers must be bit-identical to single-process\n",
                mismatches, degraded);
    g_exit_code = 1;
  } else {
    std::printf("GATE: PASS (every routed ranking bit-identical to "
                "single-process across all fleet sizes)\n");
  }
}

}  // namespace
}  // namespace kqr

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      kqr::g_quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--quick]\n", argv[0]);
      return 2;
    }
  }
  kqr::Run();
  return kqr::g_exit_code;
}
