// Online-serving scaling: QPS vs thread count for concurrent reformulation
// against one shared ServingModel (not in the paper — the paper reports
// single-request latency; this is the ROADMAP's concurrent-traffic
// north star). The model is built eagerly (frozen indexes, lock-free
// reads); every thread owns a RequestContext, so the only shared state on
// the hot path is immutable.
//
// Every configuration serves the exact same request set, and every
// result is checked against a serial-run fingerprint — aggregate QPS must
// come from concurrency, never from divergent work or divergent answers.
//
// Latency percentiles and scratch-reuse rates come from the engine's own
// metrics registry (interval scrape around each config) rather than
// bench-local recorders, and a final arm re-runs the single-thread config
// against a model built with the EngineOptions::enable_metrics kill
// switch off, reporting the observability overhead.
//
// Two kqr::Server arms compare per-request dispatch (max_batch=1) against
// micro-batched dispatch (max_batch=8) at equal worker count, and an
// open-loop offered-load sweep drives the default server config through
// under-load, near-capacity and overload (load-shedding) regimes.
//
// Pruning arms run both decode algorithms with bound-based pruning on and
// off over the same request set: fingerprints must match bit for bit
// (pruning is exact) while the decoder work counters drop.
//
// The metrics-overhead arm interleaves metrics-on and metrics-off rounds
// in ABBA order and compares each side's peak QPS — back-to-back block
// runs confound the comparison with machine drift (frequency scaling,
// cache/page warmth), which alternating the pair order and taking the
// best round of each side cancels.
//
// Emits BENCH_scaling_online.json next to the table output. Exits
// nonzero when any arm's outputs diverge from the serial reference or
// the metrics overhead exceeds the 3% budget, so CI can run it (with
// --quick for a reduced round count) as a regression gate.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>

#include "bench_common.h"
#include "kqr.h"
#include "obs/metrics.h"

namespace kqr {
namespace {

constexpr size_t kNumQueries = 64;
constexpr size_t kTopK = 10;
constexpr double kOverheadBudgetPercent = 3.0;

// Set from --quick: fewer rounds/widths so the gate fits a CI smoke slot.
size_t g_rounds = 40;  // total requests per config = 64 × rounds
bool g_quick = false;
int g_exit_code = 0;  // set by the gate at the bottom of Run()

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Order- and bit-exact fingerprint of one ranking (terms + score bits).
uint64_t Fingerprint(const std::vector<ReformulatedQuery>& ranking) {
  uint64_t h = 0xcbf29ce484222325ULL;
  h = Fnv1a(h, ranking.size());
  for (const ReformulatedQuery& q : ranking) {
    for (TermId t : q.terms) h = Fnv1a(h, t);
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(q.score));
    __builtin_memcpy(&bits, &q.score, sizeof(bits));
    h = Fnv1a(h, bits);
  }
  return h;
}

struct ConfigOutcome {
  size_t threads = 0;
  size_t requests = 0;
  double wall_seconds = 0.0;
  double qps = 0.0;
  double speedup = 1.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double scratch_hit_rate = 0.0;
  size_t mismatches = 0;
};

ConfigOutcome RunConfig(const ServingModel& model,
                        const std::vector<std::vector<TermId>>& queries,
                        const std::vector<uint64_t>& reference,
                        size_t num_threads) {
  std::atomic<size_t> mismatches{0};

  // Interval scrape: everything this config observes is the delta
  // between these two registry snapshots.
  MetricsRegistry* registry = model.metrics_registry();
  const MetricsSnapshot before =
      registry != nullptr ? registry->Snapshot() : MetricsSnapshot{};

  Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (size_t w = 0; w < num_threads; ++w) {
    threads.emplace_back([&, w]() {
      RequestContext ctx;
      // Round-robin split: across all threads each round covers the whole
      // query set exactly once, so total work is identical per config.
      for (size_t round = 0; round < g_rounds; ++round) {
        for (size_t i = w; i < queries.size(); i += num_threads) {
          auto ranking = bench::MustReformulate(
              model.ReformulateTerms(queries[i], kTopK, &ctx));
          if (Fingerprint(ranking) != reference[i]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  ConfigOutcome out;
  out.threads = num_threads;
  out.wall_seconds = wall.ElapsedSeconds();
  out.requests = queries.size() * g_rounds;
  out.qps = out.wall_seconds > 0 ? double(out.requests) / out.wall_seconds
                                 : 0.0;
  if (registry != nullptr) {
    const MetricsSnapshot after = registry->Snapshot();
    const HistogramSnapshot* req_after =
        after.Histogram("kqr_request_seconds");
    const HistogramSnapshot* req_before =
        before.Histogram("kqr_request_seconds");
    if (req_after != nullptr && req_before != nullptr) {
      const HistogramSnapshot delta =
          HistogramDelta(*req_after, *req_before);
      out.p50_us = delta.Quantile(0.50) * 1e6;
      out.p95_us = delta.Quantile(0.95) * 1e6;
      out.p99_us = delta.Quantile(0.99) * 1e6;
    }
    const uint64_t hits =
        after.CounterValue("kqr_scratch_hits_total") -
        before.CounterValue("kqr_scratch_hits_total");
    const uint64_t misses =
        after.CounterValue("kqr_scratch_misses_total") -
        before.CounterValue("kqr_scratch_misses_total");
    out.scratch_hit_rate =
        hits + misses == 0 ? 0.0 : double(hits) / double(hits + misses);
  }
  out.mismatches = mismatches.load();
  return out;
}

// ---------------------------------------------------------------------
// Server arms: the same request set pushed through the batched async
// kqr::Server front-end instead of caller-owned threads.

struct ServerOutcome {
  size_t max_batch = 0;
  size_t requests = 0;
  double wall_seconds = 0.0;
  double qps = 0.0;
  double p99_us = 0.0;
  double mean_batch = 0.0;
  size_t mismatches = 0;
};

/// Saturation arm: submit every request up front (capacity sized so none
/// shed), drain, measure end-to-end throughput. Callbacks fingerprint
/// every ranking against the serial reference — batching must change
/// scheduling, never answers.
ServerOutcome RunServerConfig(std::shared_ptr<const ServingModel> model,
                              const std::vector<std::vector<TermId>>& queries,
                              const std::vector<uint64_t>& reference,
                              size_t num_workers, size_t max_batch) {
  ServerOptions opts;
  opts.num_workers = num_workers;
  opts.max_batch = max_batch;
  opts.queue_capacity = queries.size() * g_rounds;
  auto server = Server::Create(model, opts);
  KQR_CHECK(server.ok()) << server.status().ToString();

  MetricsRegistry* registry = model->metrics_registry();
  const MetricsSnapshot before =
      registry != nullptr ? registry->Snapshot() : MetricsSnapshot{};

  std::atomic<size_t> mismatches{0};
  Timer wall;
  for (size_t round = 0; round < g_rounds; ++round) {
    for (size_t i = 0; i < queries.size(); ++i) {
      ServerRequest request;
      request.terms = queries[i];
      request.k = kTopK;
      const uint64_t want = reference[i];
      (*server)->Submit(std::move(request),
                        [&mismatches, want](ServeResult r) {
                          if (!r.ok() || Fingerprint(*r) != want) {
                            mismatches.fetch_add(1,
                                                 std::memory_order_relaxed);
                          }
                        });
    }
  }
  (*server)->Drain();

  ServerOutcome out;
  out.max_batch = max_batch;
  out.requests = queries.size() * g_rounds;
  out.wall_seconds = wall.ElapsedSeconds();
  out.qps = out.wall_seconds > 0 ? double(out.requests) / out.wall_seconds
                                 : 0.0;
  if (registry != nullptr) {
    const MetricsSnapshot after = registry->Snapshot();
    const HistogramSnapshot* ra = after.Histogram("kqr_request_seconds");
    const HistogramSnapshot* rb = before.Histogram("kqr_request_seconds");
    if (ra != nullptr && rb != nullptr) {
      out.p99_us = HistogramDelta(*ra, *rb).Quantile(0.99) * 1e6;
    }
    const HistogramSnapshot* ba = after.Histogram("kqr_server_batch_size");
    const HistogramSnapshot* bb = before.Histogram("kqr_server_batch_size");
    if (ba != nullptr) {
      out.mean_batch =
          bb == nullptr ? ba->Mean() : HistogramDelta(*ba, *bb).Mean();
    }
  }
  out.mismatches = mismatches.load();
  return out;
}

struct LoadOutcome {
  double offered_qps = 0.0;
  size_t submitted = 0;
  size_t served = 0;
  size_t shed = 0;
  double achieved_qps = 0.0;
  double shed_rate = 0.0;
  double p99_us = 0.0;
  size_t mismatches = 0;
};

/// Open-loop arm: arrivals at a fixed offered rate that never waits for
/// completions (the production shape — bounded queue, load shedding).
/// Past saturation the queue fills and admission control sheds; achieved
/// QPS plateaus while the shed rate absorbs the excess.
LoadOutcome RunOpenLoop(std::shared_ptr<const ServingModel> model,
                        const std::vector<std::vector<TermId>>& queries,
                        const std::vector<uint64_t>& reference,
                        double offered_qps, double seconds) {
  using Clock = std::chrono::steady_clock;
  ServerOptions opts;  // default production shape: bounded queue, batching
  auto server = Server::Create(model, opts);
  KQR_CHECK(server.ok()) << server.status().ToString();

  MetricsRegistry* registry = model->metrics_registry();
  const MetricsSnapshot before =
      registry != nullptr ? registry->Snapshot() : MetricsSnapshot{};

  std::atomic<size_t> served{0}, shed{0}, mismatches{0};
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / offered_qps));
  const Clock::time_point start = Clock::now();
  const Clock::time_point stop =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(seconds));
  Clock::time_point next = start;
  size_t submitted = 0;
  Timer wall;
  while (next < stop) {
    std::this_thread::sleep_until(next);
    const size_t i = submitted % queries.size();
    ServerRequest request;
    request.terms = queries[i];
    request.k = kTopK;
    const uint64_t want = reference[i];
    (*server)->Submit(
        std::move(request), [&served, &shed, &mismatches, want](
                                ServeResult r) {
          if (r.ok()) {
            served.fetch_add(1, std::memory_order_relaxed);
            if (Fingerprint(*r) != want) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
          } else if (r.status().IsUnavailable()) {
            shed.fetch_add(1, std::memory_order_relaxed);
          } else {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        });
    ++submitted;
    next += interval;
  }
  (*server)->Drain();

  LoadOutcome out;
  out.offered_qps = offered_qps;
  out.submitted = submitted;
  out.served = served.load();
  out.shed = shed.load();
  const double wall_seconds = wall.ElapsedSeconds();
  out.achieved_qps =
      wall_seconds > 0 ? double(out.served) / wall_seconds : 0.0;
  out.shed_rate =
      submitted > 0 ? double(out.shed) / double(submitted) : 0.0;
  if (registry != nullptr) {
    const MetricsSnapshot after = registry->Snapshot();
    const HistogramSnapshot* ra = after.Histogram("kqr_request_seconds");
    const HistogramSnapshot* rb = before.Histogram("kqr_request_seconds");
    if (ra != nullptr && rb != nullptr) {
      out.p99_us = HistogramDelta(*ra, *rb).Quantile(0.99) * 1e6;
    }
  }
  out.mismatches = mismatches.load();
  return out;
}

// ---------------------------------------------------------------------
// Pruning arms: both decode algorithms, bound-based pruning on vs. off,
// over the identical request set. Pruning is exact, so the fingerprints
// must agree bit for bit; the decoder work counters are the payoff.

struct PruneArmOutcome {
  const char* algorithm = "";
  bool prune = false;
  double qps = 0.0;
  uint64_t astar_expanded = 0;
  uint64_t astar_generated = 0;
  uint64_t astar_pruned = 0;
  uint64_t viterbi_scored = 0;
  uint64_t viterbi_pruned = 0;
  size_t mismatches = 0;
};

/// Single-threaded pass with caller-supplied decode options. When
/// `reference` is non-null every ranking is fingerprint-checked against
/// it; when `fill` is non-null the first round's fingerprints are
/// recorded there (the pruned run of each algorithm seeds the reference
/// its unpruned twin is held to).
PruneArmOutcome RunPruneArm(const ServingModel& model,
                            const std::vector<std::vector<TermId>>& queries,
                            TopKAlgorithm algorithm, bool prune,
                            const std::vector<uint64_t>* reference,
                            std::vector<uint64_t>* fill) {
  ReformulatorOptions opts = model.options().reformulator;
  opts.algorithm = algorithm;
  opts.prune_decode = prune;

  PruneArmOutcome out;
  out.algorithm =
      algorithm == TopKAlgorithm::kViterbiAStar ? "viterbi+astar"
                                                : "extended-viterbi";
  out.prune = prune;
  if (fill != nullptr) {
    fill->clear();
    fill->reserve(queries.size());
  }

  RequestContext ctx;
  Timer wall;
  for (size_t round = 0; round < g_rounds; ++round) {
    for (size_t i = 0; i < queries.size(); ++i) {
      ReformulationTimings timings;
      auto ranking = bench::MustReformulate(model.ReformulateTermsWith(
          opts, queries[i], kTopK, &ctx, &timings));
      out.astar_expanded += timings.astar.nodes_expanded;
      out.astar_generated += timings.astar.nodes_generated;
      out.astar_pruned += timings.astar.nodes_pruned;
      out.viterbi_scored += timings.viterbi.extensions_scored;
      out.viterbi_pruned += timings.viterbi.extensions_pruned;
      const uint64_t fp = Fingerprint(ranking);
      if (reference != nullptr && fp != (*reference)[i]) ++out.mismatches;
      if (fill != nullptr && round == 0) fill->push_back(fp);
    }
  }
  const double wall_seconds = wall.ElapsedSeconds();
  out.qps = wall_seconds > 0
                ? double(queries.size() * g_rounds) / wall_seconds
                : 0.0;
  return out;
}

void WriteJson(const std::vector<ConfigOutcome>& outcomes,
               const std::vector<ServerOutcome>& server_outcomes,
               const std::vector<LoadOutcome>& load_outcomes,
               const std::vector<PruneArmOutcome>& prune_outcomes,
               double overhead_percent) {
  FILE* f = std::fopen("BENCH_scaling_online.json", "w");
  if (f == nullptr) {
    std::printf("# could not open BENCH_scaling_online.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"scaling_online\",\n");
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"quick\": %s,\n", g_quick ? "true" : "false");
  std::fprintf(f, "  \"queries\": %zu,\n  \"rounds\": %zu,\n  \"k\": %zu,\n",
               kNumQueries, g_rounds, kTopK);
  std::fprintf(f, "  \"metrics_overhead_percent\": %.2f,\n",
               overhead_percent);
  std::fprintf(f, "  \"pruning\": [\n");
  for (size_t i = 0; i < prune_outcomes.size(); ++i) {
    const PruneArmOutcome& o = prune_outcomes[i];
    std::fprintf(
        f,
        "    {\"algorithm\": \"%s\", \"prune\": %s, \"qps\": %.1f, "
        "\"astar_nodes_expanded\": %llu, \"astar_nodes_generated\": %llu, "
        "\"astar_nodes_pruned\": %llu, \"viterbi_extensions_scored\": %llu, "
        "\"viterbi_extensions_pruned\": %llu, \"mismatches\": %zu}%s\n",
        o.algorithm, o.prune ? "true" : "false", o.qps,
        static_cast<unsigned long long>(o.astar_expanded),
        static_cast<unsigned long long>(o.astar_generated),
        static_cast<unsigned long long>(o.astar_pruned),
        static_cast<unsigned long long>(o.viterbi_scored),
        static_cast<unsigned long long>(o.viterbi_pruned), o.mismatches,
        i + 1 < prune_outcomes.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"configs\": [\n");
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const ConfigOutcome& o = outcomes[i];
    std::fprintf(
        f,
        "    {\"threads\": %zu, \"requests\": %zu, \"wall_seconds\": %.6f, "
        "\"qps\": %.1f, \"speedup\": %.3f, \"p50_us\": %.1f, "
        "\"p95_us\": %.1f, \"p99_us\": %.1f, \"scratch_hit_rate\": %.4f, "
        "\"mismatches\": %zu}%s\n",
        o.threads, o.requests, o.wall_seconds, o.qps, o.speedup, o.p50_us,
        o.p95_us, o.p99_us, o.scratch_hit_rate, o.mismatches,
        i + 1 < outcomes.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"server_saturation\": [\n");
  for (size_t i = 0; i < server_outcomes.size(); ++i) {
    const ServerOutcome& o = server_outcomes[i];
    std::fprintf(
        f,
        "    {\"max_batch\": %zu, \"requests\": %zu, "
        "\"wall_seconds\": %.6f, \"qps\": %.1f, \"p99_us\": %.1f, "
        "\"mean_batch\": %.2f, \"mismatches\": %zu}%s\n",
        o.max_batch, o.requests, o.wall_seconds, o.qps, o.p99_us,
        o.mean_batch, o.mismatches,
        i + 1 < server_outcomes.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"server_open_loop\": [\n");
  for (size_t i = 0; i < load_outcomes.size(); ++i) {
    const LoadOutcome& o = load_outcomes[i];
    std::fprintf(
        f,
        "    {\"offered_qps\": %.1f, \"submitted\": %zu, \"served\": %zu, "
        "\"shed\": %zu, \"achieved_qps\": %.1f, \"shed_rate\": %.4f, "
        "\"p99_us\": %.1f, \"mismatches\": %zu}%s\n",
        o.offered_qps, o.submitted, o.served, o.shed, o.achieved_qps,
        o.shed_rate, o.p99_us, o.mismatches,
        i + 1 < load_outcomes.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("# wrote BENCH_scaling_online.json\n");
}

std::vector<std::vector<TermId>> SampleWorkload(const ServingModel& model) {
  QuerySampler sampler(model, /*seed=*/808);
  std::vector<std::vector<TermId>> queries;
  for (size_t len : {2, 3, 4}) {
    for (auto& q : sampler.SampleQueries(kNumQueries / 3, len)) {
      queries.push_back(std::move(q));
    }
  }
  while (queries.size() < kNumQueries) {
    queries.push_back(sampler.SampleQuery(2));
  }
  return queries;
}

void Run() {
  bench::PrintHeader(
      "Scaling: online reformulation QPS vs serving threads");
  std::printf("# hardware threads available: %u\n",
              std::thread::hardware_concurrency());

  // Eager build: the model is fully prepared and frozen, so the serving
  // hot path takes no locks at all.
  EngineOptions options;
  options.precompute_offline = true;
  ExperimentContext ctx =
      bench::MustMakeContext(bench::DefaultCorpus(), options);
  const ServingModel& model = *ctx.model;

  std::vector<std::vector<TermId>> queries = SampleWorkload(model);
  std::printf("# %zu sampled queries (lengths 2-4), %zu requests per "
              "config\n",
              queries.size(), queries.size() * g_rounds);

  // Serial reference fingerprints: every threaded result must match these
  // bit for bit.
  std::vector<uint64_t> reference;
  reference.reserve(queries.size());
  {
    RequestContext ctx_serial;
    for (const auto& q : queries) {
      reference.push_back(Fingerprint(bench::MustReformulate(
          model.ReformulateTerms(q, kTopK, &ctx_serial))));
    }
  }

  TablePrinter table({"threads", "QPS", "speedup", "p50 (us)", "p95 (us)",
                      "p99 (us)", "scratch hits", "serial-identical"});
  std::vector<ConfigOutcome> outcomes;
  double base_qps = 0.0;
  const std::vector<size_t> thread_counts =
      g_quick ? std::vector<size_t>{1, 2} : std::vector<size_t>{1, 2, 4, 8};
  for (size_t threads : thread_counts) {
    ConfigOutcome o = RunConfig(model, queries, reference, threads);
    if (threads == 1) base_qps = o.qps;
    o.speedup = base_qps > 0 ? o.qps / base_qps : 0.0;
    table.AddRow({std::to_string(o.threads), FormatDouble(o.qps, 0),
                  FormatDouble(o.speedup, 2) + "x",
                  FormatDouble(o.p50_us, 1), FormatDouble(o.p95_us, 1),
                  FormatDouble(o.p99_us, 1),
                  FormatDouble(o.scratch_hit_rate * 100, 1) + "%",
                  o.mismatches == 0 ? "yes" : "NO"});
    outcomes.push_back(o);
  }
  table.Print(std::cout);

  // Server arms: the same workload through the batched async front-end.
  // max_batch=1 is per-request dispatch (queue + workers, no batching);
  // max_batch=8 adds micro-batching with shared term preparation. Equal
  // worker count isolates the batching effect.
  constexpr size_t kServerWorkers = 4;
  std::printf("\n# server arms (%zu workers, saturation submit):\n",
              kServerWorkers);
  TablePrinter server_table({"dispatch", "QPS", "p99 (us)", "mean batch",
                             "serial-identical"});
  std::vector<ServerOutcome> server_outcomes;
  for (size_t max_batch : {size_t{1}, size_t{8}}) {
    ServerOutcome o = RunServerConfig(ctx.model, queries, reference,
                                      kServerWorkers, max_batch);
    server_table.AddRow(
        {max_batch == 1 ? "per-request" : "batched (8)",
         FormatDouble(o.qps, 0), FormatDouble(o.p99_us, 1),
         FormatDouble(o.mean_batch, 2), o.mismatches == 0 ? "yes" : "NO"});
    server_outcomes.push_back(o);
  }
  server_table.Print(std::cout);
  const double per_request_qps = server_outcomes[0].qps;
  const double batched_qps = server_outcomes[1].qps;
  std::printf("shape: batched >= per-request dispatch at equal workers: "
              "%s (%.0f vs %.0f QPS)\n",
              batched_qps >= per_request_qps * 0.95 ? "HOLDS" : "VIOLATED",
              batched_qps, per_request_qps);

  // Offered-load sweep: open loop against the default production config.
  // Rates bracket the measured saturation point so the sweep shows the
  // under-load, near-capacity and overload (shedding) regimes.
  std::printf("\n# open-loop offered-load sweep (default server config):\n");
  TablePrinter load_table({"offered QPS", "achieved QPS", "shed rate",
                           "p99 (us)", "serial-identical"});
  std::vector<LoadOutcome> load_outcomes;
  const std::vector<double> load_factors =
      g_quick ? std::vector<double>{1.0} : std::vector<double>{0.5, 1.0, 2.0};
  for (double factor : load_factors) {
    const double offered = batched_qps * factor;
    if (offered <= 0) break;
    LoadOutcome o = RunOpenLoop(ctx.model, queries, reference, offered,
                                g_quick ? 0.6 : 1.5);
    load_table.AddRow({FormatDouble(o.offered_qps, 0),
                       FormatDouble(o.achieved_qps, 0),
                       FormatDouble(o.shed_rate * 100, 1) + "%",
                       FormatDouble(o.p99_us, 1),
                       o.mismatches == 0 ? "yes" : "NO"});
    load_outcomes.push_back(o);
  }
  load_table.Print(std::cout);

  // Pruning arms: each algorithm's pruned run seeds the fingerprint
  // reference its unpruned twin must reproduce bit for bit. For the
  // default (viterbi+astar) pipeline the serial reference from above
  // applies too, pinning "pruned == unpruned == production".
  std::printf("\n# pruning arms (single thread, both algorithms):\n");
  TablePrinter prune_table({"algorithm", "prune", "QPS", "A* expanded",
                            "A* generated", "A* pruned", "Vit scored",
                            "Vit pruned", "identical"});
  std::vector<PruneArmOutcome> prune_outcomes;
  bool prune_identical = true;
  bool prune_counters_drop = true;
  for (TopKAlgorithm algorithm : {TopKAlgorithm::kViterbiAStar,
                                  TopKAlgorithm::kExtendedViterbi}) {
    std::vector<uint64_t> arm_reference;
    const bool is_default = algorithm == TopKAlgorithm::kViterbiAStar;
    PruneArmOutcome on =
        RunPruneArm(model, queries, algorithm, /*prune=*/true,
                    is_default ? &reference : nullptr, &arm_reference);
    PruneArmOutcome off = RunPruneArm(model, queries, algorithm,
                                      /*prune=*/false, &arm_reference,
                                      nullptr);
    for (const PruneArmOutcome& o : {on, off}) {
      prune_table.AddRow(
          {o.algorithm, o.prune ? "on" : "off", FormatDouble(o.qps, 0),
           std::to_string(o.astar_expanded),
           std::to_string(o.astar_generated),
           std::to_string(o.astar_pruned), std::to_string(o.viterbi_scored),
           std::to_string(o.viterbi_pruned),
           o.mismatches == 0 ? "yes" : "NO"});
      prune_outcomes.push_back(o);
      if (o.mismatches != 0) prune_identical = false;
    }
    if (is_default) {
      // A* with an exact bound never expands extra nodes; the win is in
      // nodes never generated (heap pushes and pool writes saved).
      if (on.astar_generated >= off.astar_generated) {
        prune_counters_drop = false;
      }
    } else if (on.viterbi_scored >= off.viterbi_scored) {
      prune_counters_drop = false;
    }
  }
  prune_table.Print(std::cout);
  std::printf("shape: pruned outputs bit-identical to unpruned: %s | "
              "decoder work counters drop: %s\n",
              prune_identical ? "HOLDS" : "VIOLATED",
              prune_counters_drop ? "HOLDS" : "VIOLATED");

  // Observability overhead: the identical single-thread workload against
  // a model built with the metrics kill switch off. Same corpus seed →
  // same model content → same fingerprints. On/off rounds run in ABBA
  // order and each side reports its peak: back-to-back blocks bake
  // thermal/cache drift into whichever side runs second, which has
  // produced phantom "overheads" far above the real per-request cost
  // (measured ≈0 with a bare-Reformulator A/B probe).
  std::printf("\n# metrics-overhead arm (enable_metrics = false, "
              "ABBA interleaved, peak of rounds):\n");
  EngineOptions off_options = options;
  off_options.enable_metrics = false;
  ExperimentContext off_ctx =
      bench::MustMakeContext(bench::DefaultCorpus(), off_options);
  const size_t ab_rounds = g_quick ? 6 : 8;
  std::vector<double> qps_on, qps_off;
  size_t off_mismatches = 0;
  // Warm both models once so neither side pays first-touch costs.
  (void)RunConfig(model, queries, reference, /*num_threads=*/1);
  (void)RunConfig(*off_ctx.model, queries, reference, /*num_threads=*/1);
  for (size_t round = 0; round < ab_rounds; ++round) {
    // ABBA ordering: alternate which side runs first within a pair, so a
    // monotonic machine ramp (frequency scaling, cache/page warmth) does
    // not systematically credit whichever side always ran second —
    // measured at ~3% phantom overhead between two IDENTICAL arms when
    // pairs are fixed-order.
    ConfigOutcome a, b;
    if (round % 2 == 0) {
      a = RunConfig(model, queries, reference, 1);
      b = RunConfig(*off_ctx.model, queries, reference, 1);
    } else {
      b = RunConfig(*off_ctx.model, queries, reference, 1);
      a = RunConfig(model, queries, reference, 1);
    }
    qps_on.push_back(a.qps);
    qps_off.push_back(b.qps);
    off_mismatches += a.mismatches + b.mismatches;
  }
  // Compare peak rounds, not medians: on a shared box the noise is
  // one-sided (preemption and ramp-down only ever slow a run), so each
  // side's best round is its cleanest estimate of true capability.
  const double peak_on = *std::max_element(qps_on.begin(), qps_on.end());
  const double peak_off = *std::max_element(qps_off.begin(), qps_off.end());
  const double overhead_percent =
      peak_off > 0 ? (peak_off - peak_on) / peak_off * 100.0 : 0.0;
  std::printf("# metrics on: %.0f QPS (peak of %zu ABBA rounds) | metrics "
              "off: %.0f QPS | overhead: %.2f%% (budget %.1f%%)\n",
              peak_on, ab_rounds, peak_off, overhead_percent,
              kOverheadBudgetPercent);
  std::printf("# kill-switch outputs serial-identical: %s\n",
              off_mismatches == 0 ? "yes" : "NO");

  const ConfigOutcome& last = outcomes.back();
  std::printf(
      "shape: outputs serial-identical at every width: %s | widest "
      "speedup %.2fx at %zu threads (%u hardware threads available)\n",
      last.mismatches == 0 ? "HOLDS" : "VIOLATED", last.speedup,
      last.threads, std::thread::hardware_concurrency());
  WriteJson(outcomes, server_outcomes, load_outcomes, prune_outcomes,
            overhead_percent);

  // Gate for CI: any divergent output anywhere, or a blown metrics
  // budget, fails the run.
  size_t total_mismatches = off_mismatches;
  for (const ConfigOutcome& o : outcomes) total_mismatches += o.mismatches;
  for (const ServerOutcome& o : server_outcomes) {
    total_mismatches += o.mismatches;
  }
  for (const LoadOutcome& o : load_outcomes) total_mismatches += o.mismatches;
  if (!prune_identical) ++total_mismatches;
  if (total_mismatches != 0) {
    std::printf("GATE: FAIL — %zu fingerprint mismatches\n",
                total_mismatches);
    g_exit_code = 1;
  }
  if (overhead_percent > kOverheadBudgetPercent) {
    std::printf("GATE: FAIL — metrics overhead %.2f%% exceeds %.1f%% "
                "budget\n",
                overhead_percent, kOverheadBudgetPercent);
    g_exit_code = 1;
  }
  if (g_exit_code == 0) {
    std::printf("GATE: PASS (fingerprints identical, metrics overhead "
                "%.2f%% <= %.1f%%)\n",
                overhead_percent, kOverheadBudgetPercent);
  }
}

}  // namespace
}  // namespace kqr

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      kqr::g_quick = true;
      kqr::g_rounds = 6;
    } else {
      std::fprintf(stderr, "usage: %s [--quick]\n", argv[0]);
      return 2;
    }
  }
  kqr::Run();
  return kqr::g_exit_code;
}
