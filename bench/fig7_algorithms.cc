// Figure 7 — "Time Cost of Query Generation Algorithms": mean online
// reformulation time of Algorithm 2 (extended Viterbi) vs Algorithm 3
// (Viterbi + A*) over 400 sampled queries of lengths 1–8, drawn from the
// author/title/venue fields exactly as Sec. VI-B.2 samples them.

#include "bench_common.h"

namespace kqr {
namespace {

constexpr size_t kQueriesPerLength = 50;  // 8 lengths × 50 = 400 queries
constexpr size_t kMaxLength = 8;
constexpr size_t kTopK = 10;

void Run() {
  bench::PrintHeader(
      "Figure 7: Algorithm 2 (extended Viterbi) vs Algorithm 3 "
      "(Viterbi+A*) by query length");
  ExperimentContext ctx = bench::MustMakeContext(bench::DefaultCorpus());
  const ServingModel& model = *ctx.model;

  QuerySampler sampler(model, /*seed=*/400);
  std::vector<std::vector<std::vector<TermId>>> by_length;
  std::vector<std::vector<TermId>> all;
  for (size_t len = 1; len <= kMaxLength; ++len) {
    by_length.push_back(sampler.SampleQueries(kQueriesPerLength, len));
    for (const auto& q : by_length.back()) all.push_back(q);
  }
  bench::WarmUp(model, all, kTopK);
  ReformulatorOptions viterbi_opts = model.options().reformulator;
  viterbi_opts.algorithm = TopKAlgorithm::kExtendedViterbi;
  ReformulatorOptions astar_opts = model.options().reformulator;
  astar_opts.algorithm = TopKAlgorithm::kViterbiAStar;
  RequestContext rc;

  TablePrinter table({"query length", "Algorithm 2 (ms)",
                      "Algorithm 3 (ms)", "speedup"});
  double total2 = 0, total3 = 0;
  for (size_t len = 1; len <= kMaxLength; ++len) {
    const auto& queries = by_length[len - 1];

    Timer t2;
    for (const auto& q : queries) {
      bench::MustReformulate(
          model.ReformulateTermsWith(viterbi_opts, q, kTopK, &rc));
    }
    double ms2 = t2.ElapsedMillis() / double(queries.size());

    Timer t3;
    for (const auto& q : queries) {
      bench::MustReformulate(
          model.ReformulateTermsWith(astar_opts, q, kTopK, &rc));
    }
    double ms3 = t3.ElapsedMillis() / double(queries.size());

    total2 += ms2;
    total3 += ms3;
    table.AddRow({std::to_string(len), FormatDouble(ms2, 3),
                  FormatDouble(ms3, 3),
                  FormatDouble(ms3 > 0 ? ms2 / ms3 : 0.0, 2) + "x"});
  }
  table.Print(std::cout);
  std::printf("shape: Algorithm 3 faster overall: %s (totals %.3f ms vs "
              "%.3f ms per query-length row)\n",
              total3 <= total2 ? "HOLDS" : "VIOLATED", total2, total3);
}

}  // namespace
}  // namespace kqr

int main() {
  kqr::Run();
  return 0;
}
