// Table II — "A case of similar topic extraction": top similar terms for
// a target under (a) frequent co-occurrence [15] and (b) the contextual
// random walk (Sec. IV-B), plus the similar-author case study of
// Sec. VI-A (co-occurrence finds collaborators; the walk finds
// non-collaborating same-area researchers).

#include "bench_common.h"
#include "common/string_util.h"
#include "text/porter_stemmer.h"
#include "walk/cooccurrence.h"
#include "walk/similarity.h"

namespace kqr {
namespace {

std::string RenderList(const Vocabulary& vocab,
                       std::span<const SimilarTerm> list, size_t n) {
  std::vector<std::string> parts;
  for (size_t i = 0; i < list.size() && i < n; ++i) {
    parts.push_back(std::string(vocab.text(list[i].term)));
  }
  return Join(parts, ", ");
}

void Run() {
  bench::PrintHeader(
      "Table II: similar term extraction, co-occurrence vs contextual RW");
  ExperimentContext ctx = bench::MustMakeContext(bench::DefaultCorpus());
  const ServingModel& model = *ctx.model;
  const Vocabulary& vocab = model.vocab();
  const TatGraph& graph = model.graph();

  SimilarityExtractor walk(graph, model.stats());
  CooccurrenceSimilarity cooc(graph);
  PorterStemmer stemmer;
  auto title_field = vocab.FindField("papers", "title");
  KQR_CHECK(title_field.has_value());

  TablePrinter table({"target", "frequent co-occurrence",
                      "contextual random walk"});
  for (const char* target :
       {"xml", "probabilistic", "uncertain", "association", "spatial"}) {
    auto term = vocab.Find(*title_field, stemmer.Stem(target));
    if (!term.has_value()) {
      table.AddRow({target, "(not in corpus)", ""});
      continue;
    }
    auto cooc_list = cooc.TopSimilar(*term);
    std::vector<SimilarTerm> walk_list;
    for (const ScoredNode& s :
         walk.TopSimilar(graph.NodeOfTerm(*term), 8)) {
      walk_list.push_back(SimilarTerm{graph.TermOfNode(s.node), s.score});
    }
    table.AddRow({target, RenderList(vocab, cooc_list, 8),
                  RenderList(vocab, walk_list, 8)});
  }
  table.Print(std::cout);

  // --- Similar-author case study (Sec. VI-A, second case) -------------
  bench::PrintHeader(
      "Similar authors: collaborators (co-occurrence) vs research-area "
      "peers (contextual RW)");
  auto author_field = vocab.FindField("authors", "name");
  KQR_CHECK(author_field.has_value());
  // Pick the most prolific author: the author whose tuple node has the
  // most incident writes edges (the name term itself always has degree 1).
  TermId star = kInvalidTermId;
  size_t best_degree = 0;
  for (TermId t = 0; t < vocab.size(); ++t) {
    if (vocab.field_of(t) != *author_field) continue;
    const auto& postings = model.index().Lookup(t);
    if (postings.empty()) continue;
    size_t deg = graph.Degree(graph.NodeOfTuple(postings[0].tuple));
    if (deg > best_degree) {
      best_degree = deg;
      star = t;
    }
  }
  KQR_CHECK(star != kInvalidTermId);
  std::printf("target author: %s (~%zu papers)\n",
              std::string(vocab.text(star)).c_str(), best_degree - 1);

  auto collab = cooc.TopSimilar(star);
  std::printf("co-occurrence (collaborators): %s\n",
              RenderList(vocab, collab, 6).c_str());
  std::vector<SimilarTerm> peers;
  for (const ScoredNode& s : walk.TopSimilar(graph.NodeOfTerm(star), 6)) {
    peers.push_back(SimilarTerm{graph.TermOfNode(s.node), s.score});
  }
  std::printf("contextual RW (area peers):     %s\n",
              RenderList(vocab, peers, 6).c_str());

  // Shape check: the walk must surface at least one same-area peer that
  // co-occurrence cannot see (a non-collaborator).
  size_t beyond = 0;
  for (const SimilarTerm& p : peers) {
    bool is_collaborator = false;
    for (const SimilarTerm& c : collab) {
      if (c.term == p.term) is_collaborator = true;
    }
    if (!is_collaborator) ++beyond;
  }
  std::printf("walk-only (non-collaborator) peers in top-6: %zu — shape "
              "%s\n",
              beyond, beyond > 0 ? "HOLDS" : "VIOLATED");
}

}  // namespace
}  // namespace kqr

int main() {
  kqr::Run();
  return 0;
}
