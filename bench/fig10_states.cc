// Figure 10 — "Time Cost with Varied Sizes of Candidate States": online
// time of Algorithm 3 as the per-term similar-term list size n grows
// (query length 6, k = 10). The paper highlights that n ≤ 20 comfortably
// supports interactive use.

#include "bench_common.h"

namespace kqr {
namespace {

constexpr size_t kNumQueries = 40;
constexpr size_t kQueryLength = 6;
constexpr size_t kTopK = 10;
const size_t kStateSizes[] = {5, 10, 15, 20, 30, 40};

void Run() {
  bench::PrintHeader(
      "Figure 10: time vs candidate-state list size n (length 6, k=10)");
  // The similarity index must hold the largest list we sweep to.
  EngineOptions options;
  options.similarity.list_size = 40;
  options.reformulator.candidates.per_term = 40;
  ExperimentContext ctx =
      bench::MustMakeContext(bench::DefaultCorpus(), options);
  const ServingModel& model = *ctx.model;

  QuerySampler sampler(model, /*seed=*/403);
  auto queries = sampler.SampleQueries(kNumQueries, kQueryLength);
  bench::WarmUp(model, queries, kTopK);
  RequestContext rc;

  TablePrinter table({"n (states per term)", "whole call (us)",
                      "decode stage (us)"});
  std::vector<double> totals;
  for (size_t n : kStateSizes) {
    ReformulatorOptions opts = model.options().reformulator;
    opts.candidates.per_term = n;
    double total_us = 0, decode_us = 0;
    for (const auto& q : queries) {
      ReformulationTimings timings;
      bench::MustReformulate(
          model.ReformulateTermsWith(opts, q, kTopK, &rc, &timings));
      total_us += timings.TotalSeconds() * 1e6;
      decode_us += timings.decode_seconds * 1e6;
    }
    total_us /= double(kNumQueries);
    decode_us /= double(kNumQueries);
    totals.push_back(total_us);
    table.AddRow({std::to_string(n), FormatDouble(total_us, 1),
                  FormatDouble(decode_us, 1)});
  }
  table.Print(std::cout);
  std::printf("shape: time grows with n, and n=20 stays interactive "
              "(%.1f us << 0.2 s): %s\n",
              totals[3], totals[3] < 2e5 ? "HOLDS" : "VIOLATED");
}

}  // namespace
}  // namespace kqr

int main() {
  kqr::Run();
  return 0;
}
