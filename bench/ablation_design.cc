// Ablations for the design choices called out in DESIGN.md §4 (beyond the
// λ sweep inside fig5_precision):
//   1. Contextual vs basic (one-hot) preference vector — Sec. IV-B.2's
//      claim that the individual walk is "locally sensitive".
//   2. Void/original candidate states on vs off (Sec. V-B).
//   3. Closeness path-length bound & beam width — accuracy/time tradeoff
//      of the Sec. IV-C extraction.

#include <algorithm>

#include "bench_common.h"
#include "closeness/path_search.h"
#include "eval/judge.h"
#include "eval/metrics.h"
#include "walk/similarity.h"

namespace kqr {
namespace {

constexpr size_t kTopK = 10;

void AblateContextualPreference(ExperimentContext* ctx) {
  bench::PrintHeader(
      "Ablation 1: contextual vs basic (one-hot) preference vector");
  const ServingModel& model = *ctx->model;
  const TatGraph& graph = model.graph();
  const GraphStats& stats = model.stats();

  // Quality of the similar-term lists against the generative ground
  // truth: fraction of each probe's top-10 similar terms sharing a
  // latent topic with the probe.
  SimilarityOptions contextual;
  SimilarityOptions basic;
  basic.mode = PreferenceMode::kBasic;
  SimilarityExtractor ctx_extractor(graph, stats, contextual);
  SimilarityExtractor basic_extractor(graph, stats, basic);
  const Vocabulary& vocab = model.vocab();

  auto same_topic_fraction = [&](SimilarityExtractor& extractor,
                                 TermId probe) {
    std::vector<size_t> probe_topics =
        ctx->corpus.TopicsOf(std::string(vocab.text(probe)));
    if (probe_topics.empty()) return -1.0;
    auto similar = extractor.TopSimilar(graph.NodeOfTerm(probe), 10);
    if (similar.empty()) return -1.0;
    size_t matched = 0;
    for (const ScoredNode& s : similar) {
      std::vector<size_t> topics =
          ctx->corpus.TopicsOf(std::string(vocab.text(graph.TermOfNode(s.node))));
      for (size_t t : topics) {
        if (std::find(probe_topics.begin(), probe_topics.end(), t) !=
            probe_topics.end()) {
          ++matched;
          break;
        }
      }
    }
    return double(matched) / double(similar.size());
  };

  // Reach: mean shortest graph distance to the top-10 similar terms —
  // the paper's claim is that the one-hot walk is "locally sensitive"
  // while the contextual walk explores the surrounding context.
  auto mean_reach = [&](SimilarityExtractor& extractor,
                        TermId probe) {
    NodeId start = graph.NodeOfTerm(probe);
    auto similar = extractor.TopSimilar(start, 10);
    if (similar.empty()) return -1.0;
    double total = 0;
    size_t counted = 0;
    for (const ScoredNode& s : similar) {
      int d = ShortestDistance(graph, start, s.node, 8);
      if (d >= 0) {
        total += d;
        ++counted;
      }
    }
    return counted == 0 ? -1.0 : total / double(counted);
  };

  QuerySampler sampler(model, /*seed=*/31, {}, &ctx->corpus);
  double ctx_topical = 0, basic_topical = 0;
  double ctx_reach = 0, basic_reach = 0;
  size_t probes = 0;
  for (const auto& query : sampler.SampleMixedSet(30)) {
    TermId probe = query.back();  // the topical title term
    double ct = same_topic_fraction(ctx_extractor, probe);
    double bt = same_topic_fraction(basic_extractor, probe);
    double cr = mean_reach(ctx_extractor, probe);
    double br = mean_reach(basic_extractor, probe);
    if (ct < 0 || bt < 0 || cr < 0 || br < 0) continue;
    ctx_topical += ct;
    basic_topical += bt;
    ctx_reach += cr;
    basic_reach += br;
    ++probes;
  }
  TablePrinter table({"preference", "same-topic fraction of top-10",
                      "mean graph distance of top-10", "probes"});
  table.AddRow({"contextual (Alg. 1)",
                FormatDouble(ctx_topical / double(probes), 3),
                FormatDouble(ctx_reach / double(probes), 2),
                std::to_string(probes)});
  table.AddRow({"basic one-hot",
                FormatDouble(basic_topical / double(probes), 3),
                FormatDouble(basic_reach / double(probes), 2),
                std::to_string(probes)});
  table.Print(std::cout);
  std::printf(
      "shape: contextual holds topical quality (within 0.02) while "
      "reaching at least as far: %s\n",
      (ctx_topical >= basic_topical - 0.02 * double(probes) &&
       ctx_reach >= basic_reach - 1e-9)
          ? "HOLDS"
          : "VIOLATED");
}

void AblateVoidStates(ExperimentContext* ctx) {
  bench::PrintHeader("Ablation 2: void/original candidate states");
  const ServingModel& model = *ctx->model;
  TopicJudge judge(ctx->corpus, model);
  QuerySampler sampler(model, /*seed=*/32, {}, &ctx->corpus);
  auto queries = sampler.SampleMixedSet(10);

  TablePrinter table({"variant", "Precision@5", "mean suggestions"});
  struct Variant {
    const char* name;
    bool original;
    bool include_void;
  };
  for (const Variant& v :
       {Variant{"original+similars (default)", true, false},
        Variant{"with void state", true, true},
        Variant{"similars only", false, false}}) {
    ReformulatorOptions opts = model.options().reformulator;
    opts.candidates.include_original = v.original;
    opts.candidates.include_void = v.include_void;
    std::vector<std::vector<bool>> judged;
    double suggestions = 0;
    for (const auto& q : queries) {
      auto ranking =
          bench::MustReformulate(model.ReformulateTermsWith(opts, q, kTopK));
      suggestions += double(ranking.size());
      judged.push_back(judge.JudgeRanking(q, ranking));
    }
    table.AddRow({v.name, FormatDouble(MeanPrecisionAtN(judged, 5), 3),
                  FormatDouble(suggestions / double(queries.size()), 1)});
  }
  table.Print(std::cout);
}

void AblateClosenessBounds(ExperimentContext* ctx) {
  bench::PrintHeader(
      "Ablation 3: closeness path bound / beam width (time per term)");
  const TatGraph& graph = ctx->model->graph();
  QuerySampler sampler(*ctx->model, /*seed=*/33);
  auto probes = sampler.SampleQueries(20, 1);

  TablePrinter table({"max path length", "beam", "mean time (ms)",
                      "mean reached nodes"});
  for (size_t max_length : {2, 3, 4, 5}) {
    for (size_t beam : {512, 4096}) {
      PathSearchOptions options;
      options.max_length = max_length;
      options.beam_width = beam;
      Timer timer;
      double reached = 0;
      for (const auto& q : probes) {
        reached += double(
            SearchPaths(graph, graph.NodeOfTerm(q[0]), options).size());
      }
      table.AddRow({std::to_string(max_length), std::to_string(beam),
                    FormatDouble(timer.ElapsedMillis() /
                                     double(probes.size()),
                                 2),
                    FormatDouble(reached / double(probes.size()), 0)});
    }
  }
  table.Print(std::cout);
}

void Run() {
  ExperimentContext ctx = bench::MustMakeContext(bench::DefaultCorpus());
  AblateContextualPreference(&ctx);
  AblateVoidStates(&ctx);
  AblateClosenessBounds(&ctx);
}

}  // namespace
}  // namespace kqr

int main() {
  kqr::Run();
  return 0;
}
