// Figure 5 — "Query Generation Performance of Different Methods":
// Precision@{1,3,5,7,10} of the three reformulation methods over the
// mixed 10-query test set (topical words + author/venue names), judged
// against the corpus's generative ground truth (see DESIGN.md §1 for the
// human-evaluator substitution).
//
// Methods, exactly as Sec. VI-B defines them:
//   TAT-based      — contextual-RW similarity + HMM (closeness) decoding
//   Rank-based     — same similarity lists, greedy top-similarity combos
//   Co-occurrence  — HMM decoding but co-occurrence similarity lists
//
// Also runs the λ-smoothing sensitivity ablation called out in
// DESIGN.md §4.

#include "bench_common.h"
#include "eval/judge.h"
#include "eval/metrics.h"

namespace kqr {
namespace {

constexpr size_t kNumQueries = 10;
constexpr size_t kTopK = 10;
const size_t kCutoffs[] = {1, 3, 5, 7, 10};

std::vector<std::vector<bool>> JudgeMethod(
    const ServingModel& model, const ReformulatorOptions& opts,
    const TopicJudge& judge,
    const std::vector<std::vector<TermId>>& queries) {
  std::vector<std::vector<bool>> per_query;
  for (const auto& q : queries) {
    auto ranking =
        bench::MustReformulate(model.ReformulateTermsWith(opts, q, kTopK));
    per_query.push_back(judge.JudgeRanking(q, ranking));
  }
  return per_query;
}

void Run() {
  bench::PrintHeader(
      "Figure 5: Precision@N of TAT-based / Rank-based / Co-occurrence");
  // TAT-based and Rank-based share one model (same similarity source).
  ExperimentContext tat_ctx =
      bench::MustMakeContext(bench::DefaultCorpus());
  // Co-occurrence arm: identical corpus, co-occurrence similarity.
  EngineOptions cooc_options;
  cooc_options.use_cooccurrence_similarity = true;
  ExperimentContext cooc_ctx =
      bench::MustMakeContext(bench::DefaultCorpus(), cooc_options);

  QuerySampler sampler(*tat_ctx.model, /*seed=*/2012, {},
                       &tat_ctx.corpus);
  std::vector<std::vector<TermId>> queries =
      sampler.SampleMixedSet(kNumQueries);
  std::printf("# %zu mixed test queries (topical / author+topic / "
              "venue+topic)\n",
              queries.size());

  TopicJudge tat_judge(tat_ctx.corpus, *tat_ctx.model);
  TopicJudge cooc_judge(cooc_ctx.corpus, *cooc_ctx.model);

  // TAT-based (HMM + A*, RW similarity).
  const ReformulatorOptions tat_opts =
      tat_ctx.model->options().reformulator;
  auto tat = JudgeMethod(*tat_ctx.model, tat_opts, tat_judge, queries);

  // Rank-based (same similarity, similarity-only combination).
  ReformulatorOptions rank_opts = tat_opts;
  rank_opts.algorithm = TopKAlgorithm::kRankBaseline;
  auto rank = JudgeMethod(*tat_ctx.model, rank_opts, tat_judge, queries);

  // Co-occurrence reformulation (HMM, co-occurrence similarity).
  // Queries transfer verbatim: both models index the identical corpus,
  // so TermIds coincide.
  auto cooc = JudgeMethod(*cooc_ctx.model,
                          cooc_ctx.model->options().reformulator,
                          cooc_judge, queries);

  TablePrinter table({"N", "TAT-based", "Rank-based", "Co-occurrence"});
  for (size_t n : kCutoffs) {
    table.AddRow({std::to_string(n),
                  FormatDouble(MeanPrecisionAtN(tat, n), 3),
                  FormatDouble(MeanPrecisionAtN(rank, n), 3),
                  FormatDouble(MeanPrecisionAtN(cooc, n), 3)});
  }
  table.Print(std::cout);

  double tat5 = MeanPrecisionAtN(tat, 5);
  double rank5 = MeanPrecisionAtN(rank, 5);
  double cooc5 = MeanPrecisionAtN(cooc, 5);
  std::printf("shape @5: TAT(%.3f) >= Rank(%.3f): %s | TAT >= "
              "Cooc(%.3f): %s\n",
              tat5, rank5, tat5 >= rank5 ? "HOLDS" : "VIOLATED", cooc5,
              tat5 >= cooc5 ? "HOLDS" : "VIOLATED");

  // --- λ smoothing sensitivity (DESIGN.md §4 ablation) -----------------
  bench::PrintHeader("Ablation: smoothing lambda (Eqs. 5-6)");
  TablePrinter ablation({"lambda", "Precision@5"});
  for (double lambda : {1.0, 0.9, 0.8, 0.6, 0.4, 0.2}) {
    ReformulatorOptions lambda_opts = tat_opts;
    lambda_opts.hmm.smoothing.lambda = lambda;
    auto judged = JudgeMethod(*tat_ctx.model, lambda_opts, tat_judge,
                              queries);
    ablation.AddRow({FormatDouble(lambda, 1),
                     FormatDouble(MeanPrecisionAtN(judged, 5), 3)});
  }
  ablation.Print(std::cout);
}

}  // namespace
}  // namespace kqr

int main() {
  kqr::Run();
  return 0;
}
