// Micro-benchmarks (google-benchmark) for the hot kernels: text analysis,
// graph construction, random walk, path search, decoders. These back the
// DESIGN.md §4 cost discussions; the paper-facing tables live in the
// table*/fig* binaries.

#include <benchmark/benchmark.h>

#include "closeness/path_search.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/astar_topk.h"
#include "core/viterbi_topk.h"
#include "datagen/dblp_gen.h"
#include "graph/graph_stats.h"
#include "graph/tat_builder.h"
#include "text/analyzer.h"
#include "text/inverted_index.h"
#include "text/porter_stemmer.h"
#include "walk/similarity.h"

namespace kqr {
namespace {

DblpOptions BenchCorpusOptions() {
  DblpOptions options;
  options.num_authors = 600;
  options.num_papers = 2000;
  options.num_venues = 24;
  return options;
}

// Shared corpus for the graph-level benchmarks (built once).
struct BenchWorld {
  DblpCorpus corpus;
  Analyzer analyzer;
  Vocabulary vocab;
  std::unique_ptr<InvertedIndex> index_holder;
  std::unique_ptr<TatGraph> graph_holder;
  std::unique_ptr<GraphStats> stats_holder;

  const InvertedIndex& index() const { return *index_holder; }
  const TatGraph& graph() const { return *graph_holder; }
  const GraphStats& stats() const { return *stats_holder; }
};

BenchWorld* World() {
  static BenchWorld* world = [] {
    auto corpus = GenerateDblp(BenchCorpusOptions());
    KQR_CHECK(corpus.ok());
    auto* w = new BenchWorld;
    w->corpus = std::move(*corpus);
    auto index = InvertedIndex::Build(w->corpus.db, w->analyzer, &w->vocab);
    KQR_CHECK(index.ok());
    w->index_holder =
        std::make_unique<InvertedIndex>(std::move(*index));
    auto graph = BuildTatGraph(w->corpus.db, w->vocab, w->index());
    KQR_CHECK(graph.ok());
    w->graph_holder = std::make_unique<TatGraph>(std::move(*graph));
    w->stats_holder = std::make_unique<GraphStats>(w->graph());
    return w;
  }();
  return world;
}

void BM_PorterStem(benchmark::State& state) {
  PorterStemmer stemmer;
  const char* words[] = {"probabilistic", "generalization", "indexing",
                         "queries",       "relational",     "mining"};
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stemmer.Stem(words[i++ % 6]));
  }
}
BENCHMARK(BM_PorterStem);

void BM_AnalyzeTitle(benchmark::State& state) {
  Analyzer analyzer;
  const std::string title =
      "Efficient Probabilistic Query Processing over Uncertain "
      "Relational Data Streams";
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.AnalyzeSegmented(title));
  }
}
BENCHMARK(BM_AnalyzeTitle);

void BM_InvertedIndexBuild(benchmark::State& state) {
  BenchWorld* w = World();
  for (auto _ : state) {
    Vocabulary vocab;
    auto index = InvertedIndex::Build(w->corpus.db, w->analyzer, &vocab);
    benchmark::DoNotOptimize(index.ok());
  }
}
BENCHMARK(BM_InvertedIndexBuild)->Unit(benchmark::kMillisecond);

void BM_TatGraphBuild(benchmark::State& state) {
  BenchWorld* w = World();
  for (auto _ : state) {
    auto graph = BuildTatGraph(w->corpus.db, w->vocab, w->index());
    benchmark::DoNotOptimize(graph.ok());
  }
}
BENCHMARK(BM_TatGraphBuild)->Unit(benchmark::kMillisecond);

void BM_ContextualRandomWalk(benchmark::State& state) {
  BenchWorld* w = World();
  SimilarityExtractor extractor(w->graph(), w->stats());
  // Walk from a mid-frequency title term.
  NodeId start = kInvalidNodeId;
  for (TermId t = 0; t < w->vocab.size(); ++t) {
    NodeId node = w->graph().NodeOfTerm(t);
    size_t deg = w->graph().Degree(node);
    if (deg >= 10 && deg <= 100) {
      start = node;
      break;
    }
  }
  KQR_CHECK(start != kInvalidNodeId);
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.TopSimilar(start, 20));
  }
}
BENCHMARK(BM_ContextualRandomWalk)->Unit(benchmark::kMillisecond);

void BM_PathSearch(benchmark::State& state) {
  BenchWorld* w = World();
  NodeId start = kInvalidNodeId;
  for (TermId t = 0; t < w->vocab.size(); ++t) {
    NodeId node = w->graph().NodeOfTerm(t);
    if (w->graph().Degree(node) >= 10) {
      start = node;
      break;
    }
  }
  KQR_CHECK(start != kInvalidNodeId);
  PathSearchOptions options;
  options.max_length = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SearchPaths(w->graph(), start, options));
  }
}
BENCHMARK(BM_PathSearch)->Arg(2)->Arg(3)->Arg(4)->Unit(
    benchmark::kMillisecond);

HmmModel RandomModel(size_t m, size_t n, uint64_t seed) {
  Rng rng(seed);
  HmmModel model;
  model.states.assign(m, std::vector<CandidateState>(n));
  model.pi.resize(n);
  model.emission.assign(m, std::vector<double>(n));
  for (size_t i = 0; i < n; ++i) model.pi[i] = 0.1 + rng.NextDouble();
  for (size_t c = 0; c < m; ++c) {
    for (size_t i = 0; i < n; ++i) {
      model.emission[c][i] = 0.05 + rng.NextDouble();
    }
  }
  model.trans.assign(
      m - 1, std::vector<std::vector<double>>(n, std::vector<double>(n)));
  for (size_t c = 0; c + 1 < m; ++c) {
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        model.trans[c][i][j] = 0.05 + rng.NextDouble();
      }
    }
  }
  return model;
}

// Decoder arms: range(0) = query length m, range(1) = bound-based pruning
// off/on. Results are identical either way (see DESIGN.md "Bound-based
// pruning"); the arm pair measures what the bound saves on the hot path.
void BM_ViterbiTopK(benchmark::State& state) {
  HmmModel model = RandomModel(state.range(0), 20, 7);
  const bool prune = state.range(1) != 0;
  ViterbiScratch scratch;
  ViterbiStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ViterbiTopK(model, 10, &scratch, &stats, prune));
  }
  state.counters["extensions_scored"] = double(stats.extensions_scored);
  state.counters["extensions_pruned"] = double(stats.extensions_pruned);
}
BENCHMARK(BM_ViterbiTopK)->ArgsProduct({{2, 4, 8}, {0, 1}});

void BM_AStarTopK(benchmark::State& state) {
  HmmModel model = RandomModel(state.range(0), 20, 7);
  const bool prune = state.range(1) != 0;
  AStarScratch scratch;
  for (auto _ : state) {
    AStarStats stats;
    benchmark::DoNotOptimize(AStarTopK(model, 10, &stats, &scratch, prune));
    state.counters["nodes_generated"] = double(stats.nodes_generated);
    state.counters["nodes_pruned"] = double(stats.nodes_pruned);
  }
}
BENCHMARK(BM_AStarTopK)->ArgsProduct({{2, 4, 8}, {0, 1}});

}  // namespace
}  // namespace kqr

BENCHMARK_MAIN();
