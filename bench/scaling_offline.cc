// Offline-stage scaling: the paper ran its offline extraction over a
// 2M-tuple DBLP snapshot. This bench sweeps corpus size and reports the
// cost of each offline component (index, graph, one walk, one path
// search) plus end-to-end online latency — the evidence that the design
// scales linearly in corpus size, beyond the fixed-size paper tables.

#include <thread>

#include "bench_common.h"
#include "closeness/closeness.h"
#include "closeness/closeness_index.h"
#include "walk/similarity.h"
#include "walk/similarity_index.h"

namespace kqr {
namespace {

bool SameIndex(const Vocabulary& vocab, const SimilarityIndex& a,
               const SimilarityIndex& b) {
  if (a.size() != b.size()) return false;
  for (TermId t = 0; t < vocab.size(); ++t) {
    const auto& la = a.Lookup(t);
    const auto& lb = b.Lookup(t);
    if (la.size() != lb.size()) return false;
    for (size_t i = 0; i < la.size(); ++i) {
      if (la[i].term != lb[i].term || la[i].score != lb[i].score) {
        return false;
      }
    }
  }
  return true;
}

// Threads-vs-throughput for the batch offline builders: the walk-per-term
// fan-out is embarrassingly parallel, so throughput should track the
// worker count up to the core count, with output bit-for-bit identical to
// the serial build at every width.
void RunThreadSweep() {
  bench::PrintHeader(
      "Offline batch build: threads vs throughput (deterministic)");
  auto corpus = GenerateDblp(bench::DefaultCorpus());
  KQR_CHECK(corpus.ok());
  Analyzer analyzer;
  Vocabulary vocab;
  auto index = InvertedIndex::Build(corpus->db, analyzer, &vocab);
  KQR_CHECK(index.ok());
  auto graph = BuildTatGraph(corpus->db, vocab, *index);
  KQR_CHECK(graph.ok());
  GraphStats stats(*graph);

  SimilarityIndexOptions serial_options;
  serial_options.num_threads = 1;
  OfflineBuildStats serial_stats;
  SimilarityIndex reference =
      SimilarityIndex::Build(*graph, stats, serial_options, &serial_stats);

  std::vector<TermId> close_terms;
  for (TermId t = 0; t < vocab.size() && close_terms.size() < 1000; ++t) {
    close_terms.push_back(t);
  }

  TablePrinter table({"threads", "similarity (ms)", "speedup", "walks",
                      "walk iters", "walks/s", "closeness (ms)"});
  for (size_t threads : {1, 2, 4, 8}) {
    SimilarityIndexOptions options;
    options.num_threads = threads;
    OfflineBuildStats sim_stats;
    SimilarityIndex built =
        SimilarityIndex::Build(*graph, stats, options, &sim_stats);
    KQR_CHECK(SameIndex(vocab, reference, built))
        << "parallel build diverged from serial at " << threads
        << " threads";

    ClosenessIndexOptions close_options;
    close_options.num_threads = threads;
    OfflineBuildStats close_stats;
    ClosenessIndex::BuildFor(*graph, close_terms, close_options,
                             &close_stats);

    double walks_per_s =
        sim_stats.wall_ms > 0
            ? double(sim_stats.walks_run) / (sim_stats.wall_ms / 1e3)
            : 0.0;
    table.AddRow({std::to_string(sim_stats.threads),
                  FormatDouble(sim_stats.wall_ms, 1),
                  FormatDouble(serial_stats.wall_ms /
                                   std::max(sim_stats.wall_ms, 1e-9),
                               2),
                  std::to_string(sim_stats.walks_run),
                  std::to_string(sim_stats.walk_iterations),
                  FormatDouble(walks_per_s, 0),
                  FormatDouble(close_stats.wall_ms, 1)});
  }
  table.Print(std::cout);
  std::printf(
      "shape: every width rebuilds the exact serial index; throughput "
      "scales with threads until the core count (%u cores here).\n",
      std::thread::hardware_concurrency());
}

void Run() {
  bench::PrintHeader(
      "Scaling: offline stage cost vs corpus size (not in the paper)");
  TablePrinter table({"papers", "tuples", "graph edges", "index (ms)",
                      "graph (ms)", "walk/term (ms)", "paths/term (ms)",
                      "online reformulate (us)"});

  for (size_t papers : {1000, 2000, 4000, 8000, 16000}) {
    DblpOptions options;
    options.num_papers = papers;
    options.num_authors = papers * 3 / 10;
    options.num_venues = 36;
    auto corpus = GenerateDblp(options);
    KQR_CHECK(corpus.ok());

    Analyzer analyzer;
    Vocabulary vocab;
    Timer t_index;
    auto index = InvertedIndex::Build(corpus->db, analyzer, &vocab);
    KQR_CHECK(index.ok());
    double index_ms = t_index.ElapsedMillis();

    Timer t_graph;
    auto graph = BuildTatGraph(corpus->db, vocab, *index);
    KQR_CHECK(graph.ok());
    double graph_ms = t_graph.ElapsedMillis();
    GraphStats stats(*graph);

    // Per-term offline cost, averaged over a few mid-frequency terms.
    std::vector<NodeId> probes;
    for (TermId term = 0; term < vocab.size() && probes.size() < 5;
         ++term) {
      NodeId node = graph->NodeOfTerm(term);
      size_t deg = graph->Degree(node);
      if (deg >= 20 && deg <= 200) probes.push_back(node);
    }
    KQR_CHECK(!probes.empty());

    SimilarityExtractor extractor(*graph, stats);
    Timer t_walk;
    for (NodeId p : probes) extractor.TopSimilar(p, 20);
    double walk_ms = t_walk.ElapsedMillis() / double(probes.size());

    ClosenessExtractor closeness(*graph);
    Timer t_paths;
    for (NodeId p : probes) {
      closeness.TopClose(graph->TermOfNode(p), 64);
    }
    double paths_ms = t_paths.ElapsedMillis() / double(probes.size());

    // Online latency on a fresh model (warm cache and warm scratch).
    auto model = EngineBuilder().Build(std::move(corpus->db));
    KQR_CHECK(model.ok());
    auto terms = (*model)->ResolveQuery("probabilistic query");
    double online_us = 0;
    if (terms.ok()) {
      RequestContext rc;
      bench::MustReformulate(
          (*model)->ReformulateTerms(*terms, 10, &rc));  // warm-up
      Timer t_online;
      for (int i = 0; i < 20; ++i) {
        bench::MustReformulate((*model)->ReformulateTerms(*terms, 10, &rc));
      }
      online_us = t_online.ElapsedMicros() / 20.0;
    }

    table.AddRow({std::to_string(papers),
                  std::to_string((*model)->db().TotalRows()),
                  std::to_string((*model)->graph().num_edges()),
                  FormatDouble(index_ms, 1), FormatDouble(graph_ms, 1),
                  FormatDouble(walk_ms, 2), FormatDouble(paths_ms, 2),
                  FormatDouble(online_us, 1)});
  }
  table.Print(std::cout);
  std::printf(
      "shape: every offline component grows roughly linearly with the "
      "corpus; online latency stays interactive throughout.\n");
}

}  // namespace
}  // namespace kqr

int main() {
  kqr::Run();
  kqr::RunThreadSweep();
  return 0;
}
