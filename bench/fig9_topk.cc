// Figure 9 — "Time Cost with Different Returned Queries": online time of
// Algorithm 3 as the number of returned queries k grows, at query length
// 6. The paper's observation: the Viterbi stage is flat in k (it always
// computes the top-1 trellis) while the A* stage grows linearly.

#include "bench_common.h"

namespace kqr {
namespace {

constexpr size_t kNumQueries = 40;
constexpr size_t kQueryLength = 6;
const size_t kReturnSizes[] = {1, 5, 10, 20, 30, 50};

void Run() {
  bench::PrintHeader(
      "Figure 9: time vs number of returned queries k (length 6)");
  ExperimentContext ctx = bench::MustMakeContext(bench::DefaultCorpus());
  const ServingModel& model = *ctx.model;

  QuerySampler sampler(model, /*seed=*/402);
  auto queries = sampler.SampleQueries(kNumQueries, kQueryLength);
  bench::WarmUp(model, queries, 50);
  RequestContext rc;

  TablePrinter table({"k", "Viterbi stage (us)", "A* stage (us)",
                      "whole call (us)", "nodes exp", "nodes gen",
                      "nodes pruned"});
  std::vector<double> astar_series;
  for (size_t k : kReturnSizes) {
    double viterbi_us = 0, astar_us = 0, total_us = 0;
    double expanded = 0, generated = 0, pruned = 0;
    for (const auto& q : queries) {
      ReformulationTimings timings;
      bench::MustReformulate(model.ReformulateTerms(q, k, &rc, &timings));
      viterbi_us += timings.astar.viterbi_seconds * 1e6;
      astar_us += timings.astar.astar_seconds * 1e6;
      total_us += timings.TotalSeconds() * 1e6;
      expanded += double(timings.astar.nodes_expanded);
      generated += double(timings.astar.nodes_generated);
      pruned += double(timings.astar.nodes_pruned);
    }
    viterbi_us /= double(kNumQueries);
    astar_us /= double(kNumQueries);
    total_us /= double(kNumQueries);
    expanded /= double(kNumQueries);
    generated /= double(kNumQueries);
    pruned /= double(kNumQueries);
    astar_series.push_back(astar_us);
    table.AddRow({std::to_string(k), FormatDouble(viterbi_us, 1),
                  FormatDouble(astar_us, 1), FormatDouble(total_us, 1),
                  FormatDouble(expanded, 1), FormatDouble(generated, 1),
                  FormatDouble(pruned, 1)});
  }
  table.Print(std::cout);
  std::printf(
      "shape: A* stage grows with k (%.1f us @k=1 -> %.1f us @k=50): "
      "%s\n",
      astar_series.front(), astar_series.back(),
      astar_series.back() > astar_series.front() ? "HOLDS" : "VIOLATED");
}

}  // namespace
}  // namespace kqr

int main() {
  kqr::Run();
  return 0;
}
