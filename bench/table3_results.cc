// Table III — "Effect on reformulated query results": for 19 title-derived
// queries (the paper uses keywords from 19 SIGMOD best-paper titles), the
// top-10 reformulations of each method are executed as keyword searches:
//   Result size     — mean result count (higher = more productive
//                     reformulations)
//   Query distance  — mean shortest TAT-graph distance between
//                     corresponding term pairs (higher = more diverse)
// Paper's shape: TAT-based beats both baselines on BOTH metrics.

#include "bench_common.h"
#include "eval/judge.h"
#include "eval/metrics.h"

namespace kqr {
namespace {

constexpr size_t kNumQueries = 19;
constexpr size_t kTopK = 10;

struct MethodOutcome {
  double result_size = 0;
  double query_distance = 0;
  double relevant_result_size = 0;
  double relevant_query_distance = 0;
  double relevant_fraction = 0;
};

MethodOutcome Evaluate(const ServingModel& model,
                       const ReformulatorOptions& opts,
                       const TopicJudge& judge,
                       const std::vector<std::vector<TermId>>& queries) {
  std::vector<std::vector<ReformulatedQuery>> per_query;
  std::vector<std::vector<ReformulatedQuery>> relevant_only;
  size_t kept = 0, produced = 0;
  for (const auto& q : queries) {
    auto ranking =
        bench::MustReformulate(model.ReformulateTermsWith(opts, q, kTopK));
    std::vector<ReformulatedQuery> relevant;
    for (const ReformulatedQuery& r : ranking) {
      if (judge.IsRelevant(q, r)) relevant.push_back(r);
    }
    produced += ranking.size();
    kept += relevant.size();
    per_query.push_back(std::move(ranking));
    relevant_only.push_back(std::move(relevant));
  }
  MethodOutcome outcome;
  outcome.result_size = MeanResultSize(model, per_query);
  outcome.query_distance =
      MeanQueryDistance(model.graph(), queries, per_query);
  outcome.relevant_result_size = MeanResultSize(model, relevant_only);
  outcome.relevant_query_distance =
      MeanQueryDistance(model.graph(), queries, relevant_only);
  outcome.relevant_fraction =
      produced == 0 ? 0.0
                    : static_cast<double>(kept) /
                          static_cast<double>(produced);
  return outcome;
}

void Run() {
  bench::PrintHeader(
      "Table III: result size & query distance of reformulated queries");
  // Result counting uses the strict search (bounded radius, no hub
  // tunnelling) so a count reflects specific connections, not venue-hub
  // reachability. Both arms get identical counting.
  SearchOptions counting;
  counting.max_radius = 2;
  counting.max_root_degree = 64;
  counting.max_expand_degree = 64;

  EngineOptions tat_options;
  tat_options.search = counting;
  ExperimentContext tat_ctx =
      bench::MustMakeContext(bench::DefaultCorpus(), tat_options);
  EngineOptions cooc_options;
  cooc_options.use_cooccurrence_similarity = true;
  cooc_options.search = counting;
  ExperimentContext cooc_ctx =
      bench::MustMakeContext(bench::DefaultCorpus(), cooc_options);

  QuerySampler sampler(*tat_ctx.model, /*seed=*/1994);
  auto queries = sampler.SampleTitleQueries(kNumQueries);
  std::printf("# %zu title-derived queries (2-4 informative terms each)\n",
              queries.size());

  TopicJudge tat_judge(tat_ctx.corpus, *tat_ctx.model);
  TopicJudge cooc_judge(cooc_ctx.corpus, *cooc_ctx.model);

  const ReformulatorOptions tat_opts =
      tat_ctx.model->options().reformulator;
  MethodOutcome tat = Evaluate(*tat_ctx.model, tat_opts, tat_judge,
                               queries);

  ReformulatorOptions rank_opts = tat_opts;
  rank_opts.algorithm = TopKAlgorithm::kRankBaseline;
  MethodOutcome rank = Evaluate(*tat_ctx.model, rank_opts, tat_judge,
                                queries);

  MethodOutcome cooc = Evaluate(*cooc_ctx.model,
                                cooc_ctx.model->options().reformulator,
                                cooc_judge, queries);

  TablePrinter table(
      {"", "TAT based", "Rank based", "Co-occurrence based"});
  table.AddRow({"Result size", FormatDouble(tat.result_size, 1),
                FormatDouble(rank.result_size, 1),
                FormatDouble(cooc.result_size, 1)});
  table.AddRow({"Query distance", FormatDouble(tat.query_distance, 2),
                FormatDouble(rank.query_distance, 2),
                FormatDouble(cooc.query_distance, 2)});
  table.AddRow({"Result size (relevant only)",
                FormatDouble(tat.relevant_result_size, 1),
                FormatDouble(rank.relevant_result_size, 1),
                FormatDouble(cooc.relevant_result_size, 1)});
  table.AddRow({"Query distance (relevant only)",
                FormatDouble(tat.relevant_query_distance, 2),
                FormatDouble(rank.relevant_query_distance, 2),
                FormatDouble(cooc.relevant_query_distance, 2)});
  table.AddRow({"Relevant fraction",
                FormatDouble(tat.relevant_fraction, 2),
                FormatDouble(rank.relevant_fraction, 2),
                FormatDouble(cooc.relevant_fraction, 2)});
  table.Print(std::cout);

  std::printf(
      "shape: TAT result size >= Rank: %s | TAT query distance >= both "
      "baselines (relevant-only): %s | TAT relevant fraction >= Cooc: "
      "%s\n",
      tat.result_size >= rank.result_size ? "HOLDS" : "VIOLATED",
      (tat.relevant_query_distance >= rank.relevant_query_distance &&
       tat.relevant_query_distance >= cooc.relevant_query_distance)
          ? "HOLDS"
          : "VIOLATED",
      tat.relevant_fraction >= cooc.relevant_fraction ? "HOLDS"
                                                      : "VIOLATED");
  std::printf(
      "note: the co-occurrence arm's raw result size is inflated by "
      "generic-filler suggestions (high coverage, low relevance — see "
      "its relevant fraction); EXPERIMENTS.md discusses this "
      "divergence from the paper's Table III.\n");
}

}  // namespace
}  // namespace kqr

int main() {
  kqr::Run();
  return 0;
}
