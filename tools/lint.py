#!/usr/bin/env python3
"""kqr repo linter: project-specific rules the generic tools can't check.

Rules (suppress one occurrence with a `// lint:allow <rule> [<rule>...]`
comment on the same line; rule names must match exactly):

  pragma-once       every header uses `#pragma once` (no include guards)
  rng-discipline    no rand()/srand()/std::random_device outside
                    common/rng — all randomness flows through the seeded,
                    deterministic kqr::Rng so corpora and walks reproduce
                    bit-for-bit
  mutable-global    no mutable namespace-scope state in src/ — the serving
                    model is shared across threads and all shared state
                    must live behind its const facade
  options-mutation  no mutable_options outside EngineBuilder and no
                    const_cast in src/ — options on a shared model are
                    immutable by design (a const_cast around that was the
                    root of a real data race)
  include-cycle     the quoted-include graph over src/ headers is acyclic
  facade-include    examples/ and bench/ include the public surface via
                    src/kqr.h, never per-module core/* headers — downstream
                    code demonstrates the supported API, and the facade is
                    what stays stable across PRs (allowlist for benches
                    that deliberately exercise internals)
  metrics-discipline
                    request-path core files never call ->Increment()/
                    ->Observe() on shared atomic counters directly — they
                    stage into the per-request RequestMetricsBlock and
                    flush once per request/batch, keeping the observability
                    overhead inside its 3% budget (cache-local caches with
                    an explicit lint:allow are the only exception)
  io-discipline     src/ touches the filesystem only through common/io
                    (MappedFile, WriteFileBytes, ReadFileString) plus the
                    two grandfathered text loaders (core/snapshot.cc,
                    storage/csv.cc) — raw fopen/fstream scattered through
                    src/ is how formats drift away from the checksummed
                    container discipline
  net-discipline    raw socket/poll syscalls (socket, bind, connect,
                    accept, epoll_*, recv, send, ...) live only in
                    src/net/ within src/ — every other layer talks to the
                    network through the kqr::Socket wrappers, which is
                    what keeps fd lifetimes, non-blocking mode, and
                    error→Status mapping in one audited place
  lock-discipline   src/ outside common/ never uses raw std::mutex /
                    std::shared_mutex / lock_guard / unique_lock /
                    scoped_lock / shared_lock / condition_variable — all
                    locking goes through the annotated kqr::Mutex /
                    MutexLock / CondVar wrappers (common/mutex.h) so the
                    Clang thread-safety capability analysis sees every
                    acquire and release; a raw primitive is invisible to
                    the analysis and silently exempts whatever it guards
  silent-empty      no `...OrEmpty(`-style APIs in src/ — a function
                    that folds every failure into an empty result erases
                    the error taxonomy (kUnavailable vs kCorruption vs
                    kDeadlineExceeded ...) the rest of the system is
                    built on; return Result<T> and let the caller decide
                    what an error means (the last such shims,
                    ReformulateTerms[With]OrEmpty, were deleted after
                    one deprecation cycle)

Usage: python3 tools/lint.py [--root REPO_ROOT]
Exits 0 when clean, 1 with findings on stderr.
"""

import argparse
import os
import re
import sys

SOURCE_DIRS = ("src", "tests", "bench", "examples", "tools")
HEADER_DIRS = ("src", "tests", "bench", "examples")

ALLOW_RE = re.compile(r"//\s*lint:allow\s+([\w-]+(?:[ \t]+[\w-]+)*)")


def find_files(root, dirs, exts):
    for d in dirs:
        base = os.path.join(root, d)
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if name.endswith(exts):
                    yield os.path.join(dirpath, name)


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving line
    structure, so structural rules don't trip on prose or literals."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Linter:
    def __init__(self, root):
        self.root = root
        self.findings = []

    def report(self, path, line_no, rule, message, raw_line=""):
        # A waiver must name the rule exactly: `lint:allow lock` must not
        # waive `lock-discipline`, and a waiver for one rule must never
        # leak onto another rule's finding on the same line. One comment
        # can waive several rules: `lint:allow rule-a rule-b`.
        allowed = set()
        for group in ALLOW_RE.findall(raw_line):
            allowed.update(group.split())
        if rule in allowed:
            return
        rel = os.path.relpath(path, self.root)
        self.findings.append(f"{rel}:{line_no}: [{rule}] {message}")

    # -- pragma-once ----------------------------------------------------

    def check_pragma_once(self):
        for path in find_files(self.root, HEADER_DIRS, (".h", ".hpp")):
            with open(path, encoding="utf-8") as f:
                text = f.read()
            if "#pragma once" not in text:
                self.report(path, 1, "pragma-once",
                            "header must use '#pragma once'")
            guard = re.search(r"^#ifndef\s+(\w*_H_?)\s*$", text, re.M)
            if guard:
                line_no = text[: guard.start()].count("\n") + 1
                self.report(path, line_no, "pragma-once",
                            f"include guard '{guard.group(1)}' — use "
                            "'#pragma once' instead")

    # -- rng-discipline -------------------------------------------------

    RNG_RE = re.compile(r"std::random_device|(?<![\w.:>])s?rand\s*\(")

    def check_rng(self):
        for path in find_files(self.root, SOURCE_DIRS, (".h", ".cc", ".cpp")):
            rel = os.path.relpath(path, self.root)
            if rel.startswith(os.path.join("src", "common", "rng")):
                continue
            with open(path, encoding="utf-8") as f:
                raw_lines = f.read().splitlines()
            stripped = strip_comments_and_strings("\n".join(raw_lines))
            for line_no, line in enumerate(stripped.splitlines(), 1):
                if self.RNG_RE.search(line):
                    self.report(path, line_no, "rng-discipline",
                                "use the seeded kqr::Rng (common/rng) "
                                "instead of ad-hoc randomness",
                                raw_lines[line_no - 1])

    # -- mutable-global -------------------------------------------------

    DECL_SKIP_RE = re.compile(
        r"^\s*(const\b|constexpr\b|using\b|typedef\b|namespace\b|template\b"
        r"|friend\b|return\b|struct\b|class\b|enum\b|extern\s+const\b"
        r"|static\s+const\b|static\s+constexpr\b|inline\s+const\b"
        r"|inline\s+constexpr\b|static_assert\b|#|\})")
    DECL_VAR_RE = re.compile(
        r"^\s*(?:static\s+|inline\s+)*[A-Za-z_][\w:<>,*&\s]*?"
        r"\s[*&]?([A-Za-z_]\w*)(\s*\[[^\]]*\])?\s*(=[^=].*)?;\s*$")

    def check_mutable_globals(self):
        for path in find_files(self.root, ("src",), (".h", ".cc")):
            with open(path, encoding="utf-8") as f:
                raw_lines = f.read().splitlines()
            stripped = strip_comments_and_strings("\n".join(raw_lines))
            # Scope stack entries: "ns" (namespace/extern block) or "other"
            # (class/struct/enum/function/initializer). Declarations are
            # only inspected while every open brace is a namespace.
            stack = []
            pending = ""  # statement text accumulated since the last ; or }
            for line_no, line in enumerate(stripped.splitlines(), 1):
                at_ns_scope = all(kind == "ns" for kind in stack)
                if (at_ns_scope and "{" not in line and "(" not in line
                        and not pending.strip()):
                    m = self.DECL_VAR_RE.match(line)
                    if m and not self.DECL_SKIP_RE.match(line):
                        self.report(path, line_no, "mutable-global",
                                    f"namespace-scope variable "
                                    f"'{m.group(1)}' must be const/"
                                    "constexpr (shared-model code is "
                                    "concurrent)",
                                    raw_lines[line_no - 1])
                for ch in line:
                    if ch == "{":
                        head = pending.strip()
                        is_ns = bool(re.search(
                            r"(^|\s)namespace(\s|$)|^extern\s", head))
                        stack.append("ns" if is_ns else "other")
                        pending = ""
                    elif ch == "}":
                        if stack:
                            stack.pop()
                        pending = ""
                    elif ch == ";":
                        pending = ""
                    else:
                        pending += ch
                pending += " "

    # -- options-mutation -----------------------------------------------

    def check_options_mutation(self):
        for path in find_files(self.root, SOURCE_DIRS, (".h", ".cc", ".cpp")):
            rel = os.path.relpath(path, self.root)
            with open(path, encoding="utf-8") as f:
                raw_lines = f.read().splitlines()
            stripped = strip_comments_and_strings("\n".join(raw_lines))
            for line_no, line in enumerate(stripped.splitlines(), 1):
                if ("mutable_options" in line
                        and rel != os.path.join("src", "core",
                                                "engine_builder.h")):
                    self.report(path, line_no, "options-mutation",
                                "mutable_options is builder-only; serve "
                                "with ReformulateTermsWith(opts, ...)",
                                raw_lines[line_no - 1])
                if "const_cast" in line and rel.startswith("src" + os.sep):
                    self.report(path, line_no, "options-mutation",
                                "const_cast is banned in src/ — mutation "
                                "behind the shared-model const facade "
                                "races with serving",
                                raw_lines[line_no - 1])

    # -- facade-include -------------------------------------------------

    # Files allowed to reach into core/* directly: benches that measure
    # internal stages the facade deliberately does not export.
    FACADE_ALLOWLIST = frozenset({
        os.path.join("bench", "micro_kernels.cc"),
    })
    FACADE_INCLUDE_RE = re.compile(r'^\s*#include\s+"(core/[^"]+)"')

    def check_facade_includes(self):
        for path in find_files(self.root, ("examples", "bench"),
                               (".h", ".cc", ".cpp")):
            rel = os.path.relpath(path, self.root)
            if rel in self.FACADE_ALLOWLIST:
                continue
            with open(path, encoding="utf-8") as f:
                raw_lines = f.read().splitlines()
            # Match raw lines: the include path is a string literal, which
            # strip_comments_and_strings would blank out.
            for line_no, line in enumerate(raw_lines, 1):
                m = self.FACADE_INCLUDE_RE.match(line)
                if m:
                    self.report(path, line_no, "facade-include",
                                f'include "{m.group(1)}" from the public '
                                'facade "kqr.h" instead — examples and '
                                "benches must use the supported surface",
                                raw_lines[line_no - 1])

    # -- metrics-discipline ---------------------------------------------

    # Per-request hot-path files: every metric they record must be staged
    # in the caller's RequestMetricsBlock (value-type `.Observe`/field
    # adds) and flushed once, not pushed through the shared atomics on
    # each event. Build-time code (engine_builder) and the flush sites
    # themselves (obs/, server batch flush) are exempt by omission.
    METRICS_HOT_FILES = tuple(
        os.path.join("src", "core", name)
        for name in ("reformulator.cc", "serving_model.cc", "serving_model.h",
                     "viterbi_topk.cc", "viterbi_topk.h", "astar_topk.cc",
                     "astar_topk.h", "candidates.cc", "candidates.h",
                     "hmm.cc", "hmm.h", "request_context.h"))
    METRICS_CALL_RE = re.compile(r"->\s*(Increment|Observe)\s*\(")

    def check_metrics_discipline(self):
        for rel in self.METRICS_HOT_FILES:
            path = os.path.join(self.root, rel)
            if not os.path.exists(path):
                continue
            with open(path, encoding="utf-8") as f:
                raw_lines = f.read().splitlines()
            stripped = strip_comments_and_strings("\n".join(raw_lines))
            for line_no, line in enumerate(stripped.splitlines(), 1):
                m = self.METRICS_CALL_RE.search(line)
                if m:
                    self.report(path, line_no, "metrics-discipline",
                                f"direct ->{m.group(1)}() on the request "
                                "path — stage into RequestMetricsBlock and "
                                "flush once per request (3% overhead "
                                "budget)",
                                raw_lines[line_no - 1])

    # -- io-discipline --------------------------------------------------

    # Files in src/ allowed to open files directly: the io layer itself,
    # and the two pre-v3 text formats (v2 snapshot, CSV corpus loader)
    # whose line-oriented parsers predate the container. Everything else
    # goes through common/io so persistence stays mmap-able and
    # checksummed.
    IO_ALLOWLIST_PREFIXES = (
        os.path.join("src", "common", "io") + os.sep,
    )
    IO_ALLOWLIST_FILES = frozenset({
        os.path.join("src", "core", "snapshot.cc"),
        os.path.join("src", "storage", "csv.cc"),
    })
    IO_CALL_RE = re.compile(
        r"std::(?:fopen|i?o?fstream)\b|(?<![\w.:>])fopen\s*\(")

    def check_io_discipline(self):
        for path in find_files(self.root, ("src",), (".h", ".cc")):
            rel = os.path.relpath(path, self.root)
            if rel in self.IO_ALLOWLIST_FILES:
                continue
            if any(rel.startswith(p) for p in self.IO_ALLOWLIST_PREFIXES):
                continue
            with open(path, encoding="utf-8") as f:
                raw_lines = f.read().splitlines()
            stripped = strip_comments_and_strings("\n".join(raw_lines))
            for line_no, line in enumerate(stripped.splitlines(), 1):
                m = self.IO_CALL_RE.search(line)
                if m:
                    self.report(path, line_no, "io-discipline",
                                f"raw file I/O ('{m.group(0)}') in src/ — "
                                "go through common/io (MappedFile, "
                                "WriteFileBytes, ReadFileString) so "
                                "persistence stays checksummed and "
                                "mmap-able",
                                raw_lines[line_no - 1])

    # -- lock-discipline ------------------------------------------------

    # The annotated wrappers themselves (common/mutex.h) necessarily wrap
    # the raw primitives; everything else in src/ must use the wrappers so
    # the capability analysis sees every acquire/release. tests/, bench/,
    # examples/ are exempt: they exercise the system from outside and the
    # analysis does not run on them with -Werror.
    LOCK_ALLOWLIST_PREFIXES = (
        os.path.join("src", "common") + os.sep,
    )
    LOCK_RE = re.compile(
        r"std::(?:mutex|shared_mutex|recursive_mutex|timed_mutex"
        r"|lock_guard|unique_lock|shared_lock|scoped_lock"
        r"|condition_variable(?:_any)?)\b")

    def check_lock_discipline(self):
        for path in find_files(self.root, ("src",), (".h", ".cc")):
            rel = os.path.relpath(path, self.root)
            if any(rel.startswith(p) for p in self.LOCK_ALLOWLIST_PREFIXES):
                continue
            with open(path, encoding="utf-8") as f:
                raw_lines = f.read().splitlines()
            stripped = strip_comments_and_strings("\n".join(raw_lines))
            for line_no, line in enumerate(stripped.splitlines(), 1):
                m = self.LOCK_RE.search(line)
                if m:
                    self.report(path, line_no, "lock-discipline",
                                f"raw '{m.group(0)}' in src/ — use the "
                                "annotated kqr::Mutex/MutexLock/CondVar "
                                "(common/mutex.h) so the thread-safety "
                                "analysis sees the acquire/release",
                                raw_lines[line_no - 1])

    # -- net-discipline -------------------------------------------------

    # Raw socket/poll syscalls are confined to src/net/ (the kqr::Socket
    # wrappers and the epoll loop); every other src/ layer must go through
    # them. A stray ::connect or ::send elsewhere bypasses the
    # non-blocking setup, the error→Status mapping, and the fd ownership
    # the wrappers guarantee. tests/, bench/, examples/ are exempt — fault
    # tests deliberately speak raw bytes at the daemon.
    NET_ALLOWLIST_PREFIXES = (
        os.path.join("src", "net") + os.sep,
    )
    NET_RE = re.compile(
        r"(?<![\w.>])(?:socket|bind|listen|accept4?|connect|recv(?:from"
        r"|msg)?|send(?:to|msg)?|p?poll|select|epoll_create1?|epoll_ctl"
        r"|epoll_wait|eventfd|getsockname|getpeername|getsockopt"
        r"|setsockopt|shutdown|socketpair)\s*\(")

    def check_net_discipline(self):
        for path in find_files(self.root, ("src",), (".h", ".cc")):
            rel = os.path.relpath(path, self.root)
            if any(rel.startswith(p) for p in self.NET_ALLOWLIST_PREFIXES):
                continue
            with open(path, encoding="utf-8") as f:
                raw_lines = f.read().splitlines()
            stripped = strip_comments_and_strings("\n".join(raw_lines))
            for line_no, line in enumerate(stripped.splitlines(), 1):
                m = self.NET_RE.search(line)
                if m:
                    self.report(path, line_no, "net-discipline",
                                f"raw socket call ('{m.group(0).rstrip('(').rstrip()}') "
                                "outside src/net/ — use the kqr::Socket "
                                "wrappers (net/socket.h) so fd lifetimes "
                                "and error mapping stay in one place",
                                raw_lines[line_no - 1])

    # -- silent-empty ---------------------------------------------------

    # Any identifier ending in OrEmpty used as a function (declaration,
    # definition, or call) — the name is the contract, and the contract
    # is "errors vanish".
    SILENT_EMPTY_RE = re.compile(r"\b\w+OrEmpty\s*\(")

    def check_silent_empty(self):
        for path in find_files(self.root, ("src",), (".h", ".cc")):
            with open(path, encoding="utf-8") as f:
                raw_lines = f.read().splitlines()
            stripped = strip_comments_and_strings("\n".join(raw_lines))
            for line_no, line in enumerate(stripped.splitlines(), 1):
                m = self.SILENT_EMPTY_RE.search(line)
                if m:
                    self.report(path, line_no, "silent-empty",
                                f"'{m.group(0).rstrip('(').rstrip()}' folds "
                                "errors into an empty result — return "
                                "Result<T> so callers see the typed Status",
                                raw_lines[line_no - 1])

    # -- include-cycle --------------------------------------------------

    INCLUDE_RE = re.compile(r'^\s*#include\s+"([^"]+)"', re.M)

    def check_include_cycles(self):
        src = os.path.join(self.root, "src")
        graph = {}
        for path in find_files(self.root, ("src",), (".h",)):
            rel = os.path.relpath(path, src)
            with open(path, encoding="utf-8") as f:
                text = f.read()
            deps = []
            for inc in self.INCLUDE_RE.findall(text):
                if os.path.exists(os.path.join(src, inc)):
                    deps.append(inc)
            graph[rel] = deps

        WHITE, GRAY, BLACK = 0, 1, 2
        color = {node: WHITE for node in graph}
        stack = []

        def visit(node):
            color[node] = GRAY
            stack.append(node)
            for dep in graph.get(node, ()):
                if color.get(dep, BLACK) == GRAY:
                    cycle = stack[stack.index(dep):] + [dep]
                    self.report(os.path.join(src, node), 1, "include-cycle",
                                "header include cycle: " + " -> ".join(cycle))
                elif color.get(dep, BLACK) == WHITE:
                    visit(dep)
            stack.pop()
            color[node] = BLACK

        for node in sorted(graph):
            if color[node] == WHITE:
                visit(node)

    def run(self):
        self.check_pragma_once()
        self.check_rng()
        self.check_mutable_globals()
        self.check_options_mutation()
        self.check_metrics_discipline()
        self.check_facade_includes()
        self.check_io_discipline()
        self.check_lock_discipline()
        self.check_net_discipline()
        self.check_silent_empty()
        self.check_include_cycles()
        return self.findings


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    default_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    parser.add_argument("--root", default=default_root)
    args = parser.parse_args()

    findings = Linter(args.root).run()
    if findings:
        for f in findings:
            print(f, file=sys.stderr)
        print(f"tools/lint.py: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("tools/lint.py: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
