// Randomized round-trip properties of the CSV layer: any field content —
// quotes, commas, newlines excepted (records are line-based) — must
// survive format → parse unchanged.

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "storage/csv.h"

namespace kqr {
namespace {

std::string RandomField(Rng* rng) {
  static const char kAlphabet[] =
      "abcXYZ019 ,\"'|;:!?@#$%^&*()[]{}<>~`+=_-./\\";
  size_t len = rng->NextBounded(18);
  std::string out;
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kAlphabet[rng->NextBounded(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

class CsvRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvRoundTrip, FormatParseIsIdentity) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    size_t arity = 1 + rng.NextBounded(6);
    std::vector<std::string> fields;
    for (size_t i = 0; i < arity; ++i) fields.push_back(RandomField(&rng));
    auto parsed = ParseCsvLine(FormatCsvLine(fields));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(*parsed, fields) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvRoundTrip,
                         ::testing::Values(11, 22, 33, 44, 55));

class TableCsvRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TableCsvRoundTrip, TableSurvivesDumpAndLoad) {
  Rng rng(GetParam());
  Schema schema = std::move(Schema::Make(
                                "t",
                                {Column("id", ValueType::kInt64),
                                 Column("txt", ValueType::kString),
                                 Column("num", ValueType::kDouble)},
                                "id"))
                      .ValueOrDie();
  Table original(schema);
  for (int64_t i = 0; i < 40; ++i) {
    std::string field = RandomField(&rng);
    // Line-based records cannot hold raw newlines.
    for (char& c : field) {
      if (c == '\n' || c == '\r') c = '_';
    }
    Value text = rng.NextDouble() < 0.15 ? Value::Null()
                                         : Value(std::move(field));
    Value num = rng.NextDouble() < 0.15
                    ? Value::Null()
                    : Value(double(rng.NextInt(-1000, 1000)) / 8.0);
    ASSERT_TRUE(original.Insert({Value(i), text, num}).ok());
  }

  std::ostringstream out;
  ASSERT_TRUE(DumpCsv(original, out).ok());
  Table reloaded(schema);
  std::istringstream in(out.str());
  ASSERT_TRUE(LoadCsvInto(in, &reloaded).ok());

  ASSERT_EQ(reloaded.num_rows(), original.num_rows());
  for (size_t r = 0; r < original.num_rows(); ++r) {
    const Tuple& a = original.row(static_cast<RowIndex>(r));
    const Tuple& b = reloaded.row(static_cast<RowIndex>(r));
    EXPECT_EQ(a.at(0), b.at(0));
    // NULL text round-trips to NULL (empty cell); empty string also maps
    // to NULL — the documented CSV ambiguity — so compare via ToString.
    EXPECT_EQ(a.at(1).ToString(), b.at(1).ToString());
    if (!a.at(2).is_null()) {
      ASSERT_FALSE(b.at(2).is_null());
      EXPECT_DOUBLE_EQ(a.at(2).AsDouble(), b.at(2).AsDouble());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TableCsvRoundTrip,
                         ::testing::Values(7, 77, 777));

}  // namespace
}  // namespace kqr
