#include "search/query.h"

#include <gtest/gtest.h>

#include "test_fixtures.h"

namespace kqr {
namespace {

using testing_fixtures::MicroCorpus;

class QueryParserTest : public ::testing::Test {
 protected:
  QueryParserTest()
      : corpus_(MicroCorpus::Make()),
        parser_(corpus_.analyzer, corpus_.vocab) {}

  MicroCorpus corpus_;
  QueryParser parser_;
};

TEST_F(QueryParserTest, SingleTitleWordResolves) {
  KeywordQuery q = parser_.Parse("uncertain");
  ASSERT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.keywords[0].resolved());
  EXPECT_EQ(q.keywords[0].terms[0], corpus_.Title("uncertain"));
  EXPECT_TRUE(q.FullyResolved());
}

TEST_F(QueryParserTest, InflectedFormResolvesViaStemming) {
  KeywordQuery q = parser_.Parse("queries");
  ASSERT_EQ(q.size(), 1u);
  ASSERT_TRUE(q.keywords[0].resolved());
  EXPECT_EQ(q.keywords[0].terms[0], corpus_.Title("query"));
}

TEST_F(QueryParserTest, MultiWordAuthorNameGreedyMatch) {
  KeywordQuery q = parser_.Parse("alice smith uncertain");
  ASSERT_EQ(q.size(), 2u);
  EXPECT_EQ(q.keywords[0].surface, "alice smith");
  ASSERT_TRUE(q.keywords[0].resolved());
  EXPECT_EQ(q.keywords[0].terms[0], corpus_.Author("alice smith"));
  EXPECT_EQ(q.keywords[1].terms[0], corpus_.Title("uncertain"));
}

TEST_F(QueryParserTest, CaseInsensitiveAtomMatch) {
  KeywordQuery q = parser_.Parse("Alice Smith");
  ASSERT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.keywords[0].resolved());
}

TEST_F(QueryParserTest, VenueNameResolves) {
  KeywordQuery q = parser_.Parse("vldb mining");
  ASSERT_EQ(q.size(), 2u);
  EXPECT_EQ(q.keywords[0].terms[0], corpus_.Venue("vldb"));
  EXPECT_EQ(q.keywords[1].terms[0], corpus_.Title("mining"));
}

TEST_F(QueryParserTest, UnknownKeywordUnresolved) {
  KeywordQuery q = parser_.Parse("blockchain uncertain");
  ASSERT_EQ(q.size(), 2u);
  EXPECT_FALSE(q.keywords[0].resolved());
  EXPECT_TRUE(q.keywords[1].resolved());
  EXPECT_FALSE(q.FullyResolved());
}

TEST_F(QueryParserTest, EmptyQuery) {
  KeywordQuery q = parser_.Parse("");
  EXPECT_EQ(q.size(), 0u);
  EXPECT_FALSE(q.FullyResolved());
}

TEST_F(QueryParserTest, ToStringShowsKeywords) {
  KeywordQuery q = parser_.Parse("uncertain query");
  EXPECT_EQ(q.ToString(), "[uncertain] [query]");
}

TEST_F(QueryParserTest, SameTextInMultipleFieldsReturnsAll) {
  // Add a venue literally named "uncertain" to create the ambiguity.
  Database db = testing_fixtures::MakeMicroDblp();
  Table* venues = db.FindTable("venues");
  ASSERT_TRUE(
      venues->Insert({Value(int64_t{2}), Value("uncertain")}).ok());
  Analyzer analyzer;
  Vocabulary vocab;
  auto index = InvertedIndex::Build(db, analyzer, &vocab);
  ASSERT_TRUE(index.ok());
  QueryParser parser(analyzer, vocab);
  KeywordQuery q = parser.Parse("uncertain");
  ASSERT_EQ(q.size(), 1u);
  EXPECT_EQ(q.keywords[0].terms.size(), 2u);
}

}  // namespace
}  // namespace kqr
