#include "core/smoothing.h"

#include <gtest/gtest.h>

#include <numeric>

namespace kqr {
namespace {

TEST(Smoothing, PreservesSum) {
  std::vector<double> v = {4.0, 0.0, 2.0, 0.0};
  double before = std::accumulate(v.begin(), v.end(), 0.0);
  SmoothToMean(&v, 0.7);
  double after = std::accumulate(v.begin(), v.end(), 0.0);
  EXPECT_NEAR(before, after, 1e-12);
}

TEST(Smoothing, LiftsZeros) {
  std::vector<double> v = {4.0, 0.0};
  SmoothToMean(&v, 0.5);
  EXPECT_GT(v[1], 0.0);
  EXPECT_GT(v[0], v[1]);  // order preserved
}

TEST(Smoothing, LambdaOneIsIdentity) {
  std::vector<double> v = {3.0, 1.0, 0.0};
  std::vector<double> orig = v;
  SmoothToMean(&v, 1.0);
  EXPECT_EQ(v, orig);
}

TEST(Smoothing, LambdaZeroIsUniform) {
  std::vector<double> v = {6.0, 0.0, 0.0};
  SmoothToMean(&v, 0.0);
  for (double x : v) EXPECT_NEAR(x, 2.0, 1e-12);
}

TEST(Smoothing, AllZeroUntouched) {
  std::vector<double> v = {0.0, 0.0};
  SmoothToMean(&v, 0.5);
  EXPECT_EQ(v[0], 0.0);
  EXPECT_EQ(v[1], 0.0);
}

TEST(Smoothing, EmptyVectorNoop) {
  std::vector<double> v;
  SmoothToMean(&v, 0.5);
  EXPECT_TRUE(v.empty());
}

TEST(Smoothing, RowsSmoothedIndependently) {
  std::vector<std::vector<double>> rows = {{2.0, 0.0}, {0.0, 0.0}};
  SmoothRowsToMean(&rows, 0.5);
  EXPECT_GT(rows[0][1], 0.0);
  EXPECT_EQ(rows[1][0], 0.0);
}

TEST(Normalize, SumsToOne) {
  std::vector<double> v = {1.0, 3.0};
  NormalizeToDistribution(&v);
  EXPECT_NEAR(v[0], 0.25, 1e-12);
  EXPECT_NEAR(v[1], 0.75, 1e-12);
}

TEST(Normalize, AllZeroBecomesUniform) {
  std::vector<double> v = {0.0, 0.0, 0.0, 0.0};
  NormalizeToDistribution(&v);
  for (double x : v) EXPECT_NEAR(x, 0.25, 1e-12);
}

TEST(Normalize, EmptyNoop) {
  std::vector<double> v;
  NormalizeToDistribution(&v);
  EXPECT_TRUE(v.empty());
}

class SmoothingLambdaSweep : public ::testing::TestWithParam<double> {};

TEST_P(SmoothingLambdaSweep, MonotoneOrderPreserved) {
  // Smoothing toward the mean never reorders entries.
  std::vector<double> v = {9.0, 5.0, 3.0, 1.0, 0.0};
  SmoothToMean(&v, GetParam());
  for (size_t i = 1; i < v.size(); ++i) EXPECT_GE(v[i - 1], v[i]);
}

INSTANTIATE_TEST_SUITE_P(Lambdas, SmoothingLambdaSweep,
                         ::testing::Values(0.0, 0.2, 0.5, 0.8, 1.0));

}  // namespace
}  // namespace kqr
