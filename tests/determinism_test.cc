// Reproducibility guarantees: identical inputs must produce identical
// models, offline products, and online suggestions — the property the
// whole bench harness depends on.

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/engine_builder.h"
#include "datagen/dblp_gen.h"

namespace kqr {
namespace {

DblpOptions SmallCorpus() {
  DblpOptions options;
  options.num_authors = 150;
  options.num_papers = 500;
  options.num_venues = 24;
  options.seed = 99;
  return options;
}

std::shared_ptr<const ServingModel> MakeModel() {
  auto corpus = GenerateDblp(SmallCorpus());
  KQR_CHECK(corpus.ok());
  auto model = EngineBuilder().Build(std::move(corpus->db));
  KQR_CHECK(model.ok());
  return std::move(model).ValueOrDie();
}

TEST(Determinism, VocabularyIdentical) {
  auto a = MakeModel();
  auto b = MakeModel();
  ASSERT_EQ(a->vocab().size(), b->vocab().size());
  for (TermId t = 0; t < a->vocab().size(); ++t) {
    EXPECT_EQ(a->vocab().text(t), b->vocab().text(t));
    EXPECT_EQ(a->vocab().field_of(t), b->vocab().field_of(t));
  }
}

TEST(Determinism, GraphIdentical) {
  auto a = MakeModel();
  auto b = MakeModel();
  ASSERT_EQ(a->graph().num_nodes(), b->graph().num_nodes());
  ASSERT_EQ(a->graph().num_edges(), b->graph().num_edges());
  for (NodeId v = 0; v < a->graph().num_nodes(); v += 97) {
    auto na = a->graph().Neighbors(v);
    auto nb = b->graph().Neighbors(v);
    ASSERT_EQ(na.size(), nb.size()) << "node " << v;
    for (size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i].target, nb[i].target);
      EXPECT_EQ(na[i].weight, nb[i].weight);
    }
  }
}

TEST(Determinism, OfflineProductsIdentical) {
  auto a = MakeModel();
  auto b = MakeModel();
  auto terms = a->ResolveQuery("uncertain query");
  ASSERT_TRUE(terms.ok());
  for (TermId t : *terms) {
    a->EnsureTerm(t);
    b->EnsureTerm(t);
    const auto& sa = a->similarity_index().Lookup(t);
    const auto& sb = b->similarity_index().Lookup(t);
    ASSERT_EQ(sa.size(), sb.size());
    for (size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa[i].term, sb[i].term);
      EXPECT_DOUBLE_EQ(sa[i].score, sb[i].score);
    }
    const auto& ca = a->closeness_index().Lookup(t);
    const auto& cb = b->closeness_index().Lookup(t);
    ASSERT_EQ(ca.size(), cb.size());
    for (size_t i = 0; i < ca.size(); ++i) {
      EXPECT_EQ(ca[i].term, cb[i].term);
      EXPECT_DOUBLE_EQ(ca[i].closeness, cb[i].closeness);
    }
  }
}

TEST(Determinism, LazyAndEagerOfflineProductsIdentical) {
  auto lazy = MakeModel();
  EngineOptions eager_options;
  eager_options.precompute_offline = true;
  auto corpus = GenerateDblp(SmallCorpus());
  KQR_CHECK(corpus.ok());
  auto built = EngineBuilder(eager_options).Build(std::move(corpus->db));
  KQR_CHECK(built.ok());
  auto eager = std::move(built).ValueOrDie();

  auto terms = lazy->ResolveQuery("uncertain query");
  ASSERT_TRUE(terms.ok());
  for (TermId t : *terms) {
    lazy->EnsureTerm(t);
    const auto& sl = lazy->similarity_index().Lookup(t);
    const auto& se = eager->similarity_index().Lookup(t);
    ASSERT_EQ(sl.size(), se.size());
    for (size_t i = 0; i < sl.size(); ++i) {
      EXPECT_EQ(sl[i].term, se[i].term);
      EXPECT_DOUBLE_EQ(sl[i].score, se[i].score);
    }
    const auto& cl = lazy->closeness_index().Lookup(t);
    const auto& ce = eager->closeness_index().Lookup(t);
    ASSERT_EQ(cl.size(), ce.size());
    for (size_t i = 0; i < cl.size(); ++i) {
      EXPECT_EQ(cl[i].term, ce[i].term);
      EXPECT_DOUBLE_EQ(cl[i].closeness, ce[i].closeness);
      EXPECT_EQ(cl[i].distance, ce[i].distance);
    }
  }
}

TEST(Determinism, SuggestionsIdenticalAcrossModelsAndCalls) {
  auto a = MakeModel();
  auto b = MakeModel();
  auto ra = a->Reformulate("probabilistic query", 8);
  auto rb = b->Reformulate("probabilistic query", 8);
  auto ra2 = a->Reformulate("probabilistic query", 8);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  ASSERT_TRUE(ra2.ok());
  ASSERT_EQ(ra->size(), rb->size());
  ASSERT_EQ(ra->size(), ra2->size());
  for (size_t i = 0; i < ra->size(); ++i) {
    EXPECT_EQ((*ra)[i].terms, (*rb)[i].terms);
    EXPECT_DOUBLE_EQ((*ra)[i].score, (*rb)[i].score);
    EXPECT_EQ((*ra)[i].terms, (*ra2)[i].terms);
  }
}

TEST(Determinism, SearchCountsStable) {
  auto a = MakeModel();
  auto b = MakeModel();
  auto terms = a->ResolveQuery("uncertain query");
  ASSERT_TRUE(terms.ok());
  EXPECT_EQ(a->CountResults(*terms), b->CountResults(*terms));
  EXPECT_EQ(a->CountTrees(*terms), b->CountTrees(*terms));
}

}  // namespace
}  // namespace kqr
